// Shared engine-geometry CLI knobs: --shards / --threads / --batch /
// --feedback / --pin. Every subcommand that runs the sharded engine
// (`treecache throughput`, `treecache fib`) parses them through this one
// helper, so the knob set, spellings and defaults can never drift between
// them.
#pragma once

#include "engine/sharded_engine.hpp"
#include "tools/flags.hpp"
#include "util/check.hpp"

namespace treecache::tools {

/// The engine knob keys, for params_from-style drop lists: they
/// parameterize the engine, never the scenario, so they must not leak
/// into the params echoed by --json documents.
inline constexpr const char* kEngineFlagKeys[] = {"shards", "threads",
                                                 "batch", "feedback", "pin"};

/// Engine geometry from the shared flags, with EngineConfig's own
/// defaults for anything not given. --pin on|off pins shard workers to
/// cores and first-touches each shard's state on its worker.
[[nodiscard]] inline engine::EngineConfig engine_config_from(
    const Flags& flags) {
  const engine::EngineConfig defaults{};
  const std::string pin =
      flags.get("pin", defaults.pin_threads ? "on" : "off");
  TC_CHECK(pin == "on" || pin == "off", "--pin must be on or off");
  return engine::EngineConfig{
      .shards = flags.get_u64("shards", defaults.shards),
      .threads = flags.get_u64("threads", defaults.threads),
      .batch = flags.get_u64("batch", defaults.batch),
      .feedback = flags.get_u64("feedback", defaults.feedback),
      .pin_threads = pin == "on"};
}

}  // namespace treecache::tools
