// Shared engine-geometry CLI knobs: --shards / --threads / --batch /
// --feedback. Every subcommand that runs the sharded engine (`treecache
// throughput`, `treecache fib`) parses them through this one helper, so
// the knob set, spellings and defaults can never drift between them.
#pragma once

#include "engine/sharded_engine.hpp"
#include "tools/flags.hpp"

namespace treecache::tools {

/// The engine knob keys, for params_from-style drop lists: they
/// parameterize the engine, never the scenario, so they must not leak
/// into the params echoed by --json documents.
inline constexpr const char* kEngineFlagKeys[] = {"shards", "threads",
                                                 "batch", "feedback"};

/// Engine geometry from the shared flags, with EngineConfig's own
/// defaults for anything not given.
[[nodiscard]] inline engine::EngineConfig engine_config_from(
    const Flags& flags) {
  const engine::EngineConfig defaults{};
  return engine::EngineConfig{
      .shards = flags.get_u64("shards", defaults.shards),
      .threads = flags.get_u64("threads", defaults.threads),
      .batch = flags.get_u64("batch", defaults.batch),
      .feedback = flags.get_u64("feedback", defaults.feedback)};
}

}  // namespace treecache::tools
