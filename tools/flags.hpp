// Minimal command-line flag parsing for the CLI tools.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace treecache::tools {

/// Parses "--key value" pairs after the subcommand; bare "--key" sets "1".
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      TC_CHECK(key.rfind("--", 0) == 0, "expected --flag, got " + key);
      key = key.substr(2);
      std::string value = "1";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      values_.insert_or_assign(std::move(key), std::move(value));
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoull(it->second);
    } catch (const std::exception&) {
      throw CheckFailure("--" + key + " " + it->second +
                         " is not an unsigned integer");
    }
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw CheckFailure("--" + key + " " + it->second + " is not a number");
    }
  }

  /// All parsed flags, e.g. to seed a sim::Params with every --key value.
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace treecache::tools
