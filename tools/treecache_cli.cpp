// treecache — command-line interface to the library.
//
// Algorithms, workloads and offline evaluators resolve by name through
// sim/registry.hpp; `treecache list` prints everything that is registered.
// Adding a policy or streaming source to the library makes it available
// here with no CLI changes.
//
// `run` and `gen-trace` are fully streaming: workloads are pull-based
// RequestSources and `--trace` files are read line by line, so
// `--length 1000000000` runs in O(tree) memory (CI asserts the RSS bound).
// Composite workloads come from the registered combinators, e.g.
// `--workload mix --parts zipf,hotspot --weights 3,1` or
// `--workload churn-inject --inner zipfleaf --churn-period 500`.
//
// Subcommands:
//   list       prints the registered algorithms / workloads / evaluators
//   gen-tree   --shape path|star|kary|caterpillar|spider|random|randomdeg
//              --nodes N [--arity A] [--levels L] [--seed S]
//              [--out tree.txt]
//   gen-rib    --rules N [--deagg D] [--seed S] [--out tree.txt]
//              [--prefixes prefixes.txt]
//   gen-feed   --routes N --updates M [--family 4|6|46] [--seed S]
//              [--withdraw-prob P] [--fresh-prob P] [--max-len L]
//              [--max-len6 L] [--deagg D] [--format text|mrt]
//              [--out feed.txt]; emits a synthetic dump+update feed —
//              the source of the checked-in CI fixtures. --format mrt
//              writes binary MRT (RFC 6396: TABLE_DUMP_V2 + BGP4MP,
//              rib/mrt.hpp) instead of the text grammar; both decode to
//              identical records
//   ingest     --rib-feed dump.feed[,updates.feed...] [--json out.json]
//              [--follow [--poll-ms P] [--idle-ms I]]; streams the
//              feed(s) — text or binary MRT, sniffed per file — into
//              per-family radix RIBs (route_add/route_delete), rebuilds
//              the replay FIBs, and reports routes, churn, bytes,
//              routes/sec and tree depth histograms (schema
//              treecache.ingest/1). --follow tail-polls the last file
//              for growth and stops after --idle-ms with no new bytes
//              (0 = follow until killed)
//   gen-trace  --tree tree.txt --kind <workload> --length N [--skew Z]
//              [--neg F] [--alpha A] [--update-prob P] [--seed S]
//              [--out trace.txt]
//   run        --tree tree.txt --algo <algorithm> --alpha A --capacity K
//              (--trace trace.txt | --workload <workload> [--length N ...])
//              [--seed S] [--validate] [--json out.json]
//   throughput sharded-engine run (engine/sharded_engine.hpp): --tree
//              tree.txt|fib --algo <algorithm> [--workload <w>|--trace f]
//              [--shards S] [--threads N] [--batch B] [--feedback F]
//              [--pin on|off] [--seed S] [--json out.json]; aggregate
//              costs are identical for every --threads value (per-shard
//              routing is deterministic). --pin on pins shard workers to
//              cores and first-touches shard state on its worker; the
//              JSON echoes the effective affinity and the dispatched
//              kernel set (TREECACHE_FORCE_KERNELS=scalar|sse2|avx2
//              overrides). --algos a,b,... instead of --algo runs a
//              side-by-side comparison over the same stream (speedup vs
//              the first name — `--algos tc-legacy,tc` measures the
//              preorder-SoA layout win)
//   sweep      --tree tree.txt --algos a,b,... --workloads w1,w2,...
//              [shared params] [--seed S] [--json out.json]
//   fib        closed-loop router simulation (switch + controller) on a
//              synthetic RIB: --algos a,b,... --skews 0.8,1.2
//              --capacities 64,256 --alphas 8,32 [--packets N]
//              [--update-prob P] [--rules N] [--deagg D] [--max-len L]
//              [--rib-seed S] [--seed S] [--shards S] [--threads N]
//              [--batch B] [--feedback F] [--json out.json];
//              --rib-feed d.feed[,u.feed] swaps the synthetic RIB for
//              the table ingested from a real feed; --shards > 1
//              runs the closed loop sharded by top-level prefix
//              (per-shard router mirrors off one shared event producer,
//              fed back through per-shard outcome rings); results are
//              bit-identical for every --threads/--batch/--feedback value
//   opt        --tree tree.txt --trace trace.txt --alpha A --capacity K
//              [--evaluator opt|static]
//   fields     --tree tree.txt --trace trace.txt --alpha A --capacity K
//              [--render N]
//
// Files: trees are whitespace-separated parent lists (root = -1); traces
// are one request per line ("+12" / "-3"); both match tree_io/trace I/O.
// `--tree fib` derives the RIB rule tree from the same
// --rules/--deagg/--max-len/--rib-seed flags the fib* workloads use, so
// `run`/`sweep` can drive FIB workloads without an intermediate file;
// `--tree fib-real` derives the replay tree from --rib-feed/--family the
// same way (what `--workload fib-real` expects).
// `--json` writes the machine-readable result document (schemas in
// sim/reporting.hpp); "-" means stdout.
#include <array>
#include <charconv>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>

#include "analysis/opt_bound.hpp"
#include "core/field_tracker.hpp"
#include "core/kernels.hpp"
#include "core/request_source.hpp"
#include "core/tree_cache.hpp"  // `fields` instruments TC specifically
#include "engine/sharded_engine.hpp"
#include "fib/fib_workloads.hpp"
#include "fib/rib_gen.hpp"
#include "fib/rule_tree.hpp"
#include "rib/churn_source.hpp"
#include "rib/feed.hpp"
#include "rib/ingest.hpp"
#include "rib/mrt.hpp"
#include "rib/workloads.hpp"
#include "sim/fib_engine.hpp"
#include "sim/registry.hpp"
#include "sim/reporting.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "tools/engine_flags.hpp"
#include "tools/flags.hpp"
#include "tree/tree_builder.hpp"
#include "tree/tree_io.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace treecache::tools {
namespace {

int usage() {
  std::cerr
      << "usage: treecache <list|gen-tree|gen-rib|gen-feed|gen-trace|run|"
         "throughput|sweep|fib|ingest|opt|fields> [--flags]\n"
         "see the header of tools/treecache_cli.cpp for the full list\n";
  return 2;
}

/// Every --key value forwarded verbatim, so registry factories see their
/// own knobs without CLI plumbing per parameter. Presentation and file
/// flags are dropped: they never parameterize a scenario, and keeping
/// them out makes the params echoed into --json documents byte-identical
/// across output paths.
sim::Params params_from(const Flags& flags,
                        std::span<const char* const> extra_drop = {}) {
  auto values = flags.all();
  for (const char* key : {"json", "out", "tree", "trace", "validate"}) {
    values.erase(key);
  }
  for (const char* key : extra_drop) values.erase(key);
  return sim::Params(std::move(values));
}

/// True when human-readable output belongs on stdout: suppressed only
/// while `--json -` streams the document there, so the two never mix.
bool stdout_is_human(const Flags& flags) {
  return !flags.has("json") || flags.get("json", "-") != "-";
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  for (std::string item; std::getline(ss, item, ',');) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> split_csv_doubles(const std::string& text) {
  std::vector<double> out;
  for (const std::string& item : split_csv(text)) {
    try {
      out.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw CheckFailure("'" + item + "' is not a number");
    }
  }
  return out;
}

template <typename T>
std::vector<T> split_csv_u64(const std::string& text) {
  std::vector<T> out;
  for (const std::string& item : split_csv(text)) {
    // from_chars, not stoull: stoull accepts "-1" and wraps it mod 2^64.
    std::uint64_t value = 0;
    const auto [end, ec] =
        std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc{} || end != item.data() + item.size()) {
      throw CheckFailure("'" + item + "' is not an unsigned integer");
    }
    out.push_back(static_cast<T>(value));
  }
  return out;
}

int cmd_list() {
  std::cout << "online algorithms (--algo):\n"
            << sim::AlgorithmRegistry::instance().describe()
            << "workloads (--workload / gen-trace --kind):\n"
            << sim::WorkloadRegistry::instance().describe()
            << "offline evaluators (opt --evaluator):\n"
            << sim::OfflineEvaluatorRegistry::instance().describe()
            << "paging policies (Appendix C reduction):\n"
            << sim::PagingRegistry::instance().describe();
  return 0;
}

void write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  TC_CHECK(static_cast<bool>(out), "cannot open " + path);
  out << text;
}

Tree load_tree(const Flags& flags) {
  const std::string path = flags.get("tree", "");
  TC_CHECK(!path.empty(), "--tree is required");
  // The special value "fib" derives the RIB rule tree from the same flags
  // the fib* workloads read, so no intermediate tree file is needed;
  // "fib-real" does the same for the feed-replay tree (--rib-feed,
  // --family) the fib-real workload expects.
  if (path == "fib") {
    return fib::rule_tree_from_params(params_from(flags)).tree;
  }
  if (path == "fib-real") {
    return rib::shared_real_fib(params_from(flags)).tree();
  }
  std::ifstream in(path);
  TC_CHECK(static_cast<bool>(in), "cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_parent_string(buffer.str());
}

Trace load_trace_file(const Flags& flags, std::size_t tree_size) {
  const std::string path = flags.get("trace", "");
  TC_CHECK(!path.empty(), "--trace is required");
  std::ifstream in(path);
  TC_CHECK(static_cast<bool>(in), "cannot open " + path);
  return load_trace(in, tree_size);
}

int cmd_gen_tree(const Flags& flags) {
  const std::string shape = flags.get("shape", "random");
  const std::size_t nodes = flags.get_u64("nodes", 1000);
  Rng rng(flags.get_u64("seed", 1));
  Tree tree = [&]() -> Tree {
    if (shape == "path") return trees::path(nodes);
    if (shape == "star") return trees::star(nodes - 1);
    if (shape == "kary") {
      return trees::complete_kary(flags.get_u64("levels", 4),
                                  flags.get_u64("arity", 2));
    }
    if (shape == "caterpillar") {
      return trees::caterpillar(flags.get_u64("levels", 8),
                                flags.get_u64("arity", 3));
    }
    if (shape == "spider") {
      return trees::spider(flags.get_u64("arity", 8),
                           flags.get_u64("levels", 16));
    }
    if (shape == "random") return trees::random_recursive(nodes, rng);
    if (shape == "randomdeg") {
      return trees::random_bounded_degree(nodes, flags.get_u64("arity", 3),
                                          rng);
    }
    throw CheckFailure("unknown --shape " + shape);
  }();
  write_text(flags.get("out", "-"), to_parent_string(tree) + "\n");
  std::cerr << "tree: " << tree.size() << " nodes, height " << tree.height()
            << ", max degree " << tree.max_degree() << "\n";
  return 0;
}

int cmd_gen_rib(const Flags& flags) {
  Rng rng(flags.get_u64("seed", 1));
  const fib::RibConfig config{
      .rules = flags.get_u64("rules", 10000),
      .deaggregation = flags.get_double("deagg", 0.45),
      .max_length = static_cast<std::uint8_t>(flags.get_u64("max-len", 24))};
  const auto rib = fib::generate_rib(config, rng);
  const fib::RuleTree rt = fib::build_rule_tree(rib);
  write_text(flags.get("out", "-"), to_parent_string(rt.tree) + "\n");
  if (flags.has("prefixes")) {
    std::string text;
    for (NodeId v = 0; v < rt.tree.size(); ++v) {
      text += rt.prefix[v].to_string() + "\n";
    }
    write_text(flags.get("prefixes", "-"), text);
  }
  std::cerr << "rule tree: " << rt.tree.size() << " nodes, height "
            << rt.tree.height() << "\n";
  return 0;
}

int cmd_gen_feed(const Flags& flags) {
  rib::SyntheticFeedConfig config;
  config.routes = flags.get_u64("routes", config.routes);
  config.updates = flags.get_u64("updates", config.updates);
  config.family = static_cast<int>(flags.get_u64("family", 4));
  config.withdraw_probability =
      flags.get_double("withdraw-prob", config.withdraw_probability);
  config.fresh_announce_probability =
      flags.get_double("fresh-prob", config.fresh_announce_probability);
  config.max_length4 =
      static_cast<std::uint8_t>(flags.get_u64("max-len", config.max_length4));
  config.max_length6 =
      static_cast<std::uint8_t>(flags.get_u64("max-len6", config.max_length6));
  config.deaggregation = flags.get_double("deagg", config.deaggregation);
  const std::uint64_t seed = flags.get_u64("seed", 1);
  const std::string format = flags.get("format", "text");
  TC_CHECK(format == "text" || format == "mrt",
           "--format must be text or mrt");
  Rng rng(seed);
  const std::vector<rib::FeedRecord> records = rib::generate_feed(config, rng);

  // Streamed straight to the sink — at 1M routes the text form is
  // tens of MB and never needs to live in one string.
  const std::string out_path = flags.get("out", "-");
  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path, std::ios::binary);
    TC_CHECK(static_cast<bool>(file), "cannot open " + out_path);
  }
  std::ostream& os = out_path == "-" ? std::cout : file;
  std::uint64_t updates = 0;
  for (const rib::FeedRecord& record : records) {
    updates += record.op == rib::FeedOp::kDump ? 0u : 1u;
  }
  if (format == "mrt") {
    rib::MrtWriter writer(os);
    for (const rib::FeedRecord& record : records) writer.write(record);
  } else {
    // The header records the generating command, so a checked-in
    // fixture documents how to regenerate itself.
    os << "# treecache gen-feed --routes " << config.routes << " --updates "
       << config.updates << " --family " << config.family << " --seed "
       << seed << "\n";
    for (const rib::FeedRecord& record : records) {
      os << rib::format_feed_record(record) << "\n";
    }
  }
  os.flush();
  TC_CHECK(os.good(), "writing the feed to " + out_path + " failed");
  std::cerr << "feed: " << records.size() << " records ("
            << records.size() - updates << " dump, " << updates
            << " updates, " << format << ")\n";
  return 0;
}

/// One family's block of the treecache.ingest/1 document. The tree shape
/// is reported over the replay FIB — the rule tree the fib-real workload
/// runs on, rebuilt from every prefix the feed touched — so the numbers
/// describe exactly what a `--workload fib-real` run would execute.
template <typename PrefixT>
util::Json ingest_family_json(const rib::BasicIngest<PrefixT>& family) {
  const rib::IngestStats& stats = family.stats;
  util::Json doc =
      util::Json::object()
          .set("dump_routes", stats.dump_routes)
          .set("announces", stats.announces)
          .set("withdraws", stats.withdraws)
          .set("withdraw_misses", stats.withdraw_misses)
          .set("replaced_routes", stats.replaced_routes)
          .set("routes", std::uint64_t{family.rib.size()})
          .set("churn_rate", stats.dump_routes > 0
                                 ? static_cast<double>(stats.updates()) /
                                       static_cast<double>(stats.dump_routes)
                                 : 0.0);
  if (!family.empty()) {
    const auto replay = rib::make_churn_replay(family);
    const Tree& tree = replay.fib.tree;
    util::Json histogram = util::Json::array();
    for (const std::uint64_t count : rib::depth_histogram(tree)) {
      histogram.push(count);
    }
    doc.set("tree", util::Json::object()
                        .set("nodes", std::uint64_t{tree.size()})
                        .set("height", std::uint64_t{tree.height()})
                        .set("depth_histogram", std::move(histogram)));
  }
  return doc;
}

template <typename PrefixT>
void print_ingest_family(const char* name,
                         const rib::BasicIngest<PrefixT>& family) {
  if (family.empty()) return;
  const rib::IngestStats& stats = family.stats;
  std::cout << name << ":\n"
            << "  dump routes:     " << stats.dump_routes << "\n"
            << "  announces:       " << stats.announces << "\n"
            << "  withdraws:       " << stats.withdraws << " ("
            << stats.withdraw_misses << " missed)\n"
            << "  replaced routes: " << stats.replaced_routes << "\n"
            << "  live routes:     " << family.rib.size() << "\n";
  const auto replay = rib::make_churn_replay(family);
  std::cout << "  replay tree:     " << replay.fib.tree.size()
            << " nodes, height " << replay.fib.tree.height() << ", "
            << replay.churn_nodes.size() << " churn events\n";
}

int cmd_ingest(const Flags& flags) {
  // --follow/--poll-ms/--idle-ms tune the reader, not the scenario:
  // drop them so the params match a plain batch ingest.
  static constexpr const char* kIngestFlagKeys[] = {"follow", "poll-ms",
                                                    "idle-ms"};
  const std::vector<std::string> paths =
      rib::feed_paths_from_params(params_from(flags, kIngestFlagKeys));
  const auto start = std::chrono::steady_clock::now();
  const rib::IngestResult result = [&] {
    if (!flags.has("follow")) return rib::ingest_feed(paths);
    const rib::FollowOptions follow{
        .poll = std::chrono::milliseconds(flags.get_u64("poll-ms", 20)),
        .idle = std::chrono::milliseconds(flags.get_u64("idle-ms", 1000))};
    return rib::ingest_feed(paths, follow);
  }();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  TC_CHECK(result.records > 0, "the feed carries no records");

  if (flags.has("json")) {
    util::Json feed = util::Json::array();
    for (const std::string& path : paths) feed.push(path);
    util::save_json(
        flags.get("json", "-"),
        util::Json::object()
            .set("schema", "treecache.ingest/1")
            .set("feed", std::move(feed))
            .set("records", result.records)
            .set("bytes", result.bytes)
            .set("elapsed_seconds", elapsed)
            .set("routes_per_second",
                 elapsed > 0.0 ? static_cast<double>(result.records) / elapsed
                               : 0.0)
            .set("families", util::Json::object()
                                 .set("ipv4", ingest_family_json(result.v4))
                                 .set("ipv6", ingest_family_json(result.v6))));
  }
  if (stdout_is_human(flags)) {
    std::cout << "feed: " << result.records << " records ("
              << result.bytes << " bytes) from " << paths.size() << " file"
              << (paths.size() == 1 ? "" : "s") << " in " << elapsed
              << " s\n";
    print_ingest_family("IPv4", result.v4);
    print_ingest_family("IPv6", result.v6);
  }
  return 0;
}

int cmd_gen_trace(const Flags& flags) {
  const Tree tree = load_tree(flags);
  const auto source = sim::make_source(flags.get("kind", "zipf"), tree,
                                       params_from(flags),
                                       flags.get_u64("seed", 1));
  // Stream straight to the output; the trace never lives in memory.
  const std::string out_path = flags.get("out", "-");
  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path);
    TC_CHECK(static_cast<bool>(file), "cannot open " + out_path);
  }
  std::ostream& os = out_path == "-" ? std::cout : file;
  std::array<Request, 4096> buffer;
  std::uint64_t total = 0;
  std::uint64_t positives = 0;
  for (;;) {
    const std::size_t n = source->fill(buffer);
    if (n == 0) break;
    save_trace(os, std::span<const Request>(buffer.data(), n));
    total += n;
    for (std::size_t i = 0; i < n; ++i) {
      positives += buffer[i].sign == Sign::kPositive ? 1u : 0u;
    }
  }
  std::cerr << "trace: " << total << " requests (" << positives
            << " positive, " << total - positives << " negative)\n";
  return 0;
}

int cmd_run(const Flags& flags) {
  const Tree tree = load_tree(flags);
  const sim::Params params = params_from(flags);
  // --algo resolves through the registry (--alg kept as an alias).
  const std::string name = flags.get("algo", flags.get("alg", "tc"));
  const auto alg = sim::make_algorithm(name, tree, params);

  // The requests stream from a file (line by line, never slurped) or from
  // the workload registry (--workload <name>, parameterized by the same
  // flags) — either way the run's memory is O(tree), not O(length).
  TC_CHECK(!(flags.has("trace") && flags.has("workload")),
           "--trace and --workload are mutually exclusive");
  const auto source = [&]() -> std::unique_ptr<RequestSource> {
    if (flags.has("workload")) {
      return sim::make_source(flags.get("workload", ""), tree, params,
                              flags.get_u64("seed", 1));
    }
    const std::string path = flags.get("trace", "");
    TC_CHECK(!path.empty(), "--trace is required");
    return std::make_unique<FileTraceSource>(path, tree.size());
  }();

  const auto result =
      sim::run_source(*alg, *source, {}, flags.has("validate"));
  if (flags.has("json")) {
    const sim::Scenario scenario{.algorithm = name,
                                 .workload = flags.get("workload", ""),
                                 .params = params,
                                 .seed = flags.get_u64("seed", 1)};
    util::Json scenario_doc = sim::to_json(scenario);
    if (!flags.has("workload")) {
      scenario_doc.set("trace", flags.get("trace", ""));
    }
    util::save_json(flags.get("json", "-"),
                    util::Json::object()
                        .set("schema", "treecache.run/2")
                        .set("scenario", std::move(scenario_doc))
                        .set("result", sim::to_json(result)));
  }
  if (stdout_is_human(flags)) {
    std::cout << "algorithm:       " << alg->name() << "\n"
              << "rounds:          " << result.rounds << "\n"
              << "service cost:    " << result.cost.service << "\n"
              << "reorg cost:      " << result.cost.reorg << "\n"
              << "total cost:      " << result.cost.total() << "\n"
              << "paid positives:  " << result.paid_positive << "\n"
              << "paid negatives:  " << result.paid_negative << "\n"
              << "fetched nodes:   " << result.fetched_nodes << "\n"
              << "evicted nodes:   " << result.evicted_nodes << "\n"
              << "phase restarts:  " << result.phase_restarts << "\n"
              << "max cache size:  " << result.max_cache_size << "\n"
              << "final cache:     " << result.final_cache_size << "\n";
  }
  return 0;
}

/// `throughput --algos a,b,...`: the comparison mode. Every named
/// algorithm runs through an identically configured engine over the same
/// stream; the speedup column divides by the FIRST name, so
/// `--algos tc-legacy,tc` reads directly as the memory-layout win (same
/// decisions bit for bit, only the state layout differs). The single-algo
/// path (`--algo`, schema treecache.throughput/1) is untouched; this mode
/// writes treecache.throughput-compare/1 {schema, scenario, rows: [...]}.
template <typename MakeSource>
int cmd_throughput_compare(const Flags& flags, const Tree& tree,
                           const sim::Params& params,
                           const engine::EngineConfig& config,
                           const std::string& workload,
                           const MakeSource& make_request_source) {
  const auto algos = split_csv(flags.get("algos", ""));
  TC_CHECK(!algos.empty(), "--algos needs at least one algorithm name");

  struct Row {
    std::string algorithm;
    engine::EngineResult result;
  };
  std::vector<Row> rows;
  rows.reserve(algos.size());
  for (const std::string& name : algos) {
    engine::ShardedEngine eng(tree, name, params, config);
    const auto source = make_request_source();
    rows.push_back({name, eng.run(*source)});
  }
  const double base_rps = rows.front().result.total.requests_per_second();
  const auto speedup = [&](const Row& row) {
    const double rps = row.result.total.requests_per_second();
    return base_rps > 0.0 ? rps / base_rps : 0.0;
  };

  if (flags.has("json")) {
    const sim::Scenario scenario{.algorithm = flags.get("algos", ""),
                                 .workload = workload,
                                 .params = params,
                                 .seed = flags.get_u64("seed", 1)};
    util::Json scenario_doc = sim::to_json(scenario);
    if (workload.empty()) scenario_doc.set("trace", flags.get("trace", ""));
    util::Json json_rows = util::Json::array();
    for (const Row& row : rows) {
      json_rows.push(
          util::Json::object()
              .set("algorithm", row.algorithm)
              .set("shards", std::uint64_t{row.result.shards})
              .set("threads", std::uint64_t{row.result.threads})
              .set("requests_per_second",
                   row.result.total.requests_per_second())
              .set("speedup_vs_first", speedup(row))
              .set("result", sim::to_json(row.result.total)));
    }
    util::save_json(flags.get("json", "-"),
                    util::Json::object()
                        .set("schema", "treecache.throughput-compare/1")
                        .set("scenario", std::move(scenario_doc))
                        .set("rows", std::move(json_rows)));
  }
  if (stdout_is_human(flags)) {
    ConsoleTable table({"algorithm", "shards", "threads", "rounds",
                        "total cost", "wall s", "Mreq/s",
                        "vs " + algos.front()});
    for (const Row& row : rows) {
      const sim::RunResult& r = row.result.total;
      table.add_row({row.algorithm,
                     ConsoleTable::fmt(std::uint64_t{row.result.shards}),
                     ConsoleTable::fmt(std::uint64_t{row.result.threads}),
                     ConsoleTable::fmt(r.rounds),
                     ConsoleTable::fmt(r.cost.total()),
                     ConsoleTable::fmt(r.wall_seconds, 3),
                     ConsoleTable::fmt(r.requests_per_second() / 1e6, 2),
                     ConsoleTable::fmt(speedup(row), 2) + "x"});
    }
    table.print();
  }
  return 0;
}

int cmd_throughput(const Flags& flags) {
  const Tree tree = load_tree(flags);
  // The engine knobs parameterize the engine, not the scenario: drop them
  // so two runs that differ only in engine geometry echo identical
  // scenario params (their costs are identical too — that is the contract).
  const sim::Params params = params_from(flags, kEngineFlagKeys);
  const engine::EngineConfig config = engine_config_from(flags);

  TC_CHECK(!(flags.has("trace") && flags.has("workload")),
           "--trace and --workload are mutually exclusive");
  TC_CHECK(!(flags.has("algo") && flags.has("algos")),
           "--algo and --algos are mutually exclusive");
  const std::string workload =
      flags.has("trace") ? "" : flags.get("workload", "zipf");
  // Sources are consumed by a run; comparison mode rebuilds one per
  // algorithm so every contender replays the identical stream.
  const auto make_request_source = [&]() -> std::unique_ptr<RequestSource> {
    if (!workload.empty()) {
      return sim::make_source(workload, tree, params,
                              flags.get_u64("seed", 1));
    }
    return std::make_unique<FileTraceSource>(flags.get("trace", ""),
                                             tree.size());
  };

  if (flags.has("algos")) return cmd_throughput_compare(flags, tree, params,
                                                        config, workload,
                                                        make_request_source);

  const std::string name = flags.get("algo", flags.get("alg", "tc"));
  const auto source = make_request_source();
  engine::ShardedEngine eng(tree, name, params, config);
  const engine::EngineResult result = eng.run(*source);

  if (flags.has("json")) {
    const sim::Scenario scenario{.algorithm = name,
                                 .workload = workload,
                                 .params = params,
                                 .seed = flags.get_u64("seed", 1)};
    const std::string trace_path =
        workload.empty() ? flags.get("trace", "") : "";
    // eng.config(), not the raw flags: the engine normalizes the batch for
    // single-shard runs, and the document must echo what actually ran.
    util::save_json(flags.get("json", "-"),
                    sim::throughput_json(scenario, eng.config(), eng.plan(),
                                         result, trace_path));
  }
  if (stdout_is_human(flags)) {
    ConsoleTable table({"shard", "nodes", "roots", "rounds", "service",
                        "reorg", "total", "max cache"});
    for (std::size_t s = 0; s < result.per_shard.size(); ++s) {
      const sim::RunResult& r = result.per_shard[s];
      const engine::Shard& shard = eng.plan().shard(s);
      table.add_row({std::to_string(s),
                     ConsoleTable::fmt(std::uint64_t{shard.nodes()}),
                     ConsoleTable::fmt(std::uint64_t{shard.roots.size()}),
                     ConsoleTable::fmt(r.rounds),
                     ConsoleTable::fmt(r.cost.service),
                     ConsoleTable::fmt(r.cost.reorg),
                     ConsoleTable::fmt(r.cost.total()),
                     ConsoleTable::fmt(std::uint64_t{r.max_cache_size})});
    }
    table.print();
    std::cout << "shards:          " << result.shards << " (requested "
              << config.shards << ")\n"
              << "threads:         " << result.threads << "\n"
              << "kernels:         " << kernels::active().name << "\n"
              << "pinned:          " << (result.pinned ? "yes" : "no");
    if (result.pinned) {
      std::cout << " (cpus:";
      for (const int cpu : result.worker_cpus) std::cout << ' ' << cpu;
      std::cout << ')';
    }
    std::cout << "\n"
              << "rounds:          " << result.total.rounds << "\n"
              << "total cost:      " << result.total.cost.total() << "\n"
              << "wall seconds:    " << result.total.wall_seconds << "\n"
              << "requests/sec:    "
              << static_cast<std::uint64_t>(
                     result.total.requests_per_second())
              << "\n";
  }
  return 0;
}

int cmd_opt(const Flags& flags) {
  const Tree tree = load_tree(flags);
  const Trace trace = load_trace_file(flags, tree.size());
  const std::string evaluator = flags.get("evaluator", "opt");
  sim::Params params = params_from(flags);
  if (!flags.has("capacity")) params.set("capacity", "4");
  const std::uint64_t cost =
      sim::evaluate_offline(evaluator, tree, trace, params);
  std::cout << "offline bound (" << evaluator << "): " << cost << "\n";
  return 0;
}

int cmd_sweep(const Flags& flags) {
  const Tree tree = load_tree(flags);
  const auto algorithms = split_csv(flags.get(
      "algos", "tc,naive,local,lru,lruinv,none"));
  const auto workloads = split_csv(flags.get("workloads", "zipf,uniform"));
  sim::Params base = params_from(flags);
  if (!flags.has("length")) base.set("length", "20000");
  const auto cells = sim::run_grid(tree, algorithms, workloads, base,
                                   flags.get_u64("seed", 1));
  ConsoleTable table({"algorithm", "workload", "service", "reorg", "total",
                      "restarts", "max cache"});
  for (const auto& cell : cells) {
    table.add_row({cell.scenario.algorithm, cell.scenario.workload,
                   ConsoleTable::fmt(cell.run.cost.service),
                   ConsoleTable::fmt(cell.run.cost.reorg),
                   ConsoleTable::fmt(cell.run.cost.total()),
                   ConsoleTable::fmt(cell.run.phase_restarts),
                   ConsoleTable::fmt(std::uint64_t{cell.run.max_cache_size})});
  }
  if (stdout_is_human(flags)) table.print();
  if (flags.has("json")) {
    util::save_json(flags.get("json", "-"), sim::grid_json(cells));
  }
  return 0;
}

int cmd_fib(const Flags& flags) {
  // The same engine knob set as `throughput`, parsed by the same helper:
  // the knobs parameterize the engine, not the scenario, so two runs that
  // differ only in geometry echo identical scenario params (and the
  // per-shard results are identical for every --threads value).
  const sim::Params params = params_from(flags, kEngineFlagKeys);
  // --rib-feed swaps the synthetic RIB for the IPv4 table ingested from a
  // real feed; everything downstream (sweep axes, engine geometry) is
  // identical. The closed-loop router models an IPv4 line card, so the
  // IPv6 replay table is not accepted here — use the open-loop fib-real
  // workload (`throughput --workload fib-real --family 6`) for IPv6.
  const fib::RuleTree rules = [&]() -> fib::RuleTree {
    if (params.has("rib-feed")) {
      const rib::RealFibReplay& replay = rib::shared_real_fib(params);
      TC_CHECK(replay.family == 4,
               "treecache fib replays IPv4 tables only (drop --family 6)");
      return replay.v4->fib;
    }
    return fib::rule_tree_from_params(params);
  }();
  const engine::EngineConfig engine = engine_config_from(flags);
  std::cerr << "rule tree: " << rules.tree.size() << " nodes, height "
            << rules.tree.height() << "\n";

  sim::FibSweepAxes axes;
  axes.algorithms =
      split_csv(flags.get("algos", flags.get("algo", "tc,lru,local")));
  axes.skews =
      split_csv_doubles(flags.get("skews", flags.get("skew", "1.0")));
  axes.capacities = split_csv_u64<std::size_t>(
      flags.get("capacities", flags.get("capacity", "64")));
  axes.alphas = split_csv_u64<std::uint64_t>(
      flags.get("alphas", flags.get("alpha", "16")));

  const auto cells = sim::run_fib_sweep(rules, axes, params,
                                        flags.get_u64("seed", 1), engine);
  if (!cells.empty() && cells.front().shards > 1) {
    std::cerr << "engine: " << cells.front().shards << " shards ("
              << engine.shards << " requested), " << cells.front().threads
              << " worker threads per cell\n";
  }
  ConsoleTable table({"algorithm", "skew", "capacity", "alpha", "hit rate",
                      "fwd err", "misses", "updates", "service", "reorg",
                      "total"});
  for (const auto& cell : cells) {
    table.add_row(
        {cell.scenario.algorithm, cell.scenario.params.get("skew", "?"),
         cell.scenario.params.get("capacity", "?"),
         cell.scenario.params.get("alpha", "?"),
         ConsoleTable::fmt(cell.router.hit_rate(), 3),
         ConsoleTable::fmt(cell.router.forwarding_errors),
         ConsoleTable::fmt(cell.router.misses),
         ConsoleTable::fmt(cell.router.updates),
         ConsoleTable::fmt(cell.router.algorithm_cost.service),
         ConsoleTable::fmt(cell.router.algorithm_cost.reorg),
         ConsoleTable::fmt(cell.router.algorithm_cost.total())});
  }
  if (stdout_is_human(flags)) table.print();
  if (flags.has("json")) {
    util::save_json(flags.get("json", "-"), sim::fib_sweep_json(cells));
  }
  return 0;
}

int cmd_fields(const Flags& flags) {
  const Tree tree = load_tree(flags);
  const Trace trace = load_trace_file(flags, tree.size());
  const std::uint64_t alpha = flags.get_u64("alpha", 16);
  const std::size_t capacity = flags.get_u64("capacity", 64);

  TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
  FieldTracker tracker(tree, alpha);
  for (const Request& r : trace) tracker.observe(r, tc.step(r));
  tracker.finalize();
  tracker.verify_period_accounting();
  tracker.verify_lemma_5_3(alpha);

  std::size_t positive = 0;
  for (const Field& f : tracker.fields()) positive += f.positive() ? 1u : 0u;
  std::cout << "TC cost:   " << tc.cost().total() << "\n"
            << "fields:    " << tracker.fields().size() << " (" << positive
            << " positive)\n"
            << "phases:    " << tracker.phases().size() << "\n"
            << "certified OPT lower bound (k_opt = capacity): "
            << analysis::certified_opt_lower_bound(
                   tracker, tree.height(),
                   {.alpha = alpha, .k_opt = capacity})
            << "\n";
  if (flags.has("render")) {
    std::cout << tracker.render_event_space(flags.get_u64("render", 160));
  }
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "list") return cmd_list();
  const Flags flags(argc, argv, 2);
  if (command == "gen-tree") return cmd_gen_tree(flags);
  if (command == "gen-rib") return cmd_gen_rib(flags);
  if (command == "gen-feed") return cmd_gen_feed(flags);
  if (command == "gen-trace") return cmd_gen_trace(flags);
  if (command == "ingest") return cmd_ingest(flags);
  if (command == "run") return cmd_run(flags);
  if (command == "throughput") return cmd_throughput(flags);
  if (command == "sweep") return cmd_sweep(flags);
  if (command == "fib") return cmd_fib(flags);
  if (command == "opt") return cmd_opt(flags);
  if (command == "fields") return cmd_fields(flags);
  return usage();
}

}  // namespace
}  // namespace treecache::tools

int main(int argc, char** argv) {
  try {
    return treecache::tools::dispatch(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
