// E3 — Theorem 6.1 (efficiency): per-request cost of TC is
// O(h(T) + max{h(T), deg(T)}·|X_t|) with O(|T|) memory — in particular
// INDEPENDENT of |T| at fixed height/degree.
//
// Google-benchmark microbenchmarks sweep |T| (fixed height), the height
// (spiders) and the degree (stars). The custom counter "work/req" reports
// TC's elementary-operation counter per request alongside wall time.
#include <benchmark/benchmark.h>

#include "core/tree_cache.hpp"
#include "sim/bench_env.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

using namespace treecache;

namespace {

/// Trace length: 64Ki requests at paper scale, shrunk by
/// $TREECACHE_BENCH_SCALE for the CI smoke tier.
std::size_t trace_length() { return sim::bench_scaled(1 << 16); }

/// Drives TC over a pre-generated trace, reporting ns and work per request.
void run_tc(benchmark::State& state, const Tree& tree, const Trace& trace,
            std::uint64_t alpha, std::size_t capacity) {
  TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
  std::size_t cursor = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    tc.step(trace[cursor]);
    if (++cursor == trace.size()) cursor = 0;
    ++requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  state.counters["work/req"] = benchmark::Counter(
      static_cast<double>(tc.work()) / static_cast<double>(requests));
  state.counters["h(T)"] = static_cast<double>(tree.height());
  state.counters["deg(T)"] = static_cast<double>(tree.max_degree());
}

/// |T| sweep at fixed height 8: per-request cost must not grow with |T|.
void BM_TreeSizeFixedHeight(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  const Tree tree = trees::random_bounded_height(n, 8, rng);
  const Trace trace = workload::zipf_trace(tree, trace_length(), 0.9, 0.3, rng);
  run_tc(state, tree, trace, 8, n / 8);
}
BENCHMARK(BM_TreeSizeFixedHeight)->RangeMultiplier(8)->Range(1 << 10, 1 << 19);

/// Height sweep at fixed |T|: spiders with longer and longer legs.
void BM_HeightSweep(benchmark::State& state) {
  const auto leg = static_cast<std::size_t>(state.range(0));
  const std::size_t legs = 4096 / leg;
  Rng rng(7);
  const Tree tree = trees::spider(legs, leg);
  const Trace trace = workload::zipf_trace(tree, trace_length(), 0.9, 0.3, rng);
  run_tc(state, tree, trace, 8, tree.size() / 4);
}
BENCHMARK(BM_HeightSweep)->RangeMultiplier(4)->Range(4, 1024);

/// Degree sweep at fixed |T|: stars and shallow k-ary trees.
void BM_DegreeSweep(benchmark::State& state) {
  const auto arity = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  // Three levels with the given arity: degree = arity, height = 3.
  const Tree tree = trees::complete_kary(3, arity);
  const Trace trace = workload::zipf_trace(tree, trace_length(), 0.9, 0.3, rng);
  run_tc(state, tree, trace, 8, tree.size() / 4);
}
BENCHMARK(BM_DegreeSweep)->RangeMultiplier(4)->Range(4, 256);

/// Memory sanity: construction is O(|T|) — bench the setup cost.
void BM_Construction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Tree tree = trees::random_bounded_height(n, 12, rng);
  for (auto _ : state) {
    TreeCache tc(tree, {.alpha = 4, .capacity = 64});
    benchmark::DoNotOptimize(tc.cache().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Construction)->RangeMultiplier(16)->Range(1 << 12, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
