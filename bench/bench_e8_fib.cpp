// E8 — the §2 application (Figure 1): FIB caching on a synthetic RIB with
// Zipf traffic and BGP-style churn. Total cost and hit rates versus cache
// size for TC, the dependency-aware LRU baselines, the LocalTC ablation,
// the no-cache floor, and the offline static optimum (tree sparsity).
// Online algorithms resolve through the registry; honors the bench_env
// scaling knobs and emits BENCH_E8.json when TREECACHE_BENCH_JSON_DIR is
// set.
#include <string>
#include <vector>

#include "baselines/static_opt.hpp"
#include "fib/rib_gen.hpp"
#include "fib/traffic.hpp"
#include "sim/bench_env.hpp"
#include "sim/registry.hpp"
#include "sim/reporting.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace treecache;
using namespace treecache::fib;

int main() {
  const char* kTitle =
      "Section 2 application — FIB caching (controller + switch)";
  sim::print_experiment_banner(
      "E8", kTitle,
      "a small switch cache plus tree caching serves most traffic; TC "
      "balances miss cost against TCAM update cost");

  Rng rng(20240611);
  const std::size_t rules = sim::bench_scaled(20000);
  const auto rib = generate_rib({.rules = rules, .deaggregation = 0.5}, rng);
  const RuleTree rt = build_rule_tree(rib);

  const std::uint64_t alpha = 16;
  const ChunkedTrace workload = make_fib_workload(
      rt,
      {.events = sim::bench_scaled(150000), .zipf_skew = 1.05,
       .update_probability = 0.004, .alpha = alpha},
      rng);
  const auto trace_stats = stats(workload.trace, rt.tree.size());
  std::printf("substrate: %zu rules, tree height %u, max degree %u\n", rules,
              rt.tree.height(), rt.tree.max_degree());
  std::printf("workload: %zu rounds (%zu packets, %zu update chunks), "
              "alpha = %llu\n",
              workload.trace.size(), trace_stats.positives,
              workload.chunks.size(),
              static_cast<unsigned long long>(alpha));

  const double no_cache_total = static_cast<double>(trace_stats.positives);

  ConsoleTable table({"cache", "algorithm", "hit rate", "upd paid", "service",
                      "reorg", "total", "vs NoCache"});
  util::Json json_rows = util::Json::array();
  for (const std::size_t cache_permille : {5u, 10u, 20u, 50u}) {
    const std::size_t capacity =
        std::max<std::size_t>(1, rules * cache_permille / 1000);
    const std::string cache_label =
        ConsoleTable::fmt(static_cast<double>(cache_permille) / 10.0, 1) +
        "% (" + std::to_string(capacity) + ")";
    sim::Params params;
    params.set("alpha", std::to_string(alpha));
    params.set("capacity", std::to_string(capacity));

    // The online contenders resolve by registry name, so a new policy only
    // has to register itself to join the experiment.
    for (const char* name : {"tc", "lru", "lruinv", "local", "none"}) {
      const auto alg = sim::make_algorithm(name, rt.tree, params);
      const auto result = sim::run_trace(*alg, workload.trace);
      const double hit_rate =
          1.0 - static_cast<double>(result.paid_positive) /
                    std::max(1.0, static_cast<double>(trace_stats.positives));
      const double vs_no_cache =
          static_cast<double>(result.cost.total()) / no_cache_total;
      table.add_row({cache_label, std::string(alg->name()),
                     ConsoleTable::fmt(hit_rate, 3),
                     ConsoleTable::fmt(result.paid_negative / alpha),
                     ConsoleTable::fmt(result.cost.service),
                     ConsoleTable::fmt(result.cost.reorg),
                     ConsoleTable::fmt(result.cost.total()),
                     ConsoleTable::fmt(vs_no_cache, 3)});
      json_rows.push(util::Json::object()
                         .set("cache_permille", std::uint64_t{cache_permille})
                         .set("capacity", std::uint64_t{capacity})
                         .set("algorithm", name)
                         .set("hit_rate", hit_rate)
                         .set("updates_paid", result.paid_negative / alpha)
                         .set("service_cost", result.cost.service)
                         .set("reorg_cost", result.cost.reorg)
                         .set("total_cost", result.cost.total())
                         .set("vs_no_cache", vs_no_cache));
    }

    // Offline static optimum: the best fixed subforest for this trace.
    const auto weights = positive_weights(rt.tree, workload.trace);
    const auto chosen = best_static_subforest(rt.tree, weights, capacity);
    const std::uint64_t static_cost =
        static_cache_cost(rt.tree, workload.trace, alpha, chosen);
    const double static_hit =
        static_cast<double>(chosen.covered_weight) /
        std::max(1.0, static_cast<double>(trace_stats.positives));
    const double static_vs_no_cache =
        static_cast<double>(static_cost) / no_cache_total;
    table.add_row({cache_label, "StaticOPT", ConsoleTable::fmt(static_hit, 3),
                   "-", "-", "-", ConsoleTable::fmt(static_cost),
                   ConsoleTable::fmt(static_vs_no_cache, 3)});
    json_rows.push(util::Json::object()
                       .set("cache_permille", std::uint64_t{cache_permille})
                       .set("capacity", std::uint64_t{capacity})
                       .set("algorithm", "StaticOPT")
                       .set("hit_rate", static_hit)
                       .set("total_cost", static_cost)
                       .set("vs_no_cache", static_vs_no_cache));
  }
  table.print();
  const std::string json_path =
      sim::write_bench_json("E8", kTitle, std::move(json_rows));
  if (!json_path.empty()) sim::print_note("json", json_path);
  sim::print_note(
      "reading",
      "a sub-5% cache absorbs roughly half the Zipf traffic; TC beats "
      "fetch-on-miss LRU by >20x once alpha (TCAM update cost) matters and "
      "lands within ~2x of the clairvoyant static optimum; LocalTC matches "
      "TC here because leaf-dominated Zipf traffic saturates caps node by "
      "node — E12 isolates where the aggregate scan is essential");
  return 0;
}
