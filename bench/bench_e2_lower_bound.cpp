// E2 — Theorem C.1 (lower bound Ω(R)): the lifted-paging adversary forces
// every deterministic algorithm, TC included, into a ratio that follows
// R = k_ONL/(k_ONL − k_OPT + 1).
//
// For each k_ONL, the adaptive adversary drives TC on a star of k_ONL + 1
// leaves; the exact offline DP then evaluates OPT for every k_OPT.
#include <vector>

#include "baselines/opt_offline.hpp"
#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E2", "Theorem C.1 — adversarial lower-bound instance",
      "any deterministic algorithm pays Omega(k_ONL/(k_ONL-k_OPT+1)) on the "
      "lifted paging adversary");

  const std::uint64_t alpha = 4;
  const std::size_t chunks = 120;

  ConsoleTable table({"k_ONL", "k_OPT", "TC cost", "OPT cost", "ratio",
                      "R", "ratio/R"});
  for (const std::size_t k_onl : {4u, 6u, 8u, 10u}) {
    const Tree star = trees::star(k_onl + 1);
    TreeCache tc(star, {.alpha = alpha, .capacity = k_onl});
    const Trace trace =
        workload::run_paging_adversary(tc, star, alpha, chunks);
    const std::uint64_t online = tc.cost().total();
    for (std::size_t k_opt = 1; k_opt <= k_onl; k_opt += (k_onl > 6 ? 3 : 1)) {
      const std::uint64_t opt = opt_offline_cost(
          star, trace, {.alpha = alpha, .capacity = k_opt});
      const double ratio =
          static_cast<double>(online) / static_cast<double>(opt);
      const double r = static_cast<double>(k_onl) /
                       static_cast<double>(k_onl - k_opt + 1);
      table.add_row({ConsoleTable::fmt(std::uint64_t{k_onl}),
                     ConsoleTable::fmt(std::uint64_t{k_opt}),
                     ConsoleTable::fmt(online), ConsoleTable::fmt(opt),
                     ConsoleTable::fmt(ratio, 2), ConsoleTable::fmt(r, 2),
                     ConsoleTable::fmt(ratio / r, 2)});
    }
  }
  table.print();
  sim::print_note(
      "reading",
      "ratio/R is roughly constant across k_ONL and k_OPT: the measured "
      "ratio is Theta(R), matching Theorem C.1 (lower) and, since "
      "h(star) = 2, Theorem 5.15 (upper)");
  return 0;
}
