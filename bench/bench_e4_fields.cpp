// E4 — Figure 2 + Observation 5.2: the event-space partition into fields.
//
// Runs TC under random and skewed traffic, rebuilds the field partition and
// reports its statistics; every field is checked against Observation 5.2
// (req(F) = size(F)·α) by the tracker itself. Ends with a small rendered
// event space in the style of Figure 2.
#include <algorithm>
#include <string>

#include "core/field_tracker.hpp"
#include "core/tree_cache.hpp"
#include "sim/metrics.hpp"
#include "sim/reporting.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E4", "Figure 2 / Observation 5.2 — field partition of the event space",
      "every field F created by a changeset application satisfies "
      "req(F) = size(F)*alpha");

  ConsoleTable table({"workload", "alpha", "k", "fields", "pos/neg",
                      "mean size", "max size", "req==size*a", "req(F_inf)"});
  Rng rng(2717);
  for (const std::string workload : {"uniform", "zipf", "hotspot"}) {
    for (const std::uint64_t alpha : {2ull, 8ull}) {
      Rng inst(rng());
      const Tree tree = trees::random_recursive(300, inst);
      const std::size_t k = 40;
      const Trace trace =
          workload == "uniform"
              ? workload::uniform_trace(tree, 60000, 0.4, inst)
          : workload == "zipf"
              ? workload::zipf_trace(tree, 60000, 1.1, 0.3, inst)
              : workload::hotspot_trace(tree, 60000, 0.01, 0.3, inst);

      TreeCache tc(tree, {.alpha = alpha, .capacity = k});
      FieldTracker tracker(tree, alpha);
      for (const Request& r : trace) tracker.observe(r, tc.step(r));
      tracker.finalize();

      std::size_t positive_fields = 0;
      std::vector<double> sizes;
      bool obs52 = true;
      for (const Field& f : tracker.fields()) {
        positive_fields += f.positive() ? 1u : 0u;
        sizes.push_back(static_cast<double>(f.size()));
        obs52 &= (f.requests == f.size() * alpha);
      }
      std::uint64_t f_inf = 0;
      for (const auto& p : tracker.phases()) f_inf += p.open_field_requests;
      const auto ss = sim::summarize(sizes);
      table.add_row(
          {workload, ConsoleTable::fmt(alpha),
           ConsoleTable::fmt(std::uint64_t{k}),
           ConsoleTable::fmt(std::uint64_t{tracker.fields().size()}),
           std::to_string(positive_fields) + "/" +
               std::to_string(tracker.fields().size() - positive_fields),
           ConsoleTable::fmt(ss.mean, 2), ConsoleTable::fmt(ss.max, 0),
           obs52 ? "yes" : "NO", ConsoleTable::fmt(f_inf)});
    }
  }
  table.print();
  sim::print_note("reading",
                  "Observation 5.2 holds for every field; positive fields "
                  "dominate under positive-heavy traffic and grow with alpha");

  // A Figure-2 style picture on a line tree.
  const Tree line = trees::path(6);
  Rng demo(5);
  const Trace demo_trace = workload::uniform_trace(line, 110, 0.45, demo);
  TreeCache tc(line, {.alpha = 3, .capacity = 6});
  FieldTracker tracker(line, 3);
  for (const Request& r : demo_trace) tracker.observe(r, tc.step(r));
  tracker.finalize();
  std::printf("\nFigure 2 rendering (line of 6, alpha=3; letters = fields, "
              "'+'/'-' = paid requests, '.' = F_inf):\n%s",
              tracker.render_event_space(110).c_str());
  return 0;
}
