// E1 — Theorem 5.15 (upper bound O(h·R)): measured competitive ratio of TC
// against the exact offline optimum on random small instances.
//
// Table 1: ratio by tree shape (k_OPT = k_ONL, so R = k).
// Table 2: ratio as a function of the height h(T) on spiders with a fixed
//          node budget — the O(h) factor in the bound.
#include <string>
#include <vector>

#include "sim/bench_env.hpp"
#include "sim/metrics.hpp"
#include "sim/registry.hpp"
#include "sim/reporting.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "tree/tree_builder.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace treecache;

namespace {

struct Measurement {
  double ratio = 0.0;
  double bound_fraction = 0.0;  // ratio / (h * R)
};

/// TC and the exact-OPT evaluator both resolve through the registry, so the
/// experiment keeps working if either implementation is swapped out.
Measurement measure(const Tree& tree, std::uint64_t alpha, std::size_t k,
                    Rng& rng) {
  sim::Params params;
  params.set("alpha", std::to_string(alpha));
  params.set("capacity", std::to_string(k));
  const Trace trace = workload::uniform_trace(tree, 400, 0.4, rng);
  const auto tc = sim::make_algorithm("tc", tree, params);
  const std::uint64_t online = sim::run_trace(*tc, trace).cost.total();
  const std::uint64_t opt =
      sim::evaluate_offline("opt", tree, trace, params);
  Measurement m;
  m.ratio = opt == 0 ? 1.0
                     : static_cast<double>(online) / static_cast<double>(opt);
  const double hr = static_cast<double>(tree.height()) *
                    static_cast<double>(k);  // R = k when k_OPT = k_ONL
  m.bound_fraction = m.ratio / hr;
  return m;
}

}  // namespace

int main() {
  const char* kTitle =
      "Theorem 5.15 — measured competitive ratio vs exact OPT";
  sim::print_experiment_banner(
      "E1", kTitle,
      "TC(I) <= O(h(T) * k/(k-k_OPT+1)) * Opt(I) + const");
  util::Json json_rows = util::Json::array();

  struct ShapeCase {
    std::string name;
    std::size_t n;
    std::size_t k;
  };
  const std::vector<ShapeCase> shapes{
      {"path", 10, 4},   {"star", 9, 4},    {"binary", 7, 3},
      {"random", 10, 4}, {"random", 10, 8},
  };

  ConsoleTable by_shape({"shape", "n", "h", "alpha", "k", "mean ratio",
                         "max ratio", "max ratio/(h*R)"});
  for (const auto& sc : shapes) {
    for (const std::uint64_t alpha : {1ull, 4ull}) {
      std::vector<double> ratios;
      std::vector<double> fractions;
      std::uint32_t height = 0;
      const std::size_t reps = sim::bench_reps(24);
      const auto results = sim::parallel_sweep<Measurement>(
          reps, 1000 + sc.n * 7 + alpha, [&](std::size_t, Rng& rng) {
            Rng tree_rng = rng.split();
            const Tree tree = sc.name == "path" ? trees::path(sc.n)
                              : sc.name == "star"
                                  ? trees::star(sc.n - 1)
                              : sc.name == "binary"
                                  ? trees::complete_kary(3, 2)
                                  : trees::random_recursive(sc.n, tree_rng);
            return measure(tree, alpha, sc.k, rng);
          });
      // Height of a representative instance (shapes are deterministic
      // except "random"; report the family's typical height).
      {
        Rng hr(1);
        const Tree rep = sc.name == "path" ? trees::path(sc.n)
                         : sc.name == "star"
                             ? trees::star(sc.n - 1)
                         : sc.name == "binary" ? trees::complete_kary(3, 2)
                                               : trees::random_recursive(
                                                     sc.n, hr);
        height = rep.height();
      }
      for (const auto& m : results) {
        ratios.push_back(m.ratio);
        fractions.push_back(m.bound_fraction);
      }
      const auto rs = sim::summarize(ratios);
      const auto fs = sim::summarize(fractions);
      by_shape.add_row({sc.name, ConsoleTable::fmt(std::uint64_t{sc.n}),
                        ConsoleTable::fmt(std::uint64_t{height}),
                        ConsoleTable::fmt(alpha),
                        ConsoleTable::fmt(std::uint64_t{sc.k}),
                        ConsoleTable::fmt(rs.mean, 2),
                        ConsoleTable::fmt(rs.max, 2),
                        ConsoleTable::fmt(fs.max, 3)});
      json_rows.push(util::Json::object()
                         .set("table", "by_shape")
                         .set("shape", sc.name)
                         .set("n", std::uint64_t{sc.n})
                         .set("height", std::uint64_t{height})
                         .set("alpha", alpha)
                         .set("k", std::uint64_t{sc.k})
                         .set("mean_ratio", rs.mean)
                         .set("max_ratio", rs.max)
                         .set("max_bound_fraction", fs.max));
    }
  }
  by_shape.print();
  sim::print_note("reading",
                  "max ratio stays well below h*R (last column < 1): the "
                  "Theorem 5.15 bound holds with a small constant");

  // Height sweep: spiders with ~12 nodes but different leg lengths.
  ConsoleTable by_height(
      {"tree", "h", "mean ratio", "max ratio", "ratio growth vs h=2"});
  double base_mean = 0.0;
  for (const auto& [legs, leg_len] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {11, 1}, {5, 2}, {3, 3}, {2, 5}, {1, 11}}) {
    const Tree tree = trees::spider(legs, leg_len);
    std::vector<double> ratios;
    const auto results = sim::parallel_sweep<Measurement>(
        sim::bench_reps(24), 77 + legs, [&](std::size_t, Rng& rng) {
          return measure(tree, 2, 4, rng);
        });
    for (const auto& m : results) ratios.push_back(m.ratio);
    const auto rs = sim::summarize(ratios);
    if (base_mean == 0.0) base_mean = rs.mean;
    by_height.add_row(
        {"spider(" + std::to_string(legs) + "x" + std::to_string(leg_len) +
             ")",
         ConsoleTable::fmt(std::uint64_t{tree.height()}),
         ConsoleTable::fmt(rs.mean, 2), ConsoleTable::fmt(rs.max, 2),
         ConsoleTable::fmt(rs.mean / base_mean, 2)});
    json_rows.push(util::Json::object()
                       .set("table", "by_height")
                       .set("legs", std::uint64_t{legs})
                       .set("leg_len", std::uint64_t{leg_len})
                       .set("height", std::uint64_t{tree.height()})
                       .set("mean_ratio", rs.mean)
                       .set("max_ratio", rs.max)
                       .set("growth_vs_shallowest", rs.mean / base_mean));
  }
  by_height.print();
  const std::string json_path =
      sim::write_bench_json("E1", kTitle, std::move(json_rows));
  if (!json_path.empty()) sim::print_note("json", json_path);
  sim::print_note("reading",
                  "on random inputs the measured ratio does not grow with "
                  "h(T) — consistent with the paper's conjecture (§7) that "
                  "the true competitive ratio is height-independent");
  return 0;
}
