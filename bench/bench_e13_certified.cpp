// E13 — Section 5.2 machinery at scale: runs the request-shifting
// procedures (Cor. 5.8, Lemma 5.10) over every field of large TC
// executions and reports the Lemma 5.11/5.14 OPT certificates, turning
// measured costs into *certified* competitive ratios on instances far
// beyond the exact DP's reach.
#include <vector>

#include "analysis/opt_bound.hpp"
#include "analysis/shifting.hpp"
#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"
#include "workload/generators.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E13", "Section 5.2 at scale — shifting + certified OPT bounds",
      "legal request shifting evens out fields (Cor. 5.8 exactly, Lemma "
      "5.10 up to 1/(2h)); Lemmas 5.11/5.14 certify OPT lower bounds");

  const std::uint64_t alpha = 4;
  ConsoleTable table({"instance", "n", "h", "TC cost", "cert(k/2)",
                      "ratio(k/2)", "ratio(k)", "fields shifted",
                      "full-after-shift"});

  struct Case {
    std::string name;
    Tree tree;
    Trace trace;
    std::size_t capacity;
  };
  std::vector<Case> cases;
  {
    Rng rng(11);
    Tree tree = trees::random_recursive(2000, rng);
    Trace trace = workload::uniform_trace(tree, 400000, 0.45, rng);
    cases.push_back({"uniform-2k", std::move(tree), std::move(trace), 64});
  }
  {
    Rng rng(13);
    Tree tree = trees::random_bounded_degree(5000, 3, rng);
    Trace trace = workload::zipf_trace(tree, 400000, 1.0, 0.35, rng);
    cases.push_back({"zipf-5k", std::move(tree), std::move(trace), 128});
  }
  {
    // Large adversarial star: DP would need 2^257 states; the certificate
    // still works.
    const std::size_t k = 256;
    Tree star = trees::star(k + 1);
    TreeCache probe(star, {.alpha = alpha, .capacity = k});
    Trace trace = workload::run_paging_adversary(probe, star, alpha, 4000);
    cases.push_back({"adversary-256", std::move(star), std::move(trace), k});
  }

  for (const Case& c : cases) {
    TreeCache tc(c.tree, {.alpha = alpha, .capacity = c.capacity});
    FieldTracker tracker(c.tree, alpha);
    for (const Request& r : c.trace) tracker.observe(r, tc.step(r));
    tracker.finalize();
    tracker.verify_period_accounting();
    tracker.verify_lemma_5_3(alpha);

    // Shift every field; the procedures throw if any lemma step fails.
    std::size_t shifted = 0;
    std::uint64_t full = 0;
    std::uint64_t members = 0;
    for (const Field& field : tracker.fields()) {
      if (field.artificial) continue;
      const auto slots = tracker.field_slots(field);
      if (field.positive()) {
        const auto result = analysis::shift_positive_field_down(
            c.tree, field, slots, alpha);
        full += result.full_members;
      } else {
        const auto result =
            analysis::shift_negative_field_up(c.tree, field, slots, alpha);
        full += field.size();  // Corollary 5.8: all members exactly alpha
        (void)result;
      }
      members += field.size();
      ++shifted;
    }

    // Two certificates: versus an equally-sized offline cache (R = k) and
    // versus a half-sized one (R ~ 2, where Lemma 5.14 has real teeth).
    const std::uint64_t cert_equal = analysis::certified_opt_lower_bound(
        tracker, c.tree.height(), {.alpha = alpha, .k_opt = c.capacity});
    const std::uint64_t cert_half = analysis::certified_opt_lower_bound(
        tracker, c.tree.height(),
        {.alpha = alpha, .k_opt = c.capacity / 2});
    auto ratio_of = [&](std::uint64_t cert) {
      return cert == 0 ? 0.0
                       : static_cast<double>(tc.cost().total()) /
                             static_cast<double>(cert);
    };
    table.add_row(
        {c.name, ConsoleTable::fmt(std::uint64_t{c.tree.size()}),
         ConsoleTable::fmt(std::uint64_t{c.tree.height()}),
         ConsoleTable::fmt(tc.cost().total()),
         ConsoleTable::fmt(cert_half),
         ConsoleTable::fmt(ratio_of(cert_half), 1),
         ConsoleTable::fmt(ratio_of(cert_equal), 1),
         ConsoleTable::fmt(std::uint64_t{shifted}),
         ConsoleTable::fmt(static_cast<double>(full) /
                               static_cast<double>(std::max<std::uint64_t>(
                                   members, 1)),
                           3)});
  }
  table.print();
  sim::print_note(
      "reading",
      "every field of every run shifts cleanly (no lemma 5.5-5.10 check "
      "fires) and after shifting nearly all field members are full. The "
      "certificates are sound but inherit the analysis constants: against "
      "a half-sized offline cache (R~2, Lemma 5.14 active) they certify "
      "single-digit ratios; against an equal cache (R=k) the Lemma 5.11 "
      "term's 1/(8h) constant dominates and the bound is loose");
  return 0;
}
