// E5 — Figure 3 / Lemma 5.11 accounting: in/out periods of nodes within a
// phase satisfy p_out = p_in + k_P, and full periods (>= alpha/2 requests)
// carry the lower-bound argument for OPT.
#include <vector>

#include "core/field_tracker.hpp"
#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E5", "Figure 3 / Lemma 5.11 — in/out period accounting",
      "per phase: p_out = p_in + k_P; all in periods carry exactly alpha "
      "requests' worth of counters, out periods at least their share after "
      "shifting");

  const std::uint64_t alpha = 4;
  Rng rng(99);
  const Tree tree = trees::random_recursive(120, rng);

  ConsoleTable table({"k", "phases", "finished", "p_out", "p_in",
                      "sum k_P", "identity", "full in-periods",
                      "full out-periods"});
  for (const std::size_t k : {6u, 12u, 24u, 48u}) {
    Rng inst(rng());
    const Trace trace = workload::uniform_trace(tree, 80000, 0.4, inst);
    TreeCache tc(tree, {.alpha = alpha, .capacity = k});
    FieldTracker tracker(tree, alpha);
    for (const Request& r : trace) tracker.observe(r, tc.step(r));
    tracker.finalize();
    tracker.verify_period_accounting();
    tracker.verify_lemma_5_3(alpha);

    std::uint64_t p_out = 0;
    std::uint64_t p_in = 0;
    std::uint64_t sum_kp = 0;
    std::uint64_t finished = 0;
    for (const auto& p : tracker.phases()) {
      p_out += p.p_out;
      p_in += p.p_in;
      sum_kp += p.k_end;
      finished += p.finished ? 1 : 0;
    }
    // Full periods BEFORE any shifting: a member with >= alpha/2 requests.
    std::uint64_t full_in = 0;
    std::uint64_t total_in = 0;
    std::uint64_t full_out = 0;
    std::uint64_t total_out = 0;
    for (const Field& f : tracker.fields()) {
      for (const FieldMember& m : f.members) {
        const bool full = m.requests >= alpha / 2;
        if (f.positive()) {
          ++total_out;
          full_out += full ? 1 : 0;
        } else {
          ++total_in;
          full_in += full ? 1 : 0;
        }
      }
    }
    auto pct = [](std::uint64_t a, std::uint64_t b) {
      return b == 0 ? std::string("-")
                    : ConsoleTable::fmt(100.0 * static_cast<double>(a) /
                                            static_cast<double>(b),
                                        1) +
                          "%";
    };
    table.add_row({ConsoleTable::fmt(std::uint64_t{k}),
                   ConsoleTable::fmt(std::uint64_t{tracker.phases().size()}),
                   ConsoleTable::fmt(finished), ConsoleTable::fmt(p_out),
                   ConsoleTable::fmt(p_in), ConsoleTable::fmt(sum_kp),
                   p_out == p_in + sum_kp ? "holds" : "VIOLATED",
                   pct(full_in, total_in), pct(full_out, total_out)});
  }
  table.print();
  sim::print_note(
      "reading",
      "p_out = p_in + sum(k_P) exactly; in periods are mostly full even "
      "before shifting (negative fields distribute evenly, Cor. 5.8), out "
      "periods need the 1/(2h) shifting argument (Lemma 5.10)");
  return 0;
}
