// E9 — Section 7 remark: the offline *static* problem (choose the best
// fixed cache under positive-only requests) is "tree sparsity", solvable in
// polynomial time. Benchmarks the DP's scaling and compares the static
// optimum against online TC on skewed positive-only traffic.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/static_opt.hpp"
#include "core/tree_cache.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace treecache;

namespace {

void BM_TreeSparsityDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = n / 10;
  Rng rng(5);
  const Tree tree = trees::random_recursive(n, rng);
  std::vector<std::uint64_t> weights(n);
  for (auto& w : weights) w = rng.below(1000);
  for (auto _ : state) {
    const auto result = best_static_subforest(tree, weights, k);
    benchmark::DoNotOptimize(result.covered_weight);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

// O(n·k) with k = n/10 appears as ~quadratic growth in n.
BENCHMARK(BM_TreeSparsityDp)
    ->RangeMultiplier(2)
    ->Range(256, 8192)
    ->Complexity(benchmark::oNSquared);

void BM_StaticVsOnline(benchmark::State& state) {
  // Not a timing benchmark: emits the cost comparison as counters.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Tree tree = trees::random_recursive(n, rng);
  const std::uint64_t alpha = 8;
  const std::size_t k = n / 10;
  const Trace trace = workload::zipf_trace(tree, 50000, 1.1, 0.0, rng);

  std::uint64_t online = 0;
  std::uint64_t offline = 0;
  for (auto _ : state) {
    TreeCache tc(tree, {.alpha = alpha, .capacity = k});
    online = sim::run_trace(tc, trace).cost.total();
    const auto weights = positive_weights(tree, trace);
    const auto chosen = best_static_subforest(tree, weights, k);
    offline = static_cache_cost(tree, trace, alpha, chosen);
    benchmark::DoNotOptimize(online + offline);
  }
  state.counters["online_TC"] = static_cast<double>(online);
  state.counters["static_OPT"] = static_cast<double>(offline);
  state.counters["TC/static"] =
      static_cast<double>(online) / static_cast<double>(offline);
}
BENCHMARK(BM_StaticVsOnline)->Arg(1000)->Arg(4000)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
