// E10 — α sensitivity: the reorganization price is the model's central
// parameter. Sweeps α on a fixed workload and reports the cost
// decomposition — the rent-or-buy balance ties churn to service.
#include <vector>

#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E10", "alpha sensitivity — rent-or-buy cost decomposition",
      "TC invests alpha in a fetch/evict only after the requests have paid "
      "for it, so reorganization tracks service within a constant");

  Rng rng(31);
  const Tree tree = trees::random_recursive(400, rng);
  const std::size_t capacity = 60;

  ConsoleTable table({"alpha", "service", "reorg", "reorg/service", "total",
                      "fetched", "evicted", "restarts", "hit rate"});
  for (const std::uint64_t alpha :
       {1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull}) {
    Rng inst(1000 + alpha);  // same workload family across alphas
    const Trace trace = workload::zipf_trace(tree, 120000, 1.0, 0.25, inst);
    const auto s = stats(trace, tree.size());
    TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
    const auto result = sim::run_trace(tc, trace);
    const double hit_rate =
        1.0 - static_cast<double>(result.paid_positive) /
                  static_cast<double>(s.positives);
    table.add_row(
        {ConsoleTable::fmt(alpha), ConsoleTable::fmt(result.cost.service),
         ConsoleTable::fmt(result.cost.reorg),
         ConsoleTable::fmt(static_cast<double>(result.cost.reorg) /
                               static_cast<double>(result.cost.service),
                           3),
         ConsoleTable::fmt(result.cost.total()),
         ConsoleTable::fmt(result.fetched_nodes),
         ConsoleTable::fmt(result.evicted_nodes),
         ConsoleTable::fmt(result.phase_restarts),
         ConsoleTable::fmt(hit_rate, 3)});
  }
  table.print();
  sim::print_note(
      "reading",
      "reorg/service stays bounded (~1) across two orders of magnitude of "
      "alpha — the saturation rule is exactly the rent-or-buy balance; "
      "higher alpha trades hit rate for less churn");
  return 0;
}
