// Throughput trajectory: requests/sec of the driver stack, from the
// legacy per-round observer loop through the batched hot path to the
// sharded engine at 8 shards — plus the closed loop: the FIB router
// source sharded into per-shard mirrors with outcome feedback queues.
// Open-loop rows share one Zipf stream over a tree with eight equal
// top-level subtrees; closed-loop rows run the router event loop on a
// synthetic RIB. The tc-batched layout pairs rerun the fib workload with
// TC's frozen NodeId-keyed state (tc-legacy) next to the preorder SoA
// (tc) at 1x1 and 8xN — same costs bit for bit, only requests/sec moves.
// The fib-real rows replay the checked-in RIB feed fixture (ingested
// dump+update churn) through the same open-loop engine at 1x1 and 8xN.
// The kernel rows measure the slice-scan kernels (core/kernels.hpp): the
// tc-deep family runs a 13-level universe (deep enough that subtree scans
// dominate) with forced-scalar vs dispatched kernel sets, and
// tc-batched-soa-scalar-1x1 reruns the SoA closed loop on the scalar
// reference — same costs bit for bit, only requests/sec moves.
// Identical seed per mode, best of TREECACHE_BENCH_REPS repetitions; emits
// BENCH_throughput.json when TREECACHE_BENCH_JSON_DIR is set (the CI perf
// artifact).
#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "core/kernels.hpp"

#include "engine/sharded_engine.hpp"
#include "fib/fib_workloads.hpp"
#include "fib/router_source.hpp"
#include "rib/churn_source.hpp"
#include "rib/feed.hpp"
#include "rib/ingest.hpp"
#include "rib/workloads.hpp"
#include "sim/bench_env.hpp"
#include "sim/fib_engine.hpp"
#include "sim/registry.hpp"
#include "sim/reporting.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace treecache;

namespace {

struct Mode {
  std::string name;
  std::size_t shards = 1;   // 1 = plain run_source driver
  std::size_t threads = 1;  // 0 = one worker per shard (hardware-capped)
  bool observer = false;    // force the per-round observer slow path
  bool closed_loop = false;  // FIB router source instead of the Zipf stream
  bool real_feed = false;    // fib-real: ingested RIB feed replay
  std::string algo = "tc";   // registry name the mode runs
  // Layout-comparison rows (the tc-batched pairs): "nodeid" is the frozen
  // pre-SoA baseline (tc-legacy), "preorder-soa" the preorder-indexed
  // NodeState layout. Empty for the trajectory rows. A layout row's
  // speedup column compares against the nodeid row of the same geometry,
  // so it reads as the layout win directly.
  std::string layout{};
  std::string baseline{};  // mode name the speedup column divides by
  bool deep = false;       // run on the deep (13-level) universe
  /// Kernel set forced for the whole mode, instances included ("scalar" /
  /// "sse2" / "avx2"); empty runs the dispatched default.
  std::string force_kernels{};
  bool pin = false;  // pin workers + first-touch shard state (open loop)
};

struct Sample {
  sim::RunResult result;
  std::size_t threads = 1;
};

Sample run_mode(const Mode& mode, const Tree& tree,
                const sim::Params& params, std::uint64_t seed) {
  const auto source = sim::make_source("zipf", tree, params, seed);
  if (mode.shards == 1) {
    const auto alg = sim::make_algorithm(mode.algo, tree, params);
    if (mode.observer) {
      // The pre-batching driver shape: a live (no-op) observer forces the
      // scalar loop with its per-round std::function dispatch.
      std::uint64_t sink = 0;
      const sim::StepObserver observer =
          [&sink](std::size_t, Request, const StepOutcome& out) {
            sink += out.paid ? 1 : 0;
          };
      return {sim::run_source(*alg, *source, observer), 1};
    }
    return {sim::run_source(*alg, *source), 1};
  }
  engine::ShardedEngine eng(tree, mode.algo, params,
                            {.shards = mode.shards,
                             .threads = mode.threads,
                             .batch = 4096,
                             .pin_threads = mode.pin});
  const engine::EngineResult result = eng.run(*source);
  return {result.total, result.threads};
}

Sample run_closed_loop_mode(const Mode& mode, const fib::RuleTree& rules,
                            const sim::Params& params, std::uint64_t seed) {
  engine::ShardedEngine eng(
      rules.tree, mode.algo, params,
      {.shards = mode.shards, .threads = mode.threads});
  fib::RouterSource source(rules, sim::fib_router_config(params, seed));
  const engine::EngineResult result = eng.run(source);
  return {result.total, result.threads};
}

Sample run_real_feed_mode(const Mode& mode, const Tree& tree,
                          const sim::Params& params, std::uint64_t seed) {
  engine::ShardedEngine eng(
      tree, mode.algo, params,
      {.shards = mode.shards, .threads = mode.threads, .batch = 4096});
  const auto source = sim::make_source("fib-real", tree, params, seed);
  const engine::EngineResult result = eng.run(*source);
  return {result.total, result.threads};
}

}  // namespace

int main() {
  const char* kTitle = "Driver throughput — batched hot path and sharding";
  sim::print_experiment_banner(
      "throughput", kTitle,
      "one instance serves what one core serves; contiguous-preorder "
      "shards scale requests/sec with cores at bit-identical total cost");

  // Eight equal top-level subtrees: pick the largest complete 8-ary tree
  // within the (possibly bench-scaled) node budget so every shard carries
  // the same mass.
  const std::size_t node_budget = sim::bench_scaled(37449);  // 8-ary, 6 lvls
  std::size_t levels = 2;
  std::size_t size = 9;  // 1 + 8
  while (size * 8 + 1 <= node_budget) {
    size = size * 8 + 1;
    ++levels;
  }
  const Tree tree = trees::complete_kary(levels, 8);

  // Deep universe for the kernel rows: eight 12-level complete binary
  // subtrees under one root (13 levels, 32761 nodes) — walks long enough
  // that the slice-scan kernels dominate the round, still eight equal
  // top-level shards. Not bench-scaled: depth is the point; the request
  // stream length is scaled instead (shared `length` param).
  constexpr std::size_t kSubLevels = 12;
  constexpr std::size_t kSubNodes = (std::size_t{1} << kSubLevels) - 1;
  std::vector<NodeId> deep_parents(1 + 8 * kSubNodes, kNoNode);
  for (std::size_t t = 0; t < 8; ++t) {
    for (std::size_t j = 0; j < kSubNodes; ++j) {
      const std::size_t id = 1 + t * kSubNodes + j;
      deep_parents[id] = static_cast<NodeId>(
          j == 0 ? 0 : 1 + t * kSubNodes + (j - 1) / 2);
    }
  }
  const Tree deep_tree(deep_parents);

  sim::Params params;
  params.set("alpha", "16");
  params.set("capacity", "512");
  params.set("skew", "1.0");
  params.set("neg", "0.1");
  params.set("length", std::to_string(sim::bench_scaled(4000000)));
  const std::uint64_t seed = 20260730;
  const std::size_t reps = sim::bench_reps(3);

  std::printf("tree: %zu nodes (%zu levels, arity 8), %s requests, "
              "best of %zu reps\n",
              tree.size(), levels, params.get("length", "?").c_str(), reps);

  // Closed-loop substrate: the FIB router event loop on a synthetic RIB.
  // Sharded runs generate the event stream ONCE on the producer thread and
  // route per-shard chunks into the mirrors; stepping parallelizes across
  // the workers while feedback flows back through batched per-shard
  // outcome rings.
  sim::Params fib_params;
  fib_params.set("alpha", "16");
  fib_params.set("capacity", "512");
  fib_params.set("skew", "1.0");
  fib_params.set("update-prob", "0.01");
  fib_params.set("rules", std::to_string(sim::bench_scaled(20000)));
  fib_params.set("packets", std::to_string(sim::bench_scaled(400000)));
  const fib::RuleTree rules = fib::rule_tree_from_params(fib_params);

  // Real-feed substrate: the checked-in RIB fixture replayed as churn
  // (α-chunk updates interleaved with Zipf lookups). The table is small —
  // what the rows measure is the driver stack on a real update/lookup mix,
  // so the stream length is scaled through lookups-per-event.
  sim::Params real_params;
  real_params.set("alpha", "16");
  real_params.set("capacity", "512");
  real_params.set("skew", "1.0");
  real_params.set("rib-feed",
                  std::string(TREECACHE_TEST_DATA_DIR) + "/rib_v4.feed");
  real_params.set("lookups-per-event",
                  std::to_string(sim::bench_scaled(20000)));
  const Tree& real_tree = rib::shared_real_fib(real_params).tree();

  // Each workload family measures against ITS single-thread row: open-loop
  // rows against the batched Zipf driver, fib-closed rows against the
  // unsharded router loop — a closed-loop "speedup" vs an open-loop
  // baseline would compare different substrates and mean nothing. The
  // tc-batched layout pairs compare against the nodeid row of the SAME
  // geometry: their speedup column is the memory-layout win in isolation.
  const std::vector<Mode> modes{
      {.name = "scalar+observer",
       .observer = true,
       .baseline = "single-thread"},
      {.name = "single-thread", .shards = 1, .baseline = "single-thread"},
      {.name = "sharded-8x1",
       .shards = 8,
       .threads = 1,
       .baseline = "single-thread"},
      {.name = "sharded-8xN",
       .shards = 8,
       .threads = 0,
       .baseline = "single-thread"},
      {.name = "fib-closed-1x1",
       .shards = 1,
       .closed_loop = true,
       .baseline = "fib-closed-1x1"},
      {.name = "fib-closed-8xN",
       .shards = 8,
       .threads = 0,
       .closed_loop = true,
       .baseline = "fib-closed-1x1"},
      // Before/after layout rows: TC batched on the fib workload, same
      // geometry, only the per-node state layout differs (tc-legacy keeps
      // the frozen NodeId-keyed arrays; tc runs the preorder SoA).
      {.name = "tc-batched-nodeid-1x1",
       .shards = 1,
       .closed_loop = true,
       .algo = "tc-legacy",
       .layout = "nodeid",
       .baseline = "tc-batched-nodeid-1x1"},
      {.name = "tc-batched-soa-1x1",
       .shards = 1,
       .closed_loop = true,
       .layout = "preorder-soa",
       .baseline = "tc-batched-nodeid-1x1"},
      {.name = "tc-batched-nodeid-8xN",
       .shards = 8,
       .threads = 0,
       .closed_loop = true,
       .algo = "tc-legacy",
       .layout = "nodeid",
       .baseline = "tc-batched-nodeid-8xN"},
      {.name = "tc-batched-soa-8xN",
       .shards = 8,
       .threads = 0,
       .closed_loop = true,
       .layout = "preorder-soa",
       .baseline = "tc-batched-nodeid-8xN"},
      // Real-feed rows: the fib-real workload over the ingested fixture
      // table — open loop, so sharding scales it like the Zipf rows, but
      // the stream is a real dump+update churn mix.
      {.name = "fib-real-1x1", .shards = 1, .real_feed = true,
       .baseline = "fib-real-1x1"},
      {.name = "fib-real-8xN",
       .shards = 8,
       .threads = 0,
       .real_feed = true,
       .baseline = "fib-real-1x1"},
      // Kernel rows. tc-batched-soa-scalar-1x1 reruns the SoA closed loop
      // on the scalar reference kernels: together with tc-batched-soa-1x1
      // (dispatched) it brackets the kernel win on the fib substrate at
      // bit-identical cost. The tc-deep family isolates it on a deep
      // universe: scalar vs dispatched at 1x1, then sharded 8xN with
      // pinned, first-touched workers.
      {.name = "tc-batched-soa-scalar-1x1",
       .shards = 1,
       .closed_loop = true,
       .layout = "preorder-soa",
       .baseline = "tc-batched-nodeid-1x1",
       .force_kernels = "scalar"},
      {.name = "tc-deep-scalar-1x1",
       .shards = 1,
       .baseline = "tc-deep-scalar-1x1",
       .deep = true,
       .force_kernels = "scalar"},
      {.name = "tc-deep-1x1",
       .shards = 1,
       .baseline = "tc-deep-scalar-1x1",
       .deep = true},
      {.name = "tc-deep-8xN",
       .shards = 8,
       .threads = 0,
       .baseline = "tc-deep-1x1",
       .deep = true,
       .pin = true},
  };

  // Measure everything first: the single-thread baseline row itself gets a
  // real speedup ratio (< 1 for the observer loop), not a placeholder.
  std::vector<Sample> best(modes.size());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // The guard must cover instance construction: TreeCache captures
      // its kernel table when it is built.
      std::optional<kernels::ForceGuard> force;
      if (!modes[m].force_kernels.empty()) {
        force.emplace(*kernels::parse_kind(modes[m].force_kernels));
      }
      Sample sample =
          modes[m].deep
              ? run_mode(modes[m], deep_tree, params, seed)
              : modes[m].real_feed
                    ? run_real_feed_mode(modes[m], real_tree, real_params,
                                         seed)
                    : modes[m].closed_loop
                          ? run_closed_loop_mode(modes[m], rules, fib_params,
                                                 seed)
                          : run_mode(modes[m], tree, params, seed);
      if (best[m].result.rounds == 0 ||
          sample.result.wall_seconds < best[m].result.wall_seconds) {
        best[m] = sample;
      }
    }
  }
  const auto rps_of = [&](const std::string& name) {
    for (std::size_t m = 0; m < modes.size(); ++m) {
      if (modes[m].name == name) return best[m].result.requests_per_second();
    }
    return 0.0;
  };

  ConsoleTable table({"mode", "algo", "shards", "threads", "total cost",
                      "wall s", "Mreq/s", "vs baseline"});
  util::Json json_rows = util::Json::array();
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const Mode& mode = modes[m];
    const double rps = best[m].result.requests_per_second();
    const double baseline_rps = rps_of(mode.baseline);
    const double speedup = baseline_rps > 0.0 ? rps / baseline_rps : 0.0;
    table.add_row({mode.name, mode.algo,
                   ConsoleTable::fmt(std::uint64_t{mode.shards}),
                   ConsoleTable::fmt(std::uint64_t{best[m].threads}),
                   ConsoleTable::fmt(best[m].result.cost.total()),
                   ConsoleTable::fmt(best[m].result.wall_seconds, 3),
                   ConsoleTable::fmt(rps / 1e6, 2),
                   ConsoleTable::fmt(speedup, 2) + "x"});
    const std::string row_kernels =
        mode.force_kernels.empty()
            ? std::string(kernels::kind_name(kernels::active_kind()))
            : mode.force_kernels;
    util::Json row = util::Json::object()
                         .set("mode", mode.name)
                         .set("algo", mode.algo)
                         .set("shards", std::uint64_t{mode.shards})
                         .set("threads", std::uint64_t{best[m].threads})
                         .set("rounds", best[m].result.rounds)
                         .set("total_cost", best[m].result.cost.total())
                         .set("wall_seconds", best[m].result.wall_seconds)
                         .set("requests_per_second", rps)
                         .set("baseline_mode", mode.baseline)
                         .set("speedup_vs_baseline", speedup)
                         .set("kernels", row_kernels);
    if (!mode.layout.empty()) row.set("layout", mode.layout);
    json_rows.push(std::move(row));
  }

  // Internet-scale RIB stress rows: synthesize a ~1M-route IPv4 table
  // plus an update stream, then time raw feed ingestion (records/s into
  // the radix RIB) and the replay-FIB rebuild (tree nodes/s). The rows
  // carry the trie's heap bytes and the process peak RSS — the memory
  // audit that keeps internet-size tables honest.
  {
    rib::SyntheticFeedConfig feed_config;
    feed_config.routes = sim::bench_scaled(1000000);
    feed_config.updates = sim::bench_scaled(50000);
    feed_config.family = 4;
    Rng feed_rng(17);
    const std::vector<rib::FeedRecord> records =
        rib::generate_feed(feed_config, feed_rng);
    double ingest_wall = 0.0;
    double rebuild_wall = 0.0;
    std::uint64_t live_routes = 0;
    std::uint64_t trie_nodes = 0;
    std::uint64_t trie_bytes = 0;
    std::uint64_t rebuild_nodes = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      rib::IngestResult ingest;
      const auto t0 = std::chrono::steady_clock::now();
      for (const rib::FeedRecord& record : records) ingest.apply(record);
      const auto t1 = std::chrono::steady_clock::now();
      const auto replay = rib::make_churn_replay(ingest.v4);
      const auto t2 = std::chrono::steady_clock::now();
      const double wall_ingest = std::chrono::duration<double>(t1 - t0).count();
      const double wall_rebuild =
          std::chrono::duration<double>(t2 - t1).count();
      if (rep == 0 || wall_ingest < ingest_wall) ingest_wall = wall_ingest;
      if (rep == 0 || wall_rebuild < rebuild_wall) rebuild_wall = wall_rebuild;
      if (rep == 0) {
        live_routes = ingest.v4.rib.size();
        trie_nodes = ingest.v4.rib.node_count();
        trie_bytes = ingest.v4.rib.memory_bytes();
        rebuild_nodes = replay.fib.tree.size();
      }
    }
    const std::uint64_t rss = sim::peak_rss_bytes();
    const std::string active =
        std::string(kernels::kind_name(kernels::active_kind()));
    const double ingest_rps =
        static_cast<double>(records.size()) / std::max(ingest_wall, 1e-9);
    const double rebuild_rps =
        static_cast<double>(rebuild_nodes) / std::max(rebuild_wall, 1e-9);
    table.add_row({"rib-1m-ingest", "rib", "1", "1",
                   ConsoleTable::fmt(std::uint64_t{records.size()}),
                   ConsoleTable::fmt(ingest_wall, 3),
                   ConsoleTable::fmt(ingest_rps / 1e6, 2), "1.00x"});
    table.add_row({"rib-1m-rebuild", "rib", "1", "1",
                   ConsoleTable::fmt(rebuild_nodes),
                   ConsoleTable::fmt(rebuild_wall, 3),
                   ConsoleTable::fmt(rebuild_rps / 1e6, 2), "1.00x"});
    json_rows.push(util::Json::object()
                       .set("mode", "rib-1m-ingest")
                       .set("algo", "rib")
                       .set("shards", std::uint64_t{1})
                       .set("threads", std::uint64_t{1})
                       .set("rounds", std::uint64_t{records.size()})
                       .set("total_cost", std::uint64_t{0})
                       .set("wall_seconds", ingest_wall)
                       .set("requests_per_second", ingest_rps)
                       .set("baseline_mode", "rib-1m-ingest")
                       .set("speedup_vs_baseline", 1.0)
                       .set("kernels", active)
                       .set("routes", live_routes)
                       .set("routes_per_second", ingest_rps)
                       .set("trie_nodes", trie_nodes)
                       .set("trie_bytes", trie_bytes)
                       .set("peak_rss_bytes", rss));
    json_rows.push(util::Json::object()
                       .set("mode", "rib-1m-rebuild")
                       .set("algo", "rib")
                       .set("shards", std::uint64_t{1})
                       .set("threads", std::uint64_t{1})
                       .set("rounds", rebuild_nodes)
                       .set("total_cost", std::uint64_t{0})
                       .set("wall_seconds", rebuild_wall)
                       .set("requests_per_second", rebuild_rps)
                       .set("baseline_mode", "rib-1m-rebuild")
                       .set("speedup_vs_baseline", 1.0)
                       .set("kernels", active)
                       .set("routes", live_routes)
                       .set("routes_per_second", rebuild_rps)
                       .set("trie_nodes", trie_nodes)
                       .set("trie_bytes", trie_bytes)
                       .set("peak_rss_bytes", rss));
  }
  table.print();
  const std::string json_path =
      sim::write_bench_json("throughput", kTitle, std::move(json_rows));
  if (!json_path.empty()) sim::print_note("json", json_path);
  sim::print_note(
      "reading",
      "the batched no-observer hot path is the single-instance ceiling; "
      "8 contiguous-preorder shards keep the aggregate cost bit-identical "
      "across thread counts while requests/sec scales with the worker "
      "count (bounded by the machine's cores — see the threads column). "
      "The fib-closed rows shard the feedback loop itself: one producer "
      "generates the event stream once and feeds per-shard mirrors, whose "
      "outcomes flow back through batched per-shard rings — so the sharded "
      "closed loop pays one generation pass plus parallel stepping, and "
      "should beat the 1x1 row whenever spare cores exist. The tc-batched "
      "pairs isolate the memory layout: nodeid is the frozen pre-SoA "
      "TreeCache, preorder-soa the flat NodeState block — identical "
      "decisions, so the speedup column is pure locality. The fib-real "
      "rows swap the synthetic stream for replayed RIB-feed churn. The "
      "tc-deep and *-scalar rows bracket the slice-scan kernels: forced "
      "scalar vs the dispatched SIMD set at identical cost, on a 13-level "
      "universe where the scans dominate (tc-deep-8xN adds pinned, "
      "first-touched shard workers). The rib-1m rows stress the ingestion "
      "layer at internet scale: ~1M synthetic IPv4 routes applied to the "
      "radix RIB (records/s) and rebuilt into the replay rule tree "
      "(nodes/s), with trie heap bytes and peak RSS as the memory audit");
  return 0;
}
