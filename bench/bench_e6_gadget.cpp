// E6 — Figure 4 / Appendix D: the positive field whose requests cannot be
// spread evenly. Replays the five-stage construction, verifies that TC
// performs exactly the scripted changesets, and quantifies the request
// concentration in the final whole-tree field.
#include <algorithm>

#include "core/field_tracker.hpp"
#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "util/table.hpp"
#include "workload/gadget.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E6", "Figure 4 / Appendix D — the troublesome positive field",
      "within a positive field, down-shifting can give alpha/2 requests to "
      "only ~half of the nodes (exact even distribution is impossible)");

  ConsoleTable table({"leaves", "alpha", "|T|", "script ok", "field size",
                      "req on r+T1", "req on T2", "nodes w/ >=a/2",
                      "frac of field"});
  for (const auto& [leaves, alpha] :
       std::vector<std::pair<std::size_t, std::uint64_t>>{
           {4, 4}, {8, 4}, {8, 16}, {16, 8}, {32, 8}}) {
    const auto script = workload::build_appendix_d_gadget(leaves, alpha);
    TreeCache tc(script.tree,
                 {.alpha = alpha, .capacity = script.tree.size()});
    FieldTracker tracker(script.tree, alpha);

    bool ok = true;
    std::size_t next = 0;
    for (std::size_t round = 1; round <= script.trace.size(); ++round) {
      const StepOutcome out = tc.step(script.trace[round - 1]);
      tracker.observe(script.trace[round - 1], out);
      if (next < script.expectations.size() &&
          script.expectations[next].round == round) {
        std::vector<NodeId> got(out.changed.begin(), out.changed.end());
        std::sort(got.begin(), got.end());
        ok &= out.change == script.expectations[next].kind &&
              got == script.expectations[next].nodes;
        ++next;
      } else {
        ok &= out.change == ChangeKind::kNone;
      }
    }
    ok &= next == script.expectations.size();
    tracker.finalize();

    const Field& final_field = tracker.fields().back();
    std::uint64_t on_t1r = 0;
    std::uint64_t on_t2 = 0;
    std::uint64_t nodes_half = 0;
    for (const FieldMember& m : final_field.members) {
      const bool in_t2 = std::binary_search(script.t2_nodes.begin(),
                                            script.t2_nodes.end(), m.node);
      (in_t2 ? on_t2 : on_t1r) += m.requests;
      nodes_half += m.requests >= alpha / 2 ? 1 : 0;
    }
    table.add_row(
        {ConsoleTable::fmt(std::uint64_t{leaves}), ConsoleTable::fmt(alpha),
         ConsoleTable::fmt(std::uint64_t{script.tree.size()}),
         ok ? "yes" : "NO",
         ConsoleTable::fmt(std::uint64_t{final_field.size()}),
         ConsoleTable::fmt(on_t1r), ConsoleTable::fmt(on_t2),
         ConsoleTable::fmt(nodes_half),
         ConsoleTable::fmt(static_cast<double>(nodes_half) /
                               static_cast<double>(final_field.size()),
                           3)});
  }
  table.print();
  sim::print_note(
      "reading",
      "the final field spans the whole tree (2s+1 nodes) but T2's s nodes "
      "hold zero requests: even after optimal legal down-shifting only "
      "about half the nodes can reach alpha/2 — matching Appendix D");
  sim::print_note(
      "note",
      "stages 4/5 shift one request versus the paper's informal counts; "
      "under the exact saturation rule the paper's numbers would fetch T1 "
      "early (see workload/gadget.hpp)");
  return 0;
}
