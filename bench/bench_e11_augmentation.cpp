// E11 — resource augmentation: Theorem 5.15's R = k_ONL/(k_ONL − k_OPT + 1)
// factor. Fixes k_OPT and grows TC's cache on (a) the adversarial instance
// (exact DP optimum) and (b) Zipf workloads (cost curve and phase counts).
#include <vector>

#include "baselines/opt_offline.hpp"
#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"
#include "workload/generators.hpp"

using namespace treecache;

int main() {
  sim::print_experiment_banner(
      "E11", "Resource augmentation — the R factor of Theorem 5.15",
      "growing k_ONL beyond k_OPT collapses the ratio as "
      "k_ONL/(k_ONL-k_OPT+1)");

  // (a) Adversarial: fixed 10-leaf star (k_OPT = 3 via the exact DP), TC
  // capacity sweeps upward. The adversary adapts to each TC instance.
  const std::uint64_t alpha = 4;
  const std::size_t k_opt = 3;
  const Tree star = trees::star(10);  // 11 nodes, DP still fast

  ConsoleTable adversarial({"k_ONL", "TC cost", "OPT(k=3)", "ratio", "R",
                            "ratio/R"});
  for (const std::size_t k_onl : {3u, 4u, 5u, 6u, 8u, 9u}) {
    TreeCache tc(star, {.alpha = alpha, .capacity = k_onl});
    const Trace trace =
        workload::run_paging_adversary(tc, star, alpha, /*chunks=*/100);
    const std::uint64_t opt =
        opt_offline_cost(star, trace, {.alpha = alpha, .capacity = k_opt});
    const double ratio = static_cast<double>(tc.cost().total()) /
                         static_cast<double>(opt);
    const double r = static_cast<double>(k_onl) /
                     static_cast<double>(k_onl - k_opt + 1);
    adversarial.add_row(
        {ConsoleTable::fmt(std::uint64_t{k_onl}),
         ConsoleTable::fmt(tc.cost().total()), ConsoleTable::fmt(opt),
         ConsoleTable::fmt(ratio, 2), ConsoleTable::fmt(r, 2),
         ConsoleTable::fmt(ratio / r, 2)});
  }
  adversarial.print();
  sim::print_note("reading",
                  "the measured ratio decays with k_ONL exactly like R "
                  "(ratio/R roughly constant)");

  // (b) Realistic: Zipf traffic on a larger tree; augmentation shrinks both
  // phases and cost.
  Rng rng(17);
  const Tree tree = trees::random_recursive(600, rng);
  const Trace trace = workload::zipf_trace(tree, 150000, 1.05, 0.2, rng);

  ConsoleTable zipf({"k_ONL", "total cost", "restarts", "final phases",
                     "hit rate"});
  for (const std::size_t k : {15u, 30u, 60u, 120u, 240u}) {
    TreeCache tc(tree, {.alpha = 8, .capacity = k});
    const auto result = sim::run_trace(tc, trace);
    const auto s = stats(trace, tree.size());
    zipf.add_row({ConsoleTable::fmt(std::uint64_t{k}),
                  ConsoleTable::fmt(result.cost.total()),
                  ConsoleTable::fmt(result.phase_restarts),
                  ConsoleTable::fmt(std::uint64_t{tc.phases().size()}),
                  ConsoleTable::fmt(
                      1.0 - static_cast<double>(result.paid_positive) /
                                static_cast<double>(s.positives),
                      3)});
  }
  zipf.print();
  return 0;
}
