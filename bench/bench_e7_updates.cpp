// E7 — Appendix B: the rule-update model. One BGP update = a chunk of
// alpha negative requests; canonical solutions (no mid-chunk cache changes)
// cost at most 2x. Measures the actual canonicalization factor across
// update rates on the FIB substrate.
#include <vector>

#include "baselines/lru_closure.hpp"
#include "core/tree_cache.hpp"
#include "fib/canonicalizer.hpp"
#include "fib/rib_gen.hpp"
#include "fib/traffic.hpp"
#include "sim/reporting.hpp"
#include "util/table.hpp"

using namespace treecache;
using namespace treecache::fib;

int main() {
  sim::print_experiment_banner(
      "E7", "Appendix B — update chunks and canonicalization",
      "any solution B maps to a canonical B' (no mid-chunk changes) with "
      "B' <= 2B");

  Rng rng(123);
  const auto rib = generate_rib({.rules = 4000, .deaggregation = 0.5}, rng);
  const RuleTree rt = build_rule_tree(rib);
  std::printf("substrate: synthetic RIB, %zu rules, height %u\n",
              rt.tree.size() - 1, rt.tree.height());

  const std::uint64_t alpha = 12;
  ConsoleTable table({"algorithm", "update prob", "chunks", "dirty",
                      "B (raw)", "B' (canonical)", "B'/B", "bound ok"});
  for (const double p : {0.005, 0.02, 0.1, 0.3}) {
    const std::uint64_t wl_seed = rng();
    for (const bool use_tc : {true, false}) {
      Rng wl(wl_seed);
      const ChunkedTrace workload = make_fib_workload(
          rt,
          {.events = 60000, .zipf_skew = 1.0, .update_probability = p,
           .alpha = alpha},
          wl);
      // LRU with invalidation evicts at the FIRST negative of a chunk —
      // maximally non-canonical; TC's pooled counters trigger at chunk
      // ends almost always.
      TreeCache tc(rt.tree, {.alpha = alpha, .capacity = 300});
      LruClosure lru(rt.tree, {.alpha = alpha,
                               .capacity = 300,
                               .evict_on_negative = true});
      OnlineAlgorithm& alg =
          use_tc ? static_cast<OnlineAlgorithm&>(tc) : lru;
      const CanonicalizationReport report =
          run_canonicalized(rt.tree, workload, alg);
      table.add_row({std::string(alg.name()), ConsoleTable::fmt(p, 3),
                     ConsoleTable::fmt(report.chunks),
                     ConsoleTable::fmt(report.dirty_chunks),
                     ConsoleTable::fmt(report.raw_cost.total()),
                     ConsoleTable::fmt(report.canonical_cost.total()),
                     ConsoleTable::fmt(report.ratio(), 4),
                     report.ratio() <= 2.0 ? "yes" : "NO"});
    }
  }
  table.print();
  sim::print_note(
      "reading",
      "the Appendix B bound B' <= 2B holds for both algorithms; TC is "
      "already canonical on these runs (its chunk counters saturate exactly "
      "at chunk ends), while invalidate-on-update LRU modifies mid-chunk "
      "for every cached update and still stays far below the factor 2");
  return 0;
}
