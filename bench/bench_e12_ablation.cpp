// E12 — ablation: what the paper's two aggregation mechanisms buy.
//
//   TC        — counter aggregation over candidate sets + maximality scan
//   LocalTC   — same counters, but only the requested node's counter pays
//   LRU-cl    — no counters at all: fetch-on-miss with closure
//
// Three regimes: adversarial cyclic scan (worst case for fetch-on-miss),
// Zipf traffic (friendly), and deep-path traffic (where aggregation across
// a path is essential).
#include <memory>
#include <string>
#include <vector>

#include "baselines/local_tc.hpp"
#include "baselines/lru_closure.hpp"
#include "baselines/never_cache.hpp"
#include "core/tree_cache.hpp"
#include "sim/reporting.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace treecache;

namespace {

struct Scenario {
  std::string name;
  Tree tree;
  Trace trace;
  std::size_t capacity;
};

std::vector<Scenario> make_scenarios(std::uint64_t alpha) {
  std::vector<Scenario> scenarios;

  {  // Cyclic scan over a star: thrashes any fetch-on-miss policy.
    Tree tree = trees::star(12);
    Trace trace;
    for (int i = 0; i < 30000; ++i) {
      trace.push_back(positive(static_cast<NodeId>(1 + i % 12)));
    }
    scenarios.push_back({"cyclic scan", std::move(tree), std::move(trace), 6});
  }
  {  // Zipf: friendly, recency-exploitable; caching clearly pays off.
    Rng rng(5);
    Tree tree = trees::random_recursive(500, rng);
    Trace trace = workload::zipf_trace(tree, 80000, 1.4, 0.05, rng);
    scenarios.push_back({"zipf", std::move(tree), std::move(trace), 80});
  }
  {  // Hot/cold subtree blocks: a subtree turns hot (uniform positives over
     // its nodes — no single node saturates alone), then suffers an update
     // storm (uniform negatives). Pooled counters fetch AND evict the whole
     // cap promptly; LocalTC dismantles caps node by node from the top and
     // keeps paying for updates meanwhile.
    Rng rng(9);
    Tree tree = trees::random_recursive(400, rng);
    Trace trace;
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (tree.subtree_size(v) >= 12 && tree.subtree_size(v) <= 50) {
        candidates.push_back(v);
      }
    }
    for (int block = 0; block < 50; ++block) {
      const NodeId hot = rng.pick(candidates);
      const std::uint32_t m = tree.subtree_size(hot);
      const auto pre = tree.preorder();
      const std::uint32_t base = tree.preorder_index(hot);
      for (std::uint64_t i = 0; i < 60ull * m; ++i) {
        trace.push_back(positive(pre[base + rng.below(m)]));
      }
      for (std::uint64_t i = 0; i < 2 * alpha * m; ++i) {
        trace.push_back(negative(pre[base + rng.below(m)]));
      }
    }
    scenarios.push_back(
        {"hot/cold subtrees", std::move(tree), std::move(trace), 120});
  }
  return scenarios;
}

}  // namespace

int main() {
  sim::print_experiment_banner(
      "E12", "Ablation — aggregate saturation & maximality vs local rules",
      "DESIGN.md S9: quantify the value of counting requests across whole "
      "candidate changesets instead of per node");

  const std::uint64_t alpha = 8;
  ConsoleTable table({"scenario", "algorithm", "service", "reorg", "total",
                      "x TC"});
  for (auto& scenario : make_scenarios(alpha)) {
    std::vector<std::unique_ptr<OnlineAlgorithm>> algorithms;
    algorithms.push_back(std::make_unique<TreeCache>(
        scenario.tree,
        TreeCacheConfig{.alpha = alpha, .capacity = scenario.capacity}));
    algorithms.push_back(std::make_unique<LocalTc>(
        scenario.tree,
        LocalTcConfig{.alpha = alpha, .capacity = scenario.capacity}));
    algorithms.push_back(std::make_unique<LruClosure>(
        scenario.tree,
        LruClosureConfig{.alpha = alpha, .capacity = scenario.capacity}));
    algorithms.push_back(std::make_unique<NeverCache>(scenario.tree));

    double tc_total = 0.0;
    for (const auto& alg : algorithms) {
      const auto result = sim::run_trace(*alg, scenario.trace);
      const auto total = static_cast<double>(result.cost.total());
      if (tc_total == 0.0) tc_total = total;
      table.add_row({scenario.name, std::string(alg->name()),
                     ConsoleTable::fmt(result.cost.service),
                     ConsoleTable::fmt(result.cost.reorg),
                     ConsoleTable::fmt(result.cost.total()),
                     ConsoleTable::fmt(total / tc_total, 2)});
    }
  }
  table.print();
  sim::print_note(
      "reading",
      "cyclic scan: fetch-on-miss collapses (2*alpha churn per request) "
      "while TC stays within ~2x of the bypass floor; hot/cold subtrees: "
      "pooled counters evict stale caps promptly while LocalTC keeps "
      "paying for updates during its node-by-node dismantling");
  return 0;
}
