// Event-space visualizer (Figure 2): runs TC on a line tree and renders the
// partition of the (node × round) space into fields.
//
//   $ ./field_visualizer [nodes] [rounds] [seed]
//
// Rows are tree nodes (root on top, leaf at the bottom, exactly like the
// paper's Figure 2); columns are rounds. '+'/'-' are paid requests, letters
// are the fields their windows belong to, '*' marks the artificial fetch
// of a finished phase, '.' is the open field F∞.
#include <cstdio>
#include <cstdlib>

#include "core/field_tracker.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "workload/generators.hpp"

using namespace treecache;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t rounds =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 120;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  const std::uint64_t alpha = 3;

  const Tree line = trees::path(nodes);
  Rng rng(seed);
  // Mixed positive/negative traffic concentrated low in the line so both
  // fetches and evictions happen.
  const Trace trace = workload::uniform_trace(line, rounds, 0.45, rng);

  TreeCache tc(line, {.alpha = alpha, .capacity = nodes});
  FieldTracker tracker(line, alpha);
  for (const Request& r : trace) tracker.observe(r, tc.step(r));
  tracker.finalize();

  std::printf("TC on a line of %zu nodes, alpha=%llu, %zu rounds\n\n", nodes,
              static_cast<unsigned long long>(alpha), rounds);
  std::fputs(tracker.render_event_space(rounds).c_str(), stdout);

  std::printf("\nfields: %zu\n", tracker.fields().size());
  for (std::size_t i = 0; i < tracker.fields().size(); ++i) {
    const Field& f = tracker.fields()[i];
    std::printf("  %c: %s at round %llu, size %zu, requests %llu "
                "(= size*alpha, Observation 5.2)%s\n",
                f.artificial ? '*' : static_cast<char>('A' + i % 26),
                f.kind == ChangeKind::kFetch ? "fetch" : "evict",
                static_cast<unsigned long long>(f.end_round), f.size(),
                static_cast<unsigned long long>(f.requests),
                f.artificial ? " [artificial]" : "");
  }
  std::puts("\nper-phase accounting (Figure 3 / Lemma 5.11):");
  for (std::size_t i = 0; i < tracker.phases().size(); ++i) {
    const auto& p = tracker.phases()[i];
    std::printf("  phase %zu: p_out=%llu p_in=%llu k_P=%llu  "
                "(p_out = p_in + k_P %s)\n",
                i + 1, static_cast<unsigned long long>(p.p_out),
                static_cast<unsigned long long>(p.p_in),
                static_cast<unsigned long long>(p.k_end),
                p.p_out == p.p_in + p.k_end ? "holds" : "VIOLATED");
  }
  tracker.verify_period_accounting();
  tracker.verify_lemma_5_3(alpha);
  std::puts("Observation 5.2, period accounting and Lemma 5.3 verified.");
  return 0;
}
