// FIB caching scenario (§2, Figure 1): an SDN controller keeps the full
// routing table; a switch caches a subforest of rules. Compares TC against
// the dependency-aware LRU baseline and the no-cache floor on synthetic
// Zipf traffic with BGP-style update churn.
//
//   $ ./fib_caching [rules] [packets] [cache_size]
#include <cstdio>
#include <cstdlib>

#include "baselines/lru_closure.hpp"
#include "baselines/never_cache.hpp"
#include "core/tree_cache.hpp"
#include "fib/rib_gen.hpp"
#include "fib/router_sim.hpp"
#include "util/table.hpp"

using namespace treecache;
using namespace treecache::fib;

int main(int argc, char** argv) {
  const std::size_t rules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const std::size_t packets =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200000;
  const std::size_t cache_size =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 1000;
  const std::uint64_t alpha = 16;

  std::printf("generating synthetic RIB: %zu rules...\n", rules);
  Rng rng(42);
  const auto rib = generate_rib({.rules = rules, .deaggregation = 0.5}, rng);
  const RuleTree rt = build_rule_tree(rib);
  std::printf("rule tree: %zu nodes, height %u, max degree %u\n\n",
              rt.tree.size(), rt.tree.height(), rt.tree.max_degree());

  const RouterSimConfig sim_config{.packets = packets,
                                   .zipf_skew = 1.05,
                                   .update_probability = 0.005,
                                   .alpha = alpha,
                                   .seed = 7};

  ConsoleTable table({"algorithm", "hit rate", "misses", "updates paid",
                      "service", "reorg", "total cost"});
  auto run = [&](OnlineAlgorithm& alg) {
    const RouterSimResult r = run_router_sim(rt, alg, sim_config);
    if (r.forwarding_errors != 0) {
      std::fprintf(stderr, "FORWARDING ERRORS: %llu\n",
                   static_cast<unsigned long long>(r.forwarding_errors));
      std::exit(1);
    }
    table.add_row({std::string(alg.name()),
                   ConsoleTable::fmt(1.0 - r.miss_rate(), 4),
                   ConsoleTable::fmt(r.misses),
                   ConsoleTable::fmt(r.cached_updates),
                   ConsoleTable::fmt(r.algorithm_cost.service),
                   ConsoleTable::fmt(r.algorithm_cost.reorg),
                   ConsoleTable::fmt(r.algorithm_cost.total())});
  };

  TreeCache tc(rt.tree, {.alpha = alpha, .capacity = cache_size});
  LruClosure lru(rt.tree, {.alpha = alpha, .capacity = cache_size});
  LruClosure lru_inv(rt.tree, {.alpha = alpha,
                               .capacity = cache_size,
                               .evict_on_negative = true});
  NeverCache none(rt.tree);
  run(tc);
  run(lru);
  run(lru_inv);
  run(none);

  std::printf("switch cache: %zu of %zu rules (%.1f%%), alpha = %llu\n\n",
              cache_size, rt.tree.size(),
              100.0 * static_cast<double>(cache_size) /
                  static_cast<double>(rt.tree.size()),
              static_cast<unsigned long long>(alpha));
  table.print();
  std::puts("\n(forwarding correctness was verified for every packet:\n"
            " LPM over the cached subforest never picked a wrong rule)");
  return 0;
}
