// Appendix C reduction demo: classic paging and tree caching simulate each
// other within constant factors.
//
//   $ ./paging_reduction [pages] [cache] [requests]
//
// Direction 1 (lifting): a paging sequence over N pages becomes a tree
// caching instance on a star (page p -> alpha positive requests to leaf
// p+1). TC's cost then tracks a paging algorithm's fault count times
// Theta(alpha).
// Direction 2 (certification): Belady's fault count lower-bounds what any
// offline tree-caching solution must pay on the lifted instance, up to the
// same factor.
#include <cstdio>
#include <cstdlib>

#include "baselines/paging.hpp"
#include "core/tree_cache.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"

using namespace treecache;

int main(int argc, char** argv) {
  const std::size_t pages = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t k = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const std::size_t requests =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 5000;
  const std::uint64_t alpha = 8;

  // A Zipf-ish paging workload.
  Rng rng(99);
  std::vector<PageId> sequence(requests);
  for (auto& p : sequence) {
    // Repeated squaring of a uniform skews towards small page ids.
    const double u = rng.uniform01();
    p = static_cast<PageId>(static_cast<double>(pages) * u * u);
    if (p >= pages) p = static_cast<PageId>(pages - 1);
  }

  // Classic paging algorithms on the raw sequence.
  LruPaging lru(k);
  FifoPaging fifo(k);
  FwfPaging fwf(k);
  for (const PageId p : sequence) {
    lru.access(p);
    fifo.access(p);
    fwf.access(p);
  }
  const std::uint64_t opt_faults = belady_faults(sequence, k);

  // The lifted tree-caching instance on a star.
  const Tree star = trees::star(pages);
  const Trace lifted = workload::lift_paging_sequence(sequence, alpha);
  TreeCache tc(star, {.alpha = alpha, .capacity = k});
  const Cost tc_cost = sim::run_trace(tc, lifted).cost;

  std::printf("paging: %zu pages, cache %zu, %zu requests, alpha = %llu\n\n",
              pages, k, requests, static_cast<unsigned long long>(alpha));
  ConsoleTable table({"algorithm", "setting", "cost", "cost/alpha",
                      "vs Belady"});
  auto row = [&](const char* name, const char* setting, std::uint64_t cost,
                 bool scale_by_alpha) {
    const double in_faults =
        scale_by_alpha
            ? static_cast<double>(cost) / static_cast<double>(alpha)
            : static_cast<double>(cost);
    table.add_row({name, setting, ConsoleTable::fmt(cost),
                   ConsoleTable::fmt(in_faults, 1),
                   ConsoleTable::fmt(
                       in_faults / static_cast<double>(opt_faults), 2)});
  };
  row("LRU", "paging", lru.faults(), false);
  row("FIFO", "paging", fifo.faults(), false);
  row("FWF", "paging", fwf.faults(), false);
  row("Belady (OPT)", "paging", opt_faults, false);
  row("TC", "lifted tree instance", tc_cost.total(), true);
  table.print();

  std::puts(
      "\nAppendix C: TC's cost on the lifted instance, measured in units of\n"
      "alpha, is within a constant factor of the paging fault counts — the\n"
      "reduction preserves competitive ratios both ways, which is how the\n"
      "paper inherits the Omega(k/(k-h+1)) lower bound from paging.");
  return 0;
}
