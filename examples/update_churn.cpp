// Rule-update churn study (Appendix B): how update rate affects the cost
// split, and the canonicalization factor on a realistic FIB workload.
//
//   $ ./update_churn [rules] [events]
#include <cstdio>
#include <cstdlib>

#include "core/tree_cache.hpp"
#include "fib/canonicalizer.hpp"
#include "fib/rib_gen.hpp"
#include "fib/traffic.hpp"
#include "util/table.hpp"

using namespace treecache;
using namespace treecache::fib;

int main(int argc, char** argv) {
  const std::size_t rules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  const std::size_t events =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 100000;
  const std::uint64_t alpha = 12;
  const std::size_t capacity = 400;

  Rng rng(9);
  const auto rib = generate_rib({.rules = rules, .deaggregation = 0.5}, rng);
  const RuleTree rt = build_rule_tree(rib);
  std::printf("rule tree: %zu nodes, height %u\n\n", rt.tree.size(),
              rt.tree.height());

  ConsoleTable table({"update prob", "chunks", "dirty chunks", "TC cost",
                      "canonical cost", "canonical/raw", "<= 2?"});
  for (const double update_prob : {0.0, 0.002, 0.01, 0.05, 0.2}) {
    Rng wl(100 + static_cast<std::uint64_t>(update_prob * 10000));
    const ChunkedTrace workload = make_fib_workload(
        rt,
        {.events = events, .zipf_skew = 1.0,
         .update_probability = update_prob, .alpha = alpha},
        wl);
    TreeCache tc(rt.tree, {.alpha = alpha, .capacity = capacity});
    const CanonicalizationReport report =
        run_canonicalized(rt.tree, workload, tc);
    table.add_row(
        {ConsoleTable::fmt(update_prob, 3), ConsoleTable::fmt(report.chunks),
         ConsoleTable::fmt(report.dirty_chunks),
         ConsoleTable::fmt(report.raw_cost.total()),
         ConsoleTable::fmt(report.canonical_cost.total()),
         ConsoleTable::fmt(report.ratio(), 3),
         report.ratio() <= 2.0 ? "yes" : "NO"});
  }
  table.print();
  std::puts("\nAppendix B: postponing mid-chunk cache changes to chunk ends\n"
            "(canonicalization) costs at most a factor of 2 — measured far\n"
            "below that in practice.");
  return 0;
}
