// Quickstart: build a tree, run the TC algorithm by hand, watch the cache.
//
//   $ ./quickstart
//
// Walks through the rent-or-buy behaviour of TC on a tiny tree, printing
// the cache and counters after every request — the "hello world" of the
// library's public API.
#include <cstdio>

#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "tree/tree_io.hpp"

using namespace treecache;

namespace {
void show(const TreeCache& tc) {
  const Tree& tree = tc.tree();
  const std::string art = to_ascii(tree, [&](NodeId v) {
    std::string note = tc.cache().contains(v) ? "[cached" : "[";
    if (tc.counter(v) > 0) {
      note += (note.size() > 1 ? ", " : "");
      note += "cnt=" + std::to_string(tc.counter(v));
    }
    note += "]";
    return note == "[]" ? std::string{} : note;
  });
  std::fputs(art.c_str(), stdout);
  std::printf("cost so far: service=%llu reorg=%llu\n\n",
              static_cast<unsigned long long>(tc.cost().service),
              static_cast<unsigned long long>(tc.cost().reorg));
}
}  // namespace

int main() {
  // The universe: a small tree of dependent items. Caching a node requires
  // caching its whole subtree (think: an IP rule and all more-specific
  // rules below it).
  //
  //        0
  //        ├─ 1
  //        │  ├─ 3
  //        │  └─ 4
  //        └─ 2
  const Tree tree = from_parent_string("-1 0 0 1 1");

  // alpha = 2: fetching or evicting one node costs 2; capacity = 4 nodes.
  TreeCache tc(tree, {.alpha = 2, .capacity = 4});

  std::puts("== fresh cache ==");
  show(tc);

  std::puts("== two positive requests at leaf 3: counter pays for a fetch ==");
  tc.step(positive(3));
  tc.step(positive(3));  // cnt(3) reaches alpha -> fetch {3}
  show(tc);

  std::puts("== requests at 4 and 1 pool their counters (saturation) ==");
  tc.step(positive(4));
  tc.step(positive(1));
  tc.step(positive(1));  // cnt{1,4} = 3 < 2*2... one more needed
  tc.step(positive(4));  // P(1) = {1,4} saturated -> fetch both at once
  show(tc);

  std::puts("== negative requests (rule updates) evict the stale cap ==");
  tc.step(negative(1));
  tc.step(negative(1));
  tc.step(negative(3));
  tc.step(negative(3));  // H(1) = {1,3,4}? val decides; watch the cache
  show(tc);

  std::puts("== phase statistics ==");
  for (std::size_t i = 0; i < tc.phases().size(); ++i) {
    const PhaseStats& p = tc.phases()[i];
    std::printf("phase %zu: rounds %llu..%llu %s fetches=%llu evictions=%llu\n",
                i + 1, static_cast<unsigned long long>(p.first_round),
                static_cast<unsigned long long>(p.last_round),
                p.finished ? "(finished)" : "(open)",
                static_cast<unsigned long long>(p.fetches),
                static_cast<unsigned long long>(p.evictions));
  }
  return 0;
}
