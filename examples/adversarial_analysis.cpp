// Lower-bound analysis (Theorem C.1): runs the adaptive paging adversary
// against TC on a star tree and compares with the exact offline optimum,
// sweeping the offline cache size k_OPT.
//
//   $ ./adversarial_analysis [k_onl] [chunks]
#include <cstdio>
#include <cstdlib>

#include "baselines/opt_offline.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/table.hpp"
#include "workload/adversary.hpp"

using namespace treecache;

int main(int argc, char** argv) {
  const std::size_t k_onl = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t chunks =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 120;
  const std::uint64_t alpha = 4;

  if (k_onl > 16) {
    std::fputs("k_onl > 16 makes the exact OPT DP intractable\n", stderr);
    return 1;
  }

  const Tree star = trees::star(k_onl + 1);
  TreeCache tc(star, {.alpha = alpha, .capacity = k_onl});
  const Trace trace =
      workload::run_paging_adversary(tc, star, alpha, chunks);

  std::printf("adversarial instance: star over %zu leaves, alpha=%llu, "
              "%zu chunks (%zu requests)\n",
              k_onl + 1, static_cast<unsigned long long>(alpha), chunks,
              trace.size());
  std::printf("TC cost: %llu (service %llu, reorg %llu)\n\n",
              static_cast<unsigned long long>(tc.cost().total()),
              static_cast<unsigned long long>(tc.cost().service),
              static_cast<unsigned long long>(tc.cost().reorg));

  ConsoleTable table({"k_OPT", "OPT cost", "ratio TC/OPT",
                      "R = k/(k-k_OPT+1)"});
  for (std::size_t k_opt = 1; k_opt <= k_onl; ++k_opt) {
    const std::uint64_t opt =
        opt_offline_cost(star, trace, {.alpha = alpha, .capacity = k_opt});
    const double ratio = static_cast<double>(tc.cost().total()) /
                         static_cast<double>(opt);
    const double r = static_cast<double>(k_onl) /
                     static_cast<double>(k_onl - k_opt + 1);
    table.add_row({ConsoleTable::fmt(static_cast<std::uint64_t>(k_opt)),
                   ConsoleTable::fmt(opt), ConsoleTable::fmt(ratio, 2),
                   ConsoleTable::fmt(r, 2)});
  }
  table.print();
  std::puts("\nThe measured ratio tracks R (Theorem C.1: no deterministic\n"
            "algorithm can beat Ω(R); Theorem 5.15: TC is within O(h·R)).");
  return 0;
}
