// Utility substrate: epoch arrays, RNG determinism and distribution sanity,
// parallel_for semantics, stopwatch monotonicity.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "core/counter_table.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace treecache {
namespace {

TEST(EpochArray, DefaultsAndWrites) {
  EpochArray<std::int64_t> arr(4, -7);
  EXPECT_EQ(arr.get(0), -7);
  arr.set(0, 3);
  arr.add(1, 10);  // default -7 + 10
  EXPECT_EQ(arr.get(0), 3);
  EXPECT_EQ(arr.get(1), 3);
  EXPECT_EQ(arr.get(2), -7);
}

TEST(EpochArray, ResetAllIsConstantTimeObservable) {
  EpochArray<std::uint64_t> arr(8, 0);
  for (std::size_t i = 0; i < 8; ++i) arr.set(i, i + 1);
  arr.reset_all();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(arr.get(i), 0u);
  // Writes after the reset stick.
  arr.set(3, 42);
  EXPECT_EQ(arr.get(3), 42u);
  EXPECT_EQ(arr.get(4), 0u);
}

TEST(EpochArray, SurvivesManyEpochs) {
  EpochArray<std::uint32_t> arr(2, 9);
  for (int epoch = 0; epoch < 100000; ++epoch) {
    arr.set(0, 1);
    arr.reset_all();
  }
  EXPECT_EQ(arr.get(0), 9u);
}

TEST(EpochArray, EpochWraparoundClearsStaleSlots) {
  // After 2^32 − 1 resets the epoch counter wraps to 0 and reset_all() must
  // really clear the arrays: a slot stamped in epoch 1 of the PREVIOUS lap
  // would otherwise be resurrected once the counter reaches 1 again.
  EpochArray<std::int64_t> arr(3, -5);
  arr.set(0, 77);  // stamped with epoch 1
  arr.debug_set_epoch(std::numeric_limits<std::uint32_t>::max());
  arr.set(1, 88);  // stamped with the final pre-wrap epoch
  arr.reset_all();  // wraps: must fall back to an O(n) clear
  EXPECT_EQ(arr.debug_epoch(), 1u);
  EXPECT_EQ(arr.get(0), -5);  // NOT 77, despite stamp == epoch == 1 pre-clear
  EXPECT_EQ(arr.get(1), -5);
  EXPECT_EQ(arr.get(2), -5);
  // The wrapped instance behaves like a fresh one.
  arr.add(0, 6);
  EXPECT_EQ(arr.get(0), 1);
  arr.reset_all();
  EXPECT_EQ(arr.get(0), -5);
}

TEST(CounterTable, IncrementAndPhaseReset) {
  CounterTable counters(3);
  EXPECT_EQ(counters.increment(1), 1u);
  EXPECT_EQ(counters.increment(1), 2u);
  counters.reset(1);
  EXPECT_EQ(counters.get(1), 0u);
  counters.increment(0);
  counters.increment(2);
  counters.reset_all();
  EXPECT_EQ(counters.get(0), 0u);
  EXPECT_EQ(counters.get(2), 0u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (const int b : buckets) EXPECT_NEAR(b, 10000, 500);
  EXPECT_THROW(rng.below(0), CheckFailure);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
  EXPECT_THROW(rng.uniform_int(3, 1), CheckFailure);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(17);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child1() == child2() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Parallel, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(256);
  parallel_for(256, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(64,
                            [](std::size_t i) {
                              if (i % 7 == 3) throw CheckFailure("boom");
                            }),
               CheckFailure);
}

TEST(Parallel, ZeroTasksIsFine) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Stopwatch, TimeMovesForward) {
  Stopwatch watch;
  const double t0 = watch.seconds();
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  ASSERT_GT(sink, 0.0);  // keep the loop alive
  const double t1 = watch.seconds();
  EXPECT_GE(t1, t0);
  watch.restart();
  EXPECT_LE(watch.seconds(), t1 + 1.0);
}

}  // namespace
}  // namespace treecache
