// Cross-validation of the efficient TreeCache (§6 data structures) against
// the recompute-from-scratch NaiveTreeCache, plus specification checking
// against the raw definition of TC via exhaustive changeset enumeration.
//
// These parameterized suites are the primary defense against bugs in the
// incremental P_t(u) / H_t(u) maintenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/invariant_checker.hpp"
#include "core/naive_tree_cache.hpp"
#include "core/trace.hpp"
#include "core/tree_cache.hpp"
#include "core/tree_cache_legacy.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

std::vector<NodeId> sorted(std::span<const NodeId> nodes) {
  std::vector<NodeId> v(nodes.begin(), nodes.end());
  std::sort(v.begin(), v.end());
  return v;
}

Tree make_tree(const std::string& shape, std::uint64_t seed) {
  Rng rng(seed);
  if (shape == "path") return trees::path(9);
  if (shape == "star") return trees::star(8);
  if (shape == "binary") return trees::complete_kary(3, 2);
  if (shape == "ternary") return trees::complete_kary(2, 3);
  if (shape == "caterpillar") return trees::caterpillar(3, 2);
  if (shape == "spider") return trees::spider(3, 3);
  if (shape == "random") return trees::random_recursive(10, rng);
  if (shape == "randomdeg2") return trees::random_bounded_degree(10, 2, rng);
  throw CheckFailure("unknown shape " + shape);
}

Trace random_trace(const Tree& tree, std::size_t length, double negative_frac,
                   Rng& rng) {
  Trace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const auto v = static_cast<NodeId>(rng.below(tree.size()));
    const Sign s =
        rng.chance(negative_frac) ? Sign::kNegative : Sign::kPositive;
    trace.push_back(Request{v, s});
  }
  return trace;
}

using EquivalenceParam =
    std::tuple<std::string /*shape*/, std::uint64_t /*alpha*/,
               std::size_t /*capacity*/, double /*negative fraction*/>;

class TcEquivalence : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(TcEquivalence, MatchesNaiveAndSpecification) {
  const auto& [shape, alpha, capacity, negative_frac] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Tree tree = make_tree(shape, seed);
    Rng rng(seed * 7919 + alpha);
    const Trace trace = random_trace(tree, 220, negative_frac, rng);

    TreeCache fast(tree, {.alpha = alpha, .capacity = capacity});
    NaiveTreeCache naive(tree, {.alpha = alpha, .capacity = capacity});
    SpecChecker checker(tree, alpha, capacity, /*max_enum_candidates=*/10);

    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Request r = trace[i];
      const StepOutcome a = fast.step(r);
      const StepOutcome b = naive.step(r);

      ASSERT_EQ(a.paid, b.paid) << shape << " seed " << seed << " round " << i;
      ASSERT_EQ(a.change, b.change)
          << shape << " seed " << seed << " round " << i;
      ASSERT_EQ(sorted(a.changed), sorted(b.changed))
          << shape << " seed " << seed << " round " << i;
      ASSERT_EQ(a.aborted_fetch_size, b.aborted_fetch_size);
      ASSERT_EQ(fast.cache().as_vector(), naive.cache().as_vector());
      ASSERT_EQ(fast.cost(), naive.cost());

      ASSERT_NO_THROW(checker.observe(r, a))
          << shape << " seed " << seed << " round " << i;
      ASSERT_EQ(checker.mirror_cache().as_vector(), fast.cache().as_vector());
    }
    // The small trees in this suite must have exercised the exhaustive
    // enumeration path — otherwise the suite checks less than it claims.
    EXPECT_GT(checker.exhaustive_rounds(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TcEquivalence,
    ::testing::Combine(
        ::testing::Values("path", "star", "binary", "ternary", "caterpillar",
                          "spider", "random", "randomdeg2"),
        ::testing::Values<std::uint64_t>(1, 2, 4),
        ::testing::Values<std::size_t>(1, 3, 6, 100),
        ::testing::Values(0.0, 0.35, 0.75)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& param_info) {
      return std::get<0>(param_info.param) + "_a" +
             std::to_string(std::get<1>(param_info.param)) + "_k" +
             std::to_string(std::get<2>(param_info.param)) + "_n" +
             std::to_string(
                 static_cast<int>(std::get<3>(param_info.param) * 100));
    });

// Deeper randomized sweep on bigger trees without enumeration (naive
// comparison only), to push the incremental structures harder.
TEST(TcEquivalenceLarge, RandomTreesLongTraces) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Tree tree = trees::random_recursive(120, rng);
    const std::uint64_t alpha = 1 + rng.below(5);
    const std::size_t capacity = 1 + rng.below(tree.size());
    const Trace trace = random_trace(tree, 3000, 0.4, rng);

    TreeCache fast(tree, {.alpha = alpha, .capacity = capacity});
    NaiveTreeCache naive(tree, {.alpha = alpha, .capacity = capacity});
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const StepOutcome a = fast.step(trace[i]);
      const StepOutcome b = naive.step(trace[i]);
      ASSERT_EQ(a.paid, b.paid) << "seed " << seed << " round " << i;
      ASSERT_EQ(a.change, b.change) << "seed " << seed << " round " << i;
      ASSERT_EQ(sorted(a.changed), sorted(b.changed))
          << "seed " << seed << " round " << i;
      ASSERT_TRUE(fast.cache().is_valid());
    }
    ASSERT_EQ(fast.cost(), naive.cost());
  }
}

// The preorder-SoA TreeCache against the frozen pre-SoA LegacyTreeCache:
// only the memory layout moved, so every round must agree on payment,
// change kind, changeset (as a set — collection order is layout-defined),
// cache content, cost, phase boundaries, and the white-box aggregates.
TEST(TcEquivalenceLayout, MatchesLegacyNodeIdLayoutExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 101);
    const Tree tree = trees::random_recursive(100, rng);
    const std::uint64_t alpha = 1 + rng.below(4);
    const std::size_t capacity = 1 + rng.below(tree.size() / 2);
    const Trace trace = random_trace(tree, 2500, 0.4, rng);

    TreeCache soa(tree, {.alpha = alpha, .capacity = capacity});
    LegacyTreeCache legacy(tree, {.alpha = alpha, .capacity = capacity});
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const StepOutcome a = soa.step(trace[i]);
      const StepOutcome b = legacy.step(trace[i]);
      ASSERT_EQ(a.paid, b.paid) << "seed " << seed << " round " << i;
      ASSERT_EQ(a.change, b.change) << "seed " << seed << " round " << i;
      ASSERT_EQ(sorted(a.changed), sorted(b.changed))
          << "seed " << seed << " round " << i;
      ASSERT_EQ(sorted(a.aborted_fetch), sorted(b.aborted_fetch))
          << "seed " << seed << " round " << i;
      ASSERT_EQ(a.aborted_fetch_size, b.aborted_fetch_size);
      const NodeId v = trace[i].node;
      ASSERT_EQ(soa.counter(v), legacy.counter(v));
      if (soa.cache().contains(v)) {
        ASSERT_EQ(soa.debug_hI(v), legacy.debug_hI(v));
        ASSERT_EQ(soa.debug_hS(v), legacy.debug_hS(v));
      } else {
        ASSERT_EQ(soa.debug_pcnt(v), legacy.debug_pcnt(v));
        ASSERT_EQ(soa.debug_psize(v), legacy.debug_psize(v));
      }
    }
    ASSERT_EQ(soa.cost(), legacy.cost());
    ASSERT_EQ(soa.cache().as_vector(), legacy.cache().as_vector());
    ASSERT_EQ(soa.phases().size(), legacy.phases().size());
    for (std::size_t p = 0; p < soa.phases().size(); ++p) {
      ASSERT_EQ(soa.phases()[p].first_round, legacy.phases()[p].first_round);
      ASSERT_EQ(soa.phases()[p].last_round, legacy.phases()[p].last_round);
      ASSERT_EQ(soa.phases()[p].k_end, legacy.phases()[p].k_end);
      ASSERT_EQ(soa.phases()[p].fetches, legacy.phases()[p].fetches);
      ASSERT_EQ(soa.phases()[p].evictions, legacy.phases()[p].evictions);
    }
  }
}

// Hot-path skew: repeated positive requests concentrated on few nodes mixed
// with negative bursts at the cached tree tops.
TEST(TcEquivalenceLarge, SkewedHotspotTraces) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 31);
    const Tree tree = trees::random_bounded_degree(80, 3, rng);
    const std::uint64_t alpha = 2 + rng.below(3);
    const std::size_t capacity = 10 + rng.below(30);

    Trace trace;
    const auto leaves = tree.leaves();
    for (int block = 0; block < 60; ++block) {
      const NodeId hot = rng.pick(leaves);
      for (int i = 0; i < 12; ++i) {
        // Hammer the hot leaf and its ancestors with positives, then send
        // negatives at low-depth nodes to provoke evictions.
        trace.push_back(positive(hot));
        const auto path = tree.path_to_root(hot);
        trace.push_back(positive(path[rng.below(path.size())]));
        if (rng.chance(0.5)) {
          trace.push_back(
              negative(static_cast<NodeId>(rng.below(tree.size()))));
        }
      }
    }

    TreeCache fast(tree, {.alpha = alpha, .capacity = capacity});
    NaiveTreeCache naive(tree, {.alpha = alpha, .capacity = capacity});
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const StepOutcome a = fast.step(trace[i]);
      const StepOutcome b = naive.step(trace[i]);
      ASSERT_EQ(a.paid, b.paid) << "seed " << seed << " round " << i;
      ASSERT_EQ(a.change, b.change) << "seed " << seed << " round " << i;
      ASSERT_EQ(sorted(a.changed), sorted(b.changed))
          << "seed " << seed << " round " << i;
    }
    ASSERT_EQ(fast.cost(), naive.cost());
    ASSERT_EQ(fast.cache().as_vector(), naive.cache().as_vector());
  }
}

}  // namespace
}  // namespace treecache
