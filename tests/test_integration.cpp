// End-to-end integration: the whole stack wired together — FIB substrate
// driving TC with specification checking, field tracking, shifting and
// certificates on one run; determinism; reset-equivalence; trace-file
// round trips through the algorithms.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/opt_bound.hpp"
#include "analysis/shifting.hpp"
#include "baselines/local_tc.hpp"
#include "baselines/lru_closure.hpp"
#include "core/field_tracker.hpp"
#include "core/invariant_checker.hpp"
#include "core/tree_cache.hpp"
#include "fib/rib_gen.hpp"
#include "fib/router_sim.hpp"
#include "fib/rule_tree.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

TEST(Integration, FullStackOnSmallRuleTree) {
  // A small synthetic RIB so the SpecChecker's exhaustive enumeration can
  // engage, with every analysis layer attached at once.
  Rng rng(1234);
  std::vector<fib::Prefix> prefixes;
  for (const char* text :
       {"10.0.0.0/8", "10.1.0.0/16", "10.1.1.0/24", "10.2.0.0/16",
        "192.168.0.0/16", "192.168.1.0/24", "172.16.0.0/12"}) {
    prefixes.push_back(fib::Prefix::parse(text));
  }
  const fib::RuleTree rt = fib::build_rule_tree(prefixes);
  ASSERT_EQ(rt.tree.size(), 8u);

  const std::uint64_t alpha = 2;
  const std::size_t capacity = 4;
  TreeCache tc(rt.tree, {.alpha = alpha, .capacity = capacity});
  SpecChecker checker(rt.tree, alpha, capacity, /*max_enum_candidates=*/8);
  FieldTracker tracker(rt.tree, alpha);

  const Trace trace = workload::uniform_trace(rt.tree, 800, 0.4, rng);
  for (const Request& r : trace) {
    const StepOutcome out = tc.step(r);
    ASSERT_NO_THROW(checker.observe(r, out));
    tracker.observe(r, out);
  }
  tracker.finalize();
  EXPECT_GT(checker.exhaustive_rounds(), 0u);
  tracker.verify_period_accounting();
  tracker.verify_lemma_5_3(alpha);

  for (const Field& field : tracker.fields()) {
    if (field.artificial) continue;
    const auto slots = tracker.field_slots(field);
    if (field.positive()) {
      EXPECT_NO_THROW((void)analysis::shift_positive_field_down(
          rt.tree, field, slots, alpha));
    } else {
      EXPECT_NO_THROW((void)analysis::shift_negative_field_up(
          rt.tree, field, slots, alpha));
    }
  }
  const std::uint64_t certificate = analysis::certified_opt_lower_bound(
      tracker, rt.tree.height(), {.alpha = alpha, .k_opt = capacity});
  EXPECT_LE(certificate, tc.cost().total());
}

TEST(Integration, DeterministicAcrossIdenticalRuns) {
  Rng rng(55);
  const Tree tree = trees::random_recursive(100, rng);
  const Trace trace = workload::zipf_trace(tree, 5000, 1.0, 0.3, rng);

  TreeCache a(tree, {.alpha = 4, .capacity = 20});
  TreeCache b(tree, {.alpha = 4, .capacity = 20});
  for (const Request& r : trace) {
    const StepOutcome oa = a.step(r);
    const StepOutcome ob = b.step(r);
    ASSERT_EQ(oa.paid, ob.paid);
    ASSERT_EQ(oa.change, ob.change);
    ASSERT_TRUE(std::equal(oa.changed.begin(), oa.changed.end(),
                           ob.changed.begin(), ob.changed.end()));
  }
  EXPECT_EQ(a.cost(), b.cost());
}

TEST(Integration, ResetIsEquivalentToFreshInstance) {
  Rng rng(66);
  const Tree tree = trees::random_recursive(60, rng);
  const Trace warmup = workload::uniform_trace(tree, 2000, 0.5, rng);
  const Trace trace = workload::uniform_trace(tree, 2000, 0.5, rng);

  TreeCache reused(tree, {.alpha = 3, .capacity = 10});
  (void)sim::run_trace(reused, warmup);
  reused.reset();
  const Cost after_reset = sim::run_trace(reused, trace).cost;

  TreeCache fresh(tree, {.alpha = 3, .capacity = 10});
  const Cost fresh_cost = sim::run_trace(fresh, trace).cost;
  EXPECT_EQ(after_reset, fresh_cost);
  EXPECT_EQ(reused.cache().as_vector(), fresh.cache().as_vector());
}

TEST(Integration, TraceFileRoundTripPreservesCosts) {
  Rng rng(77);
  const Tree tree = trees::random_recursive(50, rng);
  const Trace trace = workload::update_churn_trace(tree, 3000, 1.0, 6, 0.1,
                                                   rng);
  std::stringstream buffer;
  save_trace(buffer, trace);
  const Trace loaded = load_trace(buffer, tree.size());

  TreeCache a(tree, {.alpha = 6, .capacity = 12});
  TreeCache b(tree, {.alpha = 6, .capacity = 12});
  EXPECT_EQ(sim::run_trace(a, trace).cost, sim::run_trace(b, loaded).cost);
}

TEST(Integration, AllAlgorithmsSurviveAPathologicalMix) {
  // Deep tree, tiny cache, huge alpha, adversarial sign flips — nothing
  // should violate the subforest invariant or capacity.
  Rng rng(88);
  const Tree tree = trees::spider(4, 30);
  Trace trace;
  for (int i = 0; i < 4000; ++i) {
    const auto v = static_cast<NodeId>(rng.below(tree.size()));
    trace.push_back(Request{v, i % 3 == 0 ? Sign::kNegative
                                          : Sign::kPositive});
  }
  TreeCache tc(tree, {.alpha = 64, .capacity = 3});
  LruClosure lru(tree, {.alpha = 64, .capacity = 3});
  LocalTc local(tree, {.alpha = 64, .capacity = 3});
  for (OnlineAlgorithm* alg :
       std::initializer_list<OnlineAlgorithm*>{&tc, &lru, &local}) {
    const auto result = sim::run_trace(*alg, trace, {}, true);
    EXPECT_LE(result.max_cache_size, 3u) << alg->name();
  }
}

TEST(Integration, RouterSimAgreesWithTraceDrivenCosts) {
  // The router simulation and a pre-generated workload must charge TC
  // identically for the same random stream.
  Rng rng(99);
  const auto rib = fib::generate_rib({.rules = 300}, rng);
  const fib::RuleTree rt = fib::build_rule_tree(rib);
  const std::uint64_t alpha = 4;

  TreeCache via_sim(rt.tree, {.alpha = alpha, .capacity = 40});
  const auto sim_result = fib::run_router_sim(
      rt, via_sim,
      {.packets = 5000, .zipf_skew = 1.0, .update_probability = 0.02,
       .alpha = alpha, .seed = 42});

  // Every miss feeds exactly one paid positive request; paid negatives are
  // bounded by the α-chunks of updates that hit cached rules.
  EXPECT_GE(sim_result.algorithm_cost.service, sim_result.misses);
  EXPECT_LE(sim_result.algorithm_cost.service,
            sim_result.misses + sim_result.cached_updates * alpha);
  EXPECT_EQ(sim_result.forwarding_errors, 0u);
  EXPECT_GT(sim_result.updates, 0u);
}

}  // namespace
}  // namespace treecache
