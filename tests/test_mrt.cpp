// Binary MRT (RFC 6396) codec, unit-level: encode/decode round trips
// for both families, equivalence with the text-format ingest path,
// fuzz-style truncation over every byte prefix (parse cleanly or error
// with an offset), hostile-input rejection, FeedReader format sniffing
// and byte accounting, counter ground truth at scale, and tail-follow
// over growing text and MRT feeds.
#include "rib/mrt.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rib/feed.hpp"
#include "rib/ingest.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treecache::rib {
namespace {

std::vector<FeedRecord> sample_feed(int family, std::size_t routes = 24,
                                    std::size_t updates = 16,
                                    std::uint64_t seed = 7) {
  SyntheticFeedConfig config;
  config.routes = routes;
  config.updates = updates;
  config.family = family;
  Rng rng(seed);
  return generate_feed(config, rng);
}

void write_file(const std::string& path, const void* data, std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  ASSERT_TRUE(out.good()) << path;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  write_file(path, bytes.data(), bytes.size());
}

void append_file(const std::string& path, const void* data, std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  ASSERT_TRUE(out.good()) << path;
}

std::string feed_text(const std::vector<FeedRecord>& records) {
  std::string text;
  for (const FeedRecord& record : records) {
    text += format_feed_record(record) + "\n";
  }
  return text;
}

IngestResult ingest_records(const std::vector<FeedRecord>& records) {
  IngestResult out;
  for (const FeedRecord& record : records) out.apply(record);
  return out;
}

/// Structural equality of two ingests (stats, live routes, churn) — the
/// "same RIB either way" oracle for format equivalence.
void expect_same_ingest(const IngestResult& a, const IngestResult& b) {
  EXPECT_EQ(a.records, b.records);
  const auto same_family = [](const auto& fa, const auto& fb) {
    EXPECT_EQ(fa.stats.dump_routes, fb.stats.dump_routes);
    EXPECT_EQ(fa.stats.announces, fb.stats.announces);
    EXPECT_EQ(fa.stats.withdraws, fb.stats.withdraws);
    EXPECT_EQ(fa.stats.withdraw_misses, fb.stats.withdraw_misses);
    EXPECT_EQ(fa.stats.replaced_routes, fb.stats.replaced_routes);
    EXPECT_EQ(fa.rib.prefixes(), fb.rib.prefixes());
    EXPECT_EQ(fa.touched, fb.touched);
    EXPECT_EQ(fa.churn, fb.churn);
  };
  same_family(a.v4, b.v4);
  same_family(a.v6, b.v6);
}

// Big-endian byte builders for handcrafted (hostile) records.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}
std::vector<std::uint8_t> mrt_record(std::uint16_t type, std::uint16_t subtype,
                                     const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // timestamp
  put_u16(out, type);
  put_u16(out, subtype);
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

// --- Round trips ---------------------------------------------------------

TEST(MrtCodec, RoundTripsEveryFamily) {
  for (const int family : {4, 6, 46}) {
    SCOPED_TRACE(family);
    const std::vector<FeedRecord> records = sample_feed(family);
    const std::vector<std::uint8_t> bytes = encode_mrt_feed(records);
    const std::vector<FeedRecord> decoded = decode_mrt(bytes);
    EXPECT_EQ(decoded, records);
  }
}

TEST(MrtCodec, MatchesTextPathThroughIngest) {
  const std::string text_path = "/tmp/treecache_test_mrt_eq.feed";
  const std::string mrt_path = "/tmp/treecache_test_mrt_eq.mrt";
  const std::vector<FeedRecord> records = sample_feed(46, 32, 24);
  const std::string text = feed_text(records);
  write_file(text_path, text.data(), text.size());
  write_bytes(mrt_path, encode_mrt_feed(records));

  const IngestResult from_text = ingest_feed({text_path});
  const IngestResult from_mrt = ingest_feed({mrt_path});
  expect_same_ingest(from_text, from_mrt);
  expect_same_ingest(from_text, ingest_records(records));
  std::remove(text_path.c_str());
  std::remove(mrt_path.c_str());
}

// --- Truncation fuzz -----------------------------------------------------

TEST(MrtCodec, EveryTruncationParsesOrNamesAnOffset) {
  const std::vector<FeedRecord> records = sample_feed(46, 6, 8);
  const std::vector<std::uint8_t> bytes = encode_mrt_feed(records);
  const std::vector<FeedRecord> full = decode_mrt(bytes);
  ASSERT_EQ(full, records);

  std::size_t clean = 0;
  std::size_t truncated = 0;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    try {
      const auto partial =
          decode_mrt(std::span(bytes.data(), cut));
      EXPECT_LE(partial.size(), full.size()) << "cut " << cut;
      ++clean;
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << "cut " << cut << ": " << e.what();
      ++truncated;
    }
  }
  // Record boundaries parse cleanly, everything else reports truncation.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(truncated, 0u);
}

// --- Hostile input -------------------------------------------------------

TEST(MrtCodec, RejectsUnknownRecordTypeWithOffset) {
  const auto bytes = mrt_record(99, 0, {});
  try {
    (void)decode_mrt(bytes);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported MRT record type"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(MrtCodec, RejectsHostileRecordLength) {
  std::vector<std::uint8_t> header;
  put_u32(header, 0);
  put_u16(header, kMrtTypeTableDumpV2);
  put_u16(header, kMrtRibIpv4Unicast);
  put_u32(header, 0x7FFFFFFF);  // 2 GB body: rejected before buffering
  EXPECT_THROW((void)decode_mrt(header), CheckFailure);
}

TEST(MrtCodec, RejectsPrefixWiderThanTheFamily) {
  std::vector<std::uint8_t> body;
  put_u32(body, 0);    // sequence
  put_u8(body, 33);    // /33 in IPv4
  put_u32(body, 0);    // "prefix bytes" (5 would be needed)
  put_u8(body, 0);
  put_u16(body, 0);    // no entries
  const auto bytes = mrt_record(kMrtTypeTableDumpV2, kMrtRibIpv4Unicast, body);
  try {
    (void)decode_mrt(bytes);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the address width"),
              std::string::npos)
        << e.what();
  }
}

TEST(MrtCodec, RejectsAttributeOverrun) {
  std::vector<std::uint8_t> body;
  put_u32(body, 0);     // sequence
  put_u8(body, 8);      // /8
  put_u8(body, 10);     // prefix byte
  put_u16(body, 1);     // one entry
  put_u16(body, 0);     // peer index
  put_u32(body, 0);     // originated
  put_u16(body, 200);   // attribute length far past the record end
  const auto bytes = mrt_record(kMrtTypeTableDumpV2, kMrtRibIpv4Unicast, body);
  try {
    (void)decode_mrt(bytes);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("overruns the record"),
              std::string::npos)
        << e.what();
  }
}

TEST(MrtCodec, RejectsTrailingBytesInsideARecord) {
  std::vector<std::uint8_t> body;
  put_u32(body, 0);   // sequence
  put_u8(body, 8);    // /8
  put_u8(body, 10);
  put_u16(body, 0);   // no entries
  put_u8(body, 0);    // stray trailing byte
  const auto bytes = mrt_record(kMrtTypeTableDumpV2, kMrtRibIpv4Unicast, body);
  try {
    (void)decode_mrt(bytes);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("trailing bytes"),
              std::string::npos)
        << e.what();
  }
}

TEST(MrtCodec, RejectsBadBgpMarker) {
  FeedRecord announce;
  announce.op = FeedOp::kAnnounce;
  announce.timestamp = 100;
  announce.prefix4 = fib::Prefix::parse("10.0.0.0/8");
  announce.next_hop = 7;
  std::vector<std::uint8_t> bytes = encode_mrt_feed({announce});
  // BGP4MP_MESSAGE_AS4 body: AS(4)+AS(4)+ifindex(2)+AFI(2)+2*IP(4) = 20
  // bytes, so the marker starts at header(12)+20.
  bytes.at(12 + 20) = 0x00;
  try {
    (void)decode_mrt(bytes);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("marker"), std::string::npos)
        << e.what();
  }
}

TEST(MrtCodec, SkipsUnknownSubtypesAndLegacyTableDump) {
  // An ADDPATH RIB subtype and a legacy TABLE_DUMP record are skipped
  // (length-validated), then the valid records decode as usual.
  std::vector<std::uint8_t> bytes =
      mrt_record(kMrtTypeTableDumpV2, 8, {1, 2, 3, 4, 5});
  const auto legacy = mrt_record(kMrtTypeTableDump, 1, {9, 9, 9});
  bytes.insert(bytes.end(), legacy.begin(), legacy.end());
  const std::vector<FeedRecord> records = sample_feed(4, 4, 2);
  const auto valid = encode_mrt_feed(records);
  bytes.insert(bytes.end(), valid.begin(), valid.end());
  EXPECT_EQ(decode_mrt(bytes), records);
}

TEST(MrtCodec, StateChangeAndNonUpdateMessagesYieldNoRecords) {
  // BGP4MP STATE_CHANGE (subtype 0) and a KEEPALIVE message both parse
  // to zero feed records.
  const auto state_change = mrt_record(kMrtTypeBgp4mp, 0, {0, 1, 0, 2});
  EXPECT_TRUE(decode_mrt(state_change).empty());

  std::vector<std::uint8_t> body;
  put_u32(body, 0);  // peer AS
  put_u32(body, 0);  // local AS
  put_u16(body, 0);  // ifindex
  put_u16(body, 1);  // AFI IPv4
  put_u32(body, 0);  // peer IP
  put_u32(body, 0);  // local IP
  for (int i = 0; i < 16; ++i) put_u8(body, 0xFF);
  put_u16(body, 19);  // bare header
  put_u8(body, 4);    // KEEPALIVE
  const auto keepalive =
      mrt_record(kMrtTypeBgp4mp, kMrtBgp4mpMessageAs4, body);
  EXPECT_TRUE(decode_mrt(keepalive).empty());
}

// --- FeedReader integration ----------------------------------------------

TEST(FeedReaderMrt, SniffsFormatPerFileAndCountsBytes) {
  const std::string text_path = "/tmp/treecache_test_sniff.feed";
  const std::string mrt_path = "/tmp/treecache_test_sniff.mrt";
  const std::vector<FeedRecord> dump = sample_feed(4, 8, 0);
  const std::vector<FeedRecord> updates = sample_feed(4, 4, 6, 11);
  const std::string text = feed_text(dump);
  write_file(text_path, text.data(), text.size());
  write_bytes(mrt_path, encode_mrt_feed(updates));

  FeedReader reader({text_path, mrt_path});
  std::vector<FeedRecord> seen;
  while (const auto record = reader.next()) seen.push_back(*record);
  std::vector<FeedRecord> expected = dump;
  expected.insert(expected.end(), updates.begin(), updates.end());
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(reader.records(), expected.size());
  EXPECT_EQ(reader.bytes(), std::filesystem::file_size(text_path) +
                                std::filesystem::file_size(mrt_path));
  std::remove(text_path.c_str());
  std::remove(mrt_path.c_str());
}

TEST(FeedReaderMrt, TruncatedFileNamesTheOffset) {
  const std::string path = "/tmp/treecache_test_mrt_trunc.mrt";
  const std::vector<std::uint8_t> bytes = encode_mrt_feed(sample_feed(4, 4, 2));
  write_file(path, bytes.data(), bytes.size() - 3);

  FeedReader reader({path});
  try {
    while (reader.next()) {
    }
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated MRT record at offset"), std::string::npos)
        << what;
  }
  std::remove(path.c_str());
}

TEST(MrtCodec, CountersMatchGroundTruthAtScale) {
  // Past-16-bit scale: exact counter equality against the generator's
  // ground truth, plus byte accounting against the file size.
  const std::string path = "/tmp/treecache_test_mrt_scale.mrt";
  SyntheticFeedConfig config;
  config.routes = 70000;
  config.updates = 9000;
  config.family = 4;
  Rng rng(23);
  const std::vector<FeedRecord> records = generate_feed(config, rng);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    MrtWriter writer(out);
    for (const FeedRecord& record : records) writer.write(record);
    ASSERT_TRUE(out.good());
  }
  const IngestResult result = ingest_feed({path});
  EXPECT_EQ(result.records, std::uint64_t{70000 + 9000});
  EXPECT_EQ(result.v4.stats.dump_routes, 70000u);
  EXPECT_EQ(result.v4.stats.updates(), 9000u);
  EXPECT_EQ(result.bytes, std::filesystem::file_size(path));
  EXPECT_EQ(result.v4.rib.size(),
            result.v4.stats.dump_routes + result.v4.stats.announces -
                result.v4.stats.replaced_routes - result.v4.stats.withdraws);
  // The memory audit accessors cover the allocation, not just the count.
  EXPECT_GE(result.v4.rib.memory_bytes(),
            result.v4.rib.node_count() * sizeof(std::uint32_t));
  std::remove(path.c_str());
}

TEST(MrtWriterChecks, TimestampMustFitTheHeader) {
  FeedRecord record;
  record.op = FeedOp::kAnnounce;
  record.timestamp = 0x1'0000'0000ull;  // 2106 and beyond
  record.prefix4 = fib::Prefix::parse("10.0.0.0/8");
  std::ostringstream out;
  MrtWriter writer(out);
  EXPECT_THROW(writer.write(record), CheckFailure);
}

// --- Tail-follow ---------------------------------------------------------

TEST(FeedFollow, TailsAGrowingTextFeed) {
  const std::string path = "/tmp/treecache_test_follow.feed";
  const std::string head = "TABLE_DUMP|10.0.0.0/8|1\n1704067200|announce|10.1";
  write_file(path, head.data(), head.size());  // second line cut mid-prefix

  FeedReader reader({path});
  reader.follow({.poll = std::chrono::milliseconds(2),
                 .idle = std::chrono::milliseconds(2000)});
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->op, FeedOp::kDump);

  // Complete the partial line (and add one more record) while the
  // reader is blocked polling for growth.
  std::thread writer([&path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const std::string tail = ".0.0/16|2\n1704067201|withdraw|10.0.0.0/8\n";
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  });
  const auto second = reader.next();
  writer.join();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->op, FeedOp::kAnnounce);
  EXPECT_EQ(second->prefix4, fib::Prefix::parse("10.1.0.0/16"));
  const auto third = reader.next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->op, FeedOp::kWithdraw);

  // Writer idle: the follower gives up after the idle deadline.
  reader.follow({.poll = std::chrono::milliseconds(2),
                 .idle = std::chrono::milliseconds(20)});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records(), 3u);
  EXPECT_EQ(reader.bytes(), std::filesystem::file_size(path));
  std::remove(path.c_str());
}

TEST(FeedFollow, TailsAGrowingMrtFeed) {
  const std::string path = "/tmp/treecache_test_follow.mrt";
  const std::vector<FeedRecord> records = sample_feed(4, 2, 2);
  ASSERT_EQ(records.size(), 4u);
  const std::vector<std::uint8_t> all = encode_mrt_feed(records);
  // Streaming encodes are byte-prefixes of each other, so the size of
  // the first-record encode is a record boundary inside `all`.
  const std::size_t boundary =
      encode_mrt_feed({records[0]}).size();
  write_file(path, all.data(), boundary + 5);  // second record cut short

  FeedReader reader({path});
  reader.follow({.poll = std::chrono::milliseconds(2),
                 .idle = std::chrono::milliseconds(2000)});
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, records[0]);

  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    append_file(path, all.data() + boundary + 5, all.size() - boundary - 5);
  });
  for (std::size_t i = 1; i < records.size(); ++i) {
    const auto record = reader.next();
    ASSERT_TRUE(record.has_value()) << i;
    EXPECT_EQ(*record, records[i]) << i;
  }
  writer.join();
  reader.follow({.poll = std::chrono::milliseconds(2),
                 .idle = std::chrono::milliseconds(20)});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.bytes(), std::filesystem::file_size(path));
  std::remove(path.c_str());
}

TEST(FeedFollow, IdleExpiryWithPartialMrtRecordThrows) {
  // A writer that dies mid-record is a truncation, not a clean end.
  const std::string path = "/tmp/treecache_test_follow_trunc.mrt";
  const std::vector<std::uint8_t> bytes = encode_mrt_feed(sample_feed(4, 3, 0));
  write_file(path, bytes.data(), bytes.size() - 2);

  FeedReader reader({path});
  reader.follow({.poll = std::chrono::milliseconds(2),
                 .idle = std::chrono::milliseconds(20)});
  try {
    while (reader.next()) {
    }
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("truncated MRT record"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(FeedFollow, IngestFeedFollowOverloadDrainsThenStops) {
  const std::string path = "/tmp/treecache_test_follow_ingest.feed";
  const std::vector<FeedRecord> records = sample_feed(4, 6, 4);
  const std::string text = feed_text(records);
  write_file(path, text.data(), text.size());

  const IngestResult result =
      ingest_feed({path}, FollowOptions{.poll = std::chrono::milliseconds(2),
                                        .idle = std::chrono::milliseconds(20)});
  expect_same_ingest(result, ingest_records(records));
  EXPECT_EQ(result.bytes, std::filesystem::file_size(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace treecache::rib
