// Closed-loop sharding, proven differentially: the sharded engine run of
// the FIB router source — per-shard mirrors fed by per-shard outcome
// feedback queues — must be bit-identical to the single-threaded
// reference (each shard's mirror driven through sim::run_source on a
// fresh instance, no engine machinery at all) for every registered
// algorithm × shard count × thread count × traffic shape. Feedback-
// dependent streams are where parallel caching goes subtly wrong, so
// nothing here is spot-checked: the sweep is exhaustive over the
// registry, the seeds are randomized (override TREECACHE_DIFF_SEED to
// replay a failure), and CI runs the suite under both ASan and TSan.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/outcome_buffer.hpp"

#include "engine/shard_plan.hpp"
#include "engine/sharded_engine.hpp"
#include "fib/fib_workloads.hpp"
#include "fib/router_sim.hpp"
#include "fib/router_source.hpp"
#include "sim/fib_engine.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

/// Traffic shapes of the differential sweep: the fib default (sparse BGP
/// updates) and the update-heavy fib-churn variant.
struct TrafficShape {
  const char* name;
  const char* update_prob;
};
constexpr TrafficShape kShapes[] = {{"fib", "0.01"}, {"fib-churn", "0.10"}};

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr std::size_t kThreadCounts[] = {1, 2, 4};

sim::Params diff_params(const TrafficShape& shape) {
  sim::Params p;
  p.set("rules", "150");
  p.set("packets", "900");
  p.set("alpha", "4");
  p.set("capacity", "48");
  p.set("update-prob", shape.update_prob);
  return p;
}

/// Randomized but reproducible: the sweep draws its RIB and traffic seeds
/// from this; export TREECACHE_DIFF_SEED to replay a reported failure.
std::uint64_t harness_seed() {
  if (const char* env = std::getenv("TREECACHE_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260730;
}

struct Reference {
  std::vector<sim::RunResult> per_shard;
  std::vector<fib::RouterSimResult> stats;
};

/// The single-threaded reference of the S-shard closed loop: shard by
/// shard, a fresh mirror driven through sim::run_source against a fresh
/// registry-built instance over the shard tree. This is the definition
/// the engine's queue machinery must reproduce bit for bit.
Reference sequential_reference(const fib::RuleTree& rules,
                               const engine::ShardPlan& plan,
                               const std::string& algorithm,
                               const sim::Params& params,
                               const fib::RouterSimConfig& router) {
  Reference ref;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    fib::RouterMirrorSource mirror(rules, router, plan, s);
    const auto alg =
        sim::make_algorithm(algorithm, plan.shard_tree(s), params);
    sim::RunResult result = sim::run_source(*alg, mirror);
    result.wall_seconds = 0.0;
    ref.per_shard.push_back(result);
    ref.stats.push_back(mirror.stats());
  }
  return ref;
}

// --- The randomized differential stress sweep ----------------------------

TEST(ClosedLoopSharding, DifferentialSweepMatchesSequentialReference) {
  Rng rng(harness_seed());
  for (const TrafficShape& shape : kShapes) {
    sim::Params params = diff_params(shape);
    const std::uint64_t rib_seed = rng.below(1u << 20) + 1;
    const std::uint64_t traffic_seed = rng.below(1u << 20) + 1;
    params.set("rib-seed", std::to_string(rib_seed));
    RecordProperty(std::string(shape.name) + "_rib_seed",
                   static_cast<int>(rib_seed));
    RecordProperty(std::string(shape.name) + "_traffic_seed",
                   static_cast<int>(traffic_seed));
    const fib::RuleTree rules = fib::rule_tree_from_params(params);
    const fib::RouterSimConfig router =
        sim::fib_router_config(params, traffic_seed);

    for (const std::string& algorithm :
         sim::AlgorithmRegistry::instance().names()) {
      for (const std::size_t shards : kShardCounts) {
        SCOPED_TRACE(std::string(shape.name) + " x " + algorithm + " x " +
                     std::to_string(shards) + " shards (rib-seed " +
                     std::to_string(rib_seed) + ", seed " +
                     std::to_string(traffic_seed) + ")");
        const engine::ShardPlan plan(rules.tree, shards);
        const Reference ref =
            sequential_reference(rules, plan, algorithm, params, router);

        for (const std::size_t threads : kThreadCounts) {
          SCOPED_TRACE(std::to_string(threads) + " threads");
          engine::ShardedEngine eng(rules.tree, algorithm, params,
                                    {.shards = shards, .threads = threads});
          ASSERT_EQ(eng.plan().num_shards(), plan.num_shards());
          fib::RouterSource source(rules, router);
          const engine::EngineResult got = eng.run(source);

          // Per-shard AND aggregate equality with the reference — which
          // also makes every thread count bit-identical to every other.
          ASSERT_EQ(got.per_shard.size(), ref.per_shard.size());
          Cost cost_sum;
          std::uint64_t rounds_sum = 0;
          for (std::size_t s = 0; s < ref.per_shard.size(); ++s) {
            EXPECT_EQ(got.per_shard[s], ref.per_shard[s]) << "shard " << s;
            cost_sum += ref.per_shard[s].cost;
            rounds_sum += ref.per_shard[s].rounds;
          }
          EXPECT_EQ(got.total.cost, cost_sum);
          EXPECT_EQ(got.total.rounds, rounds_sum);
        }
      }
    }
  }
}

// --- Mirror semantics ----------------------------------------------------

TEST(ClosedLoopSharding, TrivialPlanMirrorEqualsRouterSource) {
  sim::Params params = diff_params(kShapes[0]);
  const fib::RuleTree rules = fib::rule_tree_from_params(params);
  const fib::RouterSimConfig router = sim::fib_router_config(params, 9);
  const engine::ShardPlan plan(rules.tree, 1);

  fib::RouterMirrorSource mirror(rules, router, plan, 0);
  const auto mirror_alg = sim::make_algorithm("tc", rules.tree, params);
  const sim::RunResult via_mirror = sim::run_source(*mirror_alg, mirror);

  fib::RouterSource source(rules, router);
  const auto source_alg = sim::make_algorithm("tc", rules.tree, params);
  const sim::RunResult via_source = sim::run_source(*source_alg, source);

  EXPECT_EQ(via_mirror, via_source);
  EXPECT_EQ(mirror.stats().packets, source.stats().packets);
  EXPECT_EQ(mirror.stats().hits, source.stats().hits);
  EXPECT_EQ(mirror.stats().misses, source.stats().misses);
  EXPECT_EQ(mirror.stats().updates, source.stats().updates);
  EXPECT_EQ(mirror.stats().cached_updates, source.stats().cached_updates);
  EXPECT_EQ(mirror.stats().forwarding_errors,
            source.stats().forwarding_errors);
}

TEST(ClosedLoopSharding, MirrorStatsPartitionTheEventStream) {
  // Every packet and every update event is owned by exactly one shard, so
  // the event-level statistics are conserved under the mirror split for
  // every shard count — hits vs misses may legitimately differ from the
  // unsharded run (each line card decides over its own slice), but events
  // can never be dropped or double-counted.
  sim::Params params = diff_params(kShapes[1]);
  const fib::RuleTree rules = fib::rule_tree_from_params(params);
  const fib::RouterSimConfig router = sim::fib_router_config(params, 4);

  fib::RouterSource whole(rules, router);
  const auto whole_alg = sim::make_algorithm("tc", rules.tree, params);
  (void)sim::run_source(*whole_alg, whole);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    const engine::ShardPlan plan(rules.tree, shards);
    const Reference ref =
        sequential_reference(rules, plan, "tc", params, router);
    fib::RouterSimResult sum;
    for (std::size_t s = 0; s < ref.stats.size(); ++s) {
      const fib::RouterSimResult& stats = ref.stats[s];
      EXPECT_EQ(stats.hits + stats.misses + stats.forwarding_errors,
                stats.packets)
          << "shard " << s;
      sum += stats;
    }
    EXPECT_EQ(sum.packets, whole.stats().packets);
    EXPECT_EQ(sum.updates, whole.stats().updates);
  }
}

TEST(ClosedLoopSharding, StatelessAlgorithmAggregateIsShardCountInvariant) {
  // "none" never caches, so the closed loop has no feedback coupling at
  // all and the line-card model coincides with the global model exactly:
  // the aggregate of `--shards 8 --threads 4` is bit-identical to the
  // shards=1/threads=1 run, field for field.
  sim::Params params = diff_params(kShapes[1]);
  const fib::RuleTree rules = fib::rule_tree_from_params(params);
  const fib::RouterSimConfig router = sim::fib_router_config(params, 13);

  engine::ShardedEngine baseline_eng(rules.tree, "none", params,
                                     {.shards = 1, .threads = 1});
  fib::RouterSource baseline_source(rules, router);
  const sim::RunResult baseline = baseline_eng.run(baseline_source).total;

  for (const std::size_t shards : {2u, 4u, 8u}) {
    for (const std::size_t threads : {2u, 4u}) {
      SCOPED_TRACE(std::to_string(shards) + " shards, " +
                   std::to_string(threads) + " threads");
      engine::ShardedEngine eng(rules.tree, "none", params,
                                {.shards = shards, .threads = threads});
      fib::RouterSource source(rules, router);
      EXPECT_EQ(eng.run(source).total, baseline);
    }
  }
}

// --- Shared generation & the batched feedback API -------------------------

TEST(ClosedLoopSharding, ProducerPartitionsTheGlobalEventStream) {
  // The stable-partition property of shared generation: event by event, a
  // sharded producer emits exactly the unsharded global stream — same
  // order, same kinds, same payloads — with each event routed to exactly
  // one queue, the one of the shard owning its full-table match.
  for (const TrafficShape& shape : kShapes) {
    sim::Params params = diff_params(shape);
    const fib::RuleTree rules = fib::rule_tree_from_params(params);
    const fib::RouterSimConfig router = sim::fib_router_config(params, 21);
    const engine::ShardPlan global_plan(rules.tree, 1);

    for (const std::size_t shards : {2u, 4u, 8u}) {
      SCOPED_TRACE(std::string(shape.name) + " x " + std::to_string(shards) +
                   " shards");
      const engine::ShardPlan plan(rules.tree, shards);
      fib::RouterEventProducer global(rules, router, global_plan);
      fib::RouterEventProducer sharded(rules, router, plan);

      std::uint64_t events = 0;
      while (true) {
        const std::size_t generated = global.pump(1);
        ASSERT_EQ(sharded.pump(1), generated);
        if (generated == 0) break;
        ASSERT_TRUE(global.has_event(0));
        const fib::RouterEvent expected = global.pop(0);
        const std::size_t owner = plan.shard_of(expected.node);
        // Exactly one queue grew, and it is the owner's.
        std::size_t buffered = 0;
        for (std::size_t s = 0; s < plan.num_shards(); ++s) {
          buffered += sharded.buffered(s);
        }
        ASSERT_EQ(buffered, 1u) << "event " << events;
        ASSERT_TRUE(sharded.has_event(owner)) << "event " << events;
        const fib::RouterEvent got = sharded.pop(owner);
        ASSERT_EQ(got.kind, expected.kind) << "event " << events;
        ASSERT_EQ(got.node, expected.node) << "event " << events;
        ASSERT_EQ(got.addr, expected.addr) << "event " << events;
        ++events;
      }
      EXPECT_TRUE(global.exhausted());
      EXPECT_TRUE(sharded.exhausted());
      EXPECT_GT(events, 0u);
    }
  }
}

TEST(ClosedLoopSharding, ObserveBatchEqualsPerOutcomeObserve) {
  // Chunk-granularity feedback must be invisible to the closed loop: a
  // source fed one observe_batch per fill()-chunk stays in request-level
  // lockstep with a twin fed every outcome individually through the
  // scalar observe() forwarder, for the whole source and for every shard
  // mirror. The batched side buffers its outcomes through an
  // OutcomeBuffer, exactly as the engine's feedback rings do.
  sim::Params params = diff_params(kShapes[1]);
  const fib::RuleTree rules = fib::rule_tree_from_params(params);
  const fib::RouterSimConfig router = sim::fib_router_config(params, 33);

  const auto drive = [&params](RequestSource& unit, RequestSource& batched,
                               const Tree& tree) {
    const auto alg_scalar = sim::make_algorithm("tc", tree, params);
    const auto alg_batched = sim::make_algorithm("tc", tree, params);
    std::array<Request, 64> buf_scalar{};
    std::array<Request, 64> buf_batched{};
    OutcomeBuffer chunk;
    std::uint64_t requests = 0;
    while (true) {
      const std::size_t n = unit.fill(buf_scalar);
      ASSERT_EQ(batched.fill(buf_batched), n);
      if (n == 0) break;
      chunk.clear();
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf_batched[i], buf_scalar[i]) << "request " << requests + i;
        unit.observe(alg_scalar->step(buf_scalar[i]));
        chunk.append(alg_batched->step(buf_batched[i]));
      }
      batched.observe_batch(chunk.views());
      requests += n;
    }
    ASSERT_GT(requests, 0u);
  };

  const auto expect_equal_stats = [](const fib::RouterSimResult& got,
                                     const fib::RouterSimResult& want) {
    EXPECT_EQ(got.packets, want.packets);
    EXPECT_EQ(got.hits, want.hits);
    EXPECT_EQ(got.misses, want.misses);
    EXPECT_EQ(got.updates, want.updates);
    EXPECT_EQ(got.cached_updates, want.cached_updates);
    EXPECT_EQ(got.forwarding_errors, want.forwarding_errors);
  };

  {
    SCOPED_TRACE("RouterSource");
    fib::RouterSource unit(rules, router);
    fib::RouterSource batched(rules, router);
    drive(unit, batched, rules.tree);
    expect_equal_stats(batched.stats(), unit.stats());
  }
  const engine::ShardPlan plan(rules.tree, 4);
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    SCOPED_TRACE("mirror shard " + std::to_string(s));
    fib::RouterMirrorSource unit(rules, router, plan, s);
    fib::RouterMirrorSource batched(rules, router, plan, s);
    drive(unit, batched, plan.shard_tree(s));
    expect_equal_stats(batched.stats(), unit.stats());
  }
}

// --- The fib scenario layer ----------------------------------------------

TEST(ClosedLoopSharding, ShardedFibScenarioAggregatesMirrorStats) {
  sim::Params params = diff_params(kShapes[0]);
  const fib::RuleTree rules = fib::rule_tree_from_params(params);
  const sim::FibScenario scenario{.algorithm = "tc",
                                  .params = params,
                                  .seed = 7,
                                  .engine = {.shards = 4, .threads = 2}};
  const sim::FibScenarioResult got = sim::run_fib_scenario(rules, scenario);
  ASSERT_GT(got.shards, 1u);

  const engine::ShardPlan plan(rules.tree, scenario.engine.shards);
  const Reference ref = sequential_reference(
      rules, plan, "tc", params, sim::fib_router_config(params, 7));
  fib::RouterSimResult expected;
  Cost cost_sum;
  for (std::size_t s = 0; s < ref.stats.size(); ++s) {
    expected += ref.stats[s];
    cost_sum += ref.per_shard[s].cost;
  }
  EXPECT_EQ(got.router.packets, expected.packets);
  EXPECT_EQ(got.router.hits, expected.hits);
  EXPECT_EQ(got.router.misses, expected.misses);
  EXPECT_EQ(got.router.updates, expected.updates);
  EXPECT_EQ(got.router.cached_updates, expected.cached_updates);
  // The subforest invariant holds per line card, too.
  EXPECT_EQ(got.router.forwarding_errors, 0u);
  EXPECT_EQ(got.router.algorithm_cost, cost_sum);

  // Scenario-level thread invariance.
  sim::FibScenario single_threaded = scenario;
  single_threaded.engine.threads = 1;
  const sim::FibScenarioResult again =
      sim::run_fib_scenario(rules, single_threaded);
  EXPECT_EQ(again.router.hits, got.router.hits);
  EXPECT_EQ(again.router.algorithm_cost, got.router.algorithm_cost);
}

// --- Fault injection: producer-side throws -------------------------------

/// A shard mirror that misbehaves on demand: emits one scripted chunk per
/// fill until exhausted, then (optionally) throws out of fill() — on the
/// producer thread — while another shard's worker is still stepping and
/// pushing outcomes into its bounded feedback queue.
class ScriptedMirror final : public RequestSource {
 public:
  ScriptedMirror(std::vector<Request> requests, bool throw_after)
      : requests_(std::move(requests)), throw_after_(throw_after) {}

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override {
    if (position_ >= requests_.size()) {
      if (throw_after_) throw CheckFailure("injected producer fault");
      return 0;
    }
    std::size_t n = 0;
    while (n < buffer.size() && position_ < requests_.size()) {
      buffer[n++] = requests_[position_++];
    }
    return n;
  }
  void reset() override { position_ = 0; }
  [[nodiscard]] bool is_closed_loop() const override { return true; }

 private:
  std::vector<Request> requests_;
  std::size_t position_ = 0;
  bool throw_after_ = false;
};

TEST(ClosedLoopSharding, ProducerThrowDrainsFeedbackQueuesBeforeJoin) {
  // Regression for the shutdown path: shard 0's worker is stepping a large
  // chunk against a feedback bound of 1, so it spends the whole run blocked
  // on a full outcome queue; shard 1's mirror then throws out of fill() on
  // the producer thread. The engine must drain/abort the per-shard outcome
  // queues before joining — otherwise the blocked worker never observes
  // shutdown and join() deadlocks (this test then hangs, which is the
  // point).
  const Tree tree = trees::complete_kary(3, 2);  // two top-level subtrees
  sim::Params params;
  params.set("alpha", "2");
  params.set("capacity", "16");
  engine::ShardedEngine eng(
      tree, "tc", params,
      {.shards = 2, .threads = 2, .batch = 512, .feedback = 1});
  ASSERT_EQ(eng.plan().num_shards(), 2u);

  std::vector<Request> busywork;
  const std::size_t shard0_nodes = eng.plan().shard_tree(0).size();
  for (std::size_t i = 0; i < 400; ++i) {
    busywork.push_back(positive(static_cast<NodeId>(i % shard0_nodes)));
  }
  std::vector<std::unique_ptr<RequestSource>> mirrors;
  mirrors.push_back(std::make_unique<ScriptedMirror>(std::move(busywork),
                                                     /*throw_after=*/false));
  mirrors.push_back(std::make_unique<ScriptedMirror>(
      std::vector<Request>{}, /*throw_after=*/true));
  EXPECT_THROW((void)eng.run_split(mirrors), CheckFailure);

  // The engine is intact after the failed run: the same geometry runs a
  // healthy pair of mirrors to completion.
  std::vector<std::unique_ptr<RequestSource>> healthy;
  healthy.push_back(std::make_unique<ScriptedMirror>(
      std::vector<Request>{positive(1)}, false));
  healthy.push_back(std::make_unique<ScriptedMirror>(
      std::vector<Request>{positive(1)}, false));
  EXPECT_EQ(eng.run_split(healthy).total.rounds, 2u);
}

TEST(ClosedLoopSharding, UnsplittableClosedLoopSourceIsRefused) {
  // A closed-loop source without a split() override cannot run sharded —
  // the refusal must be loud, up front, and must not touch the stream.
  const Tree tree = trees::complete_kary(3, 2);
  sim::Params params;
  params.set("alpha", "2");
  params.set("capacity", "16");
  engine::ShardedEngine eng(tree, "tc", params, {.shards = 2});
  ScriptedMirror closed({positive(1)}, false);
  EXPECT_THROW((void)eng.run(closed), CheckFailure);
}

}  // namespace
}  // namespace treecache
