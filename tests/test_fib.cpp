// FIB substrate: IPv4 parsing, trie LPM vs linear scan, rule-tree
// structure, synthetic RIB properties, router simulation correctness, and
// the Appendix B canonicalization bound.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/lru_closure.hpp"
#include "core/tree_cache.hpp"
#include "fib/canonicalizer.hpp"
#include "fib/rib_gen.hpp"
#include "fib/router_sim.hpp"
#include "fib/rule_tree.hpp"
#include "fib/traffic.hpp"
#include "util/rng.hpp"

namespace treecache::fib {
namespace {

TEST(Ipv4, AddressRoundTrip) {
  EXPECT_EQ(address_to_string(0xC0A80101), "192.168.1.1");
  EXPECT_EQ(parse_address("192.168.1.1"), 0xC0A80101u);
  EXPECT_EQ(parse_address("0.0.0.0"), 0u);
  EXPECT_EQ(parse_address("255.255.255.255"), 0xFFFFFFFFu);
}

TEST(Ipv4, PrefixParseAndNormalize) {
  // parse is strict (a feed line with host bits set is a data error, not
  // something to silently round); make() is the normalizing constructor.
  const Prefix p = Prefix::make(parse_address("10.1.2.3"), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");  // low bits dropped
  EXPECT_EQ(p.length, 8);
  EXPECT_TRUE(p.contains(parse_address("10.255.0.1")));
  EXPECT_FALSE(p.contains(parse_address("11.0.0.1")));
  EXPECT_EQ(Prefix::parse("10.0.0.0/8"), p);
  EXPECT_EQ(Prefix::parse("0.0.0.0/0"), Prefix{});
}

TEST(Ipv4, PrefixContainsPrefix) {
  const Prefix wide = Prefix::parse("10.0.0.0/8");
  const Prefix narrow = Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(wide));
  EXPECT_TRUE(Prefix{}.contains(narrow));  // default route covers all
}

TEST(Ipv4, RejectsMalformedInput) {
  EXPECT_THROW(Prefix::parse("10.0.0.0"), CheckFailure);
  EXPECT_THROW(Prefix::parse("10.0.0.0/33"), CheckFailure);
  EXPECT_THROW((void)parse_address("300.0.0.1"), CheckFailure);
  EXPECT_THROW((void)parse_address("10.0.0"), CheckFailure);
}

/// What a parse error says matters as much as that it throws: feed files
/// are hand-edited and machine-generated, and the message must point at
/// the offending byte. These are regression tests for the strict scanner.
TEST(Ipv4, ParseErrorsNameTheProblemAndPosition) {
  const auto message_of = [](auto&& parse) -> std::string {
    try {
      (void)parse();
    } catch (const CheckFailure& e) {
      return e.what();
    }
    return {};
  };

  // Out-of-range octet, with its 1-based column.
  const std::string range =
      message_of([] { return parse_address("10.256.0.1"); });
  EXPECT_NE(range.find("octet out of range"), std::string::npos) << range;
  EXPECT_NE(range.find("column 4"), std::string::npos) << range;
  // Too many digits is distinct from out of range ("0000" is not 0..255).
  EXPECT_NE(message_of([] { return parse_address("1.2.3.0000"); })
                .find("more than three digits"),
            std::string::npos);
  // Trailing garbage after a well-formed address / prefix.
  EXPECT_THROW((void)parse_address("10.0.0.1x"), CheckFailure);
  EXPECT_THROW((void)parse_address("10.0.0.1 "), CheckFailure);
  EXPECT_THROW(Prefix::parse("10.0.0.0/8x"), CheckFailure);
  EXPECT_THROW(Prefix::parse("10.0.0.0/+8"), CheckFailure);
  EXPECT_THROW(Prefix::parse("10.0.0.0/"), CheckFailure);
  // Empty octets and missing dots.
  EXPECT_THROW((void)parse_address("10..0.1"), CheckFailure);
  EXPECT_THROW((void)parse_address(""), CheckFailure);
  // Host bits set beyond the mask: rejected, and the message names the
  // prefix, the length, and where the address starts.
  const std::string host =
      message_of([] { return Prefix::parse("10.1.2.3/8"); });
  EXPECT_NE(host.find("host bits set beyond /8"), std::string::npos) << host;
  EXPECT_NE(host.find("10.1.2.3/8"), std::string::npos) << host;
}

TEST(PrefixTrie, LpmBasics) {
  PrefixTrie trie;
  EXPECT_TRUE(trie.insert(Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_TRUE(trie.insert(Prefix::parse("10.1.0.0/16"), 2));
  EXPECT_TRUE(trie.insert(Prefix::parse("192.168.0.0/16"), 3));
  EXPECT_FALSE(trie.insert(Prefix::parse("10.0.0.0/8"), 9));  // duplicate

  EXPECT_EQ(trie.lookup(parse_address("10.1.2.3")).value(), 2u);
  EXPECT_EQ(trie.lookup(parse_address("10.2.2.3")).value(), 1u);
  EXPECT_EQ(trie.lookup(parse_address("192.168.9.9")).value(), 3u);
  EXPECT_FALSE(trie.lookup(parse_address("11.0.0.1")).has_value());
}

TEST(PrefixTrie, LookupIfRestrictsMatches) {
  PrefixTrie trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::parse("10.1.0.0/16"), 2);
  const Address addr = parse_address("10.1.2.3");
  const auto only_rule_1 =
      trie.lookup_if(addr, [](RuleId r) { return r == 1; });
  EXPECT_EQ(only_rule_1.value(), 1u);
  const auto nothing = trie.lookup_if(addr, [](RuleId) { return false; });
  EXPECT_FALSE(nothing.has_value());
}

TEST(PrefixTrie, MatchesLinearScanOnRandomRib) {
  Rng rng(42);
  const auto rib = generate_rib({.rules = 400}, rng);
  PrefixTrie trie;
  for (std::size_t i = 0; i < rib.size(); ++i) {
    trie.insert(rib[i], static_cast<RuleId>(i));
  }
  for (int round = 0; round < 2000; ++round) {
    const auto addr = static_cast<Address>(rng());
    // Linear scan for the longest matching prefix.
    int best = -1;
    for (std::size_t i = 0; i < rib.size(); ++i) {
      if (rib[i].contains(addr) &&
          (best < 0 ||
           rib[i].length > rib[static_cast<std::size_t>(best)].length)) {
        best = static_cast<int>(i);
      }
    }
    const auto got = trie.lookup(addr);
    if (best < 0) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      // Lengths must agree (several rules may share bits/length shape).
      EXPECT_EQ(rib[*got].length,
                rib[static_cast<std::size_t>(best)].length);
      EXPECT_TRUE(rib[*got].contains(addr));
    }
  }
}

TEST(RuleTree, ParentIsLongestProperAncestor) {
  Rng rng(7);
  const auto rib = generate_rib({.rules = 300, .deaggregation = 0.6}, rng);
  const RuleTree rt = build_rule_tree(rib);
  ASSERT_EQ(rt.tree.size(), rt.prefix.size());
  for (NodeId v = 1; v < rt.tree.size(); ++v) {
    const NodeId p = rt.tree.parent(v);
    EXPECT_TRUE(rt.prefix[p].contains(rt.prefix[v]));
    EXPECT_LT(rt.prefix[p].length, rt.prefix[v].length);
    // No other rule sits strictly between v and its parent.
    for (NodeId u = 1; u < rt.tree.size(); ++u) {
      if (u == v || u == p) continue;
      const bool between = rt.prefix[u].contains(rt.prefix[v]) &&
                           rt.prefix[p].contains(rt.prefix[u]) &&
                           rt.prefix[u].length > rt.prefix[p].length &&
                           rt.prefix[u].length < rt.prefix[v].length;
      EXPECT_FALSE(between) << "rule " << u << " between " << v
                            << " and its parent";
    }
  }
}

TEST(RuleTree, DropsDuplicatesAndDefaultRoute) {
  std::vector<Prefix> prefixes{
      Prefix::parse("10.0.0.0/8"), Prefix::parse("10.0.0.0/8"),
      Prefix::make(0, 0),  // explicit default route merges into the root
      Prefix::parse("10.1.0.0/16")};
  const RuleTree rt = build_rule_tree(prefixes);
  EXPECT_EQ(rt.tree.size(), 3u);  // root + two rules
  EXPECT_EQ(rt.lpm(parse_address("10.1.9.9")),
            2u);  // the /16, inserted after the /8
  EXPECT_EQ(rt.lpm(parse_address("77.1.9.9")), 0u);  // default rule
}

TEST(RibGen, ProducesRequestedDistinctRules) {
  Rng rng(11);
  const auto rib = generate_rib({.rules = 1000}, rng);
  EXPECT_EQ(rib.size(), 1000u);
  auto sorted = rib;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const Prefix& p : rib) {
    EXPECT_GE(p.length, 8);
    EXPECT_LE(p.length, 24);
    EXPECT_EQ(p.bits, Prefix::make(p.bits, p.length).bits);  // normalized
  }
}

TEST(RibGen, DeaggregationCreatesDepth) {
  Rng rng(13);
  const auto flat_rib = generate_rib({.rules = 800, .deaggregation = 0.0}, rng);
  const auto deep_rib = generate_rib({.rules = 800, .deaggregation = 0.8}, rng);
  const RuleTree flat = build_rule_tree(flat_rib);
  const RuleTree deep = build_rule_tree(deep_rib);
  EXPECT_GT(deep.tree.height(), flat.tree.height());
}

TEST(RouterSim, NoForwardingErrorsAndConsistentCounts) {
  Rng rng(17);
  const auto rib = generate_rib({.rules = 500, .deaggregation = 0.5}, rng);
  const RuleTree rt = build_rule_tree(rib);
  TreeCache tc(rt.tree, {.alpha = 8, .capacity = 64});
  const auto result = run_router_sim(
      rt, tc,
      {.packets = 20000, .zipf_skew = 1.1, .update_probability = 0.02,
       .alpha = 8, .seed = 5});
  EXPECT_EQ(result.forwarding_errors, 0u);
  EXPECT_EQ(result.hits + result.misses, result.packets);
  EXPECT_GT(result.hits, 0u) << "cache never got hot";
  EXPECT_GT(result.misses, 0u);
  EXPECT_EQ(result.algorithm_cost.total(), tc.cost().total());
}

TEST(RouterSim, LruClosureIsAlsoForwardingCorrect) {
  Rng rng(19);
  const auto rib = generate_rib({.rules = 300}, rng);
  const RuleTree rt = build_rule_tree(rib);
  LruClosure lru(rt.tree, {.alpha = 4, .capacity = 48});
  const auto result = run_router_sim(
      rt, lru,
      {.packets = 8000, .zipf_skew = 1.0, .update_probability = 0.01,
       .alpha = 4, .seed = 23});
  EXPECT_EQ(result.forwarding_errors, 0u);
  EXPECT_GT(result.hits, 0u);
}

// A stub that pins a fixed (legal) subforest and records every request it
// is stepped with, so the test can observe what the router reports to the
// online algorithm.
class PinnedCache final : public OnlineAlgorithm {
 public:
  PinnedCache(const Tree& tree, const std::vector<NodeId>& pins)
      : cache_(tree) {
    for (const NodeId v : pins) cache_.insert(v);
    TC_CHECK(cache_.is_valid(), "pins must form a subforest");
  }

  [[nodiscard]] std::string_view name() const override { return "Pinned"; }
  StepOutcome step(Request request) override {
    seen.push_back(request);
    StepOutcome out;
    out.paid = (request.sign == Sign::kPositive) !=
               cache_.contains(request.node);
    if (out.paid) ++cost_.service;
    return out;
  }
  void reset() override { seen.clear(); }
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

  std::vector<Request> seen;

 private:
  Subforest cache_;
  Cost cost_;
};

// Regression: a mis-forwarded packet (cached LPM disagrees with the full
// table) must be detoured via the controller — counted in
// forwarding_errors AND reported to the algorithm as a positive request
// for the full-table match, not silently dropped from the instance.
//
// Subforest-invariant algorithms over a consistent rule tree can never
// mis-forward, so the test fabricates an *inconsistent* RuleTree: the tree
// is a star (both rules are leaves, so pinning just the /8 is a legal
// subforest), while the trie still nests the /16 under the /8 the way real
// prefixes do.
TEST(RouterSim, ForwardingErrorsDetourViaController) {
  RuleTree rt{
      .tree = Tree({kNoNode, 0, 0}),  // star: the /16 is NOT a tree child
      .prefix = {Prefix{}, Prefix::parse("10.0.0.0/8"),
                 Prefix::parse("10.0.0.0/16")},
      .trie = {}};
  rt.trie.insert(rt.prefix[1], 1);
  rt.trie.insert(rt.prefix[2], 2);

  PinnedCache pinned(rt.tree, {1});  // the /8 is cached, the /16 is not
  const auto result = run_router_sim(
      rt, pinned, {.packets = 2000, .zipf_skew = 1.0, .alpha = 4, .seed = 9});

  // Packets inside 10.0.0.0/16 match the cached /8 but the full table
  // picks the /16: mis-forwarded, detected, detoured.
  EXPECT_GT(result.forwarding_errors, 0u);
  EXPECT_GT(result.hits, 0u);  // packets on the /8 outside the /16 still hit
  EXPECT_EQ(result.hits + result.misses + result.forwarding_errors,
            result.packets);
  // The algorithm saw exactly one positive request per detoured packet
  // (misses are zero here: every sampled address matches the cached /8).
  EXPECT_EQ(result.misses, 0u);
  ASSERT_EQ(pinned.seen.size(), result.forwarding_errors);
  for (const Request& r : pinned.seen) {
    EXPECT_EQ(r, positive(2));
  }
}

TEST(RouterSim, ZeroCapacityEquivalentMissesEverything) {
  Rng rng(29);
  const auto rib = generate_rib({.rules = 100}, rng);
  const RuleTree rt = build_rule_tree(rib);
  // Capacity 1 with a huge alpha: nothing ever gets cached in time.
  TreeCache tc(rt.tree, {.alpha = 1000000, .capacity = 1});
  const auto result = run_router_sim(
      rt, tc, {.packets = 2000, .zipf_skew = 1.0, .alpha = 4, .seed = 3});
  EXPECT_EQ(result.hits, 0u);
  EXPECT_EQ(result.misses, result.packets);
}

TEST(Canonicalizer, FactorTwoBoundOnUpdateHeavyWorkloads) {
  Rng rng(31);
  const auto rib = generate_rib({.rules = 200, .deaggregation = 0.5}, rng);
  const RuleTree rt = build_rule_tree(rib);
  for (const double update_prob : {0.05, 0.2, 0.5}) {
    Rng wl(rng());
    const auto workload = make_fib_workload(
        rt,
        {.events = 20000, .zipf_skew = 1.0,
         .update_probability = update_prob, .alpha = 8},
        wl);
    TreeCache tc(rt.tree, {.alpha = 8, .capacity = 32});
    const auto report = run_canonicalized(rt.tree, workload, tc);
    EXPECT_EQ(report.raw_cost.total(), tc.cost().total());
    EXPECT_LE(report.canonical_cost.total(), 2 * report.raw_cost.total())
        << "update_prob " << update_prob;
    EXPECT_LE(report.dirty_chunks, report.chunks);
  }
}

TEST(Canonicalizer, CleanRunsCostTheSame) {
  // Without any chunks, canonical and raw costs agree exactly.
  Rng rng(37);
  const auto rib = generate_rib({.rules = 150}, rng);
  const RuleTree rt = build_rule_tree(rib);
  const auto workload = make_fib_workload(
      rt, {.events = 5000, .zipf_skew = 1.0, .update_probability = 0.0,
           .alpha = 4},
      rng);
  EXPECT_TRUE(workload.chunks.empty());
  TreeCache tc(rt.tree, {.alpha = 4, .capacity = 24});
  const auto report = run_canonicalized(rt.tree, workload, tc);
  EXPECT_EQ(report.canonical_cost.total(), report.raw_cost.total());
}

}  // namespace
}  // namespace treecache::fib
