// Unit tests for the Tree substrate: construction, derived quantities,
// generators, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tree/tree.hpp"
#include "tree/tree_builder.hpp"
#include "tree/tree_io.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

TEST(Tree, SingleNode) {
  const Tree t({kNoNode});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.subtree_size(0), 1u);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.max_degree(), 0u);
}

TEST(Tree, PathShape) {
  const Tree t = trees::path(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.height(), 5u);
  EXPECT_EQ(t.max_degree(), 1u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(t.depth(v), v);
    EXPECT_EQ(t.subtree_size(v), 5 - v);
  }
  EXPECT_TRUE(t.is_ancestor_or_self(0, 4));
  EXPECT_TRUE(t.is_ancestor_or_self(2, 2));
  EXPECT_FALSE(t.is_ancestor_or_self(3, 1));
}

TEST(Tree, StarShape) {
  const Tree t = trees::star(7);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.height(), 2u);
  EXPECT_EQ(t.max_degree(), 7u);
  EXPECT_EQ(t.leaves().size(), 7u);
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_EQ(t.parent(v), 0u);
    EXPECT_EQ(t.subtree_size(v), 1u);
  }
}

TEST(Tree, CompleteBinary) {
  const Tree t = trees::complete_kary(4, 2);
  EXPECT_EQ(t.size(), 15u);  // 1 + 2 + 4 + 8
  EXPECT_EQ(t.height(), 4u);
  EXPECT_EQ(t.max_degree(), 2u);
  EXPECT_EQ(t.subtree_size(t.root()), 15u);
  EXPECT_EQ(t.leaves().size(), 8u);
}

TEST(Tree, CaterpillarShape) {
  const Tree t = trees::caterpillar(4, 3);
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.height(), 5u);  // spine of 4 plus a leaf level
  EXPECT_EQ(t.max_degree(), 4u);  // spine child + 3 legs
}

TEST(Tree, SpiderShape) {
  const Tree t = trees::spider(3, 4);
  EXPECT_EQ(t.size(), 13u);
  EXPECT_EQ(t.height(), 5u);
  EXPECT_EQ(t.max_degree(), 3u);
  EXPECT_EQ(t.leaves().size(), 3u);
}

TEST(Tree, PreorderParentsFirst) {
  Rng rng(42);
  const Tree t = trees::random_recursive(200, rng);
  std::vector<std::uint32_t> position(t.size());
  const auto pre = t.preorder();
  for (std::size_t i = 0; i < pre.size(); ++i) position[pre[i]] = static_cast<std::uint32_t>(i);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (v != t.root()) {
      EXPECT_LT(position[t.parent(v)], position[v]);
    }
  }
}

TEST(Tree, PostorderChildrenFirst) {
  Rng rng(7);
  const Tree t = trees::random_recursive(200, rng);
  std::vector<std::uint32_t> position(t.size());
  const auto post = t.postorder();
  for (std::size_t i = 0; i < post.size(); ++i) position[post[i]] = static_cast<std::uint32_t>(i);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (v != t.root()) {
      EXPECT_GT(position[t.parent(v)], position[v]);
    }
  }
}

TEST(Tree, SubtreeSizesSumOverChildren) {
  Rng rng(3);
  const Tree t = trees::random_bounded_degree(300, 4, rng);
  for (NodeId v = 0; v < t.size(); ++v) {
    std::uint32_t sum = 1;
    for (const NodeId c : t.children(v)) sum += t.subtree_size(c);
    EXPECT_EQ(t.subtree_size(v), sum);
    EXPECT_LE(t.num_children(v), 4u);
  }
}

TEST(Tree, AncestorQueriesAgreeWithPathWalk) {
  Rng rng(11);
  const Tree t = trees::random_recursive(60, rng);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId d = 0; d < t.size(); ++d) {
      const auto path = t.path_to_root(d);
      const bool expected =
          std::find(path.begin(), path.end(), a) != path.end();
      EXPECT_EQ(t.is_ancestor_or_self(a, d), expected)
          << "a=" << a << " d=" << d;
    }
  }
}

TEST(Tree, BoundedHeightGeneratorRespectsBound) {
  Rng rng(5);
  for (const std::size_t h : {2u, 3u, 6u}) {
    const Tree t = trees::random_bounded_height(50, h, rng);
    EXPECT_LE(t.height(), h);
  }
  // Height 1 only admits a single node; more must be rejected.
  const Tree single = trees::random_bounded_height(1, 1, rng);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_THROW(trees::random_bounded_height(2, 1, rng), CheckFailure);
}

TEST(Tree, RejectsMultipleRoots) {
  EXPECT_THROW(Tree({kNoNode, kNoNode}), CheckFailure);
}

TEST(Tree, RejectsCycle) {
  // 1 -> 2 -> 1 cycle, 0 is the root.
  EXPECT_THROW(Tree({kNoNode, 2, 1}), CheckFailure);
}

TEST(Tree, RejectsSelfParent) {
  EXPECT_THROW(Tree({kNoNode, 1}), CheckFailure);
}

TEST(Tree, RejectsOutOfRangeParent) {
  EXPECT_THROW(Tree({kNoNode, 5}), CheckFailure);
}

TEST(TreeIo, ParentStringRoundTrip) {
  Rng rng(9);
  const Tree t = trees::random_recursive(40, rng);
  const std::string text = to_parent_string(t);
  const Tree back = from_parent_string(text);
  EXPECT_EQ(back.parent_array(), t.parent_array());
}

TEST(TreeIo, FromParentStringRejectsGarbage) {
  EXPECT_THROW(from_parent_string("-1 0 x"), CheckFailure);
  EXPECT_THROW(from_parent_string(""), CheckFailure);
  EXPECT_THROW(from_parent_string("-2"), CheckFailure);
}

TEST(TreeIo, AsciiContainsEveryNode) {
  const Tree t = trees::caterpillar(3, 2);
  const std::string art = to_ascii(t);
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_NE(art.find(std::to_string(v)), std::string::npos);
  }
}

TEST(TreeIo, DotHasOneEdgePerNonRoot) {
  const Tree t = trees::complete_kary(3, 2);
  const std::string dot = to_dot(t);
  std::size_t edges = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, t.size() - 1);
}

TEST(TreePreorder, RemapTablesAreInversePermutations) {
  Rng rng(11);
  const Tree t = trees::random_recursive(60, rng);
  const auto to = t.to_preorder();
  const auto from = t.from_preorder();
  ASSERT_EQ(to.size(), t.size());
  ASSERT_EQ(from.size(), t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(to[v], t.preorder_index(v));
    EXPECT_EQ(from[to[v]], v);
    EXPECT_EQ(to[from[v]], v);
  }
}

TEST(TreePreorder, RankTopologyMatchesNodeTopology) {
  Rng rng(23);
  const Tree t = trees::random_bounded_degree(50, 3, rng);
  for (std::uint32_t r = 0; r < t.size(); ++r) {
    const NodeId v = t.from_preorder()[r];
    EXPECT_EQ(t.preorder_subtree_size(r), t.subtree_size(v));
    const NodeId p = t.parent(v);
    EXPECT_EQ(t.preorder_parent(r),
              p == kNoNode ? kNoNode : t.preorder_index(p));
  }
}

TEST(TreePreorder, FirstChildNextSiblingScanEnumeratesChildren) {
  // Child iteration in rank space needs no adjacency array: first child is
  // r + 1, next sibling is c + subtree_size(c).
  Rng rng(7);
  const Tree t = trees::random_recursive(40, rng);
  for (std::uint32_t r = 0; r < t.size(); ++r) {
    std::vector<NodeId> scanned;
    const std::uint32_t end = r + t.preorder_subtree_size(r);
    for (std::uint32_t c = r + 1; c < end; c += t.preorder_subtree_size(c)) {
      scanned.push_back(t.from_preorder()[c]);
    }
    const auto kids = t.children(t.from_preorder()[r]);
    std::vector<NodeId> expected(kids.begin(), kids.end());
    // The scan yields children in preorder; children() is construction
    // order. Compare as sets.
    std::sort(scanned.begin(), scanned.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(scanned, expected);
  }
}

TEST(TreePreorder, RelabeledTreeIsIdentityPermutation) {
  Rng rng(5);
  const Tree t = trees::random_recursive(45, rng);
  const Tree r = Tree::preorder_relabeled(t);
  EXPECT_TRUE(r.is_preorder_labeled());
  ASSERT_EQ(r.size(), t.size());
  // Same shape: node at rank k of t becomes node k of r, preserving
  // parenthood, subtree sizes and depths.
  for (std::uint32_t k = 0; k < t.size(); ++k) {
    const NodeId v = t.from_preorder()[k];
    EXPECT_EQ(r.from_preorder()[k], k);
    EXPECT_EQ(r.subtree_size(k), t.subtree_size(v));
    EXPECT_EQ(r.depth(k), t.depth(v));
  }
  // A tree built in preorder (a path is) reports identity; a level-order
  // build (complete k-ary, 3 levels) does not.
  EXPECT_TRUE(trees::path(4).is_preorder_labeled());
  EXPECT_FALSE(trees::complete_kary(3, 2).is_preorder_labeled());
}

TEST(TwoSubtreeGadget, Shape) {
  const Tree t = trees::two_subtree_gadget(4);
  // root + two full binary subtrees of size 7.
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.num_children(0), 2u);
  EXPECT_EQ(t.subtree_size(1), 7u);
  EXPECT_EQ(t.subtree_size(8), 7u);
}

}  // namespace
}  // namespace treecache
