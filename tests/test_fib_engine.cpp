// FIB scenario family through the registry: fib* workload registration,
// the closed-loop sim/fib_engine (scenarios + sweeps), grid integration,
// and the JSON result documents.
#include "sim/fib_engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fib/fib_workloads.hpp"
#include "sim/reporting.hpp"
#include "sim/scenario.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

sim::Params small_fib_params() {
  sim::Params p;
  p.set("rules", "300");
  p.set("length", "4000");
  p.set("packets", "4000");
  p.set("alpha", "4");
  p.set("capacity", "32");
  return p;
}

TEST(FibWorkloads, RuleTreeFromParamsIsDeterministic) {
  const sim::Params p = small_fib_params();
  const fib::RuleTree a = fib::rule_tree_from_params(p);
  const fib::RuleTree b = fib::rule_tree_from_params(p);
  EXPECT_EQ(a.tree.parent_array(), b.tree.parent_array());
  EXPECT_EQ(a.tree.size(), 301u);  // rules + artificial default root
}

TEST(FibWorkloads, NamesAreClassified) {
  EXPECT_TRUE(fib::is_fib_workload_name("fib"));
  EXPECT_TRUE(fib::is_fib_workload_name("fib-stable"));
  EXPECT_TRUE(fib::is_fib_workload_name("fib-churn"));
  EXPECT_FALSE(fib::is_fib_workload_name("zipf"));
  EXPECT_FALSE(fib::is_fib_workload_name("fibx"));
}

TEST(FibWorkloads, ProduceValidTracesOnTheirRuleTree) {
  const sim::Params p = small_fib_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(p);
  for (const std::string name : {"fib", "fib-stable", "fib-churn"}) {
    SCOPED_TRACE(name);
    const Trace trace = sim::make_workload(name, rt.tree, p, 5);
    ASSERT_FALSE(trace.empty());
    std::size_t negatives = 0;
    for (const Request& r : trace) {
      ASSERT_LT(r.node, rt.tree.size());
      negatives += r.sign == Sign::kNegative ? 1u : 0u;
    }
    if (name == "fib-stable") {
      EXPECT_EQ(negatives, 0u) << "fib-stable must not contain updates";
    }
  }
}

TEST(FibWorkloads, RejectForeignTrees) {
  Rng rng(3);
  const Tree foreign = trees::random_recursive(301, rng);
  EXPECT_THROW(
      (void)sim::make_source("fib", foreign, small_fib_params(), 3),
      CheckFailure);
}

// The scenario engine now drives the closed loop through RouterSource +
// sim::run_source; every statistic and the algorithm's cost must match the
// self-contained reference event loop (fib/router_sim.hpp) across the
// seeded algorithm × capacity × seed grid — the mirror the source rebuilds
// from StepOutcome feedback has to track the real cache exactly.
TEST(FibEngine, UnifiedDriverMatchesReferenceRouterSim) {
  const sim::Params base = small_fib_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(base);
  for (const char* algorithm : {"tc", "lru", "lruinv", "local", "none"}) {
    for (const std::uint64_t seed : {1u, 7u}) {
      for (const char* capacity : {"16", "64"}) {
        SCOPED_TRACE(std::string(algorithm) + " capacity=" + capacity +
                     " seed=" + std::to_string(seed));
        sim::Params params = base;
        params.set("capacity", capacity);
        params.set("update-prob", "0.03");

        const auto reference_alg =
            sim::make_algorithm(algorithm, rt.tree, params);
        const auto reference = fib::run_router_sim(
            rt, *reference_alg, sim::fib_router_config(params, seed));

        const auto unified = sim::run_fib_scenario(
            rt, {.algorithm = algorithm, .params = params, .seed = seed,
                 .engine = {}});

        EXPECT_EQ(unified.router.packets, reference.packets);
        EXPECT_EQ(unified.router.hits, reference.hits);
        EXPECT_EQ(unified.router.misses, reference.misses);
        EXPECT_EQ(unified.router.updates, reference.updates);
        EXPECT_EQ(unified.router.cached_updates, reference.cached_updates);
        EXPECT_EQ(unified.router.forwarding_errors,
                  reference.forwarding_errors);
        EXPECT_EQ(unified.router.algorithm_cost, reference.algorithm_cost);
      }
    }
  }
}

TEST(FibEngine, ScenarioRunsEndToEndThroughRegistry) {
  sim::FibScenario scenario{
      .algorithm = "tc", .params = small_fib_params(), .seed = 11,
      .engine = {}};
  scenario.params.set("skew", "1.1");
  scenario.params.set("update-prob", "0.02");
  const auto result = sim::run_fib_scenario(scenario);
  EXPECT_EQ(result.router.packets, 4000u);
  EXPECT_EQ(result.router.hits + result.router.misses +
                result.router.forwarding_errors,
            result.router.packets);
  EXPECT_EQ(result.router.forwarding_errors, 0u);
  EXPECT_GT(result.router.hits, 0u) << "cache never got hot";
  EXPECT_GT(result.router.updates, 0u);
  EXPECT_GT(result.router.algorithm_cost.total(), 0u);
}

TEST(FibEngine, SweepIsDeterministicAndSharesTrafficPerPoint) {
  const fib::RuleTree rt = fib::rule_tree_from_params(small_fib_params());
  sim::FibSweepAxes axes;
  axes.algorithms = {"tc", "lru", "none"};
  axes.skews = {0.8, 1.2};
  axes.capacities = {16, 64};
  axes.alphas = {4};
  const auto run = [&] {
    return sim::run_fib_sweep(rt, axes, small_fib_params(), 42);
  };
  const auto cells = run();
  ASSERT_EQ(cells.size(), 3u * 2u * 2u);

  // All algorithms at one (skew, capacity, alpha) point replay the same
  // event stream: packet and update counts must agree across algorithms.
  const std::size_t points = 4;
  for (std::size_t point = 0; point < points; ++point) {
    for (std::size_t alg = 1; alg < axes.algorithms.size(); ++alg) {
      const auto& first = cells[point].router;
      const auto& other = cells[alg * points + point].router;
      EXPECT_EQ(first.packets, other.packets);
      EXPECT_EQ(first.updates, other.updates);
    }
  }
  // Cells are ordered algorithm-major with the axes in the params.
  EXPECT_EQ(cells.front().scenario.algorithm, "tc");
  EXPECT_EQ(cells.front().scenario.params.get("skew", ""), "0.8");
  EXPECT_EQ(cells.back().scenario.algorithm, "none");
  EXPECT_EQ(cells.back().scenario.params.get("capacity", ""), "64");

  // Bit-identical on repeat (parallel_sweep pre-derives per-point seeds).
  EXPECT_EQ(sim::fib_sweep_json(cells).dump(),
            sim::fib_sweep_json(run()).dump());
}

// Acceptance: run_grid sweeps FIB workloads against >= 3 registered
// algorithms, deterministically.
TEST(FibEngine, RunGridSweepsFibWorkloads) {
  sim::Params base = small_fib_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(base);
  const std::vector<std::string> algorithms{"tc", "lru", "local"};
  const std::vector<std::string> workloads{"fib", "fib-stable", "fib-churn"};
  const auto run = [&] {
    return sim::run_grid(rt.tree, algorithms, workloads, base, 7);
  };
  const auto cells = run();
  ASSERT_EQ(cells.size(), 9u);
  for (const auto& cell : cells) {
    // Each of the "length" events adds one packet request or an α-chunk of
    // negative requests, so every trace has at least `length` rounds.
    EXPECT_GE(cell.run.rounds, base.get_u64("length", 0))
        << cell.scenario.algorithm << " x " << cell.scenario.workload;
  }
  // Replays are bit-identical in every accounted field (RunResult equality
  // excludes the measured wall time, which the JSON documents do carry).
  const auto replay = run();
  ASSERT_EQ(replay.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].run, replay[i].run) << "cell " << i;
  }
}

TEST(Reporting, JsonDocumentsCarrySchemas) {
  sim::Params base = small_fib_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(base);
  const auto grid = sim::run_grid(rt.tree, {"tc"}, {"fib"}, base, 3);
  const std::string grid_text = sim::grid_json(grid).dump();
  EXPECT_NE(grid_text.find("\"schema\": \"treecache.grid/1\""),
            std::string::npos);
  EXPECT_NE(grid_text.find("\"total_cost\""), std::string::npos);

  const std::string run_text = sim::scenario_json(grid.front()).dump();
  EXPECT_NE(run_text.find("\"schema\": \"treecache.run/2\""),
            std::string::npos);
  EXPECT_NE(run_text.find("\"workload\": \"fib\""), std::string::npos);
  // Since treecache.run/2 every run doubles as a perf sample.
  EXPECT_NE(run_text.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(run_text.find("\"requests_per_second\""), std::string::npos);

  sim::FibScenario scenario{
      .algorithm = "tc", .params = base, .seed = 2, .engine = {}};
  const auto fib_cells =
      std::vector<sim::FibScenarioResult>{sim::run_fib_scenario(rt, scenario)};
  const std::string fib_text = sim::fib_sweep_json(fib_cells).dump();
  EXPECT_NE(fib_text.find("\"schema\": \"treecache.fib/2\""),
            std::string::npos);
  EXPECT_NE(fib_text.find("\"forwarding_errors\""), std::string::npos);
  // fib/2: every cell records the closed-loop engine geometry.
  EXPECT_NE(fib_text.find("\"engine\""), std::string::npos);
  EXPECT_NE(fib_text.find("\"shards\": 1"), std::string::npos);
}

}  // namespace
}  // namespace treecache
