// The fib-real replay path end to end over the checked-in fixture feeds:
// ingest, stream shape, source determinism (reset/fork/size_hint),
// bit-identical engine runs across shard and thread geometries, and the
// Appendix B canonicalization bound on a real-churn IPv6 trace — the
// wide-key wind through prefix_trie, rule_tree and canonicalizer.
#include "rib/churn_source.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tree_cache.hpp"
#include "engine/sharded_engine.hpp"
#include "fib/canonicalizer.hpp"
#include "rib/ingest.hpp"
#include "rib/workloads.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"

namespace treecache::rib {
namespace {

std::string fixture(const char* name) {
  return std::string(TREECACHE_TEST_DATA_DIR) + "/" + name;
}

sim::Params real_params(const char* feed_name, int family) {
  sim::Params p;
  p.set("alpha", "4");
  p.set("capacity", "16");
  p.set("rib-feed", fixture(feed_name));
  p.set("family", std::to_string(family));
  p.set("lookups-per-event", "8");
  return p;
}

TEST(FixtureFeeds, IngestEndToEnd) {
  const IngestResult both =
      ingest_feed({fixture("rib_v4.feed"), fixture("rib_v6.feed")});
  EXPECT_EQ(both.records, both.v4.stats.dump_routes + both.v4.stats.updates() +
                              both.v6.stats.dump_routes +
                              both.v6.stats.updates());
  for (const auto* family : {"v4", "v6"}) {
    SCOPED_TRACE(family);
    const IngestStats& stats =
        family == std::string("v4") ? both.v4.stats : both.v6.stats;
    EXPECT_GT(stats.dump_routes, 0u);
    EXPECT_GT(stats.announces, 0u);
    EXPECT_GT(stats.withdraws, 0u);
    EXPECT_EQ(stats.withdraw_misses, 0u);  // generator withdraws live only
  }
  // The live table: dump + new announces - withdraws.
  EXPECT_EQ(both.v4.rib.size(),
            both.v4.stats.dump_routes + both.v4.stats.announces -
                both.v4.stats.replaced_routes - both.v4.stats.withdraws);
  // Each family's records landed only in its own table.
  EXPECT_FALSE(both.v4.empty());
  EXPECT_FALSE(both.v6.empty());

  // touched ⊇ live ∪ churned: every churn event resolves in the replay.
  const ChurnReplay replay = make_churn_replay(both.v4);
  EXPECT_EQ(replay.churn_nodes.size(), both.v4.stats.updates());
  EXPECT_GE(both.v4.touched.size(), both.v4.rib.size());
  for (const NodeId node : replay.churn_nodes) {
    ASSERT_LT(node, replay.fib.tree.size());
  }
}

TEST(FixtureFeeds, FamilyWithNoRecordsIsRefused) {
  EXPECT_THROW((void)build_real_fib(real_params("rib_v4.feed", 6)),
               CheckFailure);
  EXPECT_THROW((void)build_real_fib(real_params("rib_v6.feed", 4)),
               CheckFailure);
}

TEST(ChurnSource, StreamShapeIsLookupsThenAlphaChunks) {
  const sim::Params params = real_params("rib_v4.feed", 4);
  const RealFibReplay& replay = shared_real_fib(params);
  const ChurnReplayConfig config{
      .lookups_per_event = 8, .tail_lookups = 5, .zipf_skew = 1.0,
      .alpha = 4};
  RibChurnSource source(replay.v4, config, Rng(3));

  const std::uint64_t events = replay.churn_events();
  const std::uint64_t expected =
      events * (config.lookups_per_event + config.alpha) +
      config.tail_lookups;
  EXPECT_EQ(source.size_hint(), std::optional<std::uint64_t>(expected));

  const Trace trace = materialize(source);
  ASSERT_EQ(trace.size(), expected);
  EXPECT_EQ(source.size_hint(), std::optional<std::uint64_t>(0));

  const std::size_t stride = config.lookups_per_event + config.alpha;
  for (std::uint64_t e = 0; e < events; ++e) {
    const std::size_t base = e * stride;
    for (std::size_t i = 0; i < config.lookups_per_event; ++i) {
      ASSERT_EQ(trace[base + i].sign, Sign::kPositive) << "event " << e;
    }
    // The α-chunk: alpha negatives, all to the churned rule's node.
    const NodeId chunk_node = trace[base + config.lookups_per_event].node;
    for (std::size_t i = 0; i < config.alpha; ++i) {
      const Request& r = trace[base + config.lookups_per_event + i];
      ASSERT_EQ(r.sign, Sign::kNegative) << "event " << e;
      ASSERT_EQ(r.node, chunk_node) << "event " << e;
    }
  }
  for (std::size_t i = trace.size() - config.tail_lookups; i < trace.size();
       ++i) {
    EXPECT_EQ(trace[i].sign, Sign::kPositive);
  }
}

TEST(ChurnSource, ResetForkAndRegistryReplayIdentically) {
  const sim::Params params = real_params("rib_v4.feed", 4);
  const RealFibReplay& replay = shared_real_fib(params);
  const Tree& tree = replay.tree();

  const auto source = sim::make_source("fib-real", tree, params, 21);
  const Trace first = materialize(*source);
  ASSERT_FALSE(first.empty());
  source->reset();
  EXPECT_EQ(materialize(*source), first);

  // fork() replays the identical stream even mid-consumption.
  (void)materialize(*source, first.size() / 3);
  const auto forked = source->fork();
  ASSERT_NE(forked, nullptr);
  EXPECT_EQ(materialize(*forked), first);

  // A different seed is a different permutation/stream (the substrate is
  // shared; the traffic is not).
  const auto reseeded = sim::make_source("fib-real", tree, params, 22);
  EXPECT_NE(materialize(*reseeded), first);

  // The registered factory refuses a tree that is not the replay tree.
  Rng rng(5);
  const Tree other = trees::random_recursive(tree.size(), rng);
  EXPECT_THROW((void)sim::make_source("fib-real", other, params, 21),
               CheckFailure);
}

TEST(ChurnSource, Ipv6StreamReplaysAndResolvesInTree) {
  const sim::Params params = real_params("rib_v6.feed", 6);
  const RealFibReplay& replay = shared_real_fib(params);
  EXPECT_EQ(replay.family, 6);
  const Tree& tree = replay.tree();

  const auto source = sim::make_source("fib-real", tree, params, 9);
  const Trace first = materialize(*source);
  ASSERT_FALSE(first.empty());
  for (const Request& r : first) {
    ASSERT_LT(r.node, tree.size());
  }
  source->reset();
  EXPECT_EQ(materialize(*source), first);
}

TEST(ChurnSource, PureSnapshotFeedStillProducesLookups) {
  // A dump with no updates has no churn events; the tail-lookups default
  // keeps the stream non-empty (all positive).
  sim::Params params = real_params("rib_v4.feed", 4);
  const RealFibReplay& replay = shared_real_fib(params);
  ChurnReplay snapshot{replay.v4->fib, {}};
  RibChurnSource source(std::make_shared<const ChurnReplay>(snapshot),
                        churn_config_from_params(params, false), Rng(2));
  const Trace trace = materialize(source);
  ASSERT_FALSE(trace.empty());
  for (const Request& r : trace) {
    ASSERT_EQ(r.sign, Sign::kPositive);
  }
}

TEST(Engine, FibRealIsBitIdenticalAcrossGeometries) {
  const sim::Params params = real_params("rib_v4.feed", 4);
  const RealFibReplay& replay = shared_real_fib(params);
  const Tree& tree = replay.tree();

  // Same shard plan, varying worker threads: per-shard results must be
  // bit-identical (the engine's determinism contract over the fib-real
  // split). The source replays from the same seed each run.
  std::vector<engine::EngineResult> results;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    engine::ShardedEngine eng(tree, "tc", params,
                              {.shards = 8, .threads = threads,
                               .batch = 128});
    const auto source = sim::make_source("fib-real", tree, params, 77);
    results.push_back(eng.run(*source));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].total, results[0].total) << "run " << i;
    ASSERT_EQ(results[i].per_shard.size(), results[0].per_shard.size());
    for (std::size_t s = 0; s < results[0].per_shard.size(); ++s) {
      EXPECT_EQ(results[i].per_shard[s], results[0].per_shard[s])
          << "shard " << s << " run " << i;
    }
  }

  // And the unsharded run consumes the same stream: same round count.
  engine::ShardedEngine single(tree, "tc", params, {.shards = 1});
  const auto source = sim::make_source("fib-real", tree, params, 77);
  const engine::EngineResult alone = single.run(*source);
  EXPECT_EQ(alone.total.rounds, results[0].total.rounds);
}

TEST(Engine, MrtFixtureIsBitIdenticalAndMatchesTheTextFixture) {
  // rib_v4.mrt holds the SAME records as rib_v4.feed (same generator
  // seed), in binary MRT form. The replay must be bit-identical across
  // engine geometries AND across feed formats.
  const sim::Params mrt_params = real_params("rib_v4.mrt", 4);
  const RealFibReplay& replay = shared_real_fib(mrt_params);
  const Tree& tree = replay.tree();

  std::vector<engine::EngineResult> results;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    engine::ShardedEngine eng(tree, "tc", mrt_params,
                              {.shards = 8, .threads = threads,
                               .batch = 128});
    const auto source = sim::make_source("fib-real", tree, mrt_params, 77);
    results.push_back(eng.run(*source));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].total, results[0].total) << "run " << i;
    ASSERT_EQ(results[i].per_shard.size(), results[0].per_shard.size());
    for (std::size_t s = 0; s < results[0].per_shard.size(); ++s) {
      EXPECT_EQ(results[i].per_shard[s], results[0].per_shard[s])
          << "shard " << s << " run " << i;
    }
  }

  // Cross-format: the text fixture drives an identical replay.
  const sim::Params text_params = real_params("rib_v4.feed", 4);
  const RealFibReplay& text_replay = shared_real_fib(text_params);
  EXPECT_EQ(text_replay.stats.dump_routes, replay.stats.dump_routes);
  EXPECT_EQ(text_replay.stats.updates(), replay.stats.updates());
  engine::ShardedEngine text_engine(text_replay.tree(), "tc", text_params,
                                    {.shards = 8, .threads = 2, .batch = 128});
  const auto text_source =
      sim::make_source("fib-real", text_replay.tree(), text_params, 77);
  const engine::EngineResult from_text = text_engine.run(*text_source);
  EXPECT_EQ(from_text.total, results[0].total);
  ASSERT_EQ(from_text.per_shard.size(), results[0].per_shard.size());
  for (std::size_t s = 0; s < results[0].per_shard.size(); ++s) {
    EXPECT_EQ(from_text.per_shard[s], results[0].per_shard[s])
        << "shard " << s;
  }
}

TEST(SharedRealFib, FeedMutationInvalidatesTheProcessCache) {
  // Regression: the process-wide replay cache was keyed by (path, family)
  // only, so regenerating a feed file mid-process silently replayed the
  // OLD table. The key now folds in file size and mtime.
  const std::string path = "/tmp/treecache_test_shared_fib.feed";
  const auto write_feed = [&path](NextHop hop, bool extra_update) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "TABLE_DUMP|10.0.0.0/8|" << hop << "\n"
        << "TABLE_DUMP|10.1.0.0/16|2\n"
        << "1|announce|10.2.0.0/16|3\n";
    if (extra_update) out << "2|withdraw|10.1.0.0/16\n";
  };
  write_feed(1, false);
  sim::Params params;
  params.set("alpha", "4");
  params.set("capacity", "16");
  params.set("rib-feed", path);
  params.set("family", "4");
  params.set("lookups-per-event", "8");

  const RealFibReplay& first = shared_real_fib(params);
  EXPECT_EQ(first.churn_events(), 1u);

  // Growing the file (size change) must produce a fresh ingest. Cache
  // entries live for the process, so a stale hit would return the SAME
  // object — the address check is the regression trip-wire.
  write_feed(1, true);
  const RealFibReplay& second = shared_real_fib(params);
  EXPECT_NE(&first, &second);
  EXPECT_EQ(second.churn_events(), 2u);

  // A same-size rewrite must also miss, via mtime. Rewrite until the
  // filesystem timestamp actually moves (coarse-mtime safety loop).
  const auto stamp_before = std::filesystem::last_write_time(path);
  do {
    write_feed(9, true);  // same byte length, different next hop
    if (std::filesystem::last_write_time(path) != stamp_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (true);
  const RealFibReplay& third = shared_real_fib(params);
  EXPECT_NE(&second, &third);
  EXPECT_EQ(third.churn_events(), 2u);
  std::remove(path.c_str());
}

TEST(Canonicalizer, FactorTwoBoundHoldsOnRealIpv6Churn) {
  // Appendix B's canonicalization bound, exercised on the wide-key path:
  // the chunked trace comes from real IPv6 feed churn, chunk boundaries
  // from the known stream shape.
  const sim::Params params = real_params("rib_v6.feed", 6);
  const RealFibReplay& replay = shared_real_fib(params);
  const ChurnReplayConfig config{
      .lookups_per_event = 8, .tail_lookups = 0, .zipf_skew = 1.0,
      .alpha = 4};
  RibChurnSource6 source(replay.v6, config, Rng(31));

  ChunkedTrace chunked;
  chunked.trace = materialize(source);
  const std::size_t stride = config.lookups_per_event + config.alpha;
  for (std::size_t base = 0; base + stride <= chunked.trace.size();
       base += stride) {
    chunked.chunks.emplace_back(base + config.lookups_per_event,
                                base + stride);
  }
  ASSERT_FALSE(chunked.chunks.empty());

  TreeCache tc(replay.tree(), {.alpha = 4, .capacity = 16});
  const auto report = fib::run_canonicalized(replay.tree(), chunked, tc);
  EXPECT_EQ(report.chunks, chunked.chunks.size());
  EXPECT_EQ(report.raw_cost.total(), tc.cost().total());
  EXPECT_LE(report.canonical_cost.total(), 2 * report.raw_cost.total());
}

}  // namespace
}  // namespace treecache::rib
