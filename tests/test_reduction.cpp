// Appendix C reduction, quantitatively: the lifted tree instance's exact
// optimum is within the predicted Θ(α) envelope of Belady's fault count,
// plus a heavier differential stress run of TC vs the naive reference.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/opt_offline.hpp"
#include "baselines/paging.hpp"
#include "core/naive_tree_cache.hpp"
#include "core/tree_cache.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/adversary.hpp"

namespace treecache {
namespace {

TEST(Reduction, LiftedOptWithinBeladyEnvelope) {
  // Replaying Belady on the lifted instance costs at most (1 + 2α) per
  // fault plus α·k for the initial fetch, so
  //   Opt_tree ≤ (1 + 2α)·faults + α·k.
  // Conversely a tree solution induces a paging-with-bypassing solution
  // that pays ≥ 1 per non-covered chunk, and forced paging (Belady) is at
  // most twice the bypassing optimum:
  //   2·Opt_tree ≥ faults.
  Rng rng(42);
  for (int round = 0; round < 12; ++round) {
    Rng inst(rng());
    const PageId pages = 4 + static_cast<PageId>(inst.below(3));  // 4..6
    const std::size_t k = 2 + inst.below(2);                      // 2..3
    const std::uint64_t alpha = 2 + 2 * inst.below(2);            // 2 or 4
    std::vector<PageId> sequence(50);
    for (auto& p : sequence) p = static_cast<PageId>(inst.below(pages));

    const std::uint64_t faults = belady_faults(sequence, k);
    const Tree star = trees::star(pages);
    const Trace lifted = workload::lift_paging_sequence(sequence, alpha);
    const std::uint64_t opt_tree =
        opt_offline_cost(star, lifted, {.alpha = alpha, .capacity = k});

    EXPECT_LE(opt_tree, (1 + 2 * alpha) * faults + alpha * k)
        << "round " << round;
    EXPECT_GE(2 * opt_tree, faults) << "round " << round;
  }
}

TEST(Reduction, TcOnLiftedInstanceTracksPagingCosts) {
  // TC's cost on the lifted instance, in units of alpha, is within a
  // constant factor of LRU's fault count on the raw sequence (both are
  // O(R)-competitive against the same optimum).
  Rng rng(7);
  const PageId pages = 10;
  const std::size_t k = 5;
  const std::uint64_t alpha = 8;
  std::vector<PageId> sequence(3000);
  for (auto& p : sequence) {
    const double u = rng.uniform01();
    p = static_cast<PageId>(static_cast<double>(pages) * u * u);
    if (p >= pages) p = pages - 1;
  }
  LruPaging lru(k);
  for (const PageId p : sequence) lru.access(p);

  const Tree star = trees::star(pages);
  TreeCache tc(star, {.alpha = alpha, .capacity = k});
  const Trace lifted = workload::lift_paging_sequence(sequence, alpha);
  const std::uint64_t tc_in_faults =
      sim::run_trace(tc, lifted).cost.total() / alpha;

  EXPECT_LE(tc_in_faults, 8 * lru.faults() + 8);
  EXPECT_GE(8 * tc_in_faults, lru.faults());
}

TEST(ReductionStress, LargeDifferentialRun) {
  // One heavy randomized differential pass: 300-node tree, 20k rounds.
  Rng rng(1337);
  const Tree tree = trees::random_recursive(300, rng);
  const std::uint64_t alpha = 3;
  const std::size_t capacity = 45;
  TreeCache fast(tree, {.alpha = alpha, .capacity = capacity});
  NaiveTreeCache naive(tree, {.alpha = alpha, .capacity = capacity});
  for (int i = 0; i < 20000; ++i) {
    const Request r{static_cast<NodeId>(rng.below(tree.size())),
                    rng.chance(0.4) ? Sign::kNegative : Sign::kPositive};
    const StepOutcome a = fast.step(r);
    const StepOutcome b = naive.step(r);
    ASSERT_EQ(a.paid, b.paid) << "round " << i;
    ASSERT_EQ(a.change, b.change) << "round " << i;
    std::vector<NodeId> av(a.changed.begin(), a.changed.end());
    std::vector<NodeId> bv(b.changed.begin(), b.changed.end());
    std::sort(av.begin(), av.end());
    std::sort(bv.begin(), bv.end());
    ASSERT_EQ(av, bv) << "round " << i;
  }
  EXPECT_EQ(fast.cost(), naive.cost());
  EXPECT_EQ(fast.cache().as_vector(), naive.cache().as_vector());
}

}  // namespace
}  // namespace treecache
