// Unit tests for Subforest: descendant-closure, changeset validity,
// tree-cap helpers.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/changeset_enum.hpp"
#include "tree/subforest.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

/// Builds the cache {leaf-side suffix} on a path tree.
Subforest path_cache_suffix(const Tree& t, NodeId from) {
  Subforest cache(t);
  for (NodeId v = static_cast<NodeId>(t.size()); v-- > from;) cache.insert(v);
  return cache;
}

TEST(Subforest, StartsEmptyAndValid) {
  const Tree t = trees::complete_kary(3, 2);
  const Subforest cache(t);
  EXPECT_TRUE(cache.empty());
  EXPECT_TRUE(cache.is_valid());
  EXPECT_TRUE(cache.maximal_roots().empty());
}

TEST(Subforest, InsertBottomUpKeepsValidity) {
  const Tree t = trees::path(4);
  Subforest cache(t);
  cache.insert(3);
  cache.insert(2);
  EXPECT_TRUE(cache.is_valid());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(3));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Subforest, MaximalRootsOnStar) {
  const Tree t = trees::star(4);
  Subforest cache(t);
  cache.insert(1);
  cache.insert(3);
  const auto roots = cache.maximal_roots();
  EXPECT_EQ(roots, (std::vector<NodeId>{1, 3}));
}

TEST(Subforest, CachedTreeRootWalksUp) {
  const Tree t = trees::path(5);
  const Subforest cache = path_cache_suffix(t, 2);
  EXPECT_EQ(cache.cached_tree_root(4), 2u);
  EXPECT_EQ(cache.cached_tree_root(2), 2u);
}

TEST(Subforest, MissingSubtreeIsWholeSubtreeWhenEmpty) {
  const Tree t = trees::complete_kary(3, 2);
  const Subforest cache(t);
  auto missing = cache.missing_subtree(t.root());
  EXPECT_EQ(missing.size(), t.size());
}

TEST(Subforest, MissingSubtreeSkipsCachedParts) {
  const Tree t = trees::path(5);
  const Subforest cache = path_cache_suffix(t, 3);  // {3, 4} cached
  auto missing = cache.missing_subtree(1);
  std::sort(missing.begin(), missing.end());
  EXPECT_EQ(missing, (std::vector<NodeId>{1, 2}));
}

TEST(Subforest, OutputBufferOverloadsMatchConvenienceForms) {
  Rng rng(29);
  const Tree t = trees::random_recursive(50, rng);
  Subforest cache(t);
  // Buffers pre-filled with garbage: the overloads must clear, not append.
  std::vector<NodeId> missing_buf{kNoNode, kNoNode};
  std::vector<NodeId> roots_buf{kNoNode};
  std::vector<NodeId> cached_buf{kNoNode, kNoNode, kNoNode};
  for (int step = 0; step < 300; ++step) {
    const NodeId u = static_cast<NodeId>(rng.below(t.size()));
    if (!cache.contains(u)) {
      cache.missing_subtree(u, missing_buf);
      EXPECT_EQ(missing_buf, cache.missing_subtree(u));
      if (rng.chance(0.6)) {
        for (auto it = missing_buf.rbegin(); it != missing_buf.rend(); ++it) {
          cache.insert(*it);
        }
      }
    } else if (rng.chance(0.3)) {
      const NodeId r = cache.cached_tree_root(u);
      std::vector<NodeId> subtree;
      Subforest empty(t);
      empty.missing_subtree(r, subtree);  // whole T(r), preorder
      for (const NodeId v : subtree) cache.erase(v);
    }
    cache.maximal_roots(roots_buf);
    EXPECT_EQ(roots_buf, cache.maximal_roots());
    cache.as_vector(cached_buf);
    EXPECT_EQ(cached_buf, cache.as_vector());
    ASSERT_TRUE(cache.is_valid());
  }
}

TEST(Subforest, PositiveChangesetValidity) {
  const Tree t = trees::path(4);
  const Subforest cache = path_cache_suffix(t, 3);  // {3} cached
  // {2} extends the cached tree upward: valid.
  EXPECT_TRUE(cache.is_valid_positive_changeset(std::vector<NodeId>{2}));
  // {1} would cache a node whose child 2 is absent: invalid.
  EXPECT_FALSE(cache.is_valid_positive_changeset(std::vector<NodeId>{1}));
  // {1, 2} together: valid.
  EXPECT_TRUE(cache.is_valid_positive_changeset(std::vector<NodeId>{1, 2}));
  // Already cached node: invalid.
  EXPECT_FALSE(cache.is_valid_positive_changeset(std::vector<NodeId>{3}));
  // Empty: invalid.
  EXPECT_FALSE(cache.is_valid_positive_changeset(std::vector<NodeId>{}));
  // Duplicates: invalid.
  EXPECT_FALSE(cache.is_valid_positive_changeset(std::vector<NodeId>{2, 2}));
}

TEST(Subforest, NegativeChangesetValidity) {
  const Tree t = trees::path(4);
  const Subforest cache = path_cache_suffix(t, 2);  // {2, 3} cached
  // Evicting the top of the cached tree: valid.
  EXPECT_TRUE(cache.is_valid_negative_changeset(std::vector<NodeId>{2}));
  EXPECT_TRUE(cache.is_valid_negative_changeset(std::vector<NodeId>{2, 3}));
  // Evicting a node while keeping its cached ancestor: invalid.
  EXPECT_FALSE(cache.is_valid_negative_changeset(std::vector<NodeId>{3}));
  // Evicting a non-cached node: invalid.
  EXPECT_FALSE(cache.is_valid_negative_changeset(std::vector<NodeId>{1}));
  EXPECT_FALSE(cache.is_valid_negative_changeset(std::vector<NodeId>{}));
}

TEST(Subforest, EnumerationMatchesManualCountOnPath) {
  // Path of 4, cache {2,3}. Valid positive changesets: {1}? no (child 2
  // cached — yes it is! 1's only child is 2 which IS cached → {1} valid).
  const Tree t = trees::path(4);
  const Subforest cache = path_cache_suffix(t, 2);
  const auto pos = enumerate_positive_changesets(cache);
  // Non-cached nodes: {0, 1}. Valid: {1}, {0,1}. ({0} alone: child 1 absent.)
  EXPECT_EQ(pos.size(), 2u);
  const auto neg = enumerate_negative_changesets(cache);
  // Valid: {2}, {2,3}. ({3} alone keeps cached parent 2.)
  EXPECT_EQ(neg.size(), 2u);
}

TEST(Subforest, EnumerationCountsOnStar) {
  const Tree t = trees::star(3);  // root 0, leaves 1..3
  Subforest cache(t);
  // Empty cache: valid positive changesets are any non-empty union of
  // leaves, optionally with the root only when all leaves are included:
  // 2^3 - 1 leaf combinations + 1 (everything) = 8.
  const auto pos = enumerate_positive_changesets(cache);
  EXPECT_EQ(pos.size(), 8u);

  cache.insert(1);
  cache.insert(2);
  // Valid negative changesets: subsets of {1,2} → 3.
  const auto neg = enumerate_negative_changesets(cache);
  EXPECT_EQ(neg.size(), 3u);
}

TEST(Subforest, EraseTopDown) {
  const Tree t = trees::path(3);
  Subforest cache(t);
  cache.insert(2);
  cache.insert(1);
  cache.insert(0);
  cache.erase(0);
  cache.erase(1);
  EXPECT_TRUE(cache.is_valid());
  EXPECT_EQ(cache.as_vector(), (std::vector<NodeId>{2}));
}

TEST(Subforest, RandomChurnKeepsValidity) {
  Rng rng(123);
  const Tree t = trees::random_recursive(40, rng);
  Subforest cache(t);
  for (int step = 0; step < 2000; ++step) {
    if (cache.empty() || rng.chance(0.55)) {
      // fetch a random missing candidate set P(u)
      const NodeId u = static_cast<NodeId>(rng.below(t.size()));
      if (cache.contains(u)) continue;
      const auto missing = cache.missing_subtree(u);
      ASSERT_TRUE(cache.is_valid_positive_changeset(missing));
      for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
        cache.insert(*it);
      }
    } else {
      const auto roots = cache.maximal_roots();
      const NodeId r = rng.pick(roots);
      // evict the complete subtree T(r)
      const std::vector<NodeId> subtree = [&] {
        std::vector<NodeId> out, stack{r};
        while (!stack.empty()) {
          const NodeId v = stack.back();
          stack.pop_back();
          out.push_back(v);
          for (const NodeId c : t.children(v)) stack.push_back(c);
        }
        return out;
      }();
      ASSERT_TRUE(cache.is_valid_negative_changeset(subtree));
      for (const NodeId v : subtree) cache.erase(v);
    }
    ASSERT_TRUE(cache.is_valid());
  }
}

}  // namespace
}  // namespace treecache
