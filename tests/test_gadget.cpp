// Appendix D gadget: TC must execute exactly the five-stage script, and the
// final positive field must span the whole tree with its requests
// concentrated on {r} ∪ T1 (the impossibility witness of Figure 4).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/field_tracker.hpp"
#include "core/naive_tree_cache.hpp"
#include "core/tree_cache.hpp"
#include "workload/gadget.hpp"

namespace treecache {
namespace {

TEST(Gadget, ScriptShape) {
  const auto script = workload::build_appendix_d_gadget(4, 4);
  const std::size_t s = script.subtree_size;
  EXPECT_EQ(s, 7u);
  EXPECT_EQ(script.tree.size(), 2 * s + 1);
  EXPECT_EQ(script.t1_nodes.size(), s);
  EXPECT_EQ(script.t2_nodes.size(), s);
  // Expectations: one fetch per node (fill), two evictions, one final fetch.
  EXPECT_EQ(script.expectations.size(), script.tree.size() + 3);
  EXPECT_EQ(script.expectations.back().kind, ChangeKind::kFetch);
  EXPECT_EQ(script.expectations.back().nodes.size(), script.tree.size());
}

class GadgetReplay
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint64_t>> {
};

TEST_P(GadgetReplay, TcFollowsTheScript) {
  const auto [leaves, alpha] = GetParam();
  const auto script = workload::build_appendix_d_gadget(leaves, alpha);
  TreeCache tc(script.tree,
               {.alpha = alpha, .capacity = script.tree.size()});
  EXPECT_NO_THROW(workload::replay_gadget(script, tc));
}

TEST_P(GadgetReplay, NaiveTcFollowsTheScriptToo) {
  const auto [leaves, alpha] = GetParam();
  const auto script = workload::build_appendix_d_gadget(leaves, alpha);
  NaiveTreeCache tc(script.tree,
                    {.alpha = alpha, .capacity = script.tree.size()});
  EXPECT_NO_THROW(workload::replay_gadget(script, tc));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GadgetReplay,
    ::testing::Values(std::pair<std::size_t, std::uint64_t>{2, 2},
                      std::pair<std::size_t, std::uint64_t>{2, 6},
                      std::pair<std::size_t, std::uint64_t>{4, 4},
                      std::pair<std::size_t, std::uint64_t>{8, 2},
                      std::pair<std::size_t, std::uint64_t>{8, 10}));

TEST(Gadget, FinalFieldConcentratesRequests) {
  const std::size_t leaves = 8;
  const std::uint64_t alpha = 8;
  const auto script = workload::build_appendix_d_gadget(leaves, alpha);
  const std::size_t s = script.subtree_size;

  TreeCache tc(script.tree,
               {.alpha = alpha, .capacity = script.tree.size()});
  FieldTracker tracker(script.tree, alpha);
  for (const Request& r : script.trace) {
    tracker.observe(r, tc.step(r));
  }
  tracker.finalize();

  // The last field is the final whole-tree fetch.
  const Field& last = tracker.fields().back();
  ASSERT_EQ(last.kind, ChangeKind::kFetch);
  ASSERT_EQ(last.size(), script.tree.size());
  EXPECT_EQ(last.requests, (2 * s + 1) * alpha);  // Observation 5.2

  // Count the final field's requests per node: everything except the last
  // ℓ+1 root requests sits on {r} ∪ T1 — T2's s nodes receive none, so an
  // even distribution (α each) is impossible to reach by shifting only
  // *down* from where requests sit (T2 can only be fed from r's slots).
  std::uint64_t on_t2 = 0;
  // Requests inside the field = paid positives since each member's last
  // state change. Stage boundaries: T2 was evicted before stage 4, so its
  // windows start after its last negative — they contain no positives.
  // We verify via the tracker's member windows and the trace.
  std::vector<std::uint64_t> from(script.tree.size(), 0);
  for (const FieldMember& m : last.members) from[m.node] = m.from_round;
  for (std::size_t round = 1; round <= script.trace.size(); ++round) {
    const Request& r = script.trace[round - 1];
    if (r.sign != Sign::kPositive) continue;
    if (round < from[r.node]) continue;
    const bool in_t2 = std::binary_search(script.t2_nodes.begin(),
                                          script.t2_nodes.end(), r.node);
    if (in_t2) ++on_t2;
  }
  EXPECT_EQ(on_t2, 0u);
}

TEST(Gadget, RejectsDegenerateParameters) {
  EXPECT_THROW(workload::build_appendix_d_gadget(1, 4), CheckFailure);
  EXPECT_THROW(workload::build_appendix_d_gadget(4, 1), CheckFailure);
}

}  // namespace
}  // namespace treecache
