// Empirical competitive analysis: Theorem 5.15's upper-bound shape on
// random instances (against the exact offline DP) and the Theorem C.1
// lower-bound construction.
#include <gtest/gtest.h>

#include "baselines/opt_offline.hpp"
#include "core/tree_cache.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/adversary.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

double ratio_of(std::uint64_t tc, std::uint64_t opt) {
  return opt == 0 ? 1.0
                  : static_cast<double>(tc) / static_cast<double>(opt);
}

TEST(Competitive, UpperBoundShapeOnRandomInstances) {
  // Theorem 5.15: TC(I) <= O(h·R)·Opt(I) + O(h·k_ONL·α). We check the
  // inequality with one generous constant for both terms.
  constexpr double kConstant = 30.0;
  Rng rng(2024);
  for (int round = 0; round < 25; ++round) {
    Rng inst(rng());
    const std::size_t n = 6 + inst.below(5);  // 6..10 nodes
    const Tree t = trees::random_recursive(n, inst);
    const std::uint64_t alpha = 1 + inst.below(4);
    const std::size_t k = 2 + inst.below(n - 1);
    const Trace trace = workload::uniform_trace(t, 300, 0.4, inst);

    TreeCache tc(t, {.alpha = alpha, .capacity = k});
    const std::uint64_t online = sim::run_trace(tc, trace).cost.total();
    const std::uint64_t opt =
        opt_offline_cost(t, trace, {.alpha = alpha, .capacity = k});

    const double h = t.height();
    const double r = static_cast<double>(k);  // k_OPT = k_ONL ⇒ R = k
    const double bound =
        kConstant * (h * r * static_cast<double>(opt) +
                     h * static_cast<double>(k) * static_cast<double>(alpha));
    EXPECT_LE(static_cast<double>(online), bound)
        << "round " << round << " n=" << n << " k=" << k
        << " alpha=" << alpha << " online=" << online << " opt=" << opt;
  }
}

TEST(Competitive, TcNeverWorseThanNeverCachingByMuch) {
  // TC's total cost can exceed the pay-every-request baseline only by the
  // churn it invests, which its counters tie to the service cost: overall
  // at most a constant factor (rent-or-buy).
  Rng rng(4);
  for (int round = 0; round < 10; ++round) {
    Rng inst(rng());
    const Tree t = trees::random_recursive(40, inst);
    const Trace trace = workload::zipf_trace(t, 2000, 1.0, 0.3, inst);
    const auto s = stats(trace, t.size());
    TreeCache tc(t, {.alpha = 2 + inst.below(6), .capacity = 10});
    const std::uint64_t online = sim::run_trace(tc, trace).cost.total();
    EXPECT_LE(online, 4 * (s.positives + s.negatives) + 64)
        << "round " << round;
  }
}

TEST(Competitive, LowerBoundRatioGrowsWithR) {
  // Theorem C.1 instance: star over k_ONL + 1 leaves, adaptive adversary.
  // With k_OPT = k_ONL = 6 the exact DP optimum is ~R times cheaper than
  // TC; with k_OPT = 2 the gap collapses towards a constant.
  const std::size_t k_onl = 6;
  const Tree star = trees::star(k_onl + 1);  // 8 nodes: DP-friendly
  const std::uint64_t alpha = 4;

  TreeCache tc(star, {.alpha = alpha, .capacity = k_onl});
  const Trace trace =
      workload::run_paging_adversary(tc, star, alpha, /*chunks=*/90);
  const std::uint64_t online = tc.cost().total();

  const std::uint64_t opt_equal =
      opt_offline_cost(star, trace, {.alpha = alpha, .capacity = k_onl});
  const std::uint64_t opt_small =
      opt_offline_cost(star, trace, {.alpha = alpha, .capacity = 2});

  const double ratio_equal = ratio_of(online, opt_equal);
  const double ratio_small = ratio_of(online, opt_small);

  // R(k_OPT = 6) = 6, R(k_OPT = 2) = 6/5.
  EXPECT_GE(ratio_equal, 2.0) << "online=" << online
                              << " opt=" << opt_equal;
  EXPECT_GT(ratio_equal, 1.8 * ratio_small);
  EXPECT_LE(opt_small, online);
}

TEST(Competitive, AugmentationImprovesTheRatio) {
  // Fix k_OPT = 3 and grow TC's cache: the measured ratio must drop,
  // following R = k_ONL/(k_ONL − k_OPT + 1).
  const std::uint64_t alpha = 4;
  double previous_ratio = 1e9;
  for (const std::size_t k_onl : {3u, 5u, 8u}) {
    const Tree star = trees::star(k_onl + 1);
    TreeCache tc(star, {.alpha = alpha, .capacity = k_onl});
    const Trace trace =
        workload::run_paging_adversary(tc, star, alpha, /*chunks=*/80);
    const std::uint64_t opt =
        opt_offline_cost(star, trace, {.alpha = alpha, .capacity = 3});
    const double ratio = ratio_of(tc.cost().total(), opt);
    EXPECT_LT(ratio, previous_ratio * 1.05)
        << "k_ONL=" << k_onl;  // 5% slack for small-instance noise
    previous_ratio = ratio;
  }
}

TEST(Competitive, OptBeatsTcOnEveryAdversarialRun) {
  Rng rng(8);
  for (const std::size_t k : {2u, 4u}) {
    const Tree star = trees::star(k + 1);
    TreeCache tc(star, {.alpha = 2, .capacity = k});
    const Trace trace = workload::run_paging_adversary(tc, star, 2, 60);
    const std::uint64_t opt =
        opt_offline_cost(star, trace, {.alpha = 2, .capacity = k});
    EXPECT_LE(opt, tc.cost().total());
    EXPECT_GT(opt, 0u);
  }
}

}  // namespace
}  // namespace treecache
