// The specification checker must actually *fire* on non-TC behaviour — a
// validator that never rejects is untrustworthy. LocalTC violates TC's
// act-when-saturated rule; hand-tampered outcomes violate the service and
// changeset rules.
#include <gtest/gtest.h>

#include "baselines/local_tc.hpp"
#include "core/invariant_checker.hpp"
#include "core/trace.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

TEST(SpecChecker, RejectsLocalTcForIgnoringAggregateSaturation) {
  // Three requests at node 1 and one at node 2 saturate the valid
  // changeset {1,2} (pooled cnt 4 = 2 nodes * alpha 2) while NEITHER
  // node's own counter clears its local threshold at round 4 — LocalTC
  // does nothing, and the checker must flag the missed mandatory action.
  const Tree t = trees::path(3);
  LocalTc local(t, {.alpha = 2, .capacity = 3});
  SpecChecker checker(t, 2, 3, /*max_enum_candidates=*/8);

  const Trace trace{positive(1), positive(1), positive(1), positive(2)};
  bool fired = false;
  for (const Request& r : trace) {
    const StepOutcome out = local.step(r);
    try {
      checker.observe(r, out);
    } catch (const CheckFailure&) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired) << "checker accepted a non-TC execution";
}

TEST(SpecChecker, RejectsWrongServiceCharge) {
  const Tree t = trees::path(2);
  SpecChecker checker(t, 2, 2);
  StepOutcome lie;
  lie.paid = false;  // a positive miss MUST pay
  EXPECT_THROW(checker.observe(positive(1), lie), CheckFailure);
}

TEST(SpecChecker, RejectsUnderSaturatedFetch) {
  const Tree t = trees::path(2);
  SpecChecker checker(t, 4, 2);
  StepOutcome premature;
  premature.paid = true;
  premature.change = ChangeKind::kFetch;
  const std::vector<NodeId> fetched{1};
  premature.changed = fetched;
  // Only one request has been counted; a fetch needs cnt == alpha = 4.
  EXPECT_THROW(checker.observe(positive(1), premature), CheckFailure);
}

TEST(SpecChecker, RejectsInvalidChangesetShape) {
  const Tree t = trees::path(3);
  SpecChecker checker(t, 1, 3);
  StepOutcome bad;
  bad.paid = true;
  bad.change = ChangeKind::kFetch;
  const std::vector<NodeId> fetched{1};  // child 2 missing: not closed
  bad.changed = fetched;
  EXPECT_THROW(checker.observe(positive(1), bad), CheckFailure);
}

TEST(SpecChecker, RejectsFetchBeyondCapacity) {
  const Tree t = trees::star(4);
  SpecChecker checker(t, 1, /*capacity=*/1);
  // A valid, exactly-saturated fetch of {leaf} is fine...
  TreeCache tc(t, {.alpha = 1, .capacity = 1});
  checker.observe(positive(1), tc.step(positive(1)));
  // ...but a second leaf would exceed capacity; forge the outcome.
  StepOutcome forged;
  forged.paid = true;
  forged.change = ChangeKind::kFetch;
  const std::vector<NodeId> fetched{2};
  forged.changed = fetched;
  EXPECT_THROW(checker.observe(positive(2), forged), CheckFailure);
}

TEST(SpecChecker, AcceptsFullTcRunEndToEnd) {
  // Sanity inverse: a genuine TC run passes with exhaustive rounds > 0.
  const Tree t = trees::complete_kary(3, 2);
  TreeCache tc(t, {.alpha = 2, .capacity = 4});
  SpecChecker checker(t, 2, 4, /*max_enum_candidates=*/8);
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const Request r{static_cast<NodeId>(rng.below(t.size())),
                    rng.chance(0.4) ? Sign::kNegative : Sign::kPositive};
    ASSERT_NO_THROW(checker.observe(r, tc.step(r)));
  }
  EXPECT_GT(checker.exhaustive_rounds(), 0u);
}

}  // namespace
}  // namespace treecache
