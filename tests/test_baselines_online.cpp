// Online baselines (LRU-closure, LocalTC, NeverCache): subforest safety,
// capacity discipline and characteristic behaviours.
#include <gtest/gtest.h>

#include "baselines/local_tc.hpp"
#include "baselines/lru_closure.hpp"
#include "baselines/never_cache.hpp"
#include "core/tree_cache.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

TEST(LruClosure, FetchesClosureOnMiss) {
  const Tree t = trees::path(4);
  LruClosure lru(t, {.alpha = 2, .capacity = 4});
  const auto out = lru.step(positive(1));
  EXPECT_TRUE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kFetch);
  // Fetching node 1 pulls its whole missing subtree {1, 2, 3}.
  EXPECT_EQ(lru.cache().size(), 3u);
  EXPECT_TRUE(lru.cache().contains(3));
  EXPECT_TRUE(lru.cache().is_valid());
  EXPECT_EQ(lru.cost().reorg, 6u);  // 3 nodes * alpha
}

TEST(LruClosure, BypassesWhenClosureTooLarge) {
  const Tree t = trees::path(4);
  LruClosure lru(t, {.alpha = 2, .capacity = 2});
  const auto out = lru.step(positive(0));  // closure = 4 nodes > capacity
  EXPECT_TRUE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kNone);
  EXPECT_TRUE(lru.cache().empty());
}

TEST(LruClosure, EvictsLeastRecentlyUsedRoot) {
  const Tree t = trees::star(3);
  LruClosure lru(t, {.alpha = 1, .capacity = 2});
  lru.step(positive(1));  // cache {1}
  lru.step(positive(2));  // cache {1,2}
  lru.step(positive(1));  // refresh leaf 1
  lru.step(positive(3));  // must evict leaf 2 (least recent root)
  EXPECT_TRUE(lru.cache().contains(1));
  EXPECT_FALSE(lru.cache().contains(2));
  EXPECT_TRUE(lru.cache().contains(3));
}

TEST(LruClosure, NegativeInvalidationEvictsCapWhenEnabled) {
  const Tree t = trees::path(3);
  LruClosure lru(t,
                 {.alpha = 1, .capacity = 3, .evict_on_negative = true});
  lru.step(positive(1));  // cache {1, 2}
  ASSERT_EQ(lru.cache().size(), 2u);
  const auto out = lru.step(negative(1));
  EXPECT_TRUE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kEvict);
  EXPECT_FALSE(lru.cache().contains(1));
  EXPECT_TRUE(lru.cache().contains(2));  // descendant may stay
  EXPECT_TRUE(lru.cache().is_valid());
}

TEST(LruClosure, NegativeWithoutInvalidationJustPays) {
  const Tree t = trees::path(3);
  LruClosure lru(t, {.alpha = 1, .capacity = 3});
  lru.step(positive(2));
  const auto out = lru.step(negative(2));
  EXPECT_TRUE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kNone);
  EXPECT_TRUE(lru.cache().contains(2));
}

TEST(LocalTc, NeedsOwnCounterToFetch) {
  // Unlike TC, LocalTC ignores relatives' counters: two requests at node 1
  // and two at node 2 do NOT trigger any fetch with alpha = 2 on a path
  // where P(1) = {1, 2} (node 1 alone must pay 4).
  const Tree t = trees::path(3);
  LocalTc local(t, {.alpha = 2, .capacity = 3});
  EXPECT_EQ(local.step(positive(2)).change, ChangeKind::kNone);
  EXPECT_EQ(local.step(positive(1)).change, ChangeKind::kNone);
  EXPECT_EQ(local.step(positive(1)).change, ChangeKind::kNone);
  // cnt(2) = 1 < 2: still nothing, but TC would have fetched by now.
  EXPECT_EQ(local.step(positive(2)).change, ChangeKind::kFetch);  // {2}
  EXPECT_EQ(local.cache().size(), 1u);
}

TEST(LocalTc, EvictsPathCapWhenCounterPays) {
  const Tree t = trees::path(3);
  LocalTc local(t, {.alpha = 1, .capacity = 3});
  local.step(positive(2));  // fetch {2} (alpha = 1)
  local.step(positive(1));  // fetch {1}
  ASSERT_EQ(local.cache().size(), 2u);
  // Negative at 2: cap {1, 2} has size 2, needs cnt(2) >= 2.
  EXPECT_EQ(local.step(negative(2)).change, ChangeKind::kNone);
  const auto out = local.step(negative(2));
  EXPECT_EQ(out.change, ChangeKind::kEvict);
  EXPECT_TRUE(local.cache().empty());
}

TEST(LocalTc, RestartsWhenFetchDoesNotFit) {
  const Tree t = trees::path(3);
  LocalTc local(t, {.alpha = 1, .capacity = 1});
  local.step(positive(2));  // fetch {2}
  const auto out = local.step(positive(1));  // P(1) = {1}, 1+1 > 1
  EXPECT_EQ(out.change, ChangeKind::kPhaseRestart);
  EXPECT_TRUE(local.cache().empty());
}

TEST(NeverCache, PaysEveryPositive) {
  const Tree t = trees::path(3);
  NeverCache none(t);
  for (int i = 0; i < 5; ++i) none.step(positive(2));
  for (int i = 0; i < 5; ++i) none.step(negative(2));
  EXPECT_EQ(none.cost().service, 5u);
  EXPECT_EQ(none.cost().reorg, 0u);
  EXPECT_TRUE(none.cache().empty());
}

class BaselineSafety : public ::testing::TestWithParam<int> {};

TEST_P(BaselineSafety, CacheStaysValidSubforestUnderRandomTraffic) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 101 + 7);
  const Tree t = trees::random_recursive(60, rng);
  const Trace trace = workload::uniform_trace(t, 1500, 0.3, rng);

  LruClosure lru(t, {.alpha = 2, .capacity = 12});
  LruClosure lru_inv(t,
                     {.alpha = 2, .capacity = 12, .evict_on_negative = true});
  LocalTc local(t, {.alpha = 2, .capacity = 12});

  for (OnlineAlgorithm* alg :
       std::initializer_list<OnlineAlgorithm*>{&lru, &lru_inv, &local}) {
    const auto result = sim::run_trace(*alg, trace, {}, true);
    EXPECT_LE(result.max_cache_size, 12u) << alg->name();
    EXPECT_EQ(result.cost.total(), alg->cost().total());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSafety, ::testing::Range(1, 9));

TEST(BaselineComparison, TcWinsOnAdversarialThrashing) {
  // Fetch-on-miss LRU thrashes on a cyclic scan with a small cache and
  // large alpha; TC's rent-or-buy counters keep the reorganization cost
  // proportional to the service cost.
  const Tree t = trees::star(6);
  const std::uint64_t alpha = 16;
  Trace trace;
  for (int rounds = 0; rounds < 400; ++rounds) {
    trace.push_back(positive(static_cast<NodeId>(1 + rounds % 6)));
  }
  TreeCache tc(t, {.alpha = alpha, .capacity = 3});
  LruClosure lru(t, {.alpha = alpha, .capacity = 3});
  const Cost tc_cost = sim::run_trace(tc, trace).cost;
  const Cost lru_cost = sim::run_trace(lru, trace).cost;
  // LRU faults (and pays 2*alpha churn) on every single request here.
  EXPECT_LT(tc_cost.total() * 4, lru_cost.total());
}

}  // namespace
}  // namespace treecache
