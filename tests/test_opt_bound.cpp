// Lemma 5.11 / 5.14 lower-bound certificates: soundness against the exact
// DP optimum, and usefulness (non-trivial bounds on adversarial runs).
#include <gtest/gtest.h>

#include "analysis/opt_bound.hpp"
#include "baselines/opt_offline.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/adversary.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

FieldTracker run_tracked(const Tree& tree, const Trace& trace,
                         std::uint64_t alpha, std::size_t capacity) {
  TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
  FieldTracker tracker(tree, alpha);
  for (const Request& r : trace) tracker.observe(r, tc.step(r));
  tracker.finalize();
  return tracker;
}

TEST(OptBound, SoundAgainstExactDp) {
  // The certificate must never exceed the true optimum.
  Rng rng(2025);
  for (int round = 0; round < 20; ++round) {
    Rng inst(rng());
    const std::size_t n = 5 + inst.below(6);  // 5..10 nodes
    const Tree tree = trees::random_recursive(n, inst);
    const std::uint64_t alpha = 1 + inst.below(4);
    const std::size_t k = 1 + inst.below(n);
    const Trace trace = workload::uniform_trace(tree, 400, 0.4, inst);

    const auto tracker = run_tracked(tree, trace, alpha, k);
    const std::uint64_t certificate = analysis::certified_opt_lower_bound(
        tracker, tree.height(), {.alpha = alpha, .k_opt = k});
    const std::uint64_t opt =
        opt_offline_cost(tree, trace, {.alpha = alpha, .capacity = k});
    EXPECT_LE(certificate, opt)
        << "round " << round << " n=" << n << " k=" << k
        << " alpha=" << alpha;
  }
}

TEST(OptBound, SoundOnAdversarialRuns) {
  for (const std::size_t k : {3u, 5u, 7u}) {
    const std::uint64_t alpha = 4;
    const Tree star = trees::star(k + 1);
    TreeCache tc(star, {.alpha = alpha, .capacity = k});
    FieldTracker tracker(star, alpha);
    Trace trace;
    {
      // Adaptive adversary with tracking: replicate run_paging_adversary
      // but feed the tracker too.
      for (std::size_t chunk = 0; chunk < 80; ++chunk) {
        NodeId victim = kNoNode;
        for (NodeId leaf = 1; leaf < star.size(); ++leaf) {
          if (!tc.cache().contains(leaf)) {
            victim = leaf;
            break;
          }
        }
        ASSERT_NE(victim, kNoNode);
        for (std::uint64_t i = 0; i < alpha; ++i) {
          trace.push_back(positive(victim));
          tracker.observe(trace.back(), tc.step(trace.back()));
        }
      }
      tracker.finalize();
    }
    const std::uint64_t certificate = analysis::certified_opt_lower_bound(
        tracker, star.height(), {.alpha = alpha, .k_opt = k});
    const std::uint64_t opt =
        opt_offline_cost(star, trace, {.alpha = alpha, .capacity = k});
    EXPECT_LE(certificate, opt) << "k=" << k;
    // The adversarial run must yield a non-trivial certificate: restarts
    // make k_P > k_OPT in every finished phase.
    EXPECT_GT(certificate, 0u) << "k=" << k;
  }
}

TEST(OptBound, PhaseBoundUsesTheBetterLemma) {
  // Finished phase with huge k_P: Lemma 5.14 dominates.
  PhaseFieldSummary finished;
  finished.finished = true;
  finished.k_end = 100;
  finished.sum_field_sizes = 120;
  const std::uint64_t b1 = analysis::phase_opt_lower_bound(
      finished, /*tree_height=*/3, {.alpha = 10, .k_opt = 4});
  EXPECT_EQ(b1, (100 - 4) * 10u);

  // Open phase with many fields and small k_P: Lemma 5.11 contributes.
  PhaseFieldSummary open;
  open.finished = false;
  open.k_end = 2;
  open.sum_field_sizes = 2000;
  const std::uint64_t b2 = analysis::phase_opt_lower_bound(
      open, /*tree_height=*/4, {.alpha = 8, .k_opt = 4});
  // (2000 - 4*4*2) * 8 / (2 * 16) = 1968 / 4 = 492.
  EXPECT_EQ(b2, 492u);

  // Tiny phase: bound clamps to zero rather than going negative.
  PhaseFieldSummary tiny;
  tiny.k_end = 50;
  tiny.sum_field_sizes = 3;
  EXPECT_EQ(analysis::phase_opt_lower_bound(tiny, 5,
                                            {.alpha = 2, .k_opt = 60}),
            0u);
}

TEST(OptBound, GrowsWithInstanceLength) {
  Rng rng(4);
  const Tree tree = trees::random_recursive(60, rng);
  const std::uint64_t alpha = 4;
  std::uint64_t previous = 0;
  for (const std::size_t len : {3000u, 12000u, 48000u}) {
    Rng inst(7);
    const Trace trace = workload::uniform_trace(tree, len, 0.4, inst);
    const auto tracker = run_tracked(tree, trace, alpha, 8);
    const std::uint64_t certificate = analysis::certified_opt_lower_bound(
        tracker, tree.height(), {.alpha = alpha, .k_opt = 8});
    EXPECT_GE(certificate, previous);
    previous = certificate;
  }
  EXPECT_GT(previous, 0u);
}

}  // namespace
}  // namespace treecache
