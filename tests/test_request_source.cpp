// The RequestSource API: adapters, materialization, combinators, and the
// two guarantees the streaming redesign rests on — every registered
// workload replays identically after reset(), and driving an algorithm
// from the stream is bit-identical to driving it from the materialized
// trace.
#include "core/request_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/shard_plan.hpp"
#include "fib/fib_workloads.hpp"
#include "fib/router_source.hpp"
#include "fib/traffic.hpp"
#include "rib/workloads.hpp"
#include "sim/fib_engine.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "workload/combinators.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

sim::Params smoke_params() {
  sim::Params p;
  p.set("alpha", "3");
  p.set("capacity", "8");
  p.set("length", "600");
  p.set("rules", "60");  // keep the fib* substrate test-sized
  // fib-real replays the checked-in fixture feed; other workloads ignore
  // the parameter.
  p.set("rib-feed", std::string(TREECACHE_TEST_DATA_DIR) + "/rib_v4.feed");
  return p;
}

/// The registry-wide loops run every workload, and each family of
/// workloads is only defined over its own tree: fib* over the synthetic
/// RIB rule tree, fib-real over the tree rebuilt from its feed, the rest
/// over any tree. (fib-real must be tested first — its name also matches
/// the fib* prefix.)
const Tree& tree_for_workload(const std::string& name,
                              const sim::Params& params,
                              const Tree& rule_tree,
                              const Tree& generic_tree) {
  if (rib::is_real_fib_workload_name(name)) {
    return rib::shared_real_fib(params).tree();
  }
  return fib::is_fib_workload_name(name) ? rule_tree : generic_tree;
}

Trace ones(std::size_t count, NodeId node) {
  return Trace(count, positive(node));
}

TEST(TraceSourceAdapter, StreamsOwnsAndResets) {
  TraceSource source(Trace{positive(1), negative(2), positive(0)});
  EXPECT_EQ(source.size_hint(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(source.next(), positive(1));
  EXPECT_EQ(source.size_hint(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(source.next(), negative(2));
  EXPECT_EQ(source.next(), positive(0));
  EXPECT_EQ(source.next(), std::nullopt);
  EXPECT_EQ(source.next(), std::nullopt);  // stays exhausted
  source.reset();
  EXPECT_EQ(source.next(), positive(1));
}

TEST(TraceSourceAdapter, BorrowingViewMatchesOwning) {
  const Trace trace{positive(4), positive(2), negative(4)};
  TraceSource borrowed{std::span<const Request>(trace)};
  EXPECT_EQ(materialize(borrowed), trace);
}

TEST(MaterializeHelper, HonorsRequestLimit) {
  TraceSource source(ones(100, 1));
  EXPECT_EQ(materialize(source, 7).size(), 7u);
  // The limit consumed only 7; the rest is still there.
  EXPECT_EQ(materialize(source).size(), 93u);
}

TEST(FileTraceSourceTest, StreamsFileAndResets) {
  const Tree tree = trees::path(6);
  Rng rng(3);
  const Trace trace = workload::uniform_trace(tree, 200, 0.4, rng);
  const std::string path = "/tmp/treecache_test_source_trace.txt";
  {
    std::ofstream out(path);
    save_trace(out, trace);
  }
  FileTraceSource source(path, tree.size());
  EXPECT_EQ(materialize(source), trace);
  source.reset();
  EXPECT_EQ(materialize(source), trace);
  std::remove(path.c_str());
}

TEST(FileTraceSourceTest, MissingFileThrows) {
  EXPECT_THROW(FileTraceSource("/nonexistent/trace.txt", 4), CheckFailure);
}

TEST(TraceParsing, ErrorsCarryLineNumbers) {
  const auto message_of = [](const std::string& text) -> std::string {
    std::istringstream in(text);
    try {
      (void)load_trace(in, 5);
    } catch (const CheckFailure& e) {
      return e.what();
    }
    return {};
  };
  // Malformed sign on (physical) line 3; the blank line still counts.
  const std::string bad_sign = message_of("+1\n\n?3\n");
  EXPECT_NE(bad_sign.find("line 3"), std::string::npos) << bad_sign;
  EXPECT_NE(bad_sign.find("?3"), std::string::npos) << bad_sign;
  // Trailing garbage after the node id.
  const std::string garbage = message_of("+1\n-2 x\n");
  EXPECT_NE(garbage.find("line 2"), std::string::npos) << garbage;
  // Out-of-range node names the tree size.
  const std::string range = message_of("+7\n");
  EXPECT_NE(range.find("line 1"), std::string::npos) << range;
  EXPECT_NE(range.find("outside the tree"), std::string::npos) << range;
  // A sign with no digits is malformed, not node 0.
  EXPECT_NE(message_of("+\n").find("line 1"), std::string::npos);
  // Well-formed input still parses.
  std::istringstream ok("+1\n-2\n\n+0\n");
  EXPECT_EQ(load_trace(ok, 5),
            (Trace{positive(1), negative(2), positive(0)}));
}

// --- The central guarantees, over every registered workload. ------------

TEST(RegisteredWorkloads, ResetReplaysTheIdenticalStream) {
  Rng rng(11);
  const Tree generic_tree = trees::random_recursive(40, rng);
  const sim::Params params = smoke_params();
  const fib::RuleTree rule_tree = fib::rule_tree_from_params(params);

  for (const std::string& name : sim::WorkloadRegistry::instance().names()) {
    SCOPED_TRACE("workload: " + name);
    const Tree& tree =
        tree_for_workload(name, params, rule_tree.tree, generic_tree);
    const auto source = sim::make_source(name, tree, params, 21);
    const Trace first = materialize(*source);
    ASSERT_FALSE(first.empty());
    source->reset();
    EXPECT_EQ(materialize(*source), first);
  }
}

// Property test for RequestSource::split over every registered (open-loop)
// workload: the per-shard streams are exactly the stable partition of the
// unsharded stream by owning shard — so their concatenation is a
// permutation of it — each part replays identically after reset(), and
// split() is independent of how far the parent has been consumed.
TEST(RegisteredWorkloads, SplitPartitionsEveryStreamByShard) {
  Rng rng(29);
  const Tree generic_tree = trees::random_recursive(60, rng);
  const sim::Params params = smoke_params();
  const fib::RuleTree rule_tree = fib::rule_tree_from_params(params);

  for (const std::string& name : sim::WorkloadRegistry::instance().names()) {
    SCOPED_TRACE("workload: " + name);
    const Tree& tree =
        tree_for_workload(name, params, rule_tree.tree, generic_tree);
    const engine::ShardPlan plan(tree, 4);
    ASSERT_GE(plan.num_shards(), 2u);

    const auto source = sim::make_source(name, tree, params, 21);
    const Trace whole = materialize(*source);
    ASSERT_FALSE(whole.empty());

    // A shardable stream must say so: split_kind() is the engine's
    // dispatch signal, and "unsplittable" from a workload whose split()
    // works would silently refuse multi-shard runs.
    EXPECT_NE(source->split_kind(), SplitKind::kUnsplittable);

    // Splitting AFTER the parent was drained: parts replay from round one
    // regardless of the parent's position.
    const auto parts = source->split(plan);
    ASSERT_EQ(parts.size(), plan.num_shards())
        << "every registered workload must be shardable";

    std::vector<Trace> expected(plan.num_shards());
    for (const Request& r : whole) {
      expected[plan.shard_of(r.node)].push_back(plan.to_local(r));
    }
    std::size_t total = 0;
    for (std::size_t s = 0; s < parts.size(); ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      const Trace got = materialize(*parts[s]);
      EXPECT_EQ(got, expected[s]);
      total += got.size();
      // reset() replays the identical per-shard stream.
      parts[s]->reset();
      EXPECT_EQ(materialize(*parts[s]), expected[s]);
    }
    // Conservation: nothing dropped, nothing double-routed.
    EXPECT_EQ(total, whole.size());
  }
}

TEST(RegisteredWorkloads, SplitKindAdvisesHowEachSourceScalesOut) {
  // Open-loop sources default to fork-per-shard replication...
  TraceSource open(ones(3, 1));
  EXPECT_EQ(open.split_kind(), SplitKind::kReplicated);

  // ...a closed loop without a split() override is honest about being
  // unshardable...
  class ClosedStub final : public RequestSource {
   public:
    [[nodiscard]] std::size_t fill(std::span<Request>) override { return 0; }
    void reset() override {}
    [[nodiscard]] bool is_closed_loop() const override { return true; }
  };
  ClosedStub closed;
  EXPECT_EQ(closed.split_kind(), SplitKind::kUnsplittable);

  // ...and the fib router advertises shared generation: one producer
  // feeding every shard mirror instead of S replicated streams.
  const sim::Params params = smoke_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(params);
  const fib::RouterSource source(rt, sim::fib_router_config(params, 5));
  EXPECT_EQ(source.split_kind(), SplitKind::kShared);
}

TEST(RegisteredWorkloads, StreamedAndMaterializedRunsAreIdentical) {
  Rng rng(13);
  const Tree generic_tree = trees::random_recursive(40, rng);
  const sim::Params params = smoke_params();
  const fib::RuleTree rule_tree = fib::rule_tree_from_params(params);

  for (const std::string& name : sim::WorkloadRegistry::instance().names()) {
    SCOPED_TRACE("workload: " + name);
    const Tree& tree =
        tree_for_workload(name, params, rule_tree.tree, generic_tree);

    const auto streamed_alg = sim::make_algorithm("tc", tree, params);
    const auto source = sim::make_source(name, tree, params, 33);
    const auto streamed = sim::run_source(*streamed_alg, *source);

    const auto materialized_alg = sim::make_algorithm("tc", tree, params);
    const Trace trace = sim::make_workload(name, tree, params, 33);
    const auto materialized = sim::run_trace(*materialized_alg, trace);

    EXPECT_EQ(streamed, materialized);
    EXPECT_EQ(streamed.rounds, trace.size());
  }
}

TEST(FibStreaming, SourceMatchesEagerChunkedTrace) {
  sim::Params params = smoke_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(params);
  const fib::FibWorkloadConfig config{.events = 3000,
                                      .zipf_skew = 1.1,
                                      .update_probability = 0.03,
                                      .alpha = 4};
  Rng eager_rng(17);
  const ChunkedTrace eager = make_fib_workload(rt, config, eager_rng);
  fib::FibTraceSource source(rt, config, Rng(17));
  EXPECT_EQ(materialize(source), eager.trace);
}

// --- Combinators. --------------------------------------------------------

TEST(Combinators, ConcatPlaysPartsInOrder) {
  std::vector<std::unique_ptr<RequestSource>> parts;
  parts.push_back(std::make_unique<TraceSource>(ones(3, 1)));
  parts.push_back(std::make_unique<TraceSource>(ones(2, 2)));
  workload::ConcatSource concat(std::move(parts));
  EXPECT_EQ(concat.size_hint(), std::optional<std::uint64_t>(5));
  const Trace expected{positive(1), positive(1), positive(1), positive(2),
                       positive(2)};
  EXPECT_EQ(materialize(concat), expected);
  concat.reset();
  EXPECT_EQ(materialize(concat), expected);
}

TEST(Combinators, MixDrainsEveryPartExactly) {
  std::vector<std::unique_ptr<RequestSource>> parts;
  parts.push_back(std::make_unique<TraceSource>(ones(30, 1)));
  parts.push_back(std::make_unique<TraceSource>(ones(10, 2)));
  workload::MixSource mix(std::move(parts), {3.0, 1.0}, Rng(5));
  EXPECT_EQ(mix.size_hint(), std::optional<std::uint64_t>(40));
  const Trace first = materialize(mix);
  ASSERT_EQ(first.size(), 40u);
  std::size_t from_first = 0;
  for (const Request& r : first) from_first += r.node == 1 ? 1u : 0u;
  EXPECT_EQ(from_first, 30u);
  // Interleaved, not concatenated: part 2 shows up before part 1 runs dry.
  bool early_two = false;
  for (std::size_t i = 0; i < 20; ++i) early_two |= first[i].node == 2;
  EXPECT_TRUE(early_two);
  mix.reset();
  EXPECT_EQ(materialize(mix), first);
}

TEST(Combinators, ChurnInjectInsertsAlphaChunks) {
  const Tree tree = trees::path(4);
  workload::ChurnInjectSource source(
      std::make_unique<TraceSource>(ones(10, 3)), tree, /*period=*/4,
      /*alpha=*/3, Rng(9));
  EXPECT_EQ(source.size_hint(), std::optional<std::uint64_t>(16));
  const Trace trace = materialize(source);
  ASSERT_EQ(trace.size(), 16u);  // 10 inner + 2 chunks of 3
  std::size_t negatives = 0;
  for (const Request& r : trace) negatives += r.sign == Sign::kNegative;
  EXPECT_EQ(negatives, 6u);
  // Chunks sit after the 4th and 8th inner request, each 3 identical
  // negatives to one node.
  for (const std::size_t begin : {4u, 11u}) {
    for (std::size_t i = begin; i < begin + 3; ++i) {
      EXPECT_EQ(trace[i].sign, Sign::kNegative) << "index " << i;
      EXPECT_EQ(trace[i].node, trace[begin].node) << "index " << i;
    }
  }
  source.reset();
  EXPECT_EQ(materialize(source), trace);
}

TEST(Combinators, RegisteredNamesRunThroughTheScenarioEngine) {
  Rng rng(23);
  const Tree tree = trees::random_recursive(30, rng);
  sim::Params params = smoke_params();
  params.set("parts", "zipf,hotspot");
  params.set("weights", "2,1");
  for (const std::string name : {"concat", "mix"}) {
    SCOPED_TRACE(name);
    const auto result = sim::run_scenario(
        tree, {.algorithm = "tc", .workload = name, .params = params,
               .seed = 3});
    // concat and mix split `length` across their parts exactly.
    EXPECT_EQ(result.run.rounds, 600u);
  }
  params.set("inner", "zipfleaf");
  params.set("churn-period", "100");
  const auto churned = sim::run_scenario(
      tree, {.algorithm = "tc", .workload = "churn-inject", .params = params,
             .seed = 3});
  // 600 inner requests + 6 injected chunks of alpha=3 negatives.
  EXPECT_EQ(churned.run.rounds, 600u + 6u * 3u);
}

TEST(Combinators, SelfNestingIsRejected) {
  const Tree tree = trees::path(5);
  sim::Params params;
  params.set("parts", "concat");
  EXPECT_THROW((void)sim::make_source("concat", tree, params, 1),
               CheckFailure);
  params.set("parts", "mix");
  EXPECT_THROW((void)sim::make_source("mix", tree, params, 1), CheckFailure);
  sim::Params churn;
  churn.set("inner", "churn-inject");
  EXPECT_THROW((void)sim::make_source("churn-inject", tree, churn, 1),
               CheckFailure);
}

TEST(Combinators, ComposeAcrossLevels) {
  // A combinator may name another combinator as a part — only itself is
  // forbidden. mix-of-concat must stream and replay like everything else.
  Rng rng(29);
  const Tree tree = trees::random_recursive(20, rng);
  sim::Params params = smoke_params();
  params.set("parts", "concat,uniform");
  const auto source = sim::make_source("mix", tree, params, 7);
  const Trace first = materialize(*source);
  EXPECT_EQ(first.size(), 600u);
  source->reset();
  EXPECT_EQ(materialize(*source), first);
}

}  // namespace
}  // namespace treecache
