// Boundary conditions across the stack: degenerate trees, extreme
// parameters, empty and single-sign traces.
#include <gtest/gtest.h>

#include "baselines/lru_closure.hpp"
#include "baselines/opt_offline.hpp"
#include "baselines/static_opt.hpp"
#include "core/field_tracker.hpp"
#include "core/naive_tree_cache.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

TEST(EdgeCases, SingleNodeTree) {
  const Tree t({kNoNode});
  TreeCache tc(t, {.alpha = 2, .capacity = 1});
  EXPECT_EQ(tc.step(positive(0)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(positive(0)).change, ChangeKind::kFetch);
  EXPECT_TRUE(tc.cache().contains(0));
  EXPECT_EQ(tc.step(negative(0)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(negative(0)).change, ChangeKind::kEvict);
  EXPECT_TRUE(tc.cache().empty());
  EXPECT_EQ(tc.cost().total(), 4u + 2u * 2u);
}

TEST(EdgeCases, CapacityOneOnDeepTree) {
  // Only leaves can ever be cached with capacity 1.
  const Tree t = trees::path(10);
  TreeCache tc(t, {.alpha = 1, .capacity = 1});
  Rng rng(1);
  const Trace trace = workload::uniform_trace(t, 2000, 0.3, rng);
  for (const Request& r : trace) {
    tc.step(r);
    ASSERT_LE(tc.cache().size(), 1u);
    if (tc.cache().size() == 1) {
      ASSERT_TRUE(tc.cache().contains(9));  // the only single-node subtree
    }
  }
}

TEST(EdgeCases, CapacityEqualsTreeSizeNeverRestarts) {
  Rng rng(2);
  const Tree t = trees::random_recursive(30, rng);
  TreeCache tc(t, {.alpha = 2, .capacity = t.size()});
  const Trace trace = workload::uniform_trace(t, 5000, 0.4, rng);
  std::uint64_t restarts = 0;
  for (const Request& r : trace) {
    restarts += tc.step(r).change == ChangeKind::kPhaseRestart ? 1u : 0u;
  }
  EXPECT_EQ(restarts, 0u);
  EXPECT_EQ(tc.phases().size(), 1u);
}

TEST(EdgeCases, AllNegativeTraceCostsNothing) {
  // Nothing is ever cached, so negative requests are all free.
  const Tree t = trees::complete_kary(3, 2);
  TreeCache tc(t, {.alpha = 2, .capacity = 7});
  for (NodeId v = 0; v < t.size(); ++v) {
    for (int i = 0; i < 5; ++i) tc.step(negative(v));
  }
  EXPECT_EQ(tc.cost().total(), 0u);
  EXPECT_TRUE(tc.cache().empty());
}

TEST(EdgeCases, AllPositiveEventuallyCachesEverything) {
  const Tree t = trees::complete_kary(3, 2);
  TreeCache tc(t, {.alpha = 2, .capacity = t.size()});
  Rng rng(3);
  for (int i = 0; i < 2000 && tc.cache().size() < t.size(); ++i) {
    tc.step(positive(static_cast<NodeId>(rng.below(t.size()))));
  }
  EXPECT_EQ(tc.cache().size(), t.size());
  // Once everything is cached, positives are free forever.
  const std::uint64_t before = tc.cost().total();
  for (NodeId v = 0; v < t.size(); ++v) tc.step(positive(v));
  EXPECT_EQ(tc.cost().total(), before);
}

TEST(EdgeCases, HugeAlphaNeverCaches) {
  const Tree t = trees::star(5);
  TreeCache tc(t, {.alpha = 1000000, .capacity = 6});
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const auto out =
        tc.step(positive(static_cast<NodeId>(1 + rng.below(5))));
    ASSERT_EQ(out.change, ChangeKind::kNone);
  }
  EXPECT_TRUE(tc.cache().empty());
  EXPECT_EQ(tc.cost().service, 10000u);
}

TEST(EdgeCases, NaiveAndFastAgreeOnDegenerateShapes) {
  for (const std::size_t n : {1u, 2u}) {
    const Tree t = trees::path(n);
    TreeCache fast(t, {.alpha = 1, .capacity = 1});
    NaiveTreeCache naive(t, {.alpha = 1, .capacity = 1});
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      const Request r{static_cast<NodeId>(rng.below(n)),
                      rng.chance(0.5) ? Sign::kNegative : Sign::kPositive};
      const auto a = fast.step(r);
      const auto b = naive.step(r);
      ASSERT_EQ(a.paid, b.paid);
      ASSERT_EQ(a.change, b.change);
    }
    ASSERT_EQ(fast.cost(), naive.cost());
  }
}

TEST(EdgeCases, OptOfflineOnSingleNode) {
  const Tree t({kNoNode});
  Trace trace;
  for (int i = 0; i < 6; ++i) trace.push_back(positive(0));
  for (int i = 0; i < 6; ++i) trace.push_back(negative(0));
  // Prefetch (2) + evict (2) beats paying 6 + 0.
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 2, .capacity = 1}), 4u);
  // With a prohibitive alpha, bypassing wins.
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 100, .capacity = 1}), 6u);
}

TEST(EdgeCases, StaticOptWithZeroWeights) {
  const Tree t = trees::star(4);
  const std::vector<std::uint64_t> weights(t.size(), 0);
  const auto result = best_static_subforest(t, weights, 3);
  EXPECT_EQ(result.covered_weight, 0u);
  EXPECT_TRUE(result.chosen_roots.empty());  // no reason to cache anything
}

TEST(EdgeCases, LruClosureWithCapacityOne) {
  const Tree t = trees::star(3);
  LruClosure lru(t, {.alpha = 1, .capacity = 1});
  lru.step(positive(1));
  EXPECT_TRUE(lru.cache().contains(1));
  lru.step(positive(2));  // evict 1, fetch 2
  EXPECT_FALSE(lru.cache().contains(1));
  EXPECT_TRUE(lru.cache().contains(2));
  lru.step(positive(0));  // root closure needs 4 slots: bypass
  EXPECT_EQ(lru.cache().size(), 1u);
}

TEST(EdgeCases, FieldTrackerOnEmptyTrace) {
  const Tree t = trees::path(3);
  FieldTracker tracker(t, 2);
  tracker.finalize();
  ASSERT_EQ(tracker.phases().size(), 1u);
  EXPECT_EQ(tracker.phases()[0].field_count, 0u);
  EXPECT_EQ(tracker.phases()[0].k_end, 0u);
  tracker.verify_period_accounting();
  tracker.verify_lemma_5_3(2);
}

TEST(EdgeCases, RepeatedFetchEvictCycleIsStable) {
  // Alternating saturation cycles must not leak state across iterations.
  const Tree t = trees::path(2);
  TreeCache tc(t, {.alpha = 2, .capacity = 2});
  for (int cycle = 0; cycle < 100; ++cycle) {
    ASSERT_EQ(tc.step(positive(1)).change, ChangeKind::kNone);
    ASSERT_EQ(tc.step(positive(1)).change, ChangeKind::kFetch);
    ASSERT_EQ(tc.step(negative(1)).change, ChangeKind::kNone);
    ASSERT_EQ(tc.step(negative(1)).change, ChangeKind::kEvict);
  }
  EXPECT_EQ(tc.cost().service, 400u);
  EXPECT_EQ(tc.cost().reorg, 400u);
}

}  // namespace
}  // namespace treecache
