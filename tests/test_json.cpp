// util/json: value construction, escaping, number formatting, ordering,
// pretty/compact rendering, and file output.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace treecache::util {
namespace {

TEST(Json, ScalarsRender) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json(std::int64_t{-9223372036854775807LL}).dump(),
            "-9223372036854775807");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("text").dump(), "\"text\"");
  EXPECT_EQ(Json(std::string("s")).dump(), "\"s\"");
}

TEST(Json, DoubleRoundTripAndNonFinite) {
  const double value = 0.1234567890123456789;
  EXPECT_EQ(std::stod(Json(value).dump()), value);
  // JSON cannot represent inf/nan; they degrade to null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json(std::string("ctl\x01")).dump(), "\"ctl\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites) {
  Json obj = Json::object();
  obj.set("z", 1).set("a", 2).set("z", 3);  // overwrite keeps position
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.dump(), "{\"z\": 3, \"a\": 2}");
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::array();
  arr.push(1).push("two");
  Json obj = Json::object();
  obj.set("items", std::move(arr)).set("empty", Json::array());
  EXPECT_EQ(obj.dump(), "{\"items\": [1, \"two\"], \"empty\": []}");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj.set("k", Json::array().push(1).push(2));
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
}

TEST(Json, ContainerMisuseThrows) {
  EXPECT_THROW(Json(1).set("k", 2), CheckFailure);
  EXPECT_THROW(Json::object().push(1), CheckFailure);
  EXPECT_THROW(Json::array().set("k", 1), CheckFailure);
}

TEST(Json, SaveJsonWritesFile) {
  const std::string path = "/tmp/treecache_test_json.json";
  Json obj = Json::object();
  obj.set("schema", "test/1").set("value", 7);
  save_json(path, obj);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), obj.dump(2) + "\n");
  EXPECT_THROW(save_json("/nonexistent-dir/x.json", obj), CheckFailure);
}

}  // namespace
}  // namespace treecache::util
