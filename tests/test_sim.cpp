// Simulation harness: run_trace accounting, metrics, sweeps, trace I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/tree_cache.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "tree/tree_builder.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

TEST(Simulator, AccountingMatchesAlgorithmCost) {
  Rng rng(1);
  const Tree t = trees::random_recursive(30, rng);
  const Trace trace = workload::uniform_trace(t, 800, 0.3, rng);
  const std::uint64_t alpha = 3;
  TreeCache tc(t, {.alpha = alpha, .capacity = 8});
  const auto result = sim::run_trace(tc, trace);

  EXPECT_EQ(result.rounds, trace.size());
  EXPECT_EQ(result.cost, tc.cost());
  EXPECT_EQ(result.cost.service, result.paid_requests);
  // Every reorganized node costs alpha.
  EXPECT_EQ(result.cost.reorg,
            alpha * (result.fetched_nodes + result.evicted_nodes +
                     result.restart_evictions));
  EXPECT_LE(result.max_cache_size, 8u);
  EXPECT_EQ(result.final_cache_size, tc.cache().size());
}

TEST(Simulator, ObserverSeesEveryRound) {
  const Tree t = trees::path(3);
  Trace trace{positive(2), positive(2), positive(1)};
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  std::size_t calls = 0;
  std::size_t fetch_round = 0;
  (void)sim::run_trace(tc, trace,
                       [&](std::size_t round, Request, const StepOutcome& o) {
                         ++calls;
                         if (o.change == ChangeKind::kFetch) {
                           fetch_round = round;
                         }
                       });
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(fetch_round, 2u);
}

TEST(Metrics, SummaryBasics) {
  const auto s = sim::summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Metrics, SummaryOfEmptyIsZero) {
  const auto s = sim::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// Nearest-rank quantiles: rank ⌈q·n⌉ clamped to [1, n]. Median and p95
// must follow the same convention.
TEST(Metrics, QuantileNearestRankOddSample) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.5), 3.0);   // rank ⌈2.5⌉ = 3
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.95), 5.0);  // rank ⌈4.75⌉ = 5
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 1.0), 5.0);
}

TEST(Metrics, QuantileNearestRankEvenSample) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
  // q·n lands exactly on a rank boundary: ⌈2⌉ = 2, the lower middle.
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.25), 10.0);  // ⌈1⌉ = 1
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.75), 30.0);  // ⌈3⌉ = 3
  EXPECT_DOUBLE_EQ(sim::quantile(sorted, 0.76), 40.0);  // ⌈3.04⌉ = 4
}

TEST(Metrics, QuantileSmallSamples) {
  EXPECT_DOUBLE_EQ(sim::quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(sim::quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(sim::quantile({7.0}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(sim::quantile({1.0, 2.0}, 0.5), 1.0);  // ⌈1⌉ = 1
  EXPECT_DOUBLE_EQ(sim::quantile({1.0, 2.0}, 0.51), 2.0);
  EXPECT_THROW((void)sim::quantile({}, 0.5), CheckFailure);
}

TEST(Metrics, SummaryQuantilesMatchQuantileHelper) {
  std::vector<double> samples;
  for (int i = 40; i >= 1; --i) samples.push_back(i);  // 1..40, reversed
  const auto s = sim::summarize(samples);
  std::sort(samples.begin(), samples.end());
  EXPECT_DOUBLE_EQ(s.median, sim::quantile(samples, 0.5));
  EXPECT_DOUBLE_EQ(s.median, 20.0);  // even n: lower middle element
  EXPECT_DOUBLE_EQ(s.p95, sim::quantile(samples, 0.95));
  EXPECT_DOUBLE_EQ(s.p95, 38.0);  // rank ⌈0.95·40⌉ = 38
}

TEST(Metrics, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i + 2.0);
  }
  const auto fit = sim::fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Sweep, DeterministicAcrossRuns) {
  auto run = [] {
    return sim::parallel_sweep<double>(32, 99, [](std::size_t i, Rng& rng) {
      return static_cast<double>(i) + rng.uniform01();
    });
  };
  EXPECT_EQ(run(), run());
}

TEST(Sweep, PropagatesExceptions) {
  EXPECT_THROW(sim::parallel_sweep<int>(8, 1,
                                        [](std::size_t i, Rng&) -> int {
                                          if (i == 5) {
                                            throw CheckFailure("boom");
                                          }
                                          return 0;
                                        }),
               CheckFailure);
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const Tree t = trees::path(5);
  Rng rng(3);
  const Trace trace = workload::uniform_trace(t, 200, 0.5, rng);
  std::stringstream buffer;
  save_trace(buffer, trace);
  const Trace loaded = load_trace(buffer, t.size());
  EXPECT_EQ(loaded, trace);
}

TEST(TraceIo, LoadRejectsOutOfRange) {
  std::stringstream buffer("+7\n");
  EXPECT_THROW(load_trace(buffer, 5), CheckFailure);
}

TEST(ConsoleTable, AlignsAndCounts) {
  ConsoleTable table({"name", "value"});
  table.add_row({"alpha", "2"});
  table.add_row({"capacity", "1024"});
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
  // Every rendered line has the same width (alignment).
  std::size_t expected_width = std::string::npos;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::size_t width = end - start;
    if (expected_width == std::string::npos) expected_width = width;
    EXPECT_EQ(width, expected_width);
    start = end + 1;
  }
  EXPECT_THROW(table.add_row({"too", "many", "cells"}), CheckFailure);
}

TEST(Csv, EscapesSpecialCells) {
  const std::string path = "/tmp/treecache_test_csv.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "with,comma"});
    csv.add_row({"quote\"inside", "line\nbreak"});
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(all.find("\"quote\"\"inside\""), std::string::npos);
}

}  // namespace
}  // namespace treecache
