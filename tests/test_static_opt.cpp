// Static optimum (tree sparsity DP): correctness vs brute force and
// structural properties of the chosen subforest.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/static_opt.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

std::vector<std::uint64_t> random_weights(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng.below(20);
  return w;
}

TEST(StaticOpt, LeafHeavyStarPicksHotLeaves) {
  const Tree t = trees::star(4);  // root 0, leaves 1..4
  const std::vector<std::uint64_t> w{100, 1, 50, 60, 2};
  const auto result = best_static_subforest(t, w, 2);
  // Best two single leaves: 3 (60) and 2 (50). The root needs all 5 nodes.
  EXPECT_EQ(result.covered_weight, 110u);
  EXPECT_EQ(result.chosen_roots, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(result.cached_nodes, 2u);
}

TEST(StaticOpt, WholeSubtreeWhenRootWeightDominates) {
  const Tree t = trees::star(3);
  const std::vector<std::uint64_t> w{1000, 1, 1, 1};
  // Budget 3 cannot take the root (needs 4): best is the 3 leaves.
  EXPECT_EQ(best_static_subforest(t, w, 3).covered_weight, 3u);
  // Budget 4 takes everything.
  const auto full = best_static_subforest(t, w, 4);
  EXPECT_EQ(full.covered_weight, 1003u);
  EXPECT_EQ(full.chosen_roots, (std::vector<NodeId>{0}));
}

TEST(StaticOpt, ZeroBudgetCoversNothing) {
  const Tree t = trees::path(4);
  const std::vector<std::uint64_t> w{5, 5, 5, 5};
  const auto result = best_static_subforest(t, w, 0);
  EXPECT_EQ(result.covered_weight, 0u);
  EXPECT_TRUE(result.chosen_roots.empty());
}

TEST(StaticOpt, MatchesBruteForceRandomized) {
  Rng rng(321);
  for (int round = 0; round < 60; ++round) {
    Rng inst(rng());
    const std::size_t n = 2 + inst.below(11);  // 2..12 nodes
    const Tree t = (round % 3 == 0)
                       ? trees::random_recursive(n, inst)
                       : (round % 3 == 1)
                             ? trees::random_bounded_degree(n, 2, inst)
                             : trees::path(n);
    const auto w = random_weights(t.size(), inst);
    const std::size_t k = inst.below(t.size() + 2);
    const auto dp = best_static_subforest(t, w, k);
    const auto brute = best_static_subforest_bruteforce(t, w, k);
    EXPECT_EQ(dp.covered_weight, brute.covered_weight)
        << "round " << round << " n=" << n << " k=" << k;
  }
}

TEST(StaticOpt, ChosenRootsFormAntichain) {
  Rng rng(9);
  const Tree t = trees::random_recursive(40, rng);
  const auto w = random_weights(t.size(), rng);
  const auto result = best_static_subforest(t, w, 15);
  for (const NodeId a : result.chosen_roots) {
    for (const NodeId b : result.chosen_roots) {
      if (a != b) {
        EXPECT_FALSE(t.is_ancestor_or_self(a, b))
            << a << " covers " << b;
      }
    }
  }
}

TEST(StaticOpt, PositiveWeightsCountOnlyPositives) {
  const Tree t = trees::path(3);
  Trace trace{positive(1), positive(1), negative(1), positive(2)};
  const auto w = positive_weights(t, trace);
  EXPECT_EQ(w, (std::vector<std::uint64_t>{0, 2, 1}));
}

TEST(StaticOpt, StaticCacheCostAccounting) {
  const Tree t = trees::path(3);
  // Cache T(1) = {1, 2}; alpha = 2 → fetch cost 4.
  StaticOptResult chosen;
  chosen.chosen_roots = {1};
  chosen.cached_nodes = 2;
  Trace trace{positive(1), positive(2), positive(0), negative(2),
              negative(0)};
  // paid: positive(0) = 1 (not cached), negative(2) = 1 (cached).
  EXPECT_EQ(static_cache_cost(t, trace, 2, chosen), 4u + 2u);
}

TEST(StaticOpt, CoverageGrowsWithBudget) {
  Rng rng(17);
  const Tree t = trees::random_recursive(30, rng);
  const auto w = random_weights(t.size(), rng);
  std::uint64_t prev = 0;
  for (std::size_t k = 0; k <= t.size(); ++k) {
    const auto res = best_static_subforest(t, w, k);
    EXPECT_GE(res.covered_weight, prev);
    prev = res.covered_weight;
  }
  EXPECT_EQ(prev, std::accumulate(w.begin(), w.end(), std::uint64_t{0}));
}

TEST(StaticOpt, RejectsMismatchedWeights) {
  const Tree t = trees::path(3);
  const std::vector<std::uint64_t> w{1, 2};
  EXPECT_THROW(best_static_subforest(t, w, 2), CheckFailure);
}

}  // namespace
}  // namespace treecache
