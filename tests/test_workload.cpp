// Workload generators: distributional sanity, structural validity, and the
// paging adversary / lifting machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "baselines/paging.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/adversary.hpp"
#include "workload/generators.hpp"
#include "workload/zipf.hpp"

namespace treecache {
namespace {

TEST(Zipf, UniformWhenSkewZero) {
  Rng rng(1);
  const ZipfSampler sampler(4, 0.0);
  std::array<std::size_t, 4> hits{};
  for (int i = 0; i < 40000; ++i) ++hits[sampler.sample(rng)];
  for (const std::size_t h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / 40000.0, 0.25, 0.02);
  }
}

TEST(Zipf, PmfMatchesEmpiricalFrequencies) {
  Rng rng(2);
  const ZipfSampler sampler(6, 1.2);
  std::array<std::size_t, 6> hits{};
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) ++hits[sampler.sample(rng)];
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_NEAR(static_cast<double>(hits[r]) / draws, sampler.pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(Zipf, SingleRankDegenerateCase) {
  Rng rng(9);
  for (const double skew : {0.0, 1.0, 3.0}) {
    const ZipfSampler sampler(1, skew);
    EXPECT_EQ(sampler.size(), 1u);
    EXPECT_DOUBLE_EQ(sampler.pmf(0), 1.0);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
  }
}

TEST(Zipf, BoundaryDrawsLandOnCdfSteps) {
  // Skew 0 over 4 ranks has exactly representable CDF steps 0.25, 0.5,
  // 0.75, 1.0, so draws landing *exactly* on a step are testable: rank r
  // covers (cdf(r-1), cdf(r)], except rank 0 which also covers 0.
  const ZipfSampler sampler(4, 0.0);
  EXPECT_EQ(sampler.sample_at(0.0), 0u);
  EXPECT_EQ(sampler.sample_at(0.25), 0u);
  EXPECT_EQ(sampler.sample_at(std::nextafter(0.25, 1.0)), 1u);
  EXPECT_EQ(sampler.sample_at(0.5), 1u);
  EXPECT_EQ(sampler.sample_at(0.75), 2u);
  EXPECT_EQ(sampler.sample_at(std::nextafter(0.75, 1.0)), 3u);
  EXPECT_EQ(sampler.sample_at(std::nextafter(1.0, 0.0)), 3u);
  // uniform01() never returns 1.0; sample_at enforces the same domain.
  EXPECT_THROW((void)sampler.sample_at(1.0), CheckFailure);
  EXPECT_THROW((void)sampler.sample_at(-0.001), CheckFailure);
}

TEST(Zipf, ChiSquaredAgainstPmf) {
  // Pearson χ² sanity check that empirical frequencies track pmf(). With
  // 15 degrees of freedom the 99.9th percentile is ≈ 37.7; the draw is
  // deterministic (fixed seed), so the bound cannot flake.
  Rng rng(2024);
  const std::size_t n = 16;
  const ZipfSampler sampler(n, 1.0);
  const int draws = 100000;
  std::vector<std::size_t> hits(n, 0);
  for (int i = 0; i < draws; ++i) ++hits[sampler.sample(rng)];
  double chi2 = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double expected = sampler.pmf(r) * draws;
    ASSERT_GT(expected, 5.0) << "chi-squared needs expected counts > 5";
    const double diff = static_cast<double>(hits[r]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.7) << "empirical frequencies diverge from pmf()";
}

TEST(Zipf, HigherSkewConcentratesMass) {
  const ZipfSampler flat(100, 0.5);
  const ZipfSampler steep(100, 2.0);
  EXPECT_LT(flat.pmf(0), steep.pmf(0));
  EXPECT_GT(flat.pmf(99), steep.pmf(99));
}

TEST(Zipf, WeightsAreMonotone) {
  const auto w = zipf_weights(50, 1.0);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(Generators, TracesStayInRange) {
  Rng rng(3);
  const Tree t = trees::random_recursive(40, rng);
  for (const Trace& trace :
       {workload::uniform_trace(t, 500, 0.5, rng),
        workload::zipf_trace(t, 500, 1.0, 0.2, rng),
        workload::zipf_leaf_trace(t, 500, 1.0, 0.2, rng),
        workload::hotspot_trace(t, 500, 0.05, 0.2, rng),
        workload::update_churn_trace(t, 500, 1.0, 8, 0.1, rng)}) {
    EXPECT_EQ(trace.size(), 500u);
    for (const Request& r : trace) EXPECT_LT(r.node, t.size());
  }
}

TEST(Generators, LeafTraceOnlyTouchesLeaves) {
  Rng rng(4);
  const Tree t = trees::caterpillar(5, 3);
  const Trace trace = workload::zipf_leaf_trace(t, 300, 1.0, 0.0, rng);
  for (const Request& r : trace) {
    EXPECT_TRUE(t.is_leaf(r.node));
    EXPECT_EQ(r.sign, Sign::kPositive);
  }
}

TEST(Generators, NegativeFractionRoughlyHonored) {
  Rng rng(5);
  const Tree t = trees::star(10);
  const Trace trace = workload::uniform_trace(t, 20000, 0.3, rng);
  const auto s = stats(trace, t.size());
  EXPECT_NEAR(static_cast<double>(s.negatives) / 20000.0, 0.3, 0.02);
}

TEST(Generators, UpdateChurnUsesAlphaChunks) {
  Rng rng(6);
  const Tree t = trees::star(5);
  const std::uint64_t alpha = 6;
  const Trace trace =
      workload::update_churn_trace(t, 600, 1.0, alpha, 0.2, rng);
  // Negative requests appear in runs of alpha to the same node (the final
  // chunk may be truncated at the trace end).
  std::size_t i = 0;
  while (i < trace.size()) {
    if (trace[i].sign == Sign::kPositive) {
      ++i;
      continue;
    }
    std::size_t run = 1;
    while (i + run < trace.size() && trace[i + run] == trace[i]) ++run;
    EXPECT_TRUE(run % alpha == 0 || i + run == trace.size())
        << "at index " << i;
    i += run;
  }
}

TEST(Adversary, LiftAndChunkRoundTrip) {
  const std::vector<PageId> pages{0, 2, 1, 2, 0};
  const Trace lifted = workload::lift_paging_sequence(pages, 3);
  EXPECT_EQ(lifted.size(), 15u);
  EXPECT_EQ(lifted[0], positive(1));  // page p -> leaf p+1
  EXPECT_EQ(workload::chunk_pages(lifted, 3), pages);
}

TEST(Adversary, AlwaysRequestsUncachedLeaf) {
  Rng rng(7);
  const std::size_t k = 4;
  const Tree star = trees::star(k + 1);
  TreeCache tc(star, {.alpha = 4, .capacity = k});
  const Trace trace = workload::run_paging_adversary(tc, star, 4, 100);
  EXPECT_EQ(trace.size(), 400u);
  // Every chunk targets a leaf; TC pays for every single request
  // (the adversary's defining property).
  EXPECT_EQ(tc.cost().service, 400u);
}

TEST(Adversary, ForcesOmegaKRatioAgainstPaging) {
  // Classic Sleator–Tarjan: with k+1 pages, LRU faults every request while
  // OPT faults at most once per k requests.
  const std::size_t k = 5;
  LruPaging lru(k);
  std::vector<PageId> seq;
  for (int i = 0; i < 500; ++i) {
    PageId victim = 0;
    while (lru.cached(victim)) ++victim;
    seq.push_back(victim);
    lru.access(victim);
  }
  EXPECT_EQ(lru.faults(), 500u);
  const std::uint64_t opt = belady_faults(seq, k);
  // Asymptotically OPT faults once per k requests; allow small-instance
  // slack around the 500/k = 100 ideal.
  EXPECT_LE(opt, 500u / (k - 1));
  EXPECT_GE(lru.faults(), (k - 1) * opt);
}

TEST(Adversary, RejectsNonStarTrees) {
  const Tree path = trees::path(4);
  TreeCache tc(path, {.alpha = 2, .capacity = 2});
  EXPECT_THROW(
      (void)workload::run_paging_adversary(tc, path, 2, 3), CheckFailure);
}

}  // namespace
}  // namespace treecache
