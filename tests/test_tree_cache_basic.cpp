// Hand-computed TC scenarios: rent-or-buy counters, aggregate saturation,
// maximality, evictions via H(u), phase restarts, cost accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

std::vector<NodeId> sorted(std::span<const NodeId> nodes) {
  std::vector<NodeId> v(nodes.begin(), nodes.end());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TreeCacheBasic, LeafFetchAfterAlphaRequests) {
  const Tree t = trees::path(3);  // 0 - 1 - 2
  TreeCache tc(t, {.alpha = 2, .capacity = 3});

  auto out = tc.step(positive(2));
  EXPECT_TRUE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kNone);
  EXPECT_EQ(tc.counter(2), 1u);

  out = tc.step(positive(2));
  EXPECT_TRUE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kFetch);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{2}));
  EXPECT_TRUE(tc.cache().contains(2));
  EXPECT_EQ(tc.counter(2), 0u);  // counter reset on fetch
  EXPECT_EQ(tc.cost().service, 2u);
  EXPECT_EQ(tc.cost().reorg, 2u);  // alpha * 1

  // Cached now: further positive requests are free.
  out = tc.step(positive(2));
  EXPECT_FALSE(out.paid);
  EXPECT_EQ(tc.cost().service, 2u);
}

TEST(TreeCacheBasic, AggregatedFetchAcrossNodes) {
  // Two requests at node 1 and two at node 2 saturate P(1) = {1, 2}
  // (cnt 4 >= 2 nodes * alpha 2) even though neither node alone saturates
  // at the moment the last request arrives at node 1.
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 3});

  EXPECT_EQ(tc.step(positive(2)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(positive(1)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(positive(2)).change, ChangeKind::kFetch);  // {2} alone
}

TEST(TreeCacheBasic, TopDownScanPrefersLargerSaturatedSet) {
  // Requests alternate between 1 and 2 so that P(1) = {1,2} saturates
  // exactly when P(2) = {2} is not yet saturated on the triggering round.
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 3});

  EXPECT_EQ(tc.step(positive(2)).change, ChangeKind::kNone);  // cnt2=1
  EXPECT_EQ(tc.step(positive(1)).change, ChangeKind::kNone);  // cnt1=1
  // cnt1=2: P(1) has cnt 3 < 4; P(2) unaffected... third request at 1:
  auto out = tc.step(positive(1));
  // P(0): cnt=3 < 6. P(1): cnt=3 < 4. P(2)... does not contain node 1.
  EXPECT_EQ(out.change, ChangeKind::kNone);
  // Fourth request at 2: P(1) cnt=4 == 2*2 -> fetch {1,2} (maximal).
  out = tc.step(positive(2));
  EXPECT_EQ(out.change, ChangeKind::kFetch);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{1, 2}));
}

TEST(TreeCacheBasic, NegativeRequestsEvictMaximalCap) {
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  // Fetch {2}, then {1}.
  tc.step(positive(2));
  tc.step(positive(2));
  tc.step(positive(1));
  tc.step(positive(1));
  ASSERT_TRUE(tc.cache().contains(1));
  ASSERT_TRUE(tc.cache().contains(2));

  // Two negatives at 2: H(1) = {1} u H'(2); I(2) = 0, I(1) = -2 -> no evict.
  EXPECT_EQ(tc.step(negative(2)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(negative(2)).change, ChangeKind::kNone);
  EXPECT_TRUE(tc.cache().contains(2));

  // Two negatives at 1: I(1) = 0 + I(2) = 0 -> evict H(1) = {1, 2}
  // (the size tie-break in val makes the larger saturated cap win).
  EXPECT_EQ(tc.step(negative(1)).change, ChangeKind::kNone);
  auto out = tc.step(negative(1));
  EXPECT_EQ(out.change, ChangeKind::kEvict);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(tc.cache().empty());
  EXPECT_EQ(tc.counter(1), 0u);
  EXPECT_EQ(tc.counter(2), 0u);
}

TEST(TreeCacheBasic, NegativeRequestToNonCachedIsFree) {
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  const auto out = tc.step(negative(2));
  EXPECT_FALSE(out.paid);
  EXPECT_EQ(out.change, ChangeKind::kNone);
  EXPECT_EQ(tc.cost().total(), 0u);
}

TEST(TreeCacheBasic, PhaseRestartWhenFetchDoesNotFit) {
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 1});
  tc.step(positive(2));
  tc.step(positive(2));  // fetch {2}, fits capacity 1
  ASSERT_EQ(tc.cache().size(), 1u);

  tc.step(positive(1));
  const auto out = tc.step(positive(1));  // P(1) = {1} saturated, 1+1 > 1
  EXPECT_EQ(out.change, ChangeKind::kPhaseRestart);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{2}));
  EXPECT_EQ(out.aborted_fetch_size, 1u);
  EXPECT_EQ(sorted(out.aborted_fetch), (std::vector<NodeId>{1}));
  EXPECT_TRUE(tc.cache().empty());

  // Phase stats: finished phase with k_P = evicted + aborted = 2 > k_ONL.
  ASSERT_EQ(tc.phases().size(), 2u);
  EXPECT_TRUE(tc.phases()[0].finished);
  EXPECT_EQ(tc.phases()[0].k_end, 2u);
  EXPECT_GE(tc.phases()[0].k_end, tc.config().capacity + 1);

  // New phase: counters were reset, so the node needs alpha fresh requests.
  EXPECT_EQ(tc.step(positive(1)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(positive(1)).change, ChangeKind::kNone);
  // P(1) = {1,2} now (2 not cached): cnt = 2 < 4. Two more at 2:
  EXPECT_EQ(tc.step(positive(2)).change, ChangeKind::kNone);
  const auto out2 = tc.step(positive(2));
  // P(1) saturated again (cnt 4 = 2*2) but |{1,2}| = 2 > capacity: restart.
  EXPECT_EQ(out2.change, ChangeKind::kPhaseRestart);
}

TEST(TreeCacheBasic, StarIndependentLeaves) {
  const Tree t = trees::star(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 4});
  tc.step(positive(1));
  tc.step(positive(1));
  EXPECT_TRUE(tc.cache().contains(1));
  tc.step(positive(2));
  tc.step(positive(2));
  EXPECT_TRUE(tc.cache().contains(2));
  EXPECT_FALSE(tc.cache().contains(3));
  tc.step(positive(3));
  tc.step(positive(3));
  // All leaves cached; two requests at the root fetch it too.
  tc.step(positive(0));
  const auto out = tc.step(positive(0));
  EXPECT_EQ(out.change, ChangeKind::kFetch);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{0}));
  EXPECT_EQ(tc.cache().size(), 4u);
}

TEST(TreeCacheBasic, RootFetchPullsWholeMissingSubtree) {
  const Tree t = trees::star(3);
  TreeCache tc(t, {.alpha = 1, .capacity = 4});
  // With alpha = 1: single request at a leaf fetches it.
  EXPECT_EQ(tc.step(positive(1)).change, ChangeKind::kFetch);
  // Requests at the root: P(0) = {0, 2, 3}, needs cnt 3.
  EXPECT_EQ(tc.step(positive(0)).change, ChangeKind::kNone);
  EXPECT_EQ(tc.step(positive(0)).change, ChangeKind::kNone);
  const auto out = tc.step(positive(0));
  EXPECT_EQ(out.change, ChangeKind::kFetch);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(tc.cache().size(), 4u);
}

TEST(TreeCacheBasic, EvictionLeavesValidSubforestAndRoots) {
  // Cache a two-level tree fully, then evict the top only.
  const Tree t = trees::complete_kary(2, 2);  // 0 with children 1, 2
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  tc.step(positive(1));
  tc.step(positive(1));
  tc.step(positive(2));
  tc.step(positive(2));
  tc.step(positive(0));
  tc.step(positive(0));
  ASSERT_EQ(tc.cache().size(), 3u);

  // Two negatives at the root: H(0) = {0} (children have I = -2 < 0).
  tc.step(negative(0));
  const auto out = tc.step(negative(0));
  EXPECT_EQ(out.change, ChangeKind::kEvict);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{0}));
  EXPECT_TRUE(tc.cache().is_valid());
  EXPECT_EQ(tc.cache().size(), 2u);
  EXPECT_TRUE(tc.cache().contains(1));
  EXPECT_TRUE(tc.cache().contains(2));
}

TEST(TreeCacheBasic, CostDecomposition) {
  const Tree t = trees::path(2);
  TreeCache tc(t, {.alpha = 4, .capacity = 2});
  for (int i = 0; i < 4; ++i) tc.step(positive(1));
  EXPECT_EQ(tc.cost().service, 4u);
  EXPECT_EQ(tc.cost().reorg, 4u);
  for (int i = 0; i < 4; ++i) tc.step(negative(1));
  EXPECT_EQ(tc.cost().service, 8u);
  EXPECT_EQ(tc.cost().reorg, 8u);
  EXPECT_EQ(tc.cost().total(), 16u);
}

TEST(TreeCacheBasic, ResetRestoresInitialState) {
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  tc.step(positive(2));
  tc.step(positive(2));
  tc.reset();
  EXPECT_TRUE(tc.cache().empty());
  EXPECT_EQ(tc.cost().total(), 0u);
  EXPECT_EQ(tc.round(), 0u);
  EXPECT_EQ(tc.counter(2), 0u);
  // Behaves exactly like a fresh instance.
  tc.step(positive(2));
  const auto out = tc.step(positive(2));
  EXPECT_EQ(out.change, ChangeKind::kFetch);
}

// Regression for stale state carried across reset(): h_value_/h_size_ and
// the scratch arrays are now cleared explicitly, so a reset-then-replay
// run must be bit-identical to a fresh instance — outcomes, costs, phase
// accounting, counters and the (I, S) negative-side aggregates.
TEST(TreeCacheBasic, ResetThenReplayIsBitIdenticalToFresh) {
  Rng rng(123);
  const Tree t = trees::random_recursive(40, rng);
  // Mixed positive/negative pressure against a tiny capacity, so the first
  // run exercises fetches, evictions and phase restarts before the reset.
  const Trace trace = workload::zipf_trace(t, 3000, 1.0, 0.35, rng);
  const TreeCacheConfig config{.alpha = 2, .capacity = 5};

  TreeCache reused(t, config);
  for (const Request& r : trace) reused.step(r);
  EXPECT_GT(reused.phases().size(), 1u) << "trace too tame: no restarts";
  reused.reset();

  TreeCache fresh(t, config);
  for (const Request& r : trace) {
    const StepOutcome a = fresh.step(r);
    const StepOutcome b = reused.step(r);
    ASSERT_EQ(a.paid, b.paid);
    ASSERT_EQ(a.change, b.change);
    ASSERT_TRUE(std::ranges::equal(a.changed, b.changed));
  }
  EXPECT_EQ(fresh.cost(), reused.cost());
  EXPECT_EQ(fresh.work(), reused.work());
  EXPECT_EQ(fresh.cache().as_vector(), reused.cache().as_vector());
  for (NodeId v = 0; v < t.size(); ++v) {
    ASSERT_EQ(fresh.counter(v), reused.counter(v)) << "counter at " << v;
    if (fresh.cache().contains(v)) {
      ASSERT_EQ(fresh.debug_hI(v), reused.debug_hI(v)) << "I at " << v;
      ASSERT_EQ(fresh.debug_hS(v), reused.debug_hS(v)) << "S at " << v;
    }
  }
  ASSERT_EQ(fresh.phases().size(), reused.phases().size());
  for (std::size_t i = 0; i < fresh.phases().size(); ++i) {
    const PhaseStats& a = fresh.phases()[i];
    const PhaseStats& b = reused.phases()[i];
    EXPECT_EQ(a.first_round, b.first_round) << "phase " << i;
    EXPECT_EQ(a.last_round, b.last_round) << "phase " << i;
    EXPECT_EQ(a.finished, b.finished) << "phase " << i;
    EXPECT_EQ(a.k_end, b.k_end) << "phase " << i;
    EXPECT_EQ(a.fetches, b.fetches) << "phase " << i;
    EXPECT_EQ(a.evictions, b.evictions) << "phase " << i;
  }
}

TEST(TreeCacheBasic, RejectsBadConfig) {
  const Tree t = trees::path(3);
  EXPECT_THROW(TreeCache(t, {.alpha = 0, .capacity = 3}), CheckFailure);
  EXPECT_THROW(TreeCache(t, {.alpha = 2, .capacity = 0}), CheckFailure);
}

TEST(TreeCacheBasic, RejectsOutOfRangeRequest) {
  const Tree t = trees::path(3);
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  EXPECT_THROW(tc.step(positive(7)), CheckFailure);
}

TEST(TreeCacheBasic, AlphaOneFetchesImmediately) {
  const Tree t = trees::path(4);
  TreeCache tc(t, {.alpha = 1, .capacity = 4});
  const auto out = tc.step(positive(3));
  EXPECT_EQ(out.change, ChangeKind::kFetch);
  EXPECT_EQ(sorted(out.changed), (std::vector<NodeId>{3}));
}

}  // namespace
}  // namespace treecache
