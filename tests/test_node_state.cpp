// Unit tests for the preorder-indexed SoA hot-state block, including the
// epoch machinery that gives O(1) phase resets and its clear-on-wrap branch.
#include <gtest/gtest.h>

#include <limits>

#include "core/node_state.hpp"

namespace treecache {
namespace {

TEST(NodeState, CachedFlagRoundTrip) {
  NodeState state(4);
  EXPECT_EQ(state.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) EXPECT_FALSE(state.cached(r));
  state.set_cached(2);
  EXPECT_TRUE(state.cached(2));
  EXPECT_FALSE(state.cached(1));
  state.clear_cached(2);
  EXPECT_FALSE(state.cached(2));
}

TEST(NodeState, CountersStartAtZeroAndBump) {
  NodeState state(3);
  EXPECT_EQ(state.counter(0), 0u);
  EXPECT_EQ(state.bump_counter(0), 1u);
  EXPECT_EQ(state.bump_counter(0), 2u);
  EXPECT_EQ(state.counter(0), 2u);
  EXPECT_EQ(state.counter(1), 0u);
  state.reset_counter(0);
  EXPECT_EQ(state.counter(0), 0u);
}

TEST(NodeState, NewPhaseResetsCountersAndPositiveIndexTogether) {
  NodeState state(3);
  state.bump_counter(1);
  state.pos(1).pcnt = 5;
  state.pos(1).cached_below = 2;
  state.neg(1) = NodeState::NegEntry{.value = -3, .size = 4};
  state.new_phase();
  // Counters and the positive index observe the phase reset...
  EXPECT_EQ(state.counter(1), 0u);
  EXPECT_EQ(state.pcnt(1), 0);
  EXPECT_EQ(state.cached_below(1), 0u);
  // ...while the negative index (re-initialized on fetch, no epoch) and the
  // cached flags are untouched by new_phase().
  EXPECT_EQ(state.neg(1).value, -3);
  EXPECT_EQ(state.neg(1).size, 4u);
}

TEST(NodeState, PosFreshensStaleSlotsOnTouch) {
  NodeState state(2);
  state.pos(0).pcnt = 9;
  state.new_phase();
  // Mutable access to a stale slot hands out zeros, not the old values.
  NodeState::PosEntry& entry = state.pos(0);
  EXPECT_EQ(entry.pcnt, 0);
  EXPECT_EQ(entry.cached_below, 0u);
  entry.pcnt = 1;
  EXPECT_EQ(state.pcnt(0), 1);
}

TEST(NodeState, EpochWraparoundClearsStaleSlots) {
  // Same hazard as EpochArray: a slot stamped 1 on the previous lap of the
  // epoch counter must not be resurrected when the counter wraps back to 1.
  NodeState state(2);
  state.bump_counter(0);   // counter slot stamped with epoch 1
  state.pos(0).pcnt = 42;  // pos slot stamped with epoch 1
  state.debug_set_epoch(std::numeric_limits<std::uint32_t>::max());
  state.new_phase();  // wraps: must fall back to an O(n) clear
  EXPECT_EQ(state.debug_epoch(), 1u);
  EXPECT_EQ(state.counter(0), 0u);
  EXPECT_EQ(state.pcnt(0), 0);
  EXPECT_EQ(state.cached_below(0), 0u);
  EXPECT_EQ(state.bump_counter(0), 1u);
}

TEST(NodeState, ResetRestoresFreshState) {
  NodeState state(2);
  state.set_cached(0);
  state.bump_counter(0);
  state.pos(1).pcnt = 7;
  state.neg(0) = NodeState::NegEntry{.value = 3, .size = 2};
  state.debug_set_epoch(1234);
  state.reset();
  EXPECT_EQ(state.debug_epoch(), 1u);
  EXPECT_FALSE(state.cached(0));
  EXPECT_EQ(state.counter(0), 0u);
  EXPECT_EQ(state.pcnt(1), 0);
  EXPECT_EQ(state.neg(0).value, 0);
  EXPECT_EQ(state.neg(0).size, 0u);
}

}  // namespace
}  // namespace treecache
