// Field tracker: Observation 5.2, the p_out = p_in + k_P period accounting
// (Figure 3), the Lemma 5.3 cost bound, and the event-space rendering.
#include <gtest/gtest.h>

#include "core/field_tracker.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

/// Runs TC over a trace with a tracker attached; returns the tracker.
FieldTracker track_run(const Tree& tree, const Trace& trace,
                       std::uint64_t alpha, std::size_t capacity) {
  TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
  FieldTracker tracker(tree, alpha);
  for (const Request& r : trace) tracker.observe(r, tc.step(r));
  tracker.finalize();
  return tracker;
}

TEST(FieldTracker, SingleFetchMakesOneField) {
  const Tree t = trees::path(3);
  Trace trace{positive(2), positive(2)};
  const auto tracker = track_run(t, trace, 2, 3);
  ASSERT_EQ(tracker.fields().size(), 1u);
  const Field& f = tracker.fields()[0];
  EXPECT_EQ(f.kind, ChangeKind::kFetch);
  EXPECT_EQ(f.end_round, 2u);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.requests, 2u);
  EXPECT_EQ(f.members[0].node, 2u);
  EXPECT_EQ(f.members[0].from_round, 1u);  // window starts at phase begin
}

TEST(FieldTracker, ObservationFiveTwoOnRandomTraffic) {
  Rng rng(11);
  for (int round = 0; round < 12; ++round) {
    Rng inst(rng());
    const Tree t = trees::random_recursive(30, inst);
    const Trace trace = workload::uniform_trace(t, 1200, 0.4, inst);
    const std::uint64_t alpha = 1 + inst.below(4);
    const std::size_t k = 1 + inst.below(20);
    // The tracker itself throws if req(F) != size(F)·α for any field.
    const auto tracker = track_run(t, trace, alpha, k);
    for (const Field& f : tracker.fields()) {
      EXPECT_EQ(f.requests, f.size() * alpha);
    }
  }
}

TEST(FieldTracker, PeriodAccountingAcrossPhases) {
  Rng rng(23);
  for (int round = 0; round < 12; ++round) {
    Rng inst(rng());
    const Tree t = trees::random_bounded_degree(24, 3, inst);
    const Trace trace = workload::uniform_trace(t, 1500, 0.35, inst);
    const auto tracker = track_run(t, trace, 2, 5);
    EXPECT_NO_THROW(tracker.verify_period_accounting());
    // At least one finished phase should exist with this tight capacity.
    bool finished = false;
    for (const auto& p : tracker.phases()) finished |= p.finished;
    EXPECT_TRUE(finished);
  }
}

TEST(FieldTracker, FinishedPhaseHasLargeKp) {
  Rng rng(31);
  const Tree t = trees::random_recursive(20, rng);
  const Trace trace = workload::uniform_trace(t, 2000, 0.2, rng);
  const std::size_t capacity = 4;
  const auto tracker = track_run(t, trace, 2, capacity);
  for (const auto& p : tracker.phases()) {
    if (p.finished) {
      EXPECT_GE(p.k_end, capacity + 1);  // k_P >= k_ONL + 1
    }
  }
}

TEST(FieldTracker, LemmaFiveThreeBound) {
  Rng rng(47);
  for (int round = 0; round < 10; ++round) {
    Rng inst(rng());
    const Tree t = trees::random_recursive(25, inst);
    const Trace trace = workload::uniform_trace(t, 1500, 0.45, inst);
    const std::uint64_t alpha = 1 + inst.below(4);
    const auto tracker = track_run(t, trace, alpha, 6);
    EXPECT_NO_THROW(tracker.verify_lemma_5_3(alpha));
  }
}

TEST(FieldTracker, OpenFieldCollectsUnfinishedWindows) {
  const Tree t = trees::path(3);
  // One paid request, no field ever closes: req(F∞) = 1.
  Trace trace{positive(2)};
  const auto tracker = track_run(t, trace, 4, 3);
  ASSERT_EQ(tracker.phases().size(), 1u);
  EXPECT_EQ(tracker.phases()[0].open_field_requests, 1u);
  EXPECT_EQ(tracker.phases()[0].field_count, 0u);
  EXPECT_FALSE(tracker.phases()[0].finished);
}

TEST(FieldTracker, RendersLineTreeEventSpace) {
  const Tree t = trees::path(3);
  Trace trace{positive(2), positive(2), positive(1), positive(1),
              negative(1), negative(1)};
  TreeCache tc(t, {.alpha = 2, .capacity = 3});
  FieldTracker tracker(t, 2);
  for (const Request& r : trace) tracker.observe(r, tc.step(r));
  tracker.finalize();
  const std::string art = tracker.render_event_space();
  // Three rows (one per node), each 6 columns wide between the bars.
  EXPECT_NE(art.find("node 0"), std::string::npos);
  EXPECT_NE(art.find("node 2"), std::string::npos);
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find('-'), std::string::npos);
}

TEST(FieldTracker, RefusesObservationAfterFinalize) {
  const Tree t = trees::path(2);
  TreeCache tc(t, {.alpha = 2, .capacity = 2});
  FieldTracker tracker(t, 2);
  tracker.observe(positive(1), tc.step(positive(1)));
  tracker.finalize();
  EXPECT_THROW(tracker.observe(positive(1), tc.step(positive(1))),
               CheckFailure);
}

}  // namespace
}  // namespace treecache
