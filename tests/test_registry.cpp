// The registry is the extension point every future policy/workload PR plugs
// into, so these tests enumerate it exhaustively: every registered algorithm
// must run cleanly against a smoke workload, and every registered workload
// must produce a valid trace.
#include "sim/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fib/fib_workloads.hpp"
#include "rib/workloads.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

sim::Params smoke_params() {
  sim::Params p;
  p.set("alpha", "2");
  p.set("capacity", "6");
  p.set("length", "200");
  return p;
}

TEST(Registry, ExpectedAlgorithmsAreRegistered) {
  const auto names = sim::AlgorithmRegistry::instance().names();
  for (const char* expected :
       {"tc", "naive", "local", "lru", "lruinv", "none"}) {
    EXPECT_TRUE(std::ranges::count(names, expected) == 1)
        << "missing algorithm registration: " << expected;
  }
}

TEST(Registry, ExpectedWorkloadsAreRegistered) {
  const auto names = sim::WorkloadRegistry::instance().names();
  for (const char* expected :
       {"uniform", "zipf", "zipfleaf", "hotspot", "churn", "fib",
        "fib-stable", "fib-churn", "fib-real", "concat", "mix",
        "churn-inject"}) {
    EXPECT_TRUE(std::ranges::count(names, expected) == 1)
        << "missing workload registration: " << expected;
  }
}

TEST(Registry, ExpectedOfflineEvaluatorsAreRegistered) {
  const auto names = sim::OfflineEvaluatorRegistry::instance().names();
  for (const char* expected : {"opt", "static"}) {
    EXPECT_TRUE(std::ranges::count(names, expected) == 1)
        << "missing offline evaluator registration: " << expected;
  }
}

TEST(Registry, ExpectedPagingPoliciesAreRegistered) {
  const auto names = sim::PagingRegistry::instance().names();
  for (const char* expected : {"lru", "fifo", "fwf"}) {
    EXPECT_TRUE(std::ranges::count(names, expected) == 1)
        << "missing paging registration: " << expected;
  }
}

// Every algorithm × a smoke workload: one simulator run must complete with
// the subforest invariant validated after every step.
TEST(Registry, EveryAlgorithmRunsOneSmokeTrace) {
  Rng rng(7);
  const Tree tree = trees::random_recursive(24, rng);
  const sim::Params params = smoke_params();
  const Trace trace = sim::make_workload("zipf", tree, params, rng());
  ASSERT_FALSE(trace.empty());

  for (const std::string& name :
       sim::AlgorithmRegistry::instance().names()) {
    SCOPED_TRACE("algorithm: " + name);
    auto alg = sim::make_algorithm(name, tree, params);
    ASSERT_NE(alg, nullptr);
    EXPECT_FALSE(alg->name().empty());

    // One explicit step runs cleanly...
    const StepOutcome outcome = alg->step(trace.front());
    EXPECT_LE(outcome.service_cost(), 1u);

    // ...and so does a whole validated trace from a fresh state.
    alg->reset();
    EXPECT_EQ(alg->cost().total(), 0u);
    const auto result =
        sim::run_trace(*alg, trace, {}, /*validate_every_step=*/true);
    EXPECT_EQ(result.rounds, trace.size());
    EXPECT_EQ(result.cost.total(), alg->cost().total());
  }
}

TEST(Registry, EveryWorkloadProducesAValidTrace) {
  Rng rng(11);
  const Tree generic_tree = trees::random_recursive(40, rng);
  sim::Params params = smoke_params();
  params.set("rules", "60");  // keep the fib* substrate test-sized
  params.set("rib-feed",
             std::string(TREECACHE_TEST_DATA_DIR) + "/rib_v4.feed");
  // fib* workloads are only defined over their own RIB rule tree, and
  // fib-real over the tree rebuilt from its feed (its name also matches
  // the fib* prefix, so test it first).
  const fib::RuleTree rule_tree = fib::rule_tree_from_params(params);

  for (const std::string& name :
       sim::WorkloadRegistry::instance().names()) {
    SCOPED_TRACE("workload: " + name);
    const Tree& tree = rib::is_real_fib_workload_name(name)
                           ? rib::shared_real_fib(params).tree()
                           : fib::is_fib_workload_name(name)
                                 ? rule_tree.tree
                                 : generic_tree;
    const Trace trace = sim::make_workload(name, tree, params, rng());
    EXPECT_FALSE(trace.empty());
    for (const Request& r : trace) {
      ASSERT_LT(r.node, tree.size());
    }
  }
}

// `treecache list` renders exactly these tables: every registered name of
// all four registries must appear in its registry's describe() output.
TEST(Registry, DescribeCoversEveryRegisteredName) {
  const auto check = [](const std::string& described,
                        const std::vector<std::string>& names) {
    for (const std::string& name : names) {
      EXPECT_NE(described.find("  " + name + " "), std::string::npos)
          << "describe() misses: " << name;
    }
  };
  check(sim::AlgorithmRegistry::instance().describe(),
        sim::AlgorithmRegistry::instance().names());
  check(sim::WorkloadRegistry::instance().describe(),
        sim::WorkloadRegistry::instance().names());
  check(sim::OfflineEvaluatorRegistry::instance().describe(),
        sim::OfflineEvaluatorRegistry::instance().names());
  check(sim::PagingRegistry::instance().describe(),
        sim::PagingRegistry::instance().names());
}

TEST(Registry, UnknownNamesThrowWithSuggestions) {
  const Tree tree = trees::path(4);
  EXPECT_THROW((void)sim::make_algorithm("nope", tree, {}), CheckFailure);
  EXPECT_THROW((void)sim::make_source("nope", tree, {}, 1), CheckFailure);
  EXPECT_THROW((void)sim::make_workload("nope", tree, {}, 1),
               CheckFailure);
  EXPECT_THROW((void)sim::evaluate_offline("nope", tree, {}, {}),
               CheckFailure);
  EXPECT_THROW((void)sim::make_paging("nope", 4), CheckFailure);
}

TEST(Registry, DuplicateRegistrationIsRejected) {
  EXPECT_THROW(sim::AlgorithmRegistry::instance().add(
                   "tc", "dup",
                   [](const Tree&, const sim::Params&)
                       -> std::unique_ptr<OnlineAlgorithm> {
                     return nullptr;
                   }),
               CheckFailure);
}

TEST(Registry, ParamsParseAndDefault) {
  sim::Params p;
  p.set("alpha", "3");
  p.set("skew", "0.9");
  EXPECT_EQ(p.alpha(), 3u);
  EXPECT_EQ(p.capacity(), 64u);  // library default
  EXPECT_DOUBLE_EQ(p.get_double("skew", 1.0), 0.9);
  EXPECT_EQ(p.get("missing", "x"), "x");
  p.set("alpha", "junk");
  EXPECT_THROW((void)p.alpha(), CheckFailure);
}

TEST(Registry, OfflineEvaluatorsAgreeWithDirectCalls) {
  const Tree tree = trees::complete_kary(2, 2);  // 7 nodes
  sim::Params params;
  params.set("alpha", "2");
  params.set("capacity", "3");
  const Trace trace = sim::make_workload(
      "uniform", tree,
      sim::Params{{{"length", "40"}, {"neg", "0.3"}}}, 3);
  const std::uint64_t opt =
      sim::evaluate_offline("opt", tree, trace, params);
  EXPECT_GT(opt, 0u);
  // A legal online algorithm can never beat the offline optimum.
  auto tc = sim::make_algorithm("tc", tree, params);
  EXPECT_GE(sim::run_trace(*tc, trace).cost.total(), opt);
}

}  // namespace
}  // namespace treecache
