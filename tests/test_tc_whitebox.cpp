// White-box validation of TC's §6 data structures: the incremental
// aggregates (cnt(P_t(u)), |P_t(u)|, I(u), S(u)) are recomputed from
// scratch after every round of random runs and must agree exactly.
#include <gtest/gtest.h>

#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

/// Brute-force cnt(P_t(u)) and |P_t(u)| for non-cached u.
void brute_positive(const TreeCache& tc, NodeId u, std::uint64_t& cnt_out,
                    std::uint32_t& size_out) {
  const Tree& tree = tc.tree();
  cnt_out = 0;
  size_out = 0;
  std::vector<NodeId> stack{u};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    cnt_out += tc.counter(v);
    ++size_out;
    for (const NodeId c : tree.children(v)) {
      if (!tc.cache().contains(c)) stack.push_back(c);
    }
  }
}

/// Brute-force (I, S) of the best tree cap rooted at cached x.
std::pair<std::int64_t, std::uint64_t> brute_negative(const TreeCache& tc,
                                                      NodeId x) {
  const Tree& tree = tc.tree();
  std::int64_t i_value = static_cast<std::int64_t>(tc.counter(x)) -
                         static_cast<std::int64_t>(tc.config().alpha);
  std::uint64_t s_value = 1;
  for (const NodeId c : tree.children(x)) {
    const auto [ci, cs] = brute_negative(tc, c);
    if (ci >= 0) {
      i_value += ci;
      s_value += cs;
    }
  }
  return {i_value, s_value};
}

void check_all_aggregates(const TreeCache& tc) {
  const Tree& tree = tc.tree();
  for (NodeId u = 0; u < tree.size(); ++u) {
    if (tc.cache().contains(u)) {
      const auto [i_value, s_value] = brute_negative(tc, u);
      ASSERT_EQ(tc.debug_hI(u), i_value) << "I(" << u << ")";
      ASSERT_EQ(tc.debug_hS(u), s_value) << "S(" << u << ")";
    } else {
      std::uint64_t cnt = 0;
      std::uint32_t size = 0;
      brute_positive(tc, u, cnt, size);
      ASSERT_EQ(static_cast<std::uint64_t>(tc.debug_pcnt(u)), cnt)
          << "cnt(P(" << u << "))";
      ASSERT_EQ(tc.debug_psize(u), size) << "|P(" << u << ")|";
    }
  }
}

class TcWhitebox : public ::testing::TestWithParam<int> {};

TEST_P(TcWhitebox, AggregatesMatchBruteForceEveryRound) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 7919 + 13);
  const Tree tree = (seed % 3 == 0)   ? trees::random_recursive(25, rng)
                    : (seed % 3 == 1) ? trees::random_bounded_degree(25, 2, rng)
                                      : trees::caterpillar(5, 3);
  const std::uint64_t alpha = 1 + rng.below(4);
  const std::size_t capacity = 1 + rng.below(tree.size());
  const Trace trace = workload::uniform_trace(tree, 600, 0.45, rng);

  TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
  for (const Request& r : trace) {
    tc.step(r);
    check_all_aggregates(tc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcWhitebox, ::testing::Range(1, 13));

TEST(TcWhitebox, WorkCounterGrowsAndBoundsHold) {
  // The Theorem 6.1 work counter is monotone and bounded per request by
  // O(h + max(h, deg) * |X|). Verify a crude per-round bound on a run.
  Rng rng(3);
  const Tree tree = trees::random_recursive(200, rng);
  const Trace trace = workload::uniform_trace(tree, 3000, 0.4, rng);
  TreeCache tc(tree, {.alpha = 3, .capacity = 30});
  std::uint64_t previous = 0;
  const std::uint64_t h = tree.height();
  const std::uint64_t deg = tree.max_degree();
  for (const Request& r : trace) {
    const StepOutcome out = tc.step(r);
    const std::uint64_t spent = tc.work() - previous;
    previous = tc.work();
    const std::uint64_t moved = out.changed.size() + out.aborted_fetch.size();
    // Constant 6 covers the implementation's bookkeeping passes.
    EXPECT_LE(spent, 6 * (h + std::max(h, deg) * (moved + 1)))
        << "round work exceeds the Theorem 6.1 shape";
  }
}

TEST(TcWhitebox, PhaseStatsConsistentWithOutcomes) {
  Rng rng(5);
  const Tree tree = trees::random_recursive(40, rng);
  const Trace trace = workload::uniform_trace(tree, 4000, 0.35, rng);
  TreeCache tc(tree, {.alpha = 2, .capacity = 6});
  std::uint64_t fetched = 0;
  std::uint64_t evicted = 0;
  std::uint64_t restarts = 0;
  for (const Request& r : trace) {
    const StepOutcome out = tc.step(r);
    switch (out.change) {
      case ChangeKind::kFetch:
        fetched += out.changed.size();
        break;
      case ChangeKind::kEvict:
        evicted += out.changed.size();
        break;
      case ChangeKind::kPhaseRestart:
        ++restarts;
        break;
      case ChangeKind::kNone:
        break;
    }
  }
  std::uint64_t phase_fetched = 0;
  std::uint64_t phase_evicted = 0;
  std::uint64_t finished = 0;
  for (const PhaseStats& p : tc.phases()) {
    phase_fetched += p.fetches;
    phase_evicted += p.evictions;
    finished += p.finished ? 1 : 0;
  }
  EXPECT_EQ(phase_fetched, fetched);
  EXPECT_EQ(phase_evicted, evicted);
  EXPECT_EQ(finished, restarts);
  EXPECT_EQ(tc.phases().size(), restarts + 1);
  // Every finished phase overflowed the capacity.
  for (const PhaseStats& p : tc.phases()) {
    if (p.finished) {
      EXPECT_GE(p.k_end, tc.config().capacity + 1);
    }
  }
}

}  // namespace
}  // namespace treecache
