// Classic paging toolkit: algorithm behaviour and Belady optimality.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/paging.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

std::vector<PageId> random_sequence(std::size_t length, PageId universe,
                                    Rng& rng) {
  std::vector<PageId> seq(length);
  for (auto& p : seq) p = static_cast<PageId>(rng.below(universe));
  return seq;
}

/// Exponential-time exact paging optimum by state-space search over cache
/// contents (small universes only).
std::uint64_t exact_paging_opt(const std::vector<PageId>& seq,
                               std::size_t k) {
  // State: sorted cache content; BFS over rounds with memoized best cost.
  std::vector<std::vector<PageId>> states{{}};
  std::vector<std::uint64_t> costs{0};
  for (const PageId p : seq) {
    std::vector<std::vector<PageId>> next_states;
    std::vector<std::uint64_t> next_costs;
    auto push = [&](std::vector<PageId> s, std::uint64_t c) {
      std::sort(s.begin(), s.end());
      for (std::size_t i = 0; i < next_states.size(); ++i) {
        if (next_states[i] == s) {
          next_costs[i] = std::min(next_costs[i], c);
          return;
        }
      }
      next_states.push_back(std::move(s));
      next_costs.push_back(c);
    };
    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto& s = states[i];
      if (std::find(s.begin(), s.end(), p) != s.end()) {
        push(s, costs[i]);  // hit
        continue;
      }
      // fault: fetch p, evicting any subset position if full
      if (s.size() < k) {
        auto grown = s;
        grown.push_back(p);
        push(std::move(grown), costs[i] + 1);
      } else {
        for (std::size_t victim = 0; victim < s.size(); ++victim) {
          auto swapped = s;
          swapped[victim] = p;
          push(std::move(swapped), costs[i] + 1);
        }
      }
    }
    states = std::move(next_states);
    costs = std::move(next_costs);
  }
  return *std::min_element(costs.begin(), costs.end());
}

TEST(Paging, LruEvictsLeastRecent) {
  LruPaging lru(2);
  EXPECT_TRUE(lru.access(1));
  EXPECT_TRUE(lru.access(2));
  EXPECT_FALSE(lru.access(1));  // refresh 1
  EXPECT_TRUE(lru.access(3));   // evicts 2
  EXPECT_TRUE(lru.cached(1));
  EXPECT_FALSE(lru.cached(2));
  EXPECT_EQ(lru.faults(), 3u);
}

TEST(Paging, FifoIgnoresRecency) {
  FifoPaging fifo(2);
  fifo.access(1);
  fifo.access(2);
  EXPECT_FALSE(fifo.access(1));
  fifo.access(3);  // evicts 1 despite the recent hit
  EXPECT_FALSE(fifo.cached(1));
  EXPECT_TRUE(fifo.cached(2));
}

TEST(Paging, FwfFlushesWholeCache) {
  FwfPaging fwf(2);
  fwf.access(1);
  fwf.access(2);
  fwf.access(3);  // flush, cache = {3}
  EXPECT_FALSE(fwf.cached(1));
  EXPECT_FALSE(fwf.cached(2));
  EXPECT_TRUE(fwf.cached(3));
}

TEST(Paging, BeladyMatchesExactOptimum) {
  Rng rng(555);
  for (int round = 0; round < 30; ++round) {
    Rng inst(rng());
    const std::size_t k = 1 + inst.below(3);
    const auto seq = random_sequence(10, 4, inst);
    EXPECT_EQ(belady_faults(seq, k), exact_paging_opt(seq, k))
        << "round " << round << " k=" << k;
  }
}

TEST(Paging, BeladyNeverAboveOnlineAlgorithms) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    Rng inst(rng());
    const auto seq = random_sequence(300, 10, inst);
    const std::size_t k = 2 + inst.below(6);
    LruPaging lru(k);
    FifoPaging fifo(k);
    FwfPaging fwf(k);
    for (const PageId p : seq) {
      lru.access(p);
      fifo.access(p);
      fwf.access(p);
    }
    const std::uint64_t opt = belady_faults(seq, k);
    EXPECT_LE(opt, lru.faults());
    EXPECT_LE(opt, fifo.faults());
    EXPECT_LE(opt, fwf.faults());
  }
}

TEST(Paging, SleatorTarjanBoundHolds) {
  // LRU is k-competitive: on any sequence over k+1 pages, faults(LRU) <=
  // k * OPT + k.
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    Rng inst(rng());
    const std::size_t k = 2 + inst.below(4);
    const auto seq =
        random_sequence(400, static_cast<PageId>(k + 1), inst);
    LruPaging lru(k);
    for (const PageId p : seq) lru.access(p);
    const std::uint64_t opt = belady_faults(seq, k);
    EXPECT_LE(lru.faults(), k * opt + k);
  }
}

TEST(Paging, ResetClearsState) {
  LruPaging lru(2);
  lru.access(1);
  lru.access(2);
  lru.reset();
  EXPECT_EQ(lru.faults(), 0u);
  EXPECT_FALSE(lru.cached(1));
}

}  // namespace
}  // namespace treecache
