// Request shifting (Section 5.2): machine-checks of Corollary 5.8 and
// Lemmas 5.9/5.10 over real TC executions, plus legality verification of
// every shifted request.
#include <gtest/gtest.h>

#include <map>

#include "analysis/shifting.hpp"
#include "core/tree_cache.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/gadget.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

struct TrackedRun {
  FieldTracker tracker;
  Tree tree;
};

/// Runs TC and returns a finalized tracker (tree is kept alive alongside).
FieldTracker run_tracked(const Tree& tree, const Trace& trace,
                         std::uint64_t alpha, std::size_t capacity) {
  TreeCache tc(tree, {.alpha = alpha, .capacity = capacity});
  FieldTracker tracker(tree, alpha);
  for (const Request& r : trace) tracker.observe(r, tc.step(r));
  tracker.finalize();
  return tracker;
}

/// True iff `anc` is an ancestor-or-self of `desc`.
bool above(const Tree& t, NodeId anc, NodeId desc) {
  return t.is_ancestor_or_self(anc, desc);
}

TEST(NegativeShifting, EveryFieldEvensOutToAlpha) {
  Rng rng(71);
  std::size_t negative_fields = 0;
  for (int round = 0; round < 8; ++round) {
    Rng inst(rng());
    const Tree tree = trees::random_recursive(40, inst);
    const std::uint64_t alpha = 2 + 2 * inst.below(3);  // 2, 4, 6
    const Trace trace = workload::uniform_trace(tree, 4000, 0.5, inst);
    const auto tracker = run_tracked(tree, trace, alpha, 12);

    for (const Field& field : tracker.fields()) {
      if (field.kind != ChangeKind::kEvict) continue;
      ++negative_fields;
      const auto slots = tracker.field_slots(field);
      // The procedure throws if any paper step fails; also verify the
      // shifts were upward-only and conserved multiplicity per round.
      const auto result = analysis::shift_negative_field_up(
          tree, field, slots, alpha);
      std::map<std::uint64_t, NodeId> original;
      for (const auto& s : slots) original[s.round] = s.node;
      for (const auto& p : result.placement) {
        ASSERT_TRUE(original.contains(p.round));
        EXPECT_TRUE(above(tree, p.node, original[p.round]))
            << "request moved somewhere other than up";
      }
    }
  }
  EXPECT_GT(negative_fields, 0u) << "traces produced no negative fields";
}

TEST(PositiveShifting, LemmaFiveTenHoldsOnRandomRuns) {
  Rng rng(73);
  for (int round = 0; round < 8; ++round) {
    Rng inst(rng());
    const Tree tree = trees::random_bounded_degree(50, 3, inst);
    const std::uint64_t alpha = 4;
    const Trace trace = workload::uniform_trace(tree, 4000, 0.35, inst);
    const auto tracker = run_tracked(tree, trace, alpha, 15);

    std::size_t positive_fields = 0;
    for (const Field& field : tracker.fields()) {
      if (field.kind != ChangeKind::kFetch) continue;
      ++positive_fields;
      const auto slots = tracker.field_slots(field);
      const auto result = analysis::shift_positive_field_down(
          tree, field, slots, alpha);
      // Lemma 5.10's bound is asserted inside; verify downward-only moves.
      std::map<std::uint64_t, NodeId> original;
      for (const auto& s : slots) original[s.round] = s.node;
      for (const auto& p : result.placement) {
        ASSERT_TRUE(original.contains(p.round));
        EXPECT_TRUE(above(tree, original[p.round], p.node))
            << "request moved somewhere other than down";
      }
      const std::size_t required =
          (field.members.size() + 2 * tree.height() - 1) /
          (2 * tree.height());
      EXPECT_GE(result.full_members, required);
    }
    EXPECT_GT(positive_fields, 0u);
  }
}

TEST(PositiveShifting, RequiresEvenAlpha) {
  const Tree tree = trees::path(3);
  Trace trace{positive(2), positive(2), positive(2)};
  const auto tracker = run_tracked(tree, trace, 3, 3);
  ASSERT_FALSE(tracker.fields().empty());
  const Field& field = tracker.fields()[0];
  EXPECT_THROW((void)analysis::shift_positive_field_down(
                   tree, field, tracker.field_slots(field), 3),
               CheckFailure);
}

TEST(PositiveShifting, GadgetFieldConcentratesAsAppendixDPredicts) {
  // On the Appendix-D gadget's final field, shifting can fill only about
  // half of the nodes — the witness that Lemma 5.10's 1/(2h) loss (rather
  // than Corollary 5.8's exactness) is inherent for positive fields.
  const std::uint64_t alpha = 8;
  const auto script = workload::build_appendix_d_gadget(8, alpha);
  TreeCache tc(script.tree,
               {.alpha = alpha, .capacity = script.tree.size()});
  FieldTracker tracker(script.tree, alpha);
  for (const Request& r : script.trace) tracker.observe(r, tc.step(r));
  tracker.finalize();

  const Field& final_field = tracker.fields().back();
  ASSERT_TRUE(final_field.positive());
  const auto result = analysis::shift_positive_field_down(
      script.tree, final_field, tracker.field_slots(final_field), alpha);
  // All requests live on {r} ∪ T1 (s+1 of 2s+1 nodes); T2 can only be fed
  // through r's own surplus, which holds (s+1)alpha - (s)alpha... far too
  // little for T2's s nodes: strictly fewer than 3/4 of nodes can be full.
  EXPECT_LE(result.full_members, (3 * final_field.size()) / 4);
  // But Lemma 5.10's guarantee still holds (checked inside the call).
}

TEST(NegativeShifting, SingleNodeFieldIsTrivial) {
  const Tree tree = trees::path(2);
  Trace trace;
  // Fetch node 1 (2 requests), then evict it (2 negatives).
  trace.insert(trace.end(), 2, positive(1));
  trace.insert(trace.end(), 2, negative(1));
  const auto tracker = run_tracked(tree, trace, 2, 2);
  ASSERT_EQ(tracker.fields().size(), 2u);
  const Field& evict_field = tracker.fields()[1];
  ASSERT_EQ(evict_field.kind, ChangeKind::kEvict);
  const auto result = analysis::shift_negative_field_up(
      tree, evict_field, tracker.field_slots(evict_field), 2);
  EXPECT_EQ(result.moved, 0u);
  EXPECT_EQ(result.placement.size(), 2u);
}

TEST(FieldSlots, ReconstructionMatchesCounts) {
  Rng rng(79);
  const Tree tree = trees::random_recursive(30, rng);
  const Trace trace = workload::uniform_trace(tree, 3000, 0.4, rng);
  const auto tracker = run_tracked(tree, trace, 3, 8);
  for (const Field& field : tracker.fields()) {
    const auto slots = tracker.field_slots(field);
    EXPECT_EQ(slots.size(), field.requests);
    // Per-member counts must agree with the recorded member.requests.
    std::map<NodeId, std::uint64_t> per_node;
    for (const auto& s : slots) ++per_node[s.node];
    for (const FieldMember& m : field.members) {
      EXPECT_EQ(per_node[m.node], m.requests) << "node " << m.node;
    }
  }
}

}  // namespace
}  // namespace treecache
