// Exact offline OPT: DP vs brute force, dominance properties, and
// consistency against online algorithms.
#include <gtest/gtest.h>

#include "baselines/opt_offline.hpp"
#include "core/tree_cache.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

TEST(OptOffline, EmptyTraceCostsNothing) {
  const Tree t = trees::path(4);
  EXPECT_EQ(opt_offline_cost(t, {}, {.alpha = 2, .capacity = 2}), 0u);
}

TEST(OptOffline, BypassingBeatsFetchingForRareRequests) {
  // One positive request: serving it costs 1; fetching would cost alpha=4.
  const Tree t = trees::path(3);
  Trace trace{positive(2)};
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 4, .capacity = 3}), 1u);
}

TEST(OptOffline, FetchingBeatsBypassingForHotNodes) {
  // Ten positive requests to a leaf, alpha = 2: prefetch for 2, serve free.
  const Tree t = trees::path(3);
  Trace trace(10, positive(2));
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 2, .capacity = 3}), 2u);
}

TEST(OptOffline, NegativeRequestsFavorEviction) {
  // Hot node turns cold: 10 positives then 10 negatives, alpha = 2.
  // Best: prefetch (2), serve positives free, evict (2), negatives free.
  const Tree t = trees::path(2);
  Trace trace(10, positive(1));
  trace.insert(trace.end(), 10, negative(1));
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 2, .capacity = 2}), 4u);
}

TEST(OptOffline, RespectsSubforestConstraint) {
  // Two requests to the ROOT of a star with 3 leaves: caching the root
  // requires caching all 4 nodes, too expensive with capacity 2 — so OPT
  // pays the requests instead.
  const Tree t = trees::star(3);
  Trace trace(2, positive(0));
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 2, .capacity = 2}), 2u);
  // With capacity 4 and more requests, prefetching the whole tree wins.
  Trace heavy(20, positive(0));
  EXPECT_EQ(opt_offline_cost(t, heavy, {.alpha = 2, .capacity = 4}), 8u);
}

TEST(OptOffline, MatchesBruteForceOnTinyInstances) {
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 2 + rng.below(4);  // 2..5 nodes
    Rng tree_rng(rng());
    const Tree t = trees::random_recursive(n, tree_rng);
    const Trace trace =
        workload::uniform_trace(t, 2 + rng.below(4), 0.4, tree_rng);
    const OptOfflineConfig config{.alpha = 1 + rng.below(3),
                                  .capacity = 1 + rng.below(n)};
    EXPECT_EQ(opt_offline_cost(t, trace, config),
              opt_offline_cost_bruteforce(t, trace, config))
        << "round " << round;
  }
}

TEST(OptOffline, MonotoneInCapacity) {
  Rng rng(5);
  const Tree t = trees::random_recursive(8, rng);
  const Trace trace = workload::uniform_trace(t, 60, 0.3, rng);
  std::uint64_t prev = ~std::uint64_t{0};
  for (std::size_t k = 1; k <= t.size(); ++k) {
    const std::uint64_t cost =
        opt_offline_cost(t, trace, {.alpha = 2, .capacity = k});
    EXPECT_LE(cost, prev) << "capacity " << k;
    prev = cost;
  }
}

TEST(OptOffline, NeverAboveOnlineTc) {
  Rng rng(13);
  for (int round = 0; round < 10; ++round) {
    Rng inst(rng());
    const Tree t = trees::random_recursive(7, inst);
    const Trace trace = workload::uniform_trace(t, 120, 0.35, inst);
    const std::uint64_t alpha = 1 + inst.below(3);
    const std::size_t k = 1 + inst.below(t.size());
    TreeCache tc(t, {.alpha = alpha, .capacity = k});
    const Cost online = sim::run_trace(tc, trace).cost;
    const std::uint64_t opt =
        opt_offline_cost(t, trace, {.alpha = alpha, .capacity = k});
    EXPECT_LE(opt, online.total()) << "round " << round;
  }
}

TEST(OptOffline, LowerBoundedByUncacheableService) {
  // With capacity 0 disallowed, use capacity 1 on a path where the hot
  // node is the root: the root can never be cached alone, so every
  // request is paid.
  const Tree t = trees::path(3);
  Trace trace(7, positive(0));
  EXPECT_EQ(opt_offline_cost(t, trace, {.alpha = 1, .capacity = 1}), 7u);
}

TEST(OptOffline, RejectsTooLargeTrees) {
  Rng rng(1);
  const Tree t = trees::random_recursive(21, rng);
  EXPECT_THROW((void)opt_offline_cost(t, {}, {.alpha = 1, .capacity = 2}),
               CheckFailure);
}

}  // namespace
}  // namespace treecache
