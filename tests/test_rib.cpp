// The RIB subsystem, unit-level: U128 arithmetic, IPv6 parsing and RFC
// 5952 formatting, feed-line grammar (round trips and line-numbered
// errors), the radix RibTable against a naive sorted-vector LPM
// reference over both key widths, FIB rebuild invariants, and the
// synthetic feed generator's self-consistency.
#include "rib/rib_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fib/ipv6.hpp"
#include "rib/feed.hpp"
#include "rib/ingest.hpp"
#include "util/rng.hpp"

namespace treecache::rib {
namespace {

using fib::Address;
using fib::Address6;
using fib::Prefix;
using fib::Prefix6;
using fib::U128;

// --- U128 ----------------------------------------------------------------

TEST(U128Arithmetic, ShiftsAcrossTheWordBoundary) {
  const U128 one{1};
  EXPECT_EQ(one << 0, one);
  EXPECT_EQ(one << 1, U128(0, 2));
  EXPECT_EQ(one << 63, U128(0, std::uint64_t{1} << 63));
  EXPECT_EQ(one << 64, U128(1, 0));
  EXPECT_EQ(one << 65, U128(2, 0));
  EXPECT_EQ(one << 127, U128(std::uint64_t{1} << 63, 0));

  const U128 top(std::uint64_t{1} << 63, 0);
  EXPECT_EQ(top >> 0, top);
  EXPECT_EQ(top >> 63, U128(1, 0));
  EXPECT_EQ(top >> 64, U128(0, std::uint64_t{1} << 63));
  EXPECT_EQ(top >> 127, one);

  // ~0 shifted left by the prefix length is exactly prefix_mask.
  EXPECT_EQ(fib::prefix_mask<Address6>(0), U128{});
  EXPECT_EQ(fib::prefix_mask<Address6>(64), U128(~std::uint64_t{0}, 0));
  EXPECT_EQ(fib::prefix_mask<Address6>(128),
            U128(~std::uint64_t{0}, ~std::uint64_t{0}));
  EXPECT_EQ(fib::prefix_mask<Address6>(1), U128(std::uint64_t{1} << 63, 0));
}

TEST(U128Arithmetic, OrdersNumerically) {
  // The defaulted comparison must order (hi, lo) lexicographically, which
  // is numeric order for a big-endian pair.
  EXPECT_LT(U128(0, ~std::uint64_t{0}), U128(1, 0));
  EXPECT_LT(U128(3, 7), U128(3, 8));
  EXPECT_EQ(U128{5}, U128(0, 5));
  // Single-argument construction is numeric, not aggregate (hi stays 0).
  EXPECT_EQ(U128{1} << 64, U128(1, 0));
}

TEST(U128Arithmetic, BitwiseOperators) {
  const U128 a(0xF0F0, 0x1234);
  const U128 b(0x0FF0, 0xFF00);
  EXPECT_EQ(a & b, U128(0x00F0, 0x1200));
  EXPECT_EQ(a | b, U128(0xFFF0, 0xFF34));
  EXPECT_EQ(a ^ b, U128(0xFF00, 0xED34));
  EXPECT_EQ(~U128{}, U128(~std::uint64_t{0}, ~std::uint64_t{0}));
}

// --- IPv6 ----------------------------------------------------------------

TEST(Ipv6, AddressRoundTrip) {
  // RFC 5952 canonical form: longest zero run (>= 2 groups) compressed,
  // leftmost on ties, lowercase hex, no leading zeros.
  for (const std::string text :
       {"::", "::1", "1::", "2001:db8::8a2e:370:7334", "fe80::1",
        "1:0:2::3:0:4", "1:2:3:4:5:6:7:8", "a::b:0:0:c"}) {
    SCOPED_TRACE(text);
    EXPECT_EQ(fib::address6_to_string(fib::parse_address6(text)), text);
  }
  // Non-canonical spellings parse to the same address.
  EXPECT_EQ(fib::parse_address6("0:0:0:0:0:0:0:0"), Address6{});
  EXPECT_EQ(fib::parse_address6("2001:0db8:0000:0000:0000:0000:0000:0001"),
            fib::parse_address6("2001:db8::1"));
  // The leftmost of two equal-length zero runs is compressed.
  EXPECT_EQ(fib::address6_to_string(fib::parse_address6("1:0:0:2:3:0:0:4")),
            "1::2:3:0:0:4");
  // A single zero group is not compressed.
  EXPECT_EQ(fib::address6_to_string(fib::parse_address6("1:2:3:0:5:6:7:8")),
            "1:2:3:0:5:6:7:8");
}

TEST(Ipv6, RejectsMalformedInput) {
  for (const std::string text :
       {"", ":", ":::", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9", "12345::",
        "g::", "1:2:3:4:5:6:7:8::", "::1::2", "1:", ":1:2:3:4:5:6:7",
        "1:2:3:4:5:6:7:8 "}) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)fib::parse_address6(text), CheckFailure);
  }
  EXPECT_THROW(Prefix6::parse("2001:db8::/129"), CheckFailure);
  EXPECT_THROW(Prefix6::parse("2001:db8::"), CheckFailure);  // no length
  // Host bits beyond the mask are a data error, exactly as for IPv4.
  EXPECT_THROW(Prefix6::parse("2001:db8::1/32"), CheckFailure);
}

TEST(Ipv6, PrefixContainment) {
  const Prefix6 wide = Prefix6::parse("2001:db8::/32");
  const Prefix6 narrow = Prefix6::parse("2001:db8:a000::/36");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(fib::parse_address6("2001:db8::42")));
  EXPECT_FALSE(wide.contains(fib::parse_address6("2001:db9::42")));
  EXPECT_TRUE(Prefix6{}.contains(narrow));  // default route covers all
  // A /128 contains exactly itself.
  const Prefix6 host = Prefix6::parse("::1/128");
  EXPECT_TRUE(host.contains(fib::parse_address6("::1")));
  EXPECT_FALSE(host.contains(fib::parse_address6("::2")));
}

// --- Feed grammar --------------------------------------------------------

TEST(FeedGrammar, RecordsRoundTrip) {
  const std::vector<std::string> lines{
      "TABLE_DUMP|10.0.0.0/8|42",
      "TABLE_DUMP|2001:db8::/32|7",
      "1704067200|announce|192.168.0.0/16|9",
      "1704067201|announce|2001:db8:a000::/36|11",
      "1704067202|withdraw|10.0.0.0/8",
      "1704067203|withdraw|2001:db8::/32",
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    SCOPED_TRACE(lines[i]);
    const FeedRecord record = parse_feed_line(lines[i], i + 1);
    EXPECT_EQ(format_feed_record(record), lines[i]);
    // format emits the grammar parse accepts: a second round trip is
    // the identity on the record itself.
    EXPECT_EQ(parse_feed_line(format_feed_record(record), 1), record);
  }
}

TEST(FeedGrammar, ErrorsCarryLineNumbers) {
  const auto message_of = [](const std::string& line) -> std::string {
    try {
      (void)parse_feed_line(line, 17);
    } catch (const CheckFailure& e) {
      return e.what();
    }
    return {};
  };
  for (const std::string line :
       {"TABLE_DUMP|10.0.0.0/8",            // missing next hop
        "TABLE_DUMP|10.0.0.0/8|42|extra",   // trailing field
        "TABLE_DUMP|10.256.0.0/8|42",       // bad prefix
        "TABLE_DUMP|10.0.0.0/8|x",          // bad next hop
        "1704067200|announce|10.0.0.0/8",   // missing next hop
        "1704067200|withdraw|10.0.0.0/8|4", // trailing field
        "xyz|announce|10.0.0.0/8|4",        // bad timestamp
        "1704067200|reroute|10.0.0.0/8|4",  // unknown op
        "TABLE_DUMP"}) {
    SCOPED_TRACE(line);
    const std::string message = message_of(line);
    EXPECT_NE(message.find("feed line 17"), std::string::npos) << message;
  }
}

TEST(FeedReader, StreamsFilesSkipsCommentsNamesErrors) {
  const std::string good = "/tmp/treecache_test_feed_good.txt";
  const std::string bad = "/tmp/treecache_test_feed_bad.txt";
  {
    std::ofstream out(good);
    out << "# comment\n"
        << "\n"
        << "TABLE_DUMP|10.0.0.0/8|1\n"
        << "  \t\n"
        << "1|announce|10.1.0.0/16|2\r\n";  // CRLF tolerated
  }
  {
    std::ofstream out(bad);
    out << "TABLE_DUMP|10.0.0.0/8|1\n"
        << "# fine so far\n"
        << "1|bogus-op|10.0.0.0/8|1\n";
  }

  FeedReader reader({good, bad});
  EXPECT_EQ(reader.next()->op, FeedOp::kDump);
  EXPECT_EQ(reader.next()->op, FeedOp::kAnnounce);
  // The bad file's first record is fine; the second throws with the FILE
  // and its own (physical) line number.
  EXPECT_EQ(reader.next()->op, FeedOp::kDump);
  try {
    (void)reader.next();
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(bad), std::string::npos) << message;
    EXPECT_NE(message.find("feed line 3"), std::string::npos) << message;
  }
  EXPECT_THROW(FeedReader({"/nonexistent/feed.txt"}).next(), CheckFailure);
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(FeedReader, HardenedAgainstBomCrlfAndTruncatedFinalLine) {
  // A feed exported from tooling on another OS: UTF-8 BOM, CRLF line
  // endings, and a final line with no trailing newline. All of it parses.
  const std::string path = "/tmp/treecache_test_feed_hardened.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "\xEF\xBB\xBF"
        << "TABLE_DUMP|10.0.0.0/8|1\r\n"
        << "1|announce|10.1.0.0/16|2\r\n"
        << "2|withdraw|10.0.0.0/8";  // no trailing newline
  }
  FeedReader reader({path});
  EXPECT_EQ(reader.next()->op, FeedOp::kDump);
  EXPECT_EQ(reader.next()->op, FeedOp::kAnnounce);
  const auto last = reader.next();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->op, FeedOp::kWithdraw);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records(), 3u);
  EXPECT_EQ(reader.bytes(), std::filesystem::file_size(path));
  std::remove(path.c_str());
}

TEST(FeedReader, BomDoesNotHideTheErrorPosition) {
  // The BOM is stripped BEFORE parsing, so a malformed first line still
  // reports line 1 — not a mystery "bad prefix" from three stray bytes.
  const std::string path = "/tmp/treecache_test_feed_bom_bad.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "\xEF\xBB\xBF"
        << "TABLE_DUMP|not-a-prefix|1\n";
  }
  FeedReader reader({path});
  try {
    (void)reader.next();
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("feed line 1"), std::string::npos) << message;
  }
  std::remove(path.c_str());
}

TEST(FeedGrammar, NextHopWiderThan32BitsIsRejected) {
  // NextHop is u32; a 64-bit value silently truncating would alias two
  // distinct routes. Both dump and announce paths must reject it.
  for (const std::string line : {"TABLE_DUMP|10.0.0.0/8|4294967296",
                                 "1|announce|10.0.0.0/8|99999999999"}) {
    SCOPED_TRACE(line);
    try {
      (void)parse_feed_line(line, 3);
      FAIL() << "expected CheckFailure";
    } catch (const CheckFailure& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("exceeds 32 bits"), std::string::npos) << message;
      EXPECT_NE(message.find("feed line 3"), std::string::npos) << message;
    }
  }
  // The full u32 range itself stays usable.
  EXPECT_EQ(parse_feed_line("TABLE_DUMP|10.0.0.0/8|4294967295", 1).next_hop,
            0xFFFFFFFFu);
}

// --- RibTable vs a naive reference, both widths --------------------------

/// The obviously-correct RIB: a map from prefix to next hop, LPM by
/// scanning every entry for the longest containing prefix.
template <typename PrefixT>
class NaiveRib {
 public:
  bool route_add(const PrefixT& prefix, NextHop next_hop) {
    return routes_.insert_or_assign(prefix, next_hop).second;
  }
  bool route_delete(const PrefixT& prefix) {
    return routes_.erase(prefix) > 0;
  }
  [[nodiscard]] std::optional<NextHop> lookup(
      const typename PrefixT::Bits& addr) const {
    std::optional<NextHop> best;
    int best_length = -1;
    for (const auto& [prefix, next_hop] : routes_) {
      if (prefix.contains(addr) && int{prefix.length} > best_length) {
        best = next_hop;
        best_length = prefix.length;
      }
    }
    return best;
  }
  [[nodiscard]] std::size_t size() const { return routes_.size(); }

 private:
  std::map<PrefixT, NextHop> routes_;
};

template <typename PrefixT>
void rib_matches_naive_reference(std::uint64_t seed) {
  using Bits = typename PrefixT::Bits;
  using Family = fib::AddressFamily<Bits>;
  Rng rng(seed);

  BasicRibTable<PrefixT> rib;
  NaiveRib<PrefixT> naive;
  std::vector<PrefixT> live;

  EXPECT_EQ(rib.lookup(Family::random(rng)), std::nullopt);

  for (int round = 0; round < 2000; ++round) {
    const bool remove = !live.empty() && rng.chance(0.3);
    if (remove) {
      const std::size_t i = rng.below(live.size());
      const PrefixT victim = live[i];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      EXPECT_EQ(rib.route_delete(victim), naive.route_delete(victim));
      // Deleting again misses in both.
      EXPECT_EQ(rib.route_delete(victim), naive.route_delete(victim));
    } else {
      const auto length =
          static_cast<std::uint8_t>(rng.below(Family::kWidth + 1));
      const PrefixT prefix = PrefixT::make(Family::random(rng), length);
      const NextHop next_hop = static_cast<NextHop>(1 + rng.below(1000));
      const bool was_new = naive.route_add(prefix, next_hop);
      EXPECT_EQ(rib.route_add(prefix, next_hop), was_new);
      if (was_new) live.push_back(prefix);
      EXPECT_EQ(rib.exact(prefix), std::optional<NextHop>(next_hop));
    }
    EXPECT_EQ(rib.size(), naive.size());

    // A fully random probe plus one aimed at a live prefix (random probes
    // alone rarely hit long prefixes on wide keys).
    const Bits random_addr = Family::random(rng);
    ASSERT_EQ(rib.lookup(random_addr), naive.lookup(random_addr))
        << "round " << round;
    if (!live.empty()) {
      const PrefixT& target = live[rng.below(live.size())];
      const Bits span = ~fib::prefix_mask<Bits>(target.length);
      const Bits aimed = target.bits | (Family::random(rng) & span);
      ASSERT_EQ(rib.lookup(aimed), naive.lookup(aimed)) << "round " << round;
    }
  }
}

TEST(RibTable, MatchesNaiveReferenceIpv4) {
  rib_matches_naive_reference<Prefix>(101);
}

TEST(RibTable, MatchesNaiveReferenceIpv6) {
  rib_matches_naive_reference<Prefix6>(202);
}

TEST(RibTable, PrefixesAreSortedAndComplete) {
  Rng rng(7);
  RibTable rib;
  std::vector<Prefix> expected;
  for (int i = 0; i < 300; ++i) {
    const auto length = static_cast<std::uint8_t>(1 + rng.below(24));
    const Prefix p = Prefix::make(fib::AddressFamily<Address>::random(rng),
                                  length);
    if (rib.route_add(p, 1)) expected.push_back(p);
  }
  // Shadow a few with deletes; prefixes() must drop exactly those.
  for (int i = 0; i < 50 && !expected.empty(); ++i) {
    const std::size_t victim = rng.below(expected.size());
    ASSERT_TRUE(rib.route_delete(expected[victim]));
    expected.erase(expected.begin() +
                   static_cast<std::ptrdiff_t>(victim));
  }
  std::ranges::sort(expected, [](const Prefix& a, const Prefix& b) {
    return std::pair(a.length, a.bits) < std::pair(b.length, b.bits);
  });
  EXPECT_EQ(rib.prefixes(), expected);
}

// --- FIB rebuild ---------------------------------------------------------

template <typename PrefixT>
void rebuild_agrees_with_rib(std::uint64_t seed, std::size_t routes) {
  using Bits = typename PrefixT::Bits;
  using Family = fib::AddressFamily<Bits>;
  Rng rng(seed);

  BasicRibTable<PrefixT> rib;
  for (std::size_t i = 0; i < routes; ++i) {
    const auto length = static_cast<std::uint8_t>(1 + rng.below(48) %
                                                          Family::kWidth);
    rib.route_add(PrefixT::make(Family::random(rng), length),
                  static_cast<NextHop>(1 + i));
  }
  const fib::BasicRuleTree<PrefixT> fib_tree = rebuild_fib_from_rib(rib);

  // Node 0 is the artificial default rule; every node's parent prefix
  // contains it (the rule dependency order).
  ASSERT_GE(fib_tree.tree.size(), 1u);
  EXPECT_EQ(fib_tree.prefix[0], PrefixT{});
  for (NodeId v = 1; v < fib_tree.tree.size(); ++v) {
    const PrefixT& parent = fib_tree.prefix[fib_tree.tree.parent(v)];
    EXPECT_TRUE(parent.contains(fib_tree.prefix[v])) << "node " << v;
    EXPECT_GT(fib_tree.prefix[v].length, parent.length) << "node " << v;
  }

  // LPM agreement: the FIB's match is a node whose prefix is exactly the
  // RIB's longest live match (both aimed and random probes).
  const std::vector<PrefixT> live = rib.prefixes();
  for (int probe = 0; probe < 500; ++probe) {
    const PrefixT& target = live[rng.below(live.size())];
    const Bits span = ~fib::prefix_mask<Bits>(target.length);
    const Bits addr = target.bits | (Family::random(rng) & span);
    const NodeId node = fib_tree.lpm(addr);
    const auto rib_match = rib.lookup(addr);
    ASSERT_TRUE(rib_match.has_value());
    EXPECT_EQ(rib.exact(fib_tree.prefix[node]), rib_match);
  }
  for (int probe = 0; probe < 500; ++probe) {
    const Bits addr = Family::random(rng);
    const NodeId node = fib_tree.lpm(addr);
    if (rib.lookup(addr).has_value()) {
      EXPECT_EQ(rib.exact(fib_tree.prefix[node]), rib.lookup(addr));
    } else {
      EXPECT_EQ(node, 0u);  // falls through to the default rule
    }
  }
}

TEST(RebuildFib, AgreesWithRibLookupIpv4) {
  rebuild_agrees_with_rib<Prefix>(11, 400);
}

TEST(RebuildFib, AgreesWithRibLookupIpv6) {
  rebuild_agrees_with_rib<Prefix6>(13, 400);
}

TEST(RebuildFib, EmptyTableIsJustTheDefaultRule) {
  const RibTable rib;
  const fib::RuleTree fib_tree = rebuild_fib_from_rib(rib);
  EXPECT_EQ(fib_tree.tree.size(), 1u);
  EXPECT_EQ(fib_tree.lpm(0x01020304u), 0u);
}

// --- Synthetic feeds and ingest ------------------------------------------

TEST(GenerateFeed, DumpFirstTimestampedUpdatesApplyCleanly) {
  for (const int family : {4, 6, 46}) {
    SCOPED_TRACE("family " + std::to_string(family));
    Rng rng(91);
    const SyntheticFeedConfig config{
        .routes = 120, .updates = 60, .family = family};
    const std::vector<FeedRecord> records = generate_feed(config, rng);

    const std::size_t families = family == 46 ? 2u : 1u;
    ASSERT_EQ(records.size(), config.routes * families + config.updates);
    std::uint64_t last_timestamp = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const FeedRecord& record = records[i];
      if (i < config.routes * families) {
        EXPECT_EQ(record.op, FeedOp::kDump);
      } else {
        EXPECT_NE(record.op, FeedOp::kDump);
        EXPECT_GE(record.timestamp, config.base_timestamp);
        EXPECT_GE(record.timestamp, last_timestamp);
        last_timestamp = record.timestamp;
      }
      if (family != 46) {
        EXPECT_EQ(record.v6, family == 6);
      }
    }

    // The generator only withdraws live routes and only dumps distinct
    // prefixes, so ingest sees no noise.
    IngestResult ingest;
    for (const FeedRecord& record : records) ingest.apply(record);
    EXPECT_EQ(ingest.records, records.size());
    EXPECT_EQ(ingest.v4.stats.withdraw_misses, 0u);
    EXPECT_EQ(ingest.v6.stats.withdraw_misses, 0u);
    EXPECT_EQ(ingest.v4.empty(), family == 6);
    EXPECT_EQ(ingest.v6.empty(), family == 4);
    if (family != 6) {
      EXPECT_EQ(ingest.v4.stats.dump_routes, config.routes);
      EXPECT_EQ(ingest.v4.rib.size(), config.routes +
                                          ingest.v4.stats.announces -
                                          ingest.v4.stats.replaced_routes -
                                          ingest.v4.stats.withdraws);
    }
  }
}

TEST(DepthHistogram, CountsNodesPerDepth) {
  // A path of 4 nodes: one node at each depth.
  Rng rng(3);
  RibTable rib;
  rib.route_add(Prefix::parse("128.0.0.0/1"), 1);
  rib.route_add(Prefix::parse("192.0.0.0/2"), 2);
  rib.route_add(Prefix::parse("224.0.0.0/3"), 3);
  const fib::RuleTree fib_tree = rebuild_fib_from_rib(rib);
  EXPECT_EQ(depth_histogram(fib_tree.tree),
            (std::vector<std::uint64_t>{1, 1, 1, 1}));

  // Sibling rules: root plus two depth-1 nodes.
  RibTable flat;
  flat.route_add(Prefix::parse("10.0.0.0/8"), 1);
  flat.route_add(Prefix::parse("11.0.0.0/8"), 2);
  EXPECT_EQ(depth_histogram(rebuild_fib_from_rib(flat).tree),
            (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace treecache::rib
