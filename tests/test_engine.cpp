// The sharded execution engine: shard-plan partition invariants, the
// determinism contract (worker-thread count never changes results; the
// sharded run equals independent per-shard sequential runs), and the
// batched hot path (step_batch ≡ scalar step for every registered
// algorithm on every registered workload).
#include "engine/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/shard_plan.hpp"
#include "fib/fib_workloads.hpp"
#include "fib/router_source.hpp"
#include "rib/workloads.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "tree/tree_builder.hpp"
#include "workload/generators.hpp"

namespace treecache {
namespace {

sim::Params smoke_params() {
  sim::Params p;
  p.set("alpha", "3");
  p.set("capacity", "8");
  p.set("length", "600");
  p.set("rules", "60");  // keep the fib* substrate test-sized
  // fib-real replays the checked-in fixture feed; other workloads ignore
  // the parameter.
  p.set("rib-feed", std::string(TREECACHE_TEST_DATA_DIR) + "/rib_v4.feed");
  return p;
}

// --- ShardPlan -----------------------------------------------------------

TEST(ShardPlan, TrivialPlanIsTheUniverseItself) {
  Rng rng(5);
  const Tree tree = trees::random_recursive(50, rng);
  const engine::ShardPlan plan(tree, 1);
  ASSERT_EQ(plan.num_shards(), 1u);
  // No relabeled copy: shard 0 runs on the universe directly.
  EXPECT_EQ(&plan.shard_tree(0), &tree);
  for (NodeId v = 0; v < tree.size(); ++v) {
    EXPECT_EQ(plan.shard_of(v), 0u);
    EXPECT_EQ(plan.to_local(v), v);
    EXPECT_EQ(plan.to_global(0, v), v);
  }
}

TEST(ShardPlan, PartitionsThePreorderIntoSubtreeSlices) {
  Rng rng(7);
  const Tree tree = trees::random_recursive(500, rng);
  const engine::ShardPlan plan(tree, 4);
  ASSERT_GE(plan.num_shards(), 2u);
  ASSERT_LE(plan.num_shards(), 4u);

  // The shard intervals tile [0, n) in order; membership matches the
  // interval; shard 0 owns the root.
  std::uint32_t expected_begin = 0;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const engine::Shard& shard = plan.shard(s);
    EXPECT_EQ(shard.preorder_begin, expected_begin) << "shard " << s;
    EXPECT_GT(shard.nodes(), 0u) << "shard " << s;
    expected_begin = shard.preorder_end;
    covered += shard.nodes();
    // Every shard owns whole top-level subtrees.
    for (const NodeId r : shard.roots) {
      EXPECT_EQ(tree.parent(r), tree.root());
    }
  }
  EXPECT_EQ(expected_begin, tree.size());
  EXPECT_EQ(covered, tree.size());
  EXPECT_EQ(plan.shard_of(tree.root()), 0u);

  for (NodeId v = 0; v < tree.size(); ++v) {
    const std::size_t s = plan.shard_of(v);
    const engine::Shard& shard = plan.shard(s);
    EXPECT_GE(tree.preorder_index(v), shard.preorder_begin);
    EXPECT_LT(tree.preorder_index(v), shard.preorder_end);
    // Local ids round-trip, and land inside the shard tree.
    const NodeId local = plan.to_local(v);
    ASSERT_LT(local, plan.shard_tree(s).size());
    EXPECT_EQ(plan.to_global(s, local), v);
  }

  // Shards beyond the first run on a replica of the global root: local
  // node 0 maps back to the universe root and parents the subtree roots.
  for (std::size_t s = 1; s < plan.num_shards(); ++s) {
    const Tree& local = plan.shard_tree(s);
    EXPECT_EQ(local.size(), plan.shard(s).nodes() + 1);
    EXPECT_EQ(local.root(), NodeId{0});
    EXPECT_EQ(plan.to_global(s, 0), tree.root());
    for (const NodeId r : plan.shard(s).roots) {
      EXPECT_EQ(local.parent(plan.to_local(r)), NodeId{0});
    }
  }
  // Shard 0 keeps the real root.
  EXPECT_EQ(plan.shard_tree(0).size(), plan.shard(0).nodes());
  EXPECT_EQ(plan.to_local(tree.root()), NodeId{0});
}

TEST(ShardPlan, ShardTreesArePreorderLabeled) {
  // Relabeled shard trees assign local ids in ascending global preorder,
  // so each is preorder-labeled: a shard-local NodeId IS its preorder rank
  // and the preorder-indexed NodeState SoA needs no per-request
  // permutation. (The trivial 1-shard plan returns the universe itself,
  // whose labeling is whatever the caller built — no guarantee there.)
  Rng rng(11);
  const Tree tree = trees::random_recursive(400, rng);
  for (const std::size_t shards : {2u, 3u, 8u}) {
    const engine::ShardPlan plan(tree, shards);
    ASSERT_GE(plan.num_shards(), 2u);
    for (std::size_t s = 0; s < plan.num_shards(); ++s) {
      EXPECT_TRUE(plan.shard_tree(s).is_preorder_labeled())
          << "shards=" << shards << " s=" << s;
    }
  }
}

TEST(ShardPlan, RemapTablesMatchElementwiseTranslation) {
  Rng rng(13);
  const Tree tree = trees::random_recursive(300, rng);
  const engine::ShardPlan plan(tree, 4);
  ASSERT_GE(plan.num_shards(), 2u);

  const std::span<const NodeId> local = plan.local_ids();
  ASSERT_EQ(local.size(), tree.size());
  for (NodeId v = 0; v < tree.size(); ++v) {
    EXPECT_EQ(local[v], plan.to_local(v));
  }
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const std::span<const NodeId> global = plan.global_ids(s);
    ASSERT_EQ(global.size(), plan.shard_tree(s).size());
    for (NodeId l = 0; l < global.size(); ++l) {
      EXPECT_EQ(global[l], plan.to_global(s, l));
    }
    // Inverse round trip for every requestable node of the shard (the
    // replica root of shards s > 0 maps to the global root, which shard 0
    // owns — skip it).
    for (NodeId l = (s == 0 ? 0u : 1u); l < global.size(); ++l) {
      EXPECT_EQ(plan.shard_of(global[l]), s);
      EXPECT_EQ(local[global[l]], l);
    }
  }
}

TEST(ShardPlan, ShardCountCapsAtTopLevelSubtrees) {
  const Tree star = trees::star(5);  // root + 5 leaf children
  EXPECT_EQ(engine::ShardPlan(star, 16).num_shards(), 5u);
  const Tree path = trees::path(20);  // root has one child
  EXPECT_EQ(engine::ShardPlan(path, 8).num_shards(), 1u);
  const Tree lone = trees::path(1);  // no children at all
  EXPECT_EQ(engine::ShardPlan(lone, 8).num_shards(), 1u);
}

TEST(ShardPlan, BalancesSubtreeMassAcrossShards) {
  // Eight equal top-level subtrees must land one per shard.
  const Tree tree = trees::complete_kary(4, 8);
  const engine::ShardPlan plan(tree, 8);
  ASSERT_EQ(plan.num_shards(), 8u);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(plan.shard(s).roots.size(), 1u) << "shard " << s;
  }
}

TEST(ShardPlan, FibRuleTreeShardsByTopLevelPrefix) {
  const sim::Params params = smoke_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(params);
  const engine::ShardPlan plan(rt.tree, 4);
  // Node 0 is the artificial default rule; every shard boundary falls
  // between top-level prefixes.
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    for (const NodeId r : plan.shard(s).roots) {
      EXPECT_EQ(rt.tree.parent(r), NodeId{0});
    }
  }
}

TEST(ShardPlan, SingleNodeUniverse) {
  // The smallest possible universe: one node, no children. Every shard
  // request collapses onto the trivial plan and the engine still runs.
  const Tree lone = trees::path(1);
  const engine::ShardPlan plan(lone, 8);
  ASSERT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(&plan.shard_tree(0), &lone);
  EXPECT_EQ(plan.shard_of(0), 0u);
  EXPECT_EQ(plan.to_local(0), NodeId{0});
  EXPECT_EQ(plan.to_global(0, 0), NodeId{0});
  EXPECT_EQ(plan.shard(0).nodes(), 1u);

  sim::Params params;
  params.set("alpha", "2");
  params.set("capacity", "4");
  engine::ShardedEngine eng(lone, "tc", params, {.shards = 8});
  const Trace trace(5, positive(0));
  TraceSource source{std::span<const Request>(trace)};
  EXPECT_EQ(eng.run(source).total.rounds, 5u);
}

TEST(ShardPlan, UniverseSmallerThanShardCount) {
  // Fewer top-level subtrees than requested shards: the plan caps at one
  // shard per child and every map still round-trips.
  const Tree star = trees::star(3);  // root + 3 leaf children
  const engine::ShardPlan plan(star, 8);
  ASSERT_EQ(plan.num_shards(), 3u);
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    EXPECT_EQ(plan.shard(s).roots.size(), 1u) << "shard " << s;
    // Shard 0 holds the real root + its leaf; the others hold a replica
    // root + their leaf.
    EXPECT_EQ(plan.shard_tree(s).size(), 2u) << "shard " << s;
  }
  for (NodeId v = 0; v < star.size(); ++v) {
    const std::size_t s = plan.shard_of(v);
    EXPECT_EQ(plan.to_global(s, plan.to_local(v)), v);
  }
}

TEST(ShardPlan, SkewedFibTreeKeepsHeavyPrefixWhole) {
  // A FIB where one top-level prefix holds >90% of the nodes — the shape
  // the ROADMAP's work-stealing item targets. The partition unit is the
  // whole top-level subtree, so no shard count can split the hot prefix:
  // the plan must keep it intact (and therefore unbalanced), while the
  // remaining prefixes spread over the other shards.
  std::vector<fib::Prefix> prefixes;
  prefixes.push_back(fib::Prefix::parse("10.0.0.0/8"));
  for (int i = 0; i < 56; ++i) {
    prefixes.push_back(
        fib::Prefix::parse("10." + std::to_string(i) + ".0.0/16"));
  }
  for (const char* light : {"20.0.0.0/8", "30.0.0.0/8", "40.0.0.0/8",
                            "50.0.0.0/8"}) {
    prefixes.push_back(fib::Prefix::parse(light));
  }
  const fib::RuleTree rt = fib::build_rule_tree(std::move(prefixes));
  ASSERT_EQ(rt.tree.size(), 62u);  // default root + 57 + 4

  const engine::ShardPlan plan(rt.tree, 4);
  ASSERT_EQ(plan.num_shards(), 4u);
  // The heavy prefix's subtree (57 of 61 non-root nodes = 93%) lands in
  // exactly one shard, whole.
  std::size_t heaviest = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    heaviest = std::max(heaviest, plan.shard(s).nodes());
    std::size_t mass = s == 0 ? 1 : 0;  // shard 0 counts the real root
    for (const NodeId r : plan.shard(s).roots) {
      mass += rt.tree.subtree_size(r);
    }
    EXPECT_EQ(plan.shard(s).nodes(), mass) << "shard " << s;
  }
  EXPECT_GE(heaviest, 57u);
  // Documented skew: request mass concentrates on one shard until the
  // plan can split below the top level (ROADMAP: work stealing).
  EXPECT_GE(static_cast<double>(heaviest) /
                static_cast<double>(rt.tree.size()),
            0.9);

  // The skewed plan still runs the closed loop, thread-invariantly.
  sim::Params params = smoke_params();
  params.set("packets", "300");
  const fib::RouterSimConfig router{.packets = 300, .alpha = 3, .seed = 5};
  std::vector<engine::EngineResult> results;
  for (const std::size_t threads : {1u, 3u}) {
    engine::ShardedEngine eng(rt.tree, "tc", params,
                              {.shards = 4, .threads = threads});
    fib::RouterSource source(rt, router);
    results.push_back(eng.run(source));
  }
  EXPECT_EQ(results[0].total, results[1].total);
  for (std::size_t s = 0; s < results[0].per_shard.size(); ++s) {
    EXPECT_EQ(results[0].per_shard[s], results[1].per_shard[s]);
  }
}

// --- ShardedEngine determinism -------------------------------------------

sim::Params engine_params() {
  sim::Params p;
  p.set("alpha", "4");
  p.set("capacity", "64");
  p.set("length", "20000");
  p.set("neg", "0.2");
  return p;
}

TEST(ShardedEngine, EqualsIndependentPerShardSequentialRuns) {
  Rng rng(11);
  const Tree tree = trees::random_recursive(300, rng);
  const sim::Params params = engine_params();
  const Trace trace = sim::make_workload("zipf", tree, params, 17);

  engine::ShardedEngine eng(tree, "tc", params,
                            {.shards = 4, .threads = 2, .batch = 128});
  TraceSource source{std::span<const Request>(trace)};
  const engine::EngineResult sharded = eng.run(source);
  const engine::ShardPlan& plan = eng.plan();
  ASSERT_GE(plan.num_shards(), 2u);

  Cost sum;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    // Reference: this shard's subsequence, remapped, run sequentially on a
    // fresh instance over the shard tree.
    Trace local;
    for (const Request& r : trace) {
      if (plan.shard_of(r.node) == s) local.push_back(plan.to_local(r));
    }
    const auto alg = sim::make_algorithm("tc", plan.shard_tree(s), params);
    const sim::RunResult reference = sim::run_trace(*alg, local);
    EXPECT_EQ(sharded.per_shard[s], reference) << "shard " << s;
    sum += reference.cost;
  }
  EXPECT_EQ(sharded.total.cost, sum);
  EXPECT_EQ(sharded.total.rounds, trace.size());
}

TEST(ShardedEngine, ResultsInvariantAcrossThreadCounts) {
  const Tree tree = trees::complete_kary(4, 8);
  const sim::Params params = engine_params();

  std::vector<engine::EngineResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ShardedEngine eng(tree, "tc", params,
                              {.shards = 8, .threads = threads,
                               .batch = 256});
    const auto source = sim::make_source("zipf", tree, params, 23);
    results.push_back(eng.run(*source));
    EXPECT_EQ(results.back().threads, threads);
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].total, results[0].total) << "threads run " << i;
    ASSERT_EQ(results[i].per_shard.size(), results[0].per_shard.size());
    for (std::size_t s = 0; s < results[0].per_shard.size(); ++s) {
      EXPECT_EQ(results[i].per_shard[s], results[0].per_shard[s])
          << "shard " << s << " threads run " << i;
    }
  }
}

TEST(ShardedEngine, PinnedRunMatchesUnpinnedAndReportsAffinity) {
  const Tree tree = trees::complete_kary(4, 8);
  const sim::Params params = engine_params();

  std::vector<engine::EngineResult> results;
  for (const bool pin : {false, true}) {
    engine::ShardedEngine eng(
        tree, "tc", params,
        {.shards = 8, .threads = 4, .batch = 256, .pin_threads = pin});
    EXPECT_EQ(eng.config().pin_threads, pin);
    const auto source = sim::make_source("zipf", tree, params, 29);
    results.push_back(eng.run(*source));
    EXPECT_EQ(results.back().pinned, pin);
    if (pin) {
      // One entry per worker; -1 means the kernel denied the affinity
      // request (containerized CI), any other value is the CPU pinned to.
      ASSERT_EQ(results.back().worker_cpus.size(), results.back().threads);
      for (const int cpu : results.back().worker_cpus) EXPECT_GE(cpu, -1);
    } else {
      EXPECT_TRUE(results.back().worker_cpus.empty());
    }
  }
  EXPECT_EQ(results[1].total, results[0].total);
  ASSERT_EQ(results[1].per_shard.size(), results[0].per_shard.size());
  for (std::size_t s = 0; s < results[0].per_shard.size(); ++s) {
    EXPECT_EQ(results[1].per_shard[s], results[0].per_shard[s])
        << "shard " << s;
  }
}

TEST(ShardedEngine, PinningIsNormalizedOffForSequentialRuns) {
  const Tree tree = trees::complete_kary(3, 5);
  engine::ShardedEngine eng(tree, "tc", engine_params(),
                            {.shards = 4, .threads = 1, .pin_threads = true});
  // A single worker gains nothing from pinning and the sequential paths
  // never call sched_setaffinity, so config() must report reality.
  EXPECT_FALSE(eng.config().pin_threads);
  const auto source = sim::make_source("zipf", tree, engine_params(), 31);
  const engine::EngineResult result = eng.run(*source);
  EXPECT_FALSE(result.pinned);
  EXPECT_TRUE(result.worker_cpus.empty());
}

TEST(ShardedEngine, WarnsWhenSplitFallsBackToReplication) {
  // An open-loop source whose split() merely forks the stream per shard
  // (SplitKind::kReplicated) regenerates it S times; the engine says so
  // on stderr — once per process, however many runs replicate (a sweep
  // over a replicating workload must not spam one line per cell).
  // Shared-generation splits stay quiet.
  const Tree tree = trees::complete_kary(3, 4);
  const sim::Params params = engine_params();
  {
    engine::ShardedEngine eng(tree, "tc", params,
                              {.shards = 4, .threads = 2});
    // Other tests in this binary may already have consumed the
    // once-per-process warning; re-arm so this run is the first.
    engine::rearm_replicated_split_warning();
    const auto source = sim::make_source("zipf", tree, params, 7);
    EXPECT_EQ(source->split_kind(), SplitKind::kReplicated);
    testing::internal::CaptureStderr();
    (void)eng.run(*source);
    const std::string first = testing::internal::GetCapturedStderr();
    EXPECT_NE(first.find("replicated generation"), std::string::npos);
    // Deduplicated: the identical second run stays silent.
    source->reset();
    testing::internal::CaptureStderr();
    (void)eng.run(*source);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  }
  {
    const sim::Params fib_params = smoke_params();
    const fib::RuleTree rt = fib::rule_tree_from_params(fib_params);
    engine::ShardedEngine eng(rt.tree, "tc", fib_params,
                              {.shards = 4, .threads = 2});
    fib::RouterSource closed(rt, fib::RouterSimConfig{.packets = 200});
    EXPECT_EQ(closed.split_kind(), SplitKind::kShared);
    testing::internal::CaptureStderr();
    (void)eng.run(closed);
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  }
}

/// Strips fork() (and with it the default split()) off an inner stream, so
/// the engine's threaded split fast path cannot apply and it must fall
/// back to demuxing on the caller's thread.
class ForklessSource final : public RequestSource {
 public:
  explicit ForklessSource(std::unique_ptr<RequestSource> inner)
      : inner_(std::move(inner)) {}
  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override {
    return inner_->fill(buffer);
  }
  void reset() override { inner_->reset(); }

 private:
  std::unique_ptr<RequestSource> inner_;
};

TEST(ShardedEngine, ForklessOpenLoopSourceFallsBackToDemux) {
  // No fork() means split() yields nothing; the threaded run must still
  // succeed — via the demux path — and stay bit-identical to the split
  // fast path the plain source takes.
  const Tree tree = trees::complete_kary(4, 8);
  const sim::Params params = engine_params();

  engine::ShardedEngine eng(tree, "tc", params,
                            {.shards = 8, .threads = 4, .batch = 256});
  const auto plain = sim::make_source("zipf", tree, params, 23);
  const engine::EngineResult via_split = eng.run(*plain);

  ForklessSource forkless(sim::make_source("zipf", tree, params, 23));
  EXPECT_TRUE(forkless.split(eng.plan()).empty());
  const engine::EngineResult via_demux = eng.run(forkless);

  EXPECT_EQ(via_demux.total, via_split.total);
  ASSERT_EQ(via_demux.per_shard.size(), via_split.per_shard.size());
  for (std::size_t s = 0; s < via_split.per_shard.size(); ++s) {
    EXPECT_EQ(via_demux.per_shard[s], via_split.per_shard[s])
        << "shard " << s;
  }
}

TEST(ShardedEngine, SingleShardEqualsRunSource) {
  Rng rng(13);
  const Tree tree = trees::random_recursive(80, rng);
  const sim::Params params = engine_params();

  engine::ShardedEngine eng(tree, "tc", params, {.shards = 1, .threads = 4});
  const auto engine_source = sim::make_source("churn", tree, params, 31);
  const engine::EngineResult via_engine = eng.run(*engine_source);

  const auto alg = sim::make_algorithm("tc", tree, params);
  const auto source = sim::make_source("churn", tree, params, 31);
  const sim::RunResult direct = sim::run_source(*alg, *source);
  EXPECT_EQ(via_engine.total, direct);
  EXPECT_EQ(via_engine.shards, 1u);
}

TEST(ShardedEngine, RunsClosedLoopSourcesThroughTheMirrorSplit) {
  const sim::Params params = smoke_params();
  const fib::RuleTree rt = fib::rule_tree_from_params(params);
  const fib::RouterSimConfig router{.packets = 200};
  // Multi-shard closed loops split into per-shard mirrors (per-shard
  // outcome feedback; tests/test_engine_closed_loop.cpp is the full
  // differential suite) — the run is accepted and bit-identical for every
  // thread count.
  engine::ShardedEngine sharded(rt.tree, "tc", params,
                                {.shards = 4, .threads = 2});
  fib::RouterSource closed(rt, router);
  const engine::EngineResult via_split = sharded.run(closed);
  EXPECT_GT(via_split.total.rounds, 0u);
  EXPECT_GT(via_split.shards, 1u);
  // The single-shard path delegates to run_source and accepts it.
  engine::ShardedEngine single(rt.tree, "tc", params, {.shards = 1});
  fib::RouterSource fresh(rt, router);
  EXPECT_GT(single.run(fresh).total.rounds, 0u);
}

TEST(ShardedEngine, ReportsWallTimeAndThroughput) {
  const Tree tree = trees::complete_kary(3, 4);
  engine::ShardedEngine eng(tree, "tc", engine_params(),
                            {.shards = 4, .threads = 2});
  const auto source = sim::make_source("zipf", tree, engine_params(), 3);
  const engine::EngineResult result = eng.run(*source);
  EXPECT_GT(result.total.wall_seconds, 0.0);
  EXPECT_GT(result.total.requests_per_second(), 0.0);
  // Wall time is measured, not accounted: it never breaks result equality.
  sim::RunResult a = result.total;
  sim::RunResult b = result.total;
  b.wall_seconds = a.wall_seconds + 1.0;
  EXPECT_EQ(a, b);
}

// --- step_batch ≡ scalar step --------------------------------------------

struct OutcomeDigest {
  bool paid = false;
  ChangeKind change = ChangeKind::kNone;
  std::vector<NodeId> changed;
  std::vector<NodeId> also_evicted;
  std::uint32_t aborted_fetch_size = 0;

  friend bool operator==(const OutcomeDigest&,
                         const OutcomeDigest&) = default;
};

OutcomeDigest digest(const StepOutcome& out) {
  return OutcomeDigest{
      out.paid, out.change,
      std::vector<NodeId>(out.changed.begin(), out.changed.end()),
      std::vector<NodeId>(out.also_evicted.begin(), out.also_evicted.end()),
      out.aborted_fetch_size};
}

class RecordingSink final : public OutcomeSink {
 public:
  void on_outcome(const Request&, const StepOutcome& outcome) override {
    digests.push_back(digest(outcome));
  }
  std::vector<OutcomeDigest> digests;
};

TEST(StepBatch, MatchesScalarStepForEveryAlgorithmAndWorkload) {
  Rng rng(19);
  const Tree generic_tree = trees::random_recursive(40, rng);
  const sim::Params params = smoke_params();
  const fib::RuleTree rule_tree = fib::rule_tree_from_params(params);

  for (const std::string& alg_name :
       sim::AlgorithmRegistry::instance().names()) {
    for (const std::string& w_name :
         sim::WorkloadRegistry::instance().names()) {
      SCOPED_TRACE(alg_name + " x " + w_name);
      // fib-real first: its name also matches the fib* prefix.
      const Tree& tree = rib::is_real_fib_workload_name(w_name)
                             ? rib::shared_real_fib(params).tree()
                             : fib::is_fib_workload_name(w_name)
                                   ? rule_tree.tree
                                   : generic_tree;
      const Trace trace = sim::make_workload(w_name, tree, params, 41);

      const auto scalar = sim::make_algorithm(alg_name, tree, params);
      std::vector<OutcomeDigest> scalar_digests;
      scalar_digests.reserve(trace.size());
      for (const Request& r : trace) {
        scalar_digests.push_back(digest(scalar->step(r)));
      }

      const auto batched = sim::make_algorithm(alg_name, tree, params);
      RecordingSink sink;
      // Uneven chunks, so batch boundaries land everywhere in the stream.
      const std::span<const Request> all(trace);
      std::size_t begin = 0;
      std::size_t len = 1;
      while (begin < all.size()) {
        const std::size_t take = std::min(len, all.size() - begin);
        batched->step_batch(all.subspan(begin, take), sink);
        begin += take;
        len = len % 7 + 1;
      }

      ASSERT_EQ(sink.digests.size(), scalar_digests.size());
      for (std::size_t i = 0; i < scalar_digests.size(); ++i) {
        ASSERT_EQ(sink.digests[i], scalar_digests[i]) << "round " << i + 1;
      }
      EXPECT_EQ(batched->cost(), scalar->cost());
      EXPECT_EQ(batched->cache().size(), scalar->cache().size());
    }
  }
}

}  // namespace
}  // namespace treecache
