// OutcomeBuffer — the flattened StepOutcome transport of the batched
// feedback path. These tests pin the value contract the engine's rings
// rely on: append deep-copies every span, views() reproduces the outcomes
// field for field in append order, clear() recycles, and swap() moves
// whole chunks in O(1) without mixing contents.
#include <gtest/gtest.h>

#include <vector>

#include "core/outcome_buffer.hpp"

namespace treecache {
namespace {

std::vector<StepOutcome> sample_outcomes() {
  // Scratch node lists live in static storage so the spans of the
  // expected outcomes stay valid for the whole test.
  static const std::vector<NodeId> fetched{3, 5, 8};
  static const std::vector<NodeId> evicted{2};
  static const std::vector<NodeId> aborted{1, 4, 6, 7};
  std::vector<StepOutcome> outcomes;
  outcomes.push_back({.paid = true,
                      .change = ChangeKind::kFetch,
                      .changed = fetched,
                      .also_evicted = evicted});
  // All-empty spans: a free hit must round-trip too.
  outcomes.push_back({.paid = false, .change = ChangeKind::kNone});
  outcomes.push_back({.paid = true,
                      .change = ChangeKind::kPhaseRestart,
                      .changed = evicted,
                      .aborted_fetch = aborted,
                      .aborted_fetch_size = 4});
  return outcomes;
}

void expect_outcome_eq(const StepOutcome& got, const StepOutcome& want) {
  EXPECT_EQ(got.paid, want.paid);
  EXPECT_EQ(got.change, want.change);
  EXPECT_EQ(got.aborted_fetch_size, want.aborted_fetch_size);
  ASSERT_EQ(got.changed.size(), want.changed.size());
  ASSERT_EQ(got.also_evicted.size(), want.also_evicted.size());
  ASSERT_EQ(got.aborted_fetch.size(), want.aborted_fetch.size());
  for (std::size_t i = 0; i < want.changed.size(); ++i) {
    EXPECT_EQ(got.changed[i], want.changed[i]);
  }
  for (std::size_t i = 0; i < want.also_evicted.size(); ++i) {
    EXPECT_EQ(got.also_evicted[i], want.also_evicted[i]);
  }
  for (std::size_t i = 0; i < want.aborted_fetch.size(); ++i) {
    EXPECT_EQ(got.aborted_fetch[i], want.aborted_fetch[i]);
  }
}

TEST(OutcomeBuffer, RoundTripsOutcomesInAppendOrder) {
  const std::vector<StepOutcome> expected = sample_outcomes();
  OutcomeBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_TRUE(buffer.views().empty());

  for (const StepOutcome& outcome : expected) buffer.append(outcome);
  EXPECT_FALSE(buffer.empty());
  ASSERT_EQ(buffer.size(), expected.size());

  const std::span<const StepOutcome> views = buffer.views();
  ASSERT_EQ(views.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    expect_outcome_eq(views[i], expected[i]);
  }
}

TEST(OutcomeBuffer, CopiesAreDeepNotBorrowed) {
  // The whole point of the buffer: the views must survive the death of the
  // storage the appended outcome's spans pointed into.
  std::vector<NodeId> scratch{9, 11};
  OutcomeBuffer buffer;
  buffer.append(
      {.paid = true, .change = ChangeKind::kEvict, .changed = scratch});
  scratch.assign(scratch.size(), 0);  // clobber the borrowed storage
  scratch.clear();

  const std::span<const StepOutcome> views = buffer.views();
  ASSERT_EQ(views.size(), 1u);
  ASSERT_EQ(views[0].changed.size(), 2u);
  EXPECT_EQ(views[0].changed[0], 9u);
  EXPECT_EQ(views[0].changed[1], 11u);
}

TEST(OutcomeBuffer, ViewsRefreshAfterFurtherAppends) {
  const std::vector<StepOutcome> expected = sample_outcomes();
  OutcomeBuffer buffer;
  buffer.append(expected[0]);
  EXPECT_EQ(buffer.views().size(), 1u);
  buffer.append(expected[1]);
  buffer.append(expected[2]);
  const std::span<const StepOutcome> views = buffer.views();
  ASSERT_EQ(views.size(), 3u);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    expect_outcome_eq(views[i], expected[i]);
  }
}

TEST(OutcomeBuffer, ClearRecyclesForReuse) {
  const std::vector<StepOutcome> expected = sample_outcomes();
  OutcomeBuffer buffer;
  for (const StepOutcome& outcome : expected) buffer.append(outcome);
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.views().empty());

  // A recycled buffer accumulates a fresh chunk with no leftovers.
  buffer.append(expected[2]);
  const std::span<const StepOutcome> views = buffer.views();
  ASSERT_EQ(views.size(), 1u);
  expect_outcome_eq(views[0], expected[2]);
}

TEST(OutcomeBuffer, SwapExchangesWholeChunks) {
  const std::vector<StepOutcome> expected = sample_outcomes();
  OutcomeBuffer full;
  for (const StepOutcome& outcome : expected) full.append(outcome);
  OutcomeBuffer empty;

  full.swap(empty);  // the ring handoff: full worker buffer <-> empty slot
  EXPECT_TRUE(full.empty());
  ASSERT_EQ(empty.size(), expected.size());
  const std::span<const StepOutcome> views = empty.views();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    expect_outcome_eq(views[i], expected[i]);
  }

  // And the drained side is immediately reusable.
  full.append(expected[0]);
  ASSERT_EQ(full.size(), 1u);
  expect_outcome_eq(full.views()[0], expected[0]);
}

}  // namespace
}  // namespace treecache
