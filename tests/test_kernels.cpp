// Randomized differential suite for the slice-scan kernels
// (core/kernels.hpp): every SIMD path is compared against the scalar
// reference — same output ranks, same counter totals, same visit counts —
// over random universes × epochs × cached patterns, plus the TC-level
// differential (whole TreeCache runs under forced kernel sets must agree
// outcome for outcome) and the epoch clear-on-wrap branch through the
// vectorized reset. Unsupported kinds (e.g. AVX2 on an older CPU) are
// skipped at runtime, so the suite passes everywhere while exercising
// whatever the host can dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/kernels.hpp"
#include "core/node_state.hpp"
#include "core/trace.hpp"
#include "core/tree_cache.hpp"
#include "tree/subforest.hpp"
#include "tree/tree.hpp"
#include "tree/tree_builder.hpp"
#include "util/rng.hpp"

namespace treecache {
namespace {

std::vector<kernels::Kind> supported_simd_kinds() {
  std::vector<kernels::Kind> kinds;
  for (const kernels::Kind kind : {kernels::Kind::kSse2,
                                   kernels::Kind::kAvx2}) {
    if (kernels::supported(kind)) kinds.push_back(kind);
  }
  return kinds;
}

Tree make_tree(std::size_t which, Rng& rng) {
  switch (which % 5) {
    case 0:
      return trees::random_recursive(2 + rng.below(300), rng);
    case 1:
      return trees::random_bounded_degree(2 + rng.below(200), 3, rng);
    case 2:
      return trees::path(1 + rng.below(150));
    case 3:
      return trees::star(1 + rng.below(150));
    default:
      return trees::complete_kary(4, 3);
  }
}

/// A random descendant-closed cached set over the rank space, as the
/// word-packed bitmap the kernels scan: the union of random subtree
/// slices (each slice [r, r + size(r)) is a whole subtree, and unions of
/// subtrees are descendant-closed).
std::vector<std::uint64_t> random_cached_bits(const Tree& tree, Rng& rng) {
  const auto sizes = tree.preorder_sizes();
  const std::uint32_t n = tree.size();
  std::vector<std::uint64_t> bits((n + 63) / 64, 0);
  const std::size_t subtrees = rng.below(8);
  for (std::size_t i = 0; i < subtrees; ++i) {
    const auto r = static_cast<std::uint32_t>(rng.below(n));
    for (std::uint32_t x = r; x < r + sizes[r]; ++x) {
      bits[x >> 6] |= std::uint64_t{1} << (x & 63);
    }
  }
  return bits;
}

std::vector<NodeState::Counter> random_counters(std::uint32_t n,
                                                std::uint32_t epoch,
                                                Rng& rng) {
  std::vector<NodeState::Counter> cnt(n);
  for (auto& c : cnt) {
    c.value = rng.below(1000);
    // Mix of current-epoch, stale, and arbitrary stamps: the masked sums
    // must honor exactly the stamp == epoch slots.
    const std::uint64_t pick = rng.below(3);
    c.stamp = pick == 0 ? epoch
                        : (pick == 1 ? epoch - 1
                                     : static_cast<std::uint32_t>(
                                           rng.below(1u << 30)));
  }
  return cnt;
}

std::vector<NodeState::NegEntry> random_neg_entries(std::uint32_t n,
                                                    Rng& rng) {
  std::vector<NodeState::NegEntry> neg(n);
  for (auto& e : neg) {
    e.value = rng.uniform_int(-4, 4);
    e.size = rng.below(50);
  }
  return neg;
}

TEST(Kernels, ParseKindRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(kernels::parse_kind("scalar"), kernels::Kind::kScalar);
  EXPECT_EQ(kernels::parse_kind("sse2"), kernels::Kind::kSse2);
  EXPECT_EQ(kernels::parse_kind("avx2"), kernels::Kind::kAvx2);
  EXPECT_FALSE(kernels::parse_kind("neon").has_value());
  EXPECT_FALSE(kernels::parse_kind("").has_value());
  for (const kernels::Kind kind :
       {kernels::Kind::kScalar, kernels::Kind::kSse2, kernels::Kind::kAvx2}) {
    EXPECT_EQ(kernels::parse_kind(kernels::kind_name(kind)), kind);
  }
}

TEST(Kernels, ScalarAlwaysSupportedAndTablesSelfIdentify) {
  EXPECT_TRUE(kernels::supported(kernels::Kind::kScalar));
  EXPECT_EQ(kernels::table(kernels::Kind::kScalar).name, "scalar");
  for (const kernels::Kind kind : supported_simd_kinds()) {
    EXPECT_EQ(kernels::table(kind).name, kernels::kind_name(kind));
  }
  EXPECT_TRUE(kernels::supported(kernels::best_supported()));
}

TEST(Kernels, ForceGuardSwapsAndRestores) {
  const kernels::Kind before = kernels::active_kind();
  {
    kernels::ForceGuard guard(kernels::Kind::kScalar);
    EXPECT_EQ(kernels::active_kind(), kernels::Kind::kScalar);
    EXPECT_EQ(kernels::active().name, "scalar");
  }
  EXPECT_EQ(kernels::active_kind(), before);
}

TEST(Kernels, EmitIotaMatchesScalarAcrossWordBoundaries) {
  const std::uint32_t cases[][2] = {{0, 0},   {5, 5},   {0, 1},  {0, 4},
                                    {3, 17},  {0, 63},  {0, 64}, {0, 65},
                                    {60, 70}, {1, 128}, {7, 200}};
  for (const kernels::Kind kind : supported_simd_kinds()) {
    const kernels::Table& table = kernels::table(kind);
    for (const auto& c : cases) {
      kernels::RankVec expect{99, 98};  // non-empty prefix must survive
      kernels::RankVec got{99, 98};
      kernels::table(kernels::Kind::kScalar).emit_iota(expect, c[0], c[1]);
      table.emit_iota(got, c[0], c[1]);
      EXPECT_EQ(got, expect) << kernels::kind_name(kind) << " [" << c[0]
                             << ", " << c[1] << ")";
    }
  }
}

TEST(Kernels, RangeEpochResetZeroesEverySlot) {
  Rng rng(2026'08'08);
  for (const kernels::Kind kind : supported_simd_kinds()) {
    const kernels::Table& table = kernels::table(kind);
    for (const std::size_t n : {0u, 1u, 2u, 3u, 63u, 64u, 65u, 127u, 128u}) {
      std::vector<NodeState::Counter> cnt(n);
      std::vector<NodeState::PosEntry> pos(n);
      for (std::size_t i = 0; i < n; ++i) {
        cnt[i] = {.value = rng.below(1000), .stamp = 7};
        pos[i] = {.pcnt = rng.uniform_int(-9, 9),
                  .cached_below = static_cast<std::uint32_t>(rng.below(9)),
                  .stamp = 7};
      }
      table.range_epoch_reset(cnt.data(), pos.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(cnt[i].value, 0u);
        EXPECT_EQ(cnt[i].stamp, 0u);
        EXPECT_EQ(pos[i].pcnt, 0);
        EXPECT_EQ(pos[i].cached_below, 0u);
        EXPECT_EQ(pos[i].stamp, 0u);
      }
    }
  }
}

TEST(Kernels, ScanMissingMatchesScalarOnRandomUniverses) {
  const auto simd = supported_simd_kinds();
  Rng rng(411);
  for (std::size_t round = 0; round < 60; ++round) {
    const Tree tree = make_tree(round, rng);
    const std::uint32_t n = tree.size();
    const auto bits = random_cached_bits(tree, rng);
    const auto epoch = static_cast<std::uint32_t>(1 + rng.below(1000));
    const auto cnt = random_counters(n, epoch, rng);
    const bool with_counters = rng.chance(0.8);
    const kernels::MissingScan scan{
        .cached_bits = bits.data(),
        .sizes = tree.preorder_sizes().data(),
        .cnt = with_counters ? cnt.data() : nullptr,
        .epoch = epoch};
    // Several scan roots per universe, always including the whole tree.
    for (std::size_t probe = 0; probe < 4; ++probe) {
      const auto ru =
          probe == 0 ? 0 : static_cast<std::uint32_t>(rng.below(n));
      const std::uint32_t end = ru + tree.preorder_subtree_size(ru);
      kernels::RankVec expect;
      const kernels::ScanResult ref =
          kernels::table(kernels::Kind::kScalar)
              .scan_missing(scan, ru, end, expect);
      for (const kernels::Kind kind : simd) {
        kernels::RankVec got;
        const kernels::ScanResult res =
            kernels::table(kind).scan_missing(scan, ru, end, got);
        EXPECT_EQ(got, expect) << kernels::kind_name(kind);
        EXPECT_EQ(res.total, ref.total) << kernels::kind_name(kind);
        EXPECT_EQ(res.visits, ref.visits) << kernels::kind_name(kind);
      }
    }
  }
}

TEST(Kernels, ScanHCandidatesMatchesScalarOnRandomUniverses) {
  const auto simd = supported_simd_kinds();
  Rng rng(412);
  for (std::size_t round = 0; round < 60; ++round) {
    const Tree tree = make_tree(round, rng);
    const std::uint32_t n = tree.size();
    const auto epoch = static_cast<std::uint32_t>(1 + rng.below(1000));
    const auto cnt = random_counters(n, epoch, rng);
    const auto neg = random_neg_entries(n, rng);
    const kernels::HScan scan{.neg = neg.data(),
                              .sizes = tree.preorder_sizes().data(),
                              .cnt = cnt.data(),
                              .epoch = epoch};
    for (std::size_t probe = 0; probe < 4; ++probe) {
      const auto ru =
          probe == 0 ? 0 : static_cast<std::uint32_t>(rng.below(n));
      const std::uint32_t end = ru + tree.preorder_subtree_size(ru);
      kernels::RankVec expect;
      const kernels::ScanResult ref =
          kernels::table(kernels::Kind::kScalar)
              .scan_h_candidates(scan, ru, end, expect);
      // The scan root itself is always a candidate, I(ru) notwithstanding.
      ASSERT_FALSE(expect.empty());
      EXPECT_EQ(expect.front(), ru);
      for (const kernels::Kind kind : simd) {
        kernels::RankVec got;
        const kernels::ScanResult res =
            kernels::table(kind).scan_h_candidates(scan, ru, end, got);
        EXPECT_EQ(got, expect) << kernels::kind_name(kind);
        EXPECT_EQ(res.total, ref.total) << kernels::kind_name(kind);
        EXPECT_EQ(res.visits, ref.visits) << kernels::kind_name(kind);
      }
    }
  }
}

TEST(Kernels, NodeStateEpochWrapClearsThroughEachKind) {
  std::vector<kernels::Kind> kinds{kernels::Kind::kScalar};
  for (const kernels::Kind kind : supported_simd_kinds()) {
    kinds.push_back(kind);
  }
  for (const kernels::Kind kind : kinds) {
    kernels::ForceGuard guard(kind);
    NodeState state(130);  // spans several 64-rank words + a ragged tail
    for (std::uint32_t r = 0; r < 130; ++r) {
      state.bump_counter(r);
      state.pos(r).pcnt = 3;
    }
    state.debug_set_epoch(std::numeric_limits<std::uint32_t>::max());
    state.new_phase();  // wraps: stamps ambiguous → vectorized hard clear
    EXPECT_EQ(state.debug_epoch(), 1u) << kernels::kind_name(kind);
    for (std::uint32_t r = 0; r < 130; ++r) {
      EXPECT_EQ(state.counter(r), 0u) << kernels::kind_name(kind);
      EXPECT_EQ(state.pcnt(r), 0) << kernels::kind_name(kind);
      EXPECT_EQ(state.cached_below(r), 0u) << kernels::kind_name(kind);
    }
  }
}

/// Naive reference for Subforest::missing_subtree: per-node walk with
/// explicit subtree skips, straight off the contains() byte flags.
std::vector<NodeId> naive_missing(const Subforest& sub, NodeId u) {
  const Tree& tree = sub.tree();
  std::vector<NodeId> out;
  const auto from = tree.from_preorder();
  const std::uint32_t ru = tree.preorder_index(u);
  const std::uint32_t end = ru + tree.subtree_size(u);
  for (std::uint32_t r = ru; r < end;) {
    const NodeId v = from[r];
    if (sub.contains(v)) {
      r += tree.preorder_subtree_size(r);
      continue;
    }
    out.push_back(v);
    ++r;
  }
  return out;
}

TEST(Kernels, SubforestMissingSubtreeMatchesNaiveUnderEveryKind) {
  std::vector<kernels::Kind> kinds{kernels::Kind::kScalar};
  for (const kernels::Kind kind : supported_simd_kinds()) {
    kinds.push_back(kind);
  }
  Rng rng(413);
  for (std::size_t round = 0; round < 25; ++round) {
    const Tree tree = make_tree(round, rng);
    const std::uint32_t n = tree.size();
    Subforest sub(tree);
    // Insert the random descendant-closed set children-first (descending
    // rank), as fetch changesets do.
    const auto bits = random_cached_bits(tree, rng);
    const auto from = tree.from_preorder();
    for (std::uint32_t r = n; r-- > 0;) {
      if (((bits[r >> 6] >> (r & 63)) & 1) != 0 &&
          !sub.contains(from[r])) {
        sub.insert(from[r]);
      }
    }
    for (std::size_t probe = 0; probe < 4; ++probe) {
      const auto u = static_cast<NodeId>(rng.below(n));
      if (sub.contains(u)) continue;  // P_t(u) needs non-cached u
      const std::vector<NodeId> expect = naive_missing(sub, u);
      for (const kernels::Kind kind : kinds) {
        kernels::ForceGuard guard(kind);
        std::vector<NodeId> got;
        sub.missing_subtree(u, got);
        EXPECT_EQ(got, expect) << kernels::kind_name(kind);
      }
    }
  }
}

/// Whole-algorithm differential: two TreeCache instances, one per kernel
/// set, stepped through the same random trace must agree on every
/// outcome, cost, counter, and the Theorem 6.1 work count.
TEST(Kernels, TreeCacheForcedKernelDifferential) {
  Rng rng(414);
  for (const kernels::Kind kind : supported_simd_kinds()) {
    for (std::size_t round = 0; round < 12; ++round) {
      const Tree tree = make_tree(round, rng);
      const TreeCacheConfig config{
          .alpha = 1 + rng.below(8),
          .capacity = 1 + rng.below(std::max<std::size_t>(tree.size(), 2))};
      kernels::ForceGuard scalar_guard(kernels::Kind::kScalar);
      TreeCache reference(tree, config);
      std::unique_ptr<TreeCache> candidate;
      {
        kernels::ForceGuard simd_guard(kind);
        candidate = std::make_unique<TreeCache>(tree, config);
      }
      Trace trace;
      for (std::size_t i = 0; i < 1500; ++i) {
        trace.push_back(Request{
            static_cast<NodeId>(rng.below(tree.size())),
            rng.chance(0.4) ? Sign::kNegative : Sign::kPositive});
      }
      for (const Request& request : trace) {
        const StepOutcome a = reference.step(request);
        const StepOutcome b = candidate->step(request);
        ASSERT_EQ(a.paid, b.paid) << kernels::kind_name(kind);
        ASSERT_EQ(a.change, b.change) << kernels::kind_name(kind);
        ASSERT_TRUE(std::equal(a.changed.begin(), a.changed.end(),
                               b.changed.begin(), b.changed.end()))
            << kernels::kind_name(kind);
        ASSERT_EQ(a.aborted_fetch_size, b.aborted_fetch_size)
            << kernels::kind_name(kind);
      }
      EXPECT_EQ(reference.cost().service, candidate->cost().service);
      EXPECT_EQ(reference.cost().reorg, candidate->cost().reorg);
      EXPECT_EQ(reference.work(), candidate->work());
      EXPECT_EQ(reference.cache().as_vector(), candidate->cache().as_vector());
      EXPECT_EQ(reference.phases().size(), candidate->phases().size());
      for (NodeId v = 0; v < tree.size(); ++v) {
        ASSERT_EQ(reference.counter(v), candidate->counter(v))
            << kernels::kind_name(kind);
      }
    }
  }
}

}  // namespace
}  // namespace treecache
