// Reference implementation of TC that recomputes every quantity from
// scratch each round (O(n) per step).
//
// It shares no incremental state with the efficient TreeCache: counters are
// plain arrays, cnt(P_t(u)) is summed by a fresh DFS per candidate, and
// H_t(u) is recomputed by direct recursion over the cached tree. The test
// suite replays identical traces through both implementations and requires
// bit-identical decisions, costs and cache states — this is the primary
// defense against bugs in the §6 data structures.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct NaiveTreeCacheConfig {
  std::uint64_t alpha = 2;
  std::size_t capacity = 16;
};

class NaiveTreeCache final : public OnlineAlgorithm {
 public:
  NaiveTreeCache(const Tree& tree, NaiveTreeCacheConfig config);

  [[nodiscard]] std::string_view name() const override { return "TC-naive"; }
  StepOutcome step(Request request) override;
  void reset() override;
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

  [[nodiscard]] std::uint64_t counter(NodeId v) const { return cnt_[v]; }

 private:
  StepOutcome handle_positive(NodeId v);
  StepOutcome handle_negative(NodeId v);
  void start_new_phase();

  /// Sums counters over P_t(u) (non-cached part of T(u)) and reports size.
  void measure_missing(NodeId u, std::uint64_t& cnt_out,
                       std::uint64_t& size_out) const;

  /// The (I, S) value of the best tree cap rooted at cached node x:
  /// I = cnt(H(x)) − |H(x)|·α, S = |H(x)|.
  [[nodiscard]] std::pair<std::int64_t, std::uint64_t> best_cap(NodeId x) const;

  /// Collects H(u) in preorder into changeset_.
  void collect_best_cap(NodeId u);

  const Tree* tree_;
  NaiveTreeCacheConfig config_;
  Subforest cache_;
  std::vector<std::uint64_t> cnt_;
  Cost cost_;
  std::vector<NodeId> changeset_;
  std::vector<NodeId> aborted_buf_;
};

}  // namespace treecache
