#include "core/node_state.hpp"

#include <algorithm>

namespace treecache {

NodeState::NodeState(std::size_t n)
    : cached_(n, 0), cnt_(n), pos_(n), neg_(n) {}

void NodeState::new_phase() {
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: stamps are ambiguous, really clear
    std::fill(cnt_.begin(), cnt_.end(), Counter{});
    std::fill(pos_.begin(), pos_.end(), PosEntry{});
    epoch_ = 1;
  }
}

void NodeState::reset() {
  std::fill(cached_.begin(), cached_.end(), std::uint8_t{0});
  std::fill(cnt_.begin(), cnt_.end(), Counter{});
  std::fill(pos_.begin(), pos_.end(), PosEntry{});
  std::fill(neg_.begin(), neg_.end(), NegEntry{});
  epoch_ = 1;
}

}  // namespace treecache
