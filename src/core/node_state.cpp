#include "core/node_state.hpp"

#include <algorithm>

#include "core/kernels.hpp"

namespace treecache {

NodeState::NodeState(std::size_t n)
    : cached_((n + 63) / 64, 0), cnt_(n), pos_(n), neg_(n) {}

void NodeState::clear_cached_range(std::uint32_t begin, std::uint32_t end) {
  TC_DCHECK(begin <= end && end <= size(), "rank range out of range");
  if (begin >= end) return;
  const std::uint32_t first = begin >> 6;
  const std::uint32_t last = (end - 1) >> 6;  // inclusive word index
  const std::uint64_t head = ~std::uint64_t{0} << (begin & 63);
  const std::uint64_t tail = ~std::uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first == last) {
    cached_[first] &= ~(head & tail);
    return;
  }
  cached_[first] &= ~head;
  std::fill(cached_.begin() + first + 1, cached_.begin() + last, 0);
  cached_[last] &= ~tail;
}

void NodeState::new_phase() {
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: stamps are ambiguous, really clear
    kernels::active().range_epoch_reset(cnt_.data(), pos_.data(), cnt_.size());
    epoch_ = 1;
  }
}

void NodeState::reset() {
  std::fill(cached_.begin(), cached_.end(), std::uint64_t{0});
  kernels::active().range_epoch_reset(cnt_.data(), pos_.data(), cnt_.size());
  std::fill(neg_.begin(), neg_.end(), NegEntry{});
  epoch_ = 1;
}

}  // namespace treecache
