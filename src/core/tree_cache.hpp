// TC — the online tree caching algorithm of Bienkowski et al. (SPAA 2017),
// with the efficient data structures of Section 6.
//
// The algorithm follows a rent-or-buy scheme organized in phases:
//  * every node carries a counter, zero at phase start, incremented whenever
//    the algorithm pays 1 for a request at the node, and reset whenever the
//    node is fetched or evicted;
//  * after each round TC looks for a valid changeset X that is *saturated*
//    (cnt(X) >= |X|·α) and *maximal* (no valid strict superset is saturated)
//    and applies it;
//  * if the selected fetch would exceed the capacity k_ONL, TC evicts the
//    whole cache and starts a new phase.
//
// Efficiency (Theorem 6.1): a round costs O(h(T) + max{h(T), deg(T)}·|X_t|)
// operations with O(|T|) extra memory, where X_t is the applied changeset.
//  * Positive side (§6.1): because the cache is descendant-closed, the only
//    fetch candidates after a positive request at v are P_t(u) — the
//    non-cached part of T(u) — for ancestors u of v. We maintain
//    cnt(P_t(u)) and |P_t(u)| for every non-cached u and scan the root→v
//    path for the first saturated candidate (which is then also maximal).
//  * Negative side (§6.2): eviction candidates are tree caps rooted at the
//    root u of the maximal cached tree containing v. TC maintains
//    H_t(u) = argmax val_t over tree caps rooted at u, where
//    val_t(A) = cnt_t(A) − |A|·α + |A|/(|T|+1). We store val in exact
//    integer form (I, S) = (cnt(H)−|H|·α, |H|); val(H(u)) > 0 ⇔ I(u) ≥ 0.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counter_table.hpp"
#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct TreeCacheConfig {
  /// Cost α ≥ 1 of fetching or evicting one node. (The paper assumes α even
  /// for analysis constants only; the algorithm accepts any α ≥ 1.)
  std::uint64_t alpha = 2;
  /// Cache capacity k_ONL ≥ 1.
  std::size_t capacity = 16;
};

/// Statistics of one phase, for the analysis-accounting experiments.
struct PhaseStats {
  std::uint64_t first_round = 1;  // first round of the phase
  std::uint64_t last_round = 0;   // 0 while the phase is open
  bool finished = false;          // ended with a capacity-triggered restart
  /// k_P: cache size at phase end. For a finished phase this includes the
  /// abandoned ("artificial") fetch, hence k_P >= k_ONL + 1 (Section 5).
  std::uint32_t k_end = 0;
  std::uint64_t fetches = 0;    // nodes fetched in the phase
  std::uint64_t evictions = 0;  // nodes evicted by negative changesets
};

class TreeCache final : public OnlineAlgorithm {
 public:
  TreeCache(const Tree& tree, TreeCacheConfig config);

  [[nodiscard]] std::string_view name() const override { return "TC"; }
  StepOutcome step(Request request) override;
  void step_batch(std::span<const Request> requests,
                  OutcomeSink& sink) override;
  void reset() override;
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

  [[nodiscard]] const Tree& tree() const { return *tree_; }
  [[nodiscard]] const TreeCacheConfig& config() const { return config_; }

  /// Current round number (number of step() calls since reset).
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// Per-node counter value (for tests and instrumentation).
  [[nodiscard]] std::uint64_t counter(NodeId v) const { return cnt_.get(v); }

  /// Completed and current phases, in order. The last entry is the open
  /// (possibly unfinished) phase.
  [[nodiscard]] const std::vector<PhaseStats>& phases() const {
    return phases_;
  }

  /// Cumulative count of elementary operations (path steps, aggregate
  /// updates, changeset-node visits); the empirical counterpart of
  /// Theorem 6.1's bound.
  [[nodiscard]] std::uint64_t work() const { return work_; }

  // --- white-box accessors used by the test suite ---------------------
  /// cnt_t(P_t(u)); meaningful only for non-cached u.
  [[nodiscard]] std::int64_t debug_pcnt(NodeId u) const { return pcnt_.get(u); }
  /// |P_t(u)|; meaningful only for non-cached u.
  [[nodiscard]] std::uint32_t debug_psize(NodeId u) const {
    return tree_->subtree_size(u) - cached_below_.get(u);
  }
  /// I(u) = cnt(H(u)) − |H(u)|·α; meaningful only for cached u.
  [[nodiscard]] std::int64_t debug_hI(NodeId u) const { return h_value_[u]; }
  /// S(u) = |H(u)|; meaningful only for cached u.
  [[nodiscard]] std::uint64_t debug_hS(NodeId u) const { return h_size_[u]; }

 private:
  StepOutcome handle_positive(NodeId v);
  StepOutcome handle_negative(NodeId v);

  /// Fetches X = P_t(u) (already collected in changeset_, preorder);
  /// cnt_x is the counter mass X carried before the resets.
  void apply_fetch(NodeId u, std::uint64_t cnt_x);
  /// Evicts H(u) (already collected in changeset_, preorder).
  void apply_evict(NodeId u);
  /// Evicts the whole cache and starts a new phase. `aborted_fetch_size` is
  /// the size of the fetch that did not fit (counted into k_P).
  void phase_restart(std::uint32_t aborted_fetch_size);

  /// Collects P_t(u) into changeset_ (preorder) and returns cnt(P_t(u)).
  std::uint64_t collect_missing(NodeId u);
  /// Collects H(u) into changeset_ (preorder) and returns cnt(H(u)).
  std::uint64_t collect_h_set(NodeId u);

  /// Propagates a +1 counter increment at cached node v through the (I, S)
  /// aggregates and returns the root of v's maximal cached tree.
  NodeId propagate_negative_increment(NodeId v);

  const Tree* tree_;
  TreeCacheConfig config_;

  Subforest cache_;
  CounterTable cnt_;

  // §6.1 positive index, valid for non-cached nodes (epoch = phase).
  EpochArray<std::int64_t> pcnt_;          // cnt_t(P_t(u))
  EpochArray<std::uint32_t> cached_below_; // |cached ∩ T(u)|

  // §6.2 negative index, valid for cached nodes.
  std::vector<std::int64_t> h_value_;  // I(u)
  std::vector<std::uint64_t> h_size_;  // S(u)

  // Lazily maintained superset of the maximal cached roots, used to empty
  // the cache in O(|cache|) at a phase restart.
  std::vector<NodeId> root_hints_;

  Cost cost_;
  std::uint64_t round_ = 0;
  std::uint64_t work_ = 0;
  std::vector<PhaseStats> phases_;

  // Scratch buffers (reused across rounds; exposed via StepOutcome::changed).
  std::vector<NodeId> path_;
  std::vector<NodeId> changeset_;
  std::vector<NodeId> aborted_buf_;
  std::vector<NodeId> stack_;
  std::vector<std::uint32_t> scratch_count_;
  std::vector<std::uint8_t> scratch_mark_;
};

}  // namespace treecache
