// TC — the online tree caching algorithm of Bienkowski et al. (SPAA 2017),
// with the efficient data structures of Section 6.
//
// The algorithm follows a rent-or-buy scheme organized in phases:
//  * every node carries a counter, zero at phase start, incremented whenever
//    the algorithm pays 1 for a request at the node, and reset whenever the
//    node is fetched or evicted;
//  * after each round TC looks for a valid changeset X that is *saturated*
//    (cnt(X) >= |X|·α) and *maximal* (no valid strict superset is saturated)
//    and applies it;
//  * if the selected fetch would exceed the capacity k_ONL, TC evicts the
//    whole cache and starts a new phase.
//
// Efficiency (Theorem 6.1): a round costs O(h(T) + max{h(T), deg(T)}·|X_t|)
// operations with O(|T|) extra memory, where X_t is the applied changeset.
//  * Positive side (§6.1): because the cache is descendant-closed, the only
//    fetch candidates after a positive request at v are P_t(u) — the
//    non-cached part of T(u) — for ancestors u of v. We maintain
//    cnt(P_t(u)) and |P_t(u)| for every non-cached u and scan the root→v
//    path for the first saturated candidate (which is then also maximal).
//  * Negative side (§6.2): eviction candidates are tree caps rooted at the
//    root u of the maximal cached tree containing v. TC maintains
//    H_t(u) = argmax val_t over tree caps rooted at u, where
//    val_t(A) = cnt_t(A) − |A|·α + |A|/(|T|+1). We store val in exact
//    integer form (I, S) = (cnt(H)−|H|·α, |H|); val(H(u)) > 0 ⇔ I(u) ≥ 0.
//
// Memory layout: all per-node state lives in a preorder-indexed NodeState
// SoA block (core/node_state.hpp). Requests are translated NodeId → rank
// once on entry, the whole round runs in rank coordinates (ancestor walks
// via Tree::preorder_parent, subtree collections as contiguous slice scans
// with subtree-skip jumps, child enumeration as first-child r+1 / next-
// sibling c+size(c)), and changesets are translated back rank → NodeId once
// on exit. A NodeId-keyed Subforest mirror is kept in step for the public
// cache() view; it is written only on changesets, never read on the hot
// path. The pre-SoA layout survives as LegacyTreeCache ("tc-legacy") for
// before/after benchmarking and differential testing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernels.hpp"
#include "core/node_state.hpp"
#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

struct TreeCacheConfig {
  /// Cost α ≥ 1 of fetching or evicting one node. (The paper assumes α even
  /// for analysis constants only; the algorithm accepts any α ≥ 1.)
  std::uint64_t alpha = 2;
  /// Cache capacity k_ONL ≥ 1.
  std::size_t capacity = 16;
};

/// Statistics of one phase, for the analysis-accounting experiments.
struct PhaseStats {
  std::uint64_t first_round = 1;  // first round of the phase
  std::uint64_t last_round = 0;   // 0 while the phase is open
  bool finished = false;          // ended with a capacity-triggered restart
  /// k_P: cache size at phase end. For a finished phase this includes the
  /// abandoned ("artificial") fetch, hence k_P >= k_ONL + 1 (Section 5).
  std::uint32_t k_end = 0;
  std::uint64_t fetches = 0;    // nodes fetched in the phase
  std::uint64_t evictions = 0;  // nodes evicted by negative changesets
};

class TreeCache final : public OnlineAlgorithm {
 public:
  TreeCache(const Tree& tree, TreeCacheConfig config);

  [[nodiscard]] std::string_view name() const override { return "TC"; }
  StepOutcome step(Request request) override;
  void step_batch(std::span<const Request> requests,
                  OutcomeSink& sink) override;
  void reset() override;
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

  [[nodiscard]] const Tree& tree() const { return *tree_; }
  [[nodiscard]] const TreeCacheConfig& config() const { return config_; }

  /// Current round number (number of step() calls since reset).
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// Per-node counter value (for tests and instrumentation).
  [[nodiscard]] std::uint64_t counter(NodeId v) const {
    return state_.counter(tree_->preorder_index(v));
  }

  /// Completed and current phases, in order. The last entry is the open
  /// (possibly unfinished) phase.
  [[nodiscard]] const std::vector<PhaseStats>& phases() const {
    return phases_;
  }

  /// Cumulative count of elementary operations (path steps, aggregate
  /// updates, changeset-node visits); the empirical counterpart of
  /// Theorem 6.1's bound.
  [[nodiscard]] std::uint64_t work() const { return work_; }

  // --- white-box accessors used by the test suite ---------------------
  // Keyed by NodeId for the tests' convenience; they translate to rank.
  /// cnt_t(P_t(u)); meaningful only for non-cached u.
  [[nodiscard]] std::int64_t debug_pcnt(NodeId u) const {
    return state_.pcnt(tree_->preorder_index(u));
  }
  /// |P_t(u)|; meaningful only for non-cached u.
  [[nodiscard]] std::uint32_t debug_psize(NodeId u) const {
    return tree_->subtree_size(u) -
           state_.cached_below(tree_->preorder_index(u));
  }
  /// I(u) = cnt(H(u)) − |H(u)|·α; meaningful only for cached u.
  [[nodiscard]] std::int64_t debug_hI(NodeId u) const {
    return state_.neg(tree_->preorder_index(u)).value;
  }
  /// S(u) = |H(u)|; meaningful only for cached u.
  [[nodiscard]] std::uint64_t debug_hS(NodeId u) const {
    return state_.neg(tree_->preorder_index(u)).size;
  }

 private:
  StepOutcome handle_positive(std::uint32_t rv);
  StepOutcome handle_negative(std::uint32_t rv);

  /// Fetches X = P_t(u) (already collected in rank_changeset_, ascending
  /// rank = preorder); cnt_x is the counter mass X carried before the
  /// resets. `ru` is the rank of u.
  void apply_fetch(std::uint32_t ru, std::uint64_t cnt_x);
  /// Evicts H(u) (already collected in rank_changeset_, ascending rank).
  void apply_evict(std::uint32_t ru);
  /// Evicts the whole cache and starts a new phase. `aborted_fetch_size` is
  /// the size of the fetch that did not fit (counted into k_P).
  void phase_restart(std::uint32_t aborted_fetch_size);

  /// Collects P_t(u) into rank_changeset_ (ascending rank) and returns
  /// cnt(P_t(u)). A slice scan over [ru, ru + |T(u)|) that jumps over
  /// cached subtrees.
  std::uint64_t collect_missing(std::uint32_t ru);
  /// Collects H(u) into rank_changeset_ (ascending rank) and returns
  /// cnt(H(u)). A slice scan that jumps over subtrees with I < 0.
  std::uint64_t collect_h_set(std::uint32_t ru);

  /// Propagates a +1 counter increment at cached rank rv through the (I, S)
  /// aggregates and returns the rank of v's maximal cached tree root.
  std::uint32_t propagate_negative_increment(std::uint32_t rv);

  /// Translates rank_changeset_ back to NodeIds in `out` and returns it.
  std::span<const NodeId> translate_changeset(std::vector<NodeId>& out) const;

  const Tree* tree_;
  TreeCacheConfig config_;
  /// Raw subtree-size stripe (tree_->preorder_sizes().data()), captured
  /// once so the scan loops index it directly instead of bouncing through
  /// an accessor call per rank.
  const std::uint32_t* sizes_;
  /// The kernel set every slice scan of this instance runs on, captured at
  /// construction (and re-captured on reset()) from kernels::active() —
  /// all sets are bit-identical by contract, so this only picks the speed.
  const kernels::Table* kernels_;

  /// NodeId-keyed mirror of the cached set, maintained for the public
  /// cache() view (AccountingSink reads its size every round); the hot path
  /// reads only state_.cached.
  Subforest cache_;
  /// All per-node hot state, preorder-indexed.
  NodeState state_;

  /// Lazily maintained superset of the maximal cached roots (ranks), used
  /// to empty the cache in O(|cache|) at a phase restart.
  std::vector<std::uint32_t> root_hints_;

  Cost cost_;
  std::uint64_t round_ = 0;
  std::uint64_t work_ = 0;
  std::vector<PhaseStats> phases_;

  // Scratch buffers (reused across rounds). rank_changeset_ holds the
  // round's changeset in rank space; changeset_/aborted_buf_ hold the
  // NodeId translations exposed via StepOutcome.
  std::vector<std::uint32_t> path_;
  std::vector<std::uint32_t> rank_changeset_;
  std::vector<NodeId> changeset_;
  std::vector<NodeId> aborted_buf_;
};

}  // namespace treecache
