// Exhaustive enumeration of valid changesets (small trees only).
//
// The specification checker and the property tests need the *raw* definition
// of TC ("a valid changeset X with cnt(X) ≥ |X|·α exists") rather than the
// derived candidate characterizations the efficient implementation relies
// on. On small trees we can afford to enumerate every subset of the
// candidate nodes and filter by validity.
#pragma once

#include <vector>

#include "tree/subforest.hpp"

namespace treecache {

/// All valid positive changesets for `cache`: non-empty X disjoint from the
/// cache with cache ∪ X descendant-closed. Each changeset is sorted by node
/// id. Requires at most `max_candidates` non-cached nodes (default 20;
/// throws CheckFailure beyond that — 2^20 subsets is the intended ceiling).
[[nodiscard]] std::vector<std::vector<NodeId>> enumerate_positive_changesets(
    const Subforest& cache, std::size_t max_candidates = 20);

/// All valid negative changesets for `cache`: non-empty X ⊆ cache with
/// cache \ X descendant-closed. Same representation and limits.
[[nodiscard]] std::vector<std::vector<NodeId>> enumerate_negative_changesets(
    const Subforest& cache, std::size_t max_candidates = 20);

}  // namespace treecache
