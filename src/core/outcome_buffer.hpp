// Flattened StepOutcome batches — the transport of the feedback hot path.
//
// A StepOutcome's spans point into the algorithm's scratch buffers and die
// at the next step. Crossing a thread boundary (worker → producer in the
// sharded engine) therefore needs a copy — but one heap-allocated copy per
// outcome (three vectors each) is exactly the per-outcome tax the batched
// observe_batch API exists to kill. An OutcomeBuffer instead appends every
// outcome into two flat arrays — fixed-size headers plus one shared NodeId
// arena — so a whole chunk of outcomes costs at most two amortized
// allocations, and a drained buffer is recycled wholesale via O(1) swap().
//
// views() materializes std::span views over the flat storage so consumers
// keep the plain `std::span<const StepOutcome>` interface of
// RequestSource::observe_batch. The views borrow this buffer: they are
// invalidated by append/clear/swap/destruction, like the live outcomes
// they stand in for.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/online_algorithm.hpp"

namespace treecache {

class OutcomeBuffer {
 public:
  /// Appends a deep copy of `outcome` (flattened, no per-outcome
  /// allocation beyond amortized vector growth).
  void append(const StepOutcome& outcome);

  /// StepOutcome views over the buffered outcomes, in append order. Valid
  /// until the next append/clear/swap or destruction.
  [[nodiscard]] std::span<const StepOutcome> views() const;

  [[nodiscard]] std::size_t size() const { return headers_.size(); }
  [[nodiscard]] bool empty() const { return headers_.empty(); }

  /// Forgets the contents but keeps the capacity — the recycling half of
  /// the ring-buffer protocol.
  void clear();

  /// O(1) exchange of contents (and capacity) — how a full worker-side
  /// buffer trades places with an empty producer-side one without copying.
  void swap(OutcomeBuffer& other) noexcept;

 private:
  /// Fixed-size per-outcome record; the three node lists live back to back
  /// in `nodes_`, so the counts here locate them.
  struct Header {
    std::uint32_t changed = 0;
    std::uint32_t also_evicted = 0;
    std::uint32_t aborted_fetch = 0;
    std::uint32_t aborted_fetch_size = 0;
    ChangeKind change = ChangeKind::kNone;
    bool paid = false;
  };

  std::vector<Header> headers_;
  std::vector<NodeId> nodes_;  // shared arena: changed | evicted | aborted
  mutable std::vector<StepOutcome> views_;
  mutable bool views_valid_ = false;
};

}  // namespace treecache
