// Branch-light, vectorizable primitives over the NodeState stripes.
//
// PR 7 turned every TC subtree operation into a contiguous rank-slice scan;
// this layer turns those scans into kernels: each primitive has a portable
// scalar reference and SSE2/AVX2 paths selected once per process by runtime
// CPU dispatch (a function-pointer table). The kernels are *bit-identical*
// by contract — same output ranks, same counter totals, same visit counts
// (the Theorem 6.1 work unit) — so the dispatched set is interchangeable
// with the scalar reference everywhere; tests/test_kernels.cpp enforces
// this differentially and the layout suite vs tc-legacy covers the
// end-to-end algorithm.
//
//  * scan_missing  — collect the uncached ranks of a rank slice honoring
//    descendant-closure skips (a cached node's whole subtree is skipped as
//    one jump). The cached set is a word-packed bitmap, so uncached runs
//    are found by bit scanning and emitted with SIMD iota stores; the
//    epoch-valid counter mass of the run is summed with masked 64-bit
//    adds instead of a byte-at-a-time walk.
//  * scan_h_candidates — collect H(u): the slice scan over the NegEntry
//    stripe that skips subtrees with I < 0, with block-wise sign tests
//    (movemask over the packed I values) fast-pathing all-included runs,
//    plus the same masked counter sum over the epoch-stamped stripe.
//  * range_epoch_reset — the O(n) stripe clear behind NodeState's
//    clear-on-wrap branch and full reset, as wide zero stores.
//  * emit_iota     — append [begin, end) as consecutive ranks (the phase
//    restart collects whole cached subtrees this way).
//
// Dispatch: the active table resolves once from CPUID on first use;
// TREECACHE_FORCE_KERNELS=scalar|sse2|avx2 overrides it (tests, CI A/B
// runs), and set_active() swaps it in-process (bench, differential
// suites). Swapping is not thread-safe against concurrently *running*
// scans — force a set before constructing algorithm instances.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/node_state.hpp"

namespace treecache::kernels {

/// Result of a collection scan: the epoch-valid counter mass of the
/// collected ranks plus the number of loop visits (pushes + subtree-skip
/// jumps) — kept bit-compatible with the scalar loops the kernels replace
/// so TreeCache::work() is identical under every dispatched set.
struct ScanResult {
  std::uint64_t total = 0;
  std::uint64_t visits = 0;
};

/// Stripe view of a missing-scan (collect_missing / missing_subtree):
/// rank-indexed word-packed cached bitmap, subtree-size stripe, and an
/// optional epoch-stamped counter stripe (null skips the counter sum).
struct MissingScan {
  const std::uint64_t* cached_bits = nullptr;
  const std::uint32_t* sizes = nullptr;
  const NodeState::Counter* cnt = nullptr;
  std::uint32_t epoch = 0;
};

/// Stripe view of an H-set scan (collect_h_set): NegEntry stripe holding
/// the packed (I, S) aggregates, subtree sizes, and the counter stripe.
struct HScan {
  const NodeState::NegEntry* neg = nullptr;
  const std::uint32_t* sizes = nullptr;
  const NodeState::Counter* cnt = nullptr;
  std::uint32_t epoch = 0;
};

/// Collected ranks land in a plain vector (appended, ascending).
using RankVec = std::vector<std::uint32_t>;

/// One kernel set. All entries are non-null in every table.
struct Table {
  std::string_view name;
  /// Appends the uncached ranks of [ru, end) to `out` (ascending), jumping
  /// over cached subtrees (r += sizes[r]); returns their epoch-valid
  /// counter mass and the visit count.
  ScanResult (*scan_missing)(const MissingScan& s, std::uint32_t ru,
                             std::uint32_t end, RankVec& out);
  /// Appends H(u) over [ru, end) to `out` (ascending): ru always, below it
  /// every rank whose NegEntry value is >= 0, skipping I < 0 subtrees as
  /// one jump; returns counter mass + visits.
  ScanResult (*scan_h_candidates)(const HScan& s, std::uint32_t ru,
                                  std::uint32_t end, RankVec& out);
  /// Hard-clears `n` Counter and PosEntry slots to the all-zero state (the
  /// epoch-wrap fallback and full reset).
  void (*range_epoch_reset)(NodeState::Counter* cnt, NodeState::PosEntry* pos,
                            std::size_t n);
  /// Appends begin, begin+1, ..., end-1 to `out`.
  void (*emit_iota)(RankVec& out, std::uint32_t begin, std::uint32_t end);
};

enum class Kind { kScalar, kSse2, kAvx2 };

/// True iff this build/CPU can run the kind (kScalar always can).
[[nodiscard]] bool supported(Kind kind);

/// The table for `kind`; requires supported(kind).
[[nodiscard]] const Table& table(Kind kind);

/// The dispatched table: best supported set, unless
/// TREECACHE_FORCE_KERNELS or set_active() overrode it.
[[nodiscard]] const Table& active();
[[nodiscard]] Kind active_kind();

/// Swaps the active table (bench / test hook); returns the previous kind.
/// Must not race running scans — set it before building instances.
Kind set_active(Kind kind);

/// Best kind the current CPU supports.
[[nodiscard]] Kind best_supported();

[[nodiscard]] std::string_view kind_name(Kind kind);

/// Parses "scalar" / "sse2" / "avx2" (the TREECACHE_FORCE_KERNELS values).
[[nodiscard]] std::optional<Kind> parse_kind(std::string_view name);

/// RAII force for tests and benches: activates `kind`, restores on exit.
class ForceGuard {
 public:
  explicit ForceGuard(Kind kind) : previous_(set_active(kind)) {}
  ~ForceGuard() { set_active(previous_); }
  ForceGuard(const ForceGuard&) = delete;
  ForceGuard& operator=(const ForceGuard&) = delete;

 private:
  Kind previous_;
};

}  // namespace treecache::kernels
