#include "core/trace.hpp"

#include <charconv>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace treecache {

TraceStats stats(const Trace& trace, std::size_t tree_size) {
  TraceStats s;
  std::vector<std::uint8_t> seen(tree_size, 0);
  for (const Request& r : trace) {
    TC_CHECK(r.node < tree_size, "request to node outside the tree");
    if (r.sign == Sign::kPositive) {
      ++s.positives;
    } else {
      ++s.negatives;
    }
    if (!seen[r.node]) {
      seen[r.node] = 1;
      ++s.distinct_nodes;
    }
  }
  return s;
}

void append_repeated(Trace& trace, Request request, std::size_t count) {
  trace.insert(trace.end(), count, request);
}

void save_trace(std::ostream& os, std::span<const Request> trace) {
  for (const Request& r : trace) {
    os << (r.sign == Sign::kPositive ? '+' : '-') << r.node << '\n';
  }
}

Request parse_request_line(const std::string& line, std::size_t line_number,
                           std::size_t tree_size) {
  const auto fail = [&](const std::string& what) -> CheckFailure {
    return CheckFailure("trace line " + std::to_string(line_number) + ": " +
                        what + " (got \"" + line + "\")");
  };
  if (line.empty() || (line[0] != '+' && line[0] != '-')) {
    throw fail("request must start with + or -");
  }
  const Sign sign = line[0] == '+' ? Sign::kPositive : Sign::kNegative;
  std::uint64_t node = 0;
  const char* const first = line.data() + 1;
  const char* const last = line.data() + line.size();
  const auto [end, ec] = std::from_chars(first, last, node);
  if (ec != std::errc{} || end != last || first == last) {
    throw fail("expected an unsigned node id after the sign");
  }
  if (node >= tree_size) {
    throw fail("node " + std::to_string(node) +
               " lies outside the tree (size " + std::to_string(tree_size) +
               ")");
  }
  return Request{static_cast<NodeId>(node), sign};
}

Trace load_trace(std::istream& is, std::size_t tree_size) {
  Trace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    trace.push_back(parse_request_line(line, line_number, tree_size));
  }
  return trace;
}

}  // namespace treecache
