#include "core/trace.hpp"

#include <istream>
#include <ostream>
#include <unordered_set>

#include "util/check.hpp"

namespace treecache {

TraceStats stats(const Trace& trace, std::size_t tree_size) {
  TraceStats s;
  std::vector<std::uint8_t> seen(tree_size, 0);
  for (const Request& r : trace) {
    TC_CHECK(r.node < tree_size, "request to node outside the tree");
    if (r.sign == Sign::kPositive) {
      ++s.positives;
    } else {
      ++s.negatives;
    }
    if (!seen[r.node]) {
      seen[r.node] = 1;
      ++s.distinct_nodes;
    }
  }
  return s;
}

void append_repeated(Trace& trace, Request request, std::size_t count) {
  trace.insert(trace.end(), count, request);
}

void save_trace(std::ostream& os, const Trace& trace) {
  for (const Request& r : trace) {
    os << (r.sign == Sign::kPositive ? '+' : '-') << r.node << '\n';
  }
}

Trace load_trace(std::istream& is, std::size_t tree_size) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TC_CHECK(line[0] == '+' || line[0] == '-', "request must start with +/-");
    const Sign sign = line[0] == '+' ? Sign::kPositive : Sign::kNegative;
    std::size_t pos = 0;
    const unsigned long node = std::stoul(line.substr(1), &pos);
    TC_CHECK(pos + 1 == line.size(), "trailing garbage in trace line");
    TC_CHECK(node < tree_size, "request to node outside the tree");
    trace.push_back(Request{static_cast<NodeId>(node), sign});
  }
  return trace;
}

}  // namespace treecache
