// Event-space instrumentation: fields, the open field F∞, and in/out
// periods (Section 5.1–5.2 of the paper).
//
// The analysis partitions the (node × round) event space of a phase into
// fields: the field F^t of a changeset X_t applied at time t contains, for
// every v ∈ X_t, the slots from v's previous state change to t. The tracker
// rebuilds this partition from the observed (request, outcome) stream and
// checks the accounting facts the proof rests on:
//
//   * Observation 5.2:  req(F) = size(F)·α for every field;
//   * Figure 3 / Lemma 5.11 accounting:  p_out = p_in + k_P per phase;
//   * Lemma 5.3:  TC(P) ≤ 2α·size(F) + req(F∞) + k_P·α.
//
// It also renders the Figure-2-style ASCII picture of the event space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/counter_table.hpp"
#include "core/online_algorithm.hpp"
#include "tree/tree.hpp"

namespace treecache {

/// One member (node) of a field with the first round of its window.
struct FieldMember {
  NodeId node;
  std::uint64_t from_round;  // window is [from_round, end_round]
  std::uint64_t requests;    // paid requests at this node inside the window
};

/// A field of the event-space partition.
struct Field {
  std::uint64_t end_round = 0;
  ChangeKind kind = ChangeKind::kNone;  // kFetch (positive) or kEvict
  bool artificial = false;  // the abandoned fetch closing a finished phase
  std::vector<FieldMember> members;
  std::uint64_t requests = 0;  // paid requests inside the field

  [[nodiscard]] std::size_t size() const { return members.size(); }
  [[nodiscard]] bool positive() const { return kind == ChangeKind::kFetch; }
};

/// Per-phase accounting summary.
struct PhaseFieldSummary {
  std::uint64_t first_round = 1;
  std::uint64_t last_round = 0;
  bool finished = false;
  std::uint64_t p_in = 0;    // # in periods  (members of negative fields)
  std::uint64_t p_out = 0;   // # out periods (members of positive fields)
  std::uint64_t k_end = 0;   // k_P (includes the artificial fetch)
  std::uint64_t open_field_requests = 0;  // req(F∞)
  std::uint64_t field_count = 0;
  std::uint64_t sum_field_sizes = 0;  // size(F)
  std::uint64_t tc_cost = 0;          // TC(P): service + reorganization
};

class FieldTracker {
 public:
  FieldTracker(const Tree& tree, std::uint64_t alpha);

  /// Feed round t's request and the algorithm's outcome, in order.
  /// Throws CheckFailure if Observation 5.2 fails for a closed field.
  void observe(Request request, const StepOutcome& outcome);

  /// Closes the open (unfinished) phase summary. Call once after the trace.
  void finalize();

  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }
  [[nodiscard]] const std::vector<PhaseFieldSummary>& phases() const {
    return phases_;
  }

  /// Verifies p_out == p_in + k_P for every closed phase (throws on
  /// failure). Valid after finalize().
  void verify_period_accounting() const;

  /// Verifies Lemma 5.3 for every closed phase (throws on failure).
  void verify_lemma_5_3(std::uint64_t alpha) const;

  /// ASCII event-space rendering (Figure 2): one row per node (root on
  /// top, order extends the tree partial order), one column per round.
  /// Fields are letters, paid requests are '+'/'-', empty slots '.'.
  [[nodiscard]] std::string render_event_space(
      std::uint64_t max_rounds = 160) const;

  /// The paid requests occupying a field's slots, as (node, round) pairs in
  /// round order. |result| == field.requests (Observation 5.2). Used by the
  /// shifting machinery of analysis/shifting.hpp.
  struct Slot {
    NodeId node;
    std::uint64_t round;
  };
  [[nodiscard]] std::vector<Slot> field_slots(const Field& field) const;

 private:
  void close_field(std::span<const NodeId> nodes, ChangeKind kind,
                   bool artificial);
  void close_phase(bool finished, std::uint64_t k_end);

  const Tree* tree_;
  std::uint64_t alpha_;

  std::uint64_t round_ = 0;
  std::uint64_t phase_begin_ = 0;  // begin(P): rounds of P are > phase_begin_
  std::uint64_t total_window_ = 0;
  std::size_t cached_count_ = 0;

  EpochArray<std::uint64_t> window_;       // paid requests since last change
  EpochArray<std::uint64_t> last_change_;  // round of last state change

  std::uint64_t p_in_ = 0;
  std::uint64_t p_out_ = 0;
  std::uint64_t sum_sizes_ = 0;
  std::uint64_t field_count_ = 0;
  std::uint64_t phase_cost_ = 0;

  std::vector<Field> fields_;
  std::vector<PhaseFieldSummary> phases_;

  struct LoggedRequest {
    std::uint64_t round;
    NodeId node;
    Sign sign;
  };
  std::vector<LoggedRequest> paid_log_;
  bool finalized_ = false;
};

}  // namespace treecache
