#include "core/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <string>

#include "util/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define TREECACHE_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace treecache::kernels {
namespace {

[[nodiscard]] inline bool bit_set(const std::uint64_t* bits, std::uint32_t r) {
  return ((bits[r >> 6] >> (r & 63)) & 1) != 0;
}

/// Length of the uncached run starting at r (bounded by end): scans the
/// word-packed bitmap one 64-bit word at a time — the "masked popcount"
/// shape — instead of testing one rank per iteration.
[[nodiscard]] inline std::uint32_t uncached_run(const std::uint64_t* bits,
                                                std::uint32_t r,
                                                std::uint32_t end) {
  std::uint32_t cur = r;
  while (cur < end) {
    const std::uint64_t word = bits[cur >> 6] >> (cur & 63);
    if (word != 0) {
      const auto tz = static_cast<std::uint32_t>(std::countr_zero(word));
      return std::min(cur + tz, end) - r;
    }
    cur = (cur | 63) + 1;  // run covers the rest of this word
  }
  return end - r;
}

[[nodiscard]] inline std::uint64_t sum_counters_scalar(
    const NodeState::Counter* c, std::uint32_t n, std::uint32_t epoch) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (c[i].stamp == epoch) total += c[i].value;
  }
  return total;
}

// ---- scalar reference table ------------------------------------------
// Loop shapes identical to the pre-kernel TreeCache scans: one visit per
// push or subtree-skip jump, counters masked by the epoch stamp.

ScanResult scan_missing_scalar(const MissingScan& s, std::uint32_t ru,
                               std::uint32_t end, RankVec& out) {
  ScanResult res;
  for (std::uint32_t r = ru; r < end;) {
    ++res.visits;
    if (bit_set(s.cached_bits, r)) {
      r += s.sizes[r];
      continue;
    }
    out.push_back(r);
    if (s.cnt != nullptr && s.cnt[r].stamp == s.epoch) {
      res.total += s.cnt[r].value;
    }
    ++r;
  }
  return res;
}

ScanResult scan_h_scalar(const HScan& s, std::uint32_t ru, std::uint32_t end,
                         RankVec& out) {
  ScanResult res;
  for (std::uint32_t r = ru; r < end;) {
    ++res.visits;
    if (r != ru && s.neg[r].value < 0) {
      r += s.sizes[r];
      continue;
    }
    out.push_back(r);
    if (s.cnt[r].stamp == s.epoch) res.total += s.cnt[r].value;
    ++r;
  }
  return res;
}

void range_epoch_reset_scalar(NodeState::Counter* cnt, NodeState::PosEntry* pos,
                              std::size_t n) {
  std::fill(cnt, cnt + n, NodeState::Counter{});
  std::fill(pos, pos + n, NodeState::PosEntry{});
}

void emit_iota_scalar(RankVec& out, std::uint32_t begin, std::uint32_t end) {
  for (std::uint32_t r = begin; r < end; ++r) out.push_back(r);
}

constexpr Table kScalarTable{
    .name = "scalar",
    .scan_missing = scan_missing_scalar,
    .scan_h_candidates = scan_h_scalar,
    .range_epoch_reset = range_epoch_reset_scalar,
    .emit_iota = emit_iota_scalar,
};

#if defined(TREECACHE_KERNELS_X86)

// ---- SSE2 table ------------------------------------------------------
// Run-based scans off the word-packed bitmap, 4-wide iota stores for the
// collected ranks, movemask sign tests over packed NegEntry values.

__attribute__((target("sse2"))) void emit_iota_sse2(RankVec& out,
                                                    std::uint32_t begin,
                                                    std::uint32_t end) {
  if (begin >= end) return;
  const std::uint32_t n = end - begin;
  const std::size_t old = out.size();
  out.resize(old + n);
  std::uint32_t* dst = out.data() + old;
  __m128i v = _mm_add_epi32(_mm_set1_epi32(static_cast<int>(begin)),
                            _mm_setr_epi32(0, 1, 2, 3));
  const __m128i step = _mm_set1_epi32(4);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), v);
    v = _mm_add_epi32(v, step);
  }
  for (; i < n; ++i) dst[i] = begin + i;
}

__attribute__((target("sse2"))) ScanResult scan_missing_sse2(
    const MissingScan& s, std::uint32_t ru, std::uint32_t end, RankVec& out) {
  ScanResult res;
  std::uint32_t r = ru;
  while (r < end) {
    if (bit_set(s.cached_bits, r)) {
      r += s.sizes[r];
      ++res.visits;
      continue;
    }
    const std::uint32_t run = uncached_run(s.cached_bits, r, end);
    emit_iota_sse2(out, r, r + run);
    if (s.cnt != nullptr) res.total += sum_counters_scalar(s.cnt + r, run,
                                                           s.epoch);
    res.visits += run;
    r += run;
  }
  return res;
}

__attribute__((target("sse2"))) ScanResult scan_h_sse2(const HScan& s,
                                                       std::uint32_t ru,
                                                       std::uint32_t end,
                                                       RankVec& out) {
  ScanResult res;
  if (ru >= end) return res;
  // The root of the scan is always included.
  out.push_back(ru);
  if (s.cnt[ru].stamp == s.epoch) res.total += s.cnt[ru].value;
  ++res.visits;
  std::uint32_t r = ru + 1;
  while (r < end) {
    if (r + 2 <= end) {
      // Sign test of the packed I values: each NegEntry is one 128-bit
      // load whose qword0 is I, so movemask_pd bit 0 is its sign.
      const auto* base = reinterpret_cast<const double*>(s.neg + r);
      const int m0 = _mm_movemask_pd(_mm_loadu_pd(base));
      const int m1 = _mm_movemask_pd(_mm_loadu_pd(base + 2));
      if (((m0 | m1) & 1) == 0) {  // both I >= 0: include both ranks
        emit_iota_sse2(out, r, r + 2);
        res.total += sum_counters_scalar(s.cnt + r, 2, s.epoch);
        res.visits += 2;
        r += 2;
        continue;
      }
    }
    ++res.visits;
    if (s.neg[r].value < 0) {
      r += s.sizes[r];
      continue;
    }
    out.push_back(r);
    if (s.cnt[r].stamp == s.epoch) res.total += s.cnt[r].value;
    ++r;
  }
  return res;
}

__attribute__((target("sse2"))) void range_epoch_reset_sse2(
    NodeState::Counter* cnt, NodeState::PosEntry* pos, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  auto* c = reinterpret_cast<__m128i*>(cnt);
  auto* p = reinterpret_cast<__m128i*>(pos);
  for (std::size_t i = 0; i < n; ++i) {  // one 16-byte slot per store
    _mm_storeu_si128(c + i, zero);
    _mm_storeu_si128(p + i, zero);
  }
}

constexpr Table kSse2Table{
    .name = "sse2",
    .scan_missing = scan_missing_sse2,
    .scan_h_candidates = scan_h_sse2,
    .range_epoch_reset = range_epoch_reset_sse2,
    .emit_iota = emit_iota_sse2,
};

// ---- AVX2 table ------------------------------------------------------
// 8-wide iota stores, masked 64-bit counter sums (stamp compare broadcast
// over the value qwords), 4-entry sign blocks on the H scan.

__attribute__((target("avx2"))) void emit_iota_avx2(RankVec& out,
                                                    std::uint32_t begin,
                                                    std::uint32_t end) {
  if (begin >= end) return;
  const std::uint32_t n = end - begin;
  const std::size_t old = out.size();
  out.resize(old + n);
  std::uint32_t* dst = out.data() + old;
  __m256i v = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(begin)),
                               _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const __m256i step = _mm256_set1_epi32(8);
  std::uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    v = _mm256_add_epi32(v, step);
  }
  for (; i < n; ++i) dst[i] = begin + i;
}

/// Epoch-masked sum over a Counter run: each 256-bit load covers two
/// 16-byte slots; the stamp lanes (dword 2 of each half) are compared to
/// the epoch, the compare mask is broadcast over the half, and only the
/// value qwords survive the AND — two masked 64-bit adds per load.
__attribute__((target("avx2"))) std::uint64_t sum_counters_avx2(
    const NodeState::Counter* c, std::uint32_t n, std::uint32_t epoch) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i epochv = _mm256_set1_epi32(static_cast<int>(epoch));
  const __m256i valmask = _mm256_set_epi64x(0, -1, 0, -1);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    const __m256i eq = _mm256_cmpeq_epi32(v, epochv);
    const __m256i mask = _mm256_shuffle_epi32(eq, _MM_SHUFFLE(2, 2, 2, 2));
    acc = _mm256_add_epi64(
        acc, _mm256_and_si256(_mm256_and_si256(v, mask), valmask));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[2];
  for (; i < n; ++i) {
    if (c[i].stamp == epoch) total += c[i].value;
  }
  return total;
}

__attribute__((target("avx2"))) ScanResult scan_missing_avx2(
    const MissingScan& s, std::uint32_t ru, std::uint32_t end, RankVec& out) {
  ScanResult res;
  std::uint32_t r = ru;
  while (r < end) {
    if (bit_set(s.cached_bits, r)) {
      r += s.sizes[r];
      ++res.visits;
      continue;
    }
    const std::uint32_t run = uncached_run(s.cached_bits, r, end);
    emit_iota_avx2(out, r, r + run);
    if (s.cnt != nullptr) res.total += sum_counters_avx2(s.cnt + r, run,
                                                         s.epoch);
    res.visits += run;
    r += run;
  }
  return res;
}

__attribute__((target("avx2"))) ScanResult scan_h_avx2(const HScan& s,
                                                       std::uint32_t ru,
                                                       std::uint32_t end,
                                                       RankVec& out) {
  ScanResult res;
  if (ru >= end) return res;
  out.push_back(ru);
  if (s.cnt[ru].stamp == s.epoch) res.total += s.cnt[ru].value;
  ++res.visits;
  std::uint32_t r = ru + 1;
  while (r < end) {
    if (r + 4 <= end) {
      // Four NegEntries = two 256-bit loads; the I values sit in qwords
      // 0 and 2 of each, so movemask_pd bits 0 and 2 carry their signs.
      const auto* base = reinterpret_cast<const double*>(s.neg + r);
      const int m0 = _mm256_movemask_pd(_mm256_loadu_pd(base));
      const int m1 = _mm256_movemask_pd(_mm256_loadu_pd(base + 4));
      if (((m0 | m1) & 0x5) == 0) {  // all four I >= 0: include the block
        emit_iota_avx2(out, r, r + 4);
        res.total += sum_counters_avx2(s.cnt + r, 4, s.epoch);
        res.visits += 4;
        r += 4;
        continue;
      }
    }
    ++res.visits;
    if (s.neg[r].value < 0) {
      r += s.sizes[r];
      continue;
    }
    out.push_back(r);
    if (s.cnt[r].stamp == s.epoch) res.total += s.cnt[r].value;
    ++r;
  }
  return res;
}

__attribute__((target("avx2"))) void range_epoch_reset_avx2(
    NodeState::Counter* cnt, NodeState::PosEntry* pos, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  auto* c = reinterpret_cast<__m256i*>(cnt);
  auto* p = reinterpret_cast<__m256i*>(pos);
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {  // two 16-byte slots per 256-bit store
    _mm256_storeu_si256(c + i / 2, zero);
    _mm256_storeu_si256(p + i / 2, zero);
  }
  for (; i < n; ++i) {
    cnt[i] = NodeState::Counter{};
    pos[i] = NodeState::PosEntry{};
  }
}

constexpr Table kAvx2Table{
    .name = "avx2",
    .scan_missing = scan_missing_avx2,
    .scan_h_candidates = scan_h_avx2,
    .range_epoch_reset = range_epoch_reset_avx2,
    .emit_iota = emit_iota_avx2,
};

#endif  // TREECACHE_KERNELS_X86

/// The dispatched table. Resolved once on first use (CPUID + the
/// TREECACHE_FORCE_KERNELS override); set_active() swaps it afterwards.
std::atomic<const Table*> g_active{nullptr};

const Table* resolve_default() {
  Kind kind = best_supported();
  if (const char* env = std::getenv("TREECACHE_FORCE_KERNELS");
      env != nullptr && *env != '\0') {
    const auto forced = parse_kind(env);
    TC_CHECK(forced.has_value(),
             "TREECACHE_FORCE_KERNELS=" + std::string(env) +
                 " is not scalar|sse2|avx2");
    TC_CHECK(supported(*forced),
             "TREECACHE_FORCE_KERNELS=" + std::string(env) +
                 " is not supported by this build/CPU");
    kind = *forced;
  }
  return &table(kind);
}

}  // namespace

bool supported(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return true;
#if defined(TREECACHE_KERNELS_X86)
    case Kind::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Kind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Kind::kSse2:
    case Kind::kAvx2:
      return false;
#endif
  }
  return false;
}

const Table& table(Kind kind) {
  TC_CHECK(supported(kind), "kernel set " + std::string(kind_name(kind)) +
                                " is not supported by this build/CPU");
  switch (kind) {
    case Kind::kScalar:
      return kScalarTable;
#if defined(TREECACHE_KERNELS_X86)
    case Kind::kSse2:
      return kSse2Table;
    case Kind::kAvx2:
      return kAvx2Table;
#else
    default:
      break;
#endif
  }
  return kScalarTable;
}

Kind best_supported() {
  if (supported(Kind::kAvx2)) return Kind::kAvx2;
  if (supported(Kind::kSse2)) return Kind::kSse2;
  return Kind::kScalar;
}

const Table& active() {
  const Table* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first calls resolve the same table.
    t = resolve_default();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Kind active_kind() {
  const Table* t = &active();
#if defined(TREECACHE_KERNELS_X86)
  if (t == &kAvx2Table) return Kind::kAvx2;
  if (t == &kSse2Table) return Kind::kSse2;
#endif
  (void)t;
  return Kind::kScalar;
}

Kind set_active(Kind kind) {
  const Kind previous = active_kind();
  g_active.store(&table(kind), std::memory_order_release);
  return previous;
}

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kSse2:
      return "sse2";
    case Kind::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<Kind> parse_kind(std::string_view name) {
  if (name == "scalar") return Kind::kScalar;
  if (name == "sse2") return Kind::kSse2;
  if (name == "avx2") return Kind::kAvx2;
  return std::nullopt;
}

}  // namespace treecache::kernels
