#include "core/request_source.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace treecache {

std::size_t TraceSource::fill(std::span<Request> buffer) {
  const std::size_t n =
      std::min(buffer.size(), view_.size() - position_);
  std::copy_n(view_.begin() + static_cast<std::ptrdiff_t>(position_), n,
              buffer.begin());
  position_ += n;
  return n;
}

FileTraceSource::FileTraceSource(std::string path, std::size_t tree_size)
    : path_(std::move(path)), tree_size_(tree_size), in_(path_) {
  TC_CHECK(static_cast<bool>(in_), "cannot open " + path_);
}

std::size_t FileTraceSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  std::string line;
  while (n < buffer.size() && std::getline(in_, line)) {
    ++line_number_;
    if (line.empty()) continue;
    buffer[n++] = parse_request_line(line, line_number_, tree_size_);
  }
  // A read error must not masquerade as a clean end of stream — the run
  // would silently report costs for a truncated trace.
  TC_CHECK(!in_.bad(), "read error in " + path_ + " near line " +
                           std::to_string(line_number_));
  return n;
}

void FileTraceSource::reset() {
  in_.clear();
  in_.seekg(0);
  TC_CHECK(static_cast<bool>(in_), "cannot rewind " + path_);
  line_number_ = 0;
}

Trace materialize(RequestSource& source, std::size_t max_requests) {
  Trace trace;
  if (const auto hint = source.size_hint(); hint.has_value()) {
    trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(*hint, max_requests)));
  }
  Request buffer[1024];
  while (trace.size() < max_requests) {
    const std::size_t want =
        std::min<std::size_t>(std::size(buffer), max_requests - trace.size());
    const std::size_t n = source.fill({buffer, want});
    if (n == 0) break;
    trace.insert(trace.end(), buffer, buffer + n);
  }
  return trace;
}

}  // namespace treecache
