#include "core/request_source.hpp"

#include <algorithm>

// Only the .cpp sees the plan type: core headers stay engine-free, and the
// whole library is one object target, so there is no link-level cycle.
#include "engine/shard_plan.hpp"
#include "util/check.hpp"

namespace treecache {

std::vector<std::unique_ptr<RequestSource>> RequestSource::split(
    const engine::ShardPlan& plan) const {
  // Closed loops need genuine per-shard mirrors (the stream itself depends
  // on per-shard feedback); a generic filter over a replay cannot provide
  // them, so such sources must override split() or stay single-shard.
  if (is_closed_loop()) return {};
  std::vector<std::unique_ptr<RequestSource>> out;
  out.reserve(plan.num_shards());
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    auto replay = fork();
    if (replay == nullptr) return {};
    out.push_back(
        std::make_unique<ShardFilterSource>(std::move(replay), plan, s));
  }
  return out;
}

ShardFilterSource::ShardFilterSource(std::unique_ptr<RequestSource> inner,
                                     const engine::ShardPlan& plan,
                                     std::size_t shard)
    : inner_(std::move(inner)), plan_(&plan), shard_(shard) {
  TC_CHECK(inner_ != nullptr, "shard filter needs a source to filter");
  TC_CHECK(shard_ < plan.num_shards(), "shard index outside the plan");
  inner_->reset();  // always a from-the-start replay, whatever fork() did
}

std::size_t ShardFilterSource::fill(std::span<Request> buffer) {
  scratch_.resize(buffer.size());
  std::size_t n = 0;
  while (n < buffer.size()) {
    // Pull at most the space left: the filtered yield can only shrink, so
    // owned requests always fit without carry-over between calls.
    const std::size_t got =
        inner_->fill({scratch_.data(), buffer.size() - n});
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      if (plan_->shard_of(scratch_[i].node) == shard_) {
        buffer[n++] = plan_->to_local(scratch_[i]);
      }
    }
  }
  return n;
}

std::unique_ptr<RequestSource> ShardFilterSource::fork() const {
  auto replay = inner_->fork();
  if (replay == nullptr) return nullptr;
  return std::make_unique<ShardFilterSource>(std::move(replay), *plan_,
                                             shard_);
}

std::size_t TraceSource::fill(std::span<Request> buffer) {
  const std::size_t n =
      std::min(buffer.size(), view_.size() - position_);
  std::copy_n(view_.begin() + static_cast<std::ptrdiff_t>(position_), n,
              buffer.begin());
  position_ += n;
  return n;
}

std::unique_ptr<RequestSource> TraceSource::fork() const {
  // Owning sources view their own storage; forking one must copy the trace
  // or the fork would dangle into this instance.
  if (!owned_.empty() && view_.data() == owned_.data()) {
    return std::make_unique<TraceSource>(owned_);
  }
  return std::make_unique<TraceSource>(view_);
}

FileTraceSource::FileTraceSource(std::string path, std::size_t tree_size)
    : path_(std::move(path)), tree_size_(tree_size), in_(path_) {
  TC_CHECK(static_cast<bool>(in_), "cannot open " + path_);
}

std::size_t FileTraceSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  std::string line;
  while (n < buffer.size() && std::getline(in_, line)) {
    ++line_number_;
    if (line.empty()) continue;
    buffer[n++] = parse_request_line(line, line_number_, tree_size_);
  }
  // A read error must not masquerade as a clean end of stream — the run
  // would silently report costs for a truncated trace.
  TC_CHECK(!in_.bad(), "read error in " + path_ + " near line " +
                           std::to_string(line_number_));
  return n;
}

void FileTraceSource::reset() {
  in_.clear();
  in_.seekg(0);
  TC_CHECK(static_cast<bool>(in_), "cannot rewind " + path_);
  line_number_ = 0;
}

Trace materialize(RequestSource& source, std::size_t max_requests) {
  Trace trace;
  if (const auto hint = source.size_hint(); hint.has_value()) {
    trace.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(*hint, max_requests)));
  }
  Request buffer[1024];
  while (trace.size() < max_requests) {
    const std::size_t want =
        std::min<std::size_t>(std::size(buffer), max_requests - trace.size());
    const std::size_t n = source.fill({buffer, want});
    if (n == 0) break;
    trace.insert(trace.end(), buffer, buffer + n);
  }
  return trace;
}

}  // namespace treecache
