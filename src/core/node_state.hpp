// Preorder-indexed struct-of-arrays hot state for TC.
//
// All per-node algorithm state lives here, in ONE block indexed by preorder
// rank instead of construction-order NodeId. Two properties make this the
// right layout for the Section 6 data structures:
//  * every subtree T(v) is the contiguous rank slice [r, r + |T(v)|), so
//    collect_missing / collect_h_set / phase_restart become linear scans
//    with O(1) subtree-skip jumps (`r += subtree_size`) instead of pointer-
//    chasing DFS over a CSR adjacency;
//  * the fields one ancestor-walk step reads together are packed into one
//    16-byte entry each (PosEntry for the positive walk, NegEntry for the
//    negative walk), so a step touches one or two cache lines instead of a
//    miss per parallel array.
//
// The cached flags are a word-packed bitmap (64 ranks per std::uint64_t),
// not a byte array: the missing-scan kernels (core/kernels.hpp) find
// uncached runs by bit scanning a word at a time instead of walking bytes,
// and a whole-subtree clear is a handful of masked word stores. The raw
// stripe accessors (cached_bits / counters / pos_entries / neg_entries)
// exist for those kernels — they expose the exact memory the scans read.
//
// Counters and the positive index carry phase-reset semantics: each slot is
// stamped with the epoch it was last written in and reads from older epochs
// observe zero, giving the O(1) bulk reset that Theorem 6.1 needs (a real
// O(|T|) clear per phase restart would break the work bound — the tree can
// be much larger than the cache). One shared epoch suffices because TC only
// ever resets the counters and the positive index together. The negative
// index needs no stamps: it is only read for cached nodes and re-initialized
// bottom-up whenever a node is fetched.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace treecache {

class NodeState {
 public:
  /// §6.1 positive index entry, valid for non-cached ranks: cnt_t(P_t(u))
  /// and |cached ∩ T(u)| (so |P_t(u)| = subtree_size − cached_below).
  struct PosEntry {
    std::int64_t pcnt = 0;
    std::uint32_t cached_below = 0;
    std::uint32_t stamp = 0;
  };
  static_assert(sizeof(PosEntry) == 16);

  /// §6.2 negative index entry, valid for cached ranks:
  /// I(u) = cnt(H(u)) − |H(u)|·α and S(u) = |H(u)|.
  struct NegEntry {
    std::int64_t value = 0;
    std::uint64_t size = 0;
  };
  static_assert(sizeof(NegEntry) == 16);

  /// Per-node counter with phase-reset stamp. Public so the scan kernels
  /// can sum epoch-valid values straight off the stripe.
  struct Counter {
    std::uint64_t value = 0;
    std::uint32_t stamp = 0;
  };
  static_assert(sizeof(Counter) == 16);  // 4 bytes tail padding

  explicit NodeState(std::size_t n);

  [[nodiscard]] std::size_t size() const { return cnt_.size(); }

  // --- cached flag (word-packed bitmap) ---------------------------------
  [[nodiscard]] bool cached(std::uint32_t r) const {
    TC_DCHECK(r < size(), "rank out of range");
    return ((cached_[r >> 6] >> (r & 63)) & 1) != 0;
  }
  void set_cached(std::uint32_t r) {
    TC_DCHECK(r < size(), "rank out of range");
    cached_[r >> 6] |= std::uint64_t{1} << (r & 63);
  }
  void clear_cached(std::uint32_t r) {
    TC_DCHECK(r < size(), "rank out of range");
    cached_[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
  }
  /// Clears the cached bits of the whole rank slice [begin, end): three
  /// masked word stores plus a word fill, not a per-rank loop.
  void clear_cached_range(std::uint32_t begin, std::uint32_t end);

  // --- per-node counter (phase-reset semantics) -------------------------
  [[nodiscard]] std::uint64_t counter(std::uint32_t r) const {
    TC_DCHECK(r < cnt_.size(), "rank out of range");
    const Counter& c = cnt_[r];
    return c.stamp == epoch_ ? c.value : 0;
  }
  /// Returns the new counter value.
  std::uint64_t bump_counter(std::uint32_t r) {
    TC_DCHECK(r < cnt_.size(), "rank out of range");
    Counter& c = cnt_[r];
    if (c.stamp != epoch_) {
      c.value = 0;
      c.stamp = epoch_;
    }
    return ++c.value;
  }
  void reset_counter(std::uint32_t r) {
    TC_DCHECK(r < cnt_.size(), "rank out of range");
    cnt_[r] = Counter{.value = 0, .stamp = epoch_};
  }

  // --- positive index ---------------------------------------------------
  /// Mutable freshen-on-touch access: a slot last written in an older phase
  /// is reset to zeros before it is handed out, so callers read and write
  /// plain fields without epoch logic of their own.
  [[nodiscard]] PosEntry& pos(std::uint32_t r) {
    TC_DCHECK(r < pos_.size(), "rank out of range");
    PosEntry& e = pos_[r];
    if (e.stamp != epoch_) {
      e = PosEntry{.pcnt = 0, .cached_below = 0, .stamp = epoch_};
    }
    return e;
  }
  [[nodiscard]] std::int64_t pcnt(std::uint32_t r) const {
    TC_DCHECK(r < pos_.size(), "rank out of range");
    const PosEntry& e = pos_[r];
    return e.stamp == epoch_ ? e.pcnt : 0;
  }
  [[nodiscard]] std::uint32_t cached_below(std::uint32_t r) const {
    TC_DCHECK(r < pos_.size(), "rank out of range");
    const PosEntry& e = pos_[r];
    return e.stamp == epoch_ ? e.cached_below : 0;
  }

  // --- negative index ---------------------------------------------------
  [[nodiscard]] NegEntry& neg(std::uint32_t r) {
    TC_DCHECK(r < neg_.size(), "rank out of range");
    return neg_[r];
  }
  [[nodiscard]] const NegEntry& neg(std::uint32_t r) const {
    TC_DCHECK(r < neg_.size(), "rank out of range");
    return neg_[r];
  }

  // --- raw stripes for the scan kernels (core/kernels.hpp) --------------
  [[nodiscard]] const std::uint64_t* cached_bits() const {
    return cached_.data();
  }
  [[nodiscard]] const Counter* counters() const { return cnt_.data(); }
  [[nodiscard]] const PosEntry* pos_entries() const { return pos_.data(); }
  [[nodiscard]] const NegEntry* neg_entries() const { return neg_.data(); }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// New phase: counters and the positive index back to zero in O(1).
  void new_phase();

  /// Full reset to the freshly-constructed state (also clears the cached
  /// flags and the negative index; O(n)).
  void reset();

  // --- test seam --------------------------------------------------------
  /// Forces the epoch counter so tests can exercise the clear-on-wrap
  /// branch of new_phase() without 2^32 phase restarts.
  void debug_set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint32_t debug_epoch() const { return epoch_; }

 private:
  std::vector<std::uint64_t> cached_;  // bitmap, (n + 63) / 64 words
  std::vector<Counter> cnt_;
  std::vector<PosEntry> pos_;
  std::vector<NegEntry> neg_;
  std::uint32_t epoch_ = 1;
};

}  // namespace treecache
