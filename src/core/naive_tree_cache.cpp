#include "core/naive_tree_cache.hpp"

#include <algorithm>
#include <memory>

#include "sim/registry.hpp"

namespace treecache {

NaiveTreeCache::NaiveTreeCache(const Tree& tree, NaiveTreeCacheConfig config)
    : tree_(&tree),
      config_(config),
      cache_(tree),
      cnt_(tree.size(), 0) {
  TC_CHECK(config_.alpha >= 1, "alpha must be a positive integer");
  TC_CHECK(config_.capacity >= 1, "capacity must be at least 1");
}

void NaiveTreeCache::reset() {
  cache_.clear();
  std::fill(cnt_.begin(), cnt_.end(), std::uint64_t{0});
  cost_ = Cost{};
  changeset_.clear();
}

StepOutcome NaiveTreeCache::step(Request request) {
  TC_CHECK(request.node < tree_->size(), "request to node outside the tree");
  return request.sign == Sign::kPositive ? handle_positive(request.node)
                                         : handle_negative(request.node);
}

void NaiveTreeCache::measure_missing(NodeId u, std::uint64_t& cnt_out,
                                     std::uint64_t& size_out) const {
  cnt_out = 0;
  size_out = 0;
  std::vector<NodeId> stack{u};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    cnt_out += cnt_[x];
    ++size_out;
    for (const NodeId c : tree_->children(x)) {
      if (!cache_.contains(c)) stack.push_back(c);
    }
  }
}

std::pair<std::int64_t, std::uint64_t> NaiveTreeCache::best_cap(
    NodeId x) const {
  std::int64_t i_value = static_cast<std::int64_t>(cnt_[x]) -
                         static_cast<std::int64_t>(config_.alpha);
  std::uint64_t s_value = 1;
  for (const NodeId c : tree_->children(x)) {
    const auto [ci, cs] = best_cap(c);
    if (ci >= 0) {
      i_value += ci;
      s_value += cs;
    }
  }
  return {i_value, s_value};
}

void NaiveTreeCache::collect_best_cap(NodeId u) {
  changeset_.clear();
  std::vector<NodeId> stack{u};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    changeset_.push_back(x);
    for (const NodeId c : tree_->children(x)) {
      if (best_cap(c).first >= 0) stack.push_back(c);
    }
  }
}

StepOutcome NaiveTreeCache::handle_positive(NodeId v) {
  if (cache_.contains(v)) return {};
  StepOutcome out;
  out.paid = true;
  ++cost_.service;
  ++cnt_[v];

  const std::vector<NodeId> path = tree_->path_to_root(v);
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const NodeId u = *it;
    std::uint64_t cnt_p = 0;
    std::uint64_t size_p = 0;
    measure_missing(u, cnt_p, size_p);
    if (cnt_p >= size_p * config_.alpha) {
      if (cache_.size() + size_p > config_.capacity) {
        // Record the abandoned fetch set, evict everything, new phase.
        aborted_buf_.clear();
        std::vector<NodeId> stack{u};
        while (!stack.empty()) {
          const NodeId x = stack.back();
          stack.pop_back();
          aborted_buf_.push_back(x);
          for (const NodeId c : tree_->children(x)) {
            if (!cache_.contains(c)) stack.push_back(c);
          }
        }
        changeset_ = cache_.as_vector();
        std::sort(changeset_.begin(), changeset_.end(),
                  [&](NodeId a, NodeId b) {
                    return tree_->depth(a) < tree_->depth(b);
                  });
        for (const NodeId x : changeset_) cache_.erase(x);
        cost_.reorg += config_.alpha * changeset_.size();
        start_new_phase();
        out.change = ChangeKind::kPhaseRestart;
        out.aborted_fetch_size = static_cast<std::uint32_t>(size_p);
        out.aborted_fetch = aborted_buf_;
        out.changed = changeset_;
      } else {
        changeset_.clear();
        std::vector<NodeId> stack{u};
        while (!stack.empty()) {
          const NodeId x = stack.back();
          stack.pop_back();
          changeset_.push_back(x);
          for (const NodeId c : tree_->children(x)) {
            if (!cache_.contains(c)) stack.push_back(c);
          }
        }
        for (auto xit = changeset_.rbegin(); xit != changeset_.rend(); ++xit) {
          cache_.insert(*xit);
          cnt_[*xit] = 0;
        }
        cost_.reorg += config_.alpha * changeset_.size();
        out.change = ChangeKind::kFetch;
        out.changed = changeset_;
      }
      return out;
    }
  }
  return out;
}

StepOutcome NaiveTreeCache::handle_negative(NodeId v) {
  if (!cache_.contains(v)) return {};
  StepOutcome out;
  out.paid = true;
  ++cost_.service;
  ++cnt_[v];

  const NodeId u = cache_.cached_tree_root(v);
  if (best_cap(u).first >= 0) {
    collect_best_cap(u);
    for (const NodeId x : changeset_) {
      cache_.erase(x);
      cnt_[x] = 0;
    }
    cost_.reorg += config_.alpha * changeset_.size();
    out.change = ChangeKind::kEvict;
    out.changed = changeset_;
  }
  return out;
}

void NaiveTreeCache::start_new_phase() {
  std::fill(cnt_.begin(), cnt_.end(), std::uint64_t{0});
}

namespace {
const sim::AlgorithmRegistrar kRegisterNaive{
    "naive",
    "reference TC implementation: re-scans all changesets every round",
    [](const Tree& tree, const sim::Params& p) {
      return std::make_unique<NaiveTreeCache>(
          tree, NaiveTreeCacheConfig{.alpha = p.alpha(),
                                     .capacity = p.capacity()});
    }};
}  // namespace

}  // namespace treecache
