// Pull-based request streams — the input side of the online problem.
//
// A RequestSource produces the request sequence one round at a time, so a
// driver can run billion-request experiments in O(1) memory instead of
// materializing a Trace up front. Sources come in two flavours:
//
//   open loop    the stream is fixed in advance (trace files, random
//                generators, combinators over them). Feedback is ignored.
//   closed loop  the next request depends on how the algorithm reacted —
//                e.g. the FIB router source only emits a request when a
//                packet misses the switch cache. Such sources rebuild the
//                cache state they need from the StepOutcome feedback the
//                driver hands to observe_batch() after stepping.
//
// The driver contract (sim::run_source) is strict alternation per batch:
//   n = source.fill(buffer)       // n requests that do NOT depend on
//                                 // outcomes the source has not seen yet
//   step the n requests           // alg.step / step_batch
//   source.observe_batch(...)     // the n outcomes, in stream order,
//                                 // delivered before the next fill()
// fill() returning 0 ends the run. A closed-loop source must therefore
// only batch requests whose values are already determined (e.g. the
// remainder of an α-chunk) and return before generating an event that
// reads its mirrored cache state. The feedback granularity is free: the
// driver may deliver the n outcomes as one batch or as n batches of one
// (sim::AccountingSink does the latter) — a source must not care, which
// is why observe_batch is the ONLY feedback virtual and observe() is a
// non-virtual convenience forwarding a single outcome through it.
//
// next() is a convenience wrapper over fill() for one-request-at-a-time
// consumers; implementations only ever override fill(), which amortizes
// the virtual dispatch over whole batches on the hot path.
#pragma once

#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/online_algorithm.hpp"
#include "core/trace.hpp"

namespace treecache::engine {
class ShardPlan;  // engine/shard_plan.hpp
}  // namespace treecache::engine

namespace treecache {

/// How RequestSource::split produced its per-shard parts — queryable so an
/// engine can tell a genuine shared-generation split from the generic
/// fork-per-shard fallback, which replays the FULL stream once per shard
/// (an S× generation tax that silently eats the parallel speedup).
enum class SplitKind : std::uint8_t {
  /// split() returns empty: the source only runs single-shard.
  kUnsplittable,
  /// Each part independently replays the whole stream behind a filter
  /// (the default fork()-based split). Correct, but generation cost
  /// scales with the shard count.
  kReplicated,
  /// The parts share one generation pass over the stream (e.g. the FIB
  /// router's producer-fed mirrors). Shared-generation parts must all be
  /// consumed from a single thread — the engine's producer.
  kShared,
};

class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Writes up to buffer.size() upcoming requests into `buffer` and returns
  /// how many were produced. 0 means the stream is exhausted (and every
  /// later call must keep returning 0 until reset()). A closed-loop source
  /// must only return requests that do not depend on outcomes it has not
  /// observed yet — returning less than a full buffer is always legal.
  [[nodiscard]] virtual std::size_t fill(std::span<Request> buffer) = 0;

  /// Rewinds to the first request: the source replays the identical stream
  /// (closed-loop sources additionally forget all observed feedback).
  virtual void reset() = 0;

  /// Exact number of requests remaining, when the source can know it
  /// without running ahead (trace files and feedback-dependent streams
  /// return nullopt). Used to pre-size buffers, never for termination.
  [[nodiscard]] virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }

  /// THE feedback virtual — the one customization point on the feedback
  /// hot path. The driver hands over stepped outcomes in stream order,
  /// chunked at its convenience (a whole step_batch chunk, or one at a
  /// time via observe() below), always before the fill() that could
  /// depend on them. The outcomes' spans are only valid for the duration
  /// of the call. Open-loop sources ignore it (the default).
  virtual void observe_batch(std::span<const StepOutcome> /*outcomes*/) {}

  /// Single-outcome convenience over observe_batch — a thin non-virtual
  /// forwarder kept for per-round drivers and tests. Do NOT override (it
  /// is not virtual any more): implement observe_batch instead.
  void observe(const StepOutcome& outcome) {
    observe_batch(std::span<const StepOutcome>(&outcome, 1));
  }

  /// True when the stream depends on observe_batch() feedback. Drivers
  /// that cannot deliver outcomes in global stream order (the sharded
  /// engine with more than one shard) must run such a source through
  /// split(): each per-shard mirror then receives its own outcomes in
  /// per-shard order. A closed-loop source that cannot split is refused.
  [[nodiscard]] virtual bool is_closed_loop() const { return false; }

  /// A fresh instance that replays this source's stream from the very
  /// beginning (independent of how far `this` has been consumed), or
  /// nullptr when the source cannot duplicate itself. The default split()
  /// below is built on this hook, so implementing fork() makes an
  /// open-loop source shardable for free.
  [[nodiscard]] virtual std::unique_ptr<RequestSource> fork() const {
    return nullptr;
  }

  /// Splits the stream into one source per shard of `plan` (which must
  /// outlive the returned sources). Shard s's source emits exactly the
  /// subsequence of this stream owned by shard s — in order, and remapped
  /// into shard-LOCAL node ids (ShardPlan::to_local) — always replaying
  /// from the start of the stream. Concatenating the per-shard streams
  /// therefore yields a permutation of the unsharded stream (a stable
  /// partition), and reset() on a part replays it identically.
  ///
  /// Open-loop sources split generically via fork(): each shard gets an
  /// independent replay of the whole stream behind a filter, so no state
  /// is shared between the parts and they may be consumed from different
  /// threads (SplitKind::kReplicated — generation cost scales with the
  /// shard count). Closed-loop sources must override this with genuine
  /// per-shard mirrors (e.g. fib::RouterSource, whose mirrors share one
  /// event producer — SplitKind::kShared) whose observe_batch() accepts
  /// shard-local outcomes; the default refuses them. An empty result
  /// means "cannot split".
  ///
  /// Shared-generation contract (kShared): the parts pull events from one
  /// producer, so ALL of them must be consumed from a single thread —
  /// interleaving fill() calls across parts is fine (the engine's
  /// producer does exactly that), concurrent calls are not — and reset()
  /// on any part rewinds the shared stream, so resetting one part mid-run
  /// invalidates its siblings.
  [[nodiscard]] virtual std::vector<std::unique_ptr<RequestSource>> split(
      const engine::ShardPlan& plan) const;

  /// What kind of parts split() would produce (advisory — diagnostics and
  /// scheduling hints, not a correctness contract). The default matches
  /// the generic split() above: open-loop sources replicate via fork(),
  /// closed-loop sources cannot split. Sources overriding split() should
  /// override this to match.
  [[nodiscard]] virtual SplitKind split_kind() const {
    return is_closed_loop() ? SplitKind::kUnsplittable
                            : SplitKind::kReplicated;
  }

  /// Single-request convenience over fill().
  [[nodiscard]] std::optional<Request> next() {
    Request r;
    return fill({&r, 1}) == 1 ? std::optional<Request>(r) : std::nullopt;
  }
};

/// Open-loop per-shard view used by the default RequestSource::split: owns
/// an independent replay of the whole stream and keeps only the requests
/// owned by one shard, remapped to shard-local ids. `plan` must outlive
/// the source.
class ShardFilterSource final : public RequestSource {
 public:
  ShardFilterSource(std::unique_ptr<RequestSource> inner,
                    const engine::ShardPlan& plan, std::size_t shard);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override { inner_->reset(); }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  std::unique_ptr<RequestSource> inner_;
  const engine::ShardPlan* plan_;
  std::size_t shard_;
  std::vector<Request> scratch_;
};

/// Adapts an in-memory request sequence (owning a Trace, or borrowing a
/// span whose storage must outlive the source).
class TraceSource final : public RequestSource {
 public:
  explicit TraceSource(Trace trace)
      : owned_(std::move(trace)), view_(owned_) {}
  explicit TraceSource(std::span<const Request> view) : view_(view) {}

  TraceSource(const TraceSource&) = delete;
  TraceSource& operator=(const TraceSource&) = delete;

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override { position_ = 0; }
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return view_.size() - position_;
  }
  /// An owning source copies its trace; a borrowing one borrows the same
  /// storage (which must then outlive the fork too).
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  Trace owned_;
  std::span<const Request> view_;
  std::size_t position_ = 0;
};

/// Streams a save_trace-format file from disk without slurping it, so
/// `treecache run --trace` handles traces far larger than memory. Parse
/// errors carry the 1-based line number (see parse_request_line).
class FileTraceSource final : public RequestSource {
 public:
  /// Opens `path`; throws CheckFailure if it cannot be opened. Requests to
  /// nodes >= tree_size are rejected while streaming.
  FileTraceSource(std::string path, std::size_t tree_size);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override {
    return std::make_unique<FileTraceSource>(path_, tree_size_);
  }

 private:
  std::string path_;
  std::size_t tree_size_;
  std::ifstream in_;
  std::size_t line_number_ = 0;
};

inline constexpr std::size_t kMaterializeAll =
    std::numeric_limits<std::size_t>::max();

/// Drains up to `max_requests` requests into a Trace — the bridge from the
/// streaming world to offline evaluators, trace files and span-based tests.
[[nodiscard]] Trace materialize(RequestSource& source,
                                std::size_t max_requests = kMaterializeAll);

}  // namespace treecache
