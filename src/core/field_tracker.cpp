#include "core/field_tracker.hpp"

#include <algorithm>

namespace treecache {

FieldTracker::FieldTracker(const Tree& tree, std::uint64_t alpha)
    : tree_(&tree),
      alpha_(alpha),
      window_(tree.size(), 0),
      last_change_(tree.size(), 0) {
  TC_CHECK(alpha_ >= 1, "alpha must be positive");
}

void FieldTracker::observe(Request request, const StepOutcome& outcome) {
  TC_CHECK(!finalized_, "observe() after finalize()");
  ++round_;
  const NodeId v = request.node;
  if (outcome.paid) {
    window_.add(v, 1);
    ++total_window_;
    paid_log_.push_back(LoggedRequest{round_, v, request.sign});
    ++phase_cost_;
  }
  phase_cost_ += alpha_ * outcome.changed.size();

  switch (outcome.change) {
    case ChangeKind::kNone:
      break;
    case ChangeKind::kFetch:
      close_field(outcome.changed, ChangeKind::kFetch, /*artificial=*/false);
      cached_count_ += outcome.changed.size();
      break;
    case ChangeKind::kEvict:
      close_field(outcome.changed, ChangeKind::kEvict, /*artificial=*/false);
      cached_count_ -= outcome.changed.size();
      break;
    case ChangeKind::kPhaseRestart: {
      // The analysis treats the fetch that did not fit as performed at
      // end(P) (an "artificial" field) and then evicts everything; the
      // final eviction creates no field — the slots before it are F∞.
      close_field(outcome.aborted_fetch, ChangeKind::kFetch,
                  /*artificial=*/true);
      const std::uint64_t k_end =
          outcome.changed.size() + outcome.aborted_fetch.size();
      close_phase(/*finished=*/true, k_end);
      cached_count_ = 0;
      break;
    }
  }
}

void FieldTracker::close_field(std::span<const NodeId> nodes, ChangeKind kind,
                               bool artificial) {
  Field field;
  field.end_round = round_;
  field.kind = kind;
  field.artificial = artificial;
  field.members.reserve(nodes.size());
  for (const NodeId v : nodes) {
    const std::uint64_t last = std::max(last_change_.get(v), phase_begin_);
    field.members.push_back(FieldMember{v, last + 1, window_.get(v)});
    field.requests += window_.get(v);
  }
  // Observation 5.2: the triggering requests sum to exactly size·α.
  TC_CHECK(field.requests == nodes.size() * alpha_,
           "Observation 5.2 violated: req(F) != size(F)*alpha");
  total_window_ -= field.requests;
  for (const NodeId v : nodes) {
    window_.set(v, 0);
    last_change_.set(v, round_);
  }
  if (field.positive()) {
    p_out_ += nodes.size();
  } else {
    p_in_ += nodes.size();
  }
  sum_sizes_ += nodes.size();
  ++field_count_;
  fields_.push_back(std::move(field));
}

void FieldTracker::close_phase(bool finished, std::uint64_t k_end) {
  PhaseFieldSummary summary;
  summary.first_round = phase_begin_ + 1;
  summary.last_round = round_;
  summary.finished = finished;
  summary.p_in = p_in_;
  summary.p_out = p_out_;
  summary.k_end = k_end;
  summary.open_field_requests = total_window_;
  summary.field_count = field_count_;
  summary.sum_field_sizes = sum_sizes_;
  summary.tc_cost = phase_cost_;
  phases_.push_back(summary);

  p_in_ = p_out_ = 0;
  sum_sizes_ = 0;
  field_count_ = 0;
  total_window_ = 0;
  phase_cost_ = 0;
  window_.reset_all();
  last_change_.reset_all();
  phase_begin_ = round_;
}

void FieldTracker::finalize() {
  TC_CHECK(!finalized_, "finalize() called twice");
  close_phase(/*finished=*/false, cached_count_);
  finalized_ = true;
}

void FieldTracker::verify_period_accounting() const {
  TC_CHECK(finalized_, "finalize() first");
  for (const PhaseFieldSummary& phase : phases_) {
    TC_CHECK(phase.p_out == phase.p_in + phase.k_end,
             "period accounting violated: p_out != p_in + k_P");
  }
}

void FieldTracker::verify_lemma_5_3(std::uint64_t alpha) const {
  TC_CHECK(finalized_, "finalize() first");
  for (const PhaseFieldSummary& phase : phases_) {
    const std::uint64_t bound = 2 * alpha * phase.sum_field_sizes +
                                phase.open_field_requests +
                                phase.k_end * alpha;
    TC_CHECK(phase.tc_cost <= bound,
             "Lemma 5.3 violated: TC(P) exceeds the field bound");
  }
}

std::vector<FieldTracker::Slot> FieldTracker::field_slots(
    const Field& field) const {
  // Member windows are disjoint across fields for the same node, so a
  // simple filter over the paid-request log reconstructs the field.
  std::vector<Slot> slots;
  slots.reserve(field.requests);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> window(
      tree_->size(), {1, 0});  // empty window by default
  for (const FieldMember& m : field.members) {
    window[m.node] = {m.from_round, field.end_round};
  }
  for (const LoggedRequest& req : paid_log_) {
    const auto [lo, hi] = window[req.node];
    if (req.round >= lo && req.round <= hi) {
      slots.push_back(Slot{req.node, req.round});
    }
  }
  TC_CHECK(slots.size() == field.requests,
           "reconstructed slots disagree with the field's request count");
  return slots;
}

std::string FieldTracker::render_event_space(std::uint64_t max_rounds) const {
  const std::uint64_t rounds = std::min<std::uint64_t>(round_, max_rounds);
  const std::size_t n = tree_->size();

  // Row order: root on top, extending the tree partial order (by depth,
  // ties by preorder position).
  std::vector<NodeId> order(tree_->preorder().begin(),
                            tree_->preorder().end());
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return tree_->depth(a) < tree_->depth(b);
  });
  std::vector<std::size_t> row_of(n);
  for (std::size_t i = 0; i < order.size(); ++i) row_of[order[i]] = i;

  std::vector<std::string> grid(n, std::string(rounds, '.'));
  // Paint field windows first, then overlay the requests.
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    const char tag = fields_[f].artificial
                         ? '*'
                         : static_cast<char>('A' + static_cast<char>(f % 26));
    for (const FieldMember& m : fields_[f].members) {
      const std::uint64_t hi = std::min(fields_[f].end_round, rounds);
      for (std::uint64_t r = m.from_round; r <= hi; ++r) {
        grid[row_of[m.node]][r - 1] = tag;
      }
    }
  }
  for (const LoggedRequest& req : paid_log_) {
    if (req.round > rounds) continue;
    grid[row_of[req.node]][req.round - 1] =
        req.sign == Sign::kPositive ? '+' : '-';
  }

  std::string out;
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::string label = "node " + std::to_string(order[i]);
    label.resize(10, ' ');
    out += label + "|" + grid[i] + "|\n";
  }
  return out;
}

}  // namespace treecache
