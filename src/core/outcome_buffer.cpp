#include "core/outcome_buffer.hpp"

namespace treecache {

void OutcomeBuffer::append(const StepOutcome& outcome) {
  views_valid_ = false;
  headers_.push_back(Header{
      .changed = static_cast<std::uint32_t>(outcome.changed.size()),
      .also_evicted = static_cast<std::uint32_t>(outcome.also_evicted.size()),
      .aborted_fetch = static_cast<std::uint32_t>(outcome.aborted_fetch.size()),
      .aborted_fetch_size = outcome.aborted_fetch_size,
      .change = outcome.change,
      .paid = outcome.paid});
  nodes_.insert(nodes_.end(), outcome.changed.begin(), outcome.changed.end());
  nodes_.insert(nodes_.end(), outcome.also_evicted.begin(),
                outcome.also_evicted.end());
  nodes_.insert(nodes_.end(), outcome.aborted_fetch.begin(),
                outcome.aborted_fetch.end());
}

std::span<const StepOutcome> OutcomeBuffer::views() const {
  if (!views_valid_) {
    views_.clear();
    views_.reserve(headers_.size());
    const NodeId* cursor = nodes_.data();
    for (const Header& h : headers_) {
      const std::span<const NodeId> changed(cursor, h.changed);
      cursor += h.changed;
      const std::span<const NodeId> also_evicted(cursor, h.also_evicted);
      cursor += h.also_evicted;
      const std::span<const NodeId> aborted_fetch(cursor, h.aborted_fetch);
      cursor += h.aborted_fetch;
      views_.push_back(StepOutcome{.paid = h.paid,
                                   .change = h.change,
                                   .changed = changed,
                                   .also_evicted = also_evicted,
                                   .aborted_fetch = aborted_fetch,
                                   .aborted_fetch_size = h.aborted_fetch_size});
    }
    views_valid_ = true;
  }
  return views_;
}

void OutcomeBuffer::clear() {
  headers_.clear();
  nodes_.clear();
  views_.clear();
  views_valid_ = false;
}

void OutcomeBuffer::swap(OutcomeBuffer& other) noexcept {
  headers_.swap(other.headers_);
  nodes_.swap(other.nodes_);
  views_.swap(other.views_);
  std::swap(views_valid_, other.views_valid_);
}

}  // namespace treecache
