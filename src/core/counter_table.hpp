// Epoch-stamped per-node value arrays.
//
// TC resets *all* counters when a new phase starts. A phase restart already
// pays Θ(|cache|) for the eviction, but the tree may be much larger than the
// cache, so an O(|T|) memset per restart would break the Theorem 6.1 bound.
// EpochArray gives O(1) bulk reset: each slot carries the epoch it was last
// written in, and reads from older epochs observe the default value.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace treecache {

template <typename T>
class EpochArray {
 public:
  explicit EpochArray(std::size_t n, T default_value = T{})
      : value_(n, default_value),
        stamp_(n, 0),
        default_(default_value) {}

  [[nodiscard]] std::size_t size() const { return value_.size(); }

  [[nodiscard]] T get(std::size_t i) const {
    TC_DCHECK(i < value_.size(), "index out of range");
    return stamp_[i] == epoch_ ? value_[i] : default_;
  }

  void set(std::size_t i, T v) {
    TC_DCHECK(i < value_.size(), "index out of range");
    value_[i] = v;
    stamp_[i] = epoch_;
  }

  /// get(i) + delta, stored back; returns the new value.
  T add(std::size_t i, T delta) {
    const T next = static_cast<T>(get(i) + delta);
    set(i, next);
    return next;
  }

  /// O(1) reset of every slot to the default value.
  void reset_all() {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stamps are ambiguous, really clear
      std::fill(stamp_.begin(), stamp_.end(), std::uint32_t{0});
      std::fill(value_.begin(), value_.end(), default_);
      epoch_ = 1;
    }
  }

  /// Test seam: forces the epoch counter so the clear-on-wrap branch of
  /// reset_all() is reachable without 2^32 calls.
  void debug_set_epoch(std::uint32_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint32_t debug_epoch() const { return epoch_; }

 private:
  std::vector<T> value_;
  std::vector<std::uint32_t> stamp_;
  T default_;
  std::uint32_t epoch_ = 1;
};

/// Per-node request counters with phase-reset semantics (§4 of the paper):
/// zero at phase start, incremented when the algorithm pays for a request at
/// the node, reset to zero when the node is fetched or evicted.
class CounterTable {
 public:
  explicit CounterTable(std::size_t n) : counters_(n) {}

  [[nodiscard]] std::uint64_t get(std::size_t v) const {
    return counters_.get(v);
  }

  /// Returns the new counter value.
  std::uint64_t increment(std::size_t v) { return counters_.add(v, 1); }

  void reset(std::size_t v) { counters_.set(v, 0); }

  /// New phase: all counters back to zero in O(1).
  void reset_all() { counters_.reset_all(); }

 private:
  EpochArray<std::uint64_t> counters_;
};

}  // namespace treecache
