// Request traces (inputs of the online problem) and helpers.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/request.hpp"

namespace treecache {

/// An input instance: one request per round, rounds numbered from 1.
using Trace = std::vector<Request>;

/// A trace with marked update chunks: each chunk is a [begin, end) index
/// range of α consecutive negative requests to one node, modelling a single
/// rule update (Appendix B). Chunks are disjoint and ordered.
struct ChunkedTrace {
  Trace trace;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
};

struct TraceStats {
  std::size_t positives = 0;
  std::size_t negatives = 0;
  std::size_t distinct_nodes = 0;
};

/// Counts request kinds and distinct requested nodes.
[[nodiscard]] TraceStats stats(const Trace& trace, std::size_t tree_size);

/// Appends `count` copies of a request (e.g. the α-chunk of negative
/// requests modelling one rule update, Appendix B).
void append_repeated(Trace& trace, Request request, std::size_t count);

/// Serializes to a text stream, one request per line: "+12" / "-3".
void save_trace(std::ostream& os, std::span<const Request> trace);

/// Parses one non-empty line of the save_trace format ("+12" / "-3").
/// Throws CheckFailure naming the 1-based `line_number` (and echoing the
/// offending line) on malformed input or node ids >= tree_size.
[[nodiscard]] Request parse_request_line(const std::string& line,
                                         std::size_t line_number,
                                         std::size_t tree_size);

/// Parses the save_trace format, streaming line by line (empty lines are
/// skipped). Errors carry the line number via parse_request_line.
[[nodiscard]] Trace load_trace(std::istream& is, std::size_t tree_size);

}  // namespace treecache
