// Requests of the online tree caching problem.
#pragma once

#include <cstdint>
#include <ostream>

#include "tree/tree.hpp"

namespace treecache {

/// A request is positive ("access this item") or negative ("this item was
/// updated"). A positive request costs 1 iff the node is NOT cached; a
/// negative request costs 1 iff the node IS cached.
enum class Sign : std::uint8_t { kPositive = 0, kNegative = 1 };

struct Request {
  NodeId node = 0;
  Sign sign = Sign::kPositive;

  friend bool operator==(const Request&, const Request&) = default;
};

inline Request positive(NodeId v) { return Request{v, Sign::kPositive}; }
inline Request negative(NodeId v) { return Request{v, Sign::kNegative}; }

inline std::ostream& operator<<(std::ostream& os, const Request& r) {
  return os << (r.sign == Sign::kPositive ? '+' : '-') << r.node;
}

}  // namespace treecache
