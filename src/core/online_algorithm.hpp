// Common interface for online tree-caching algorithms.
#pragma once

#include <span>
#include <string_view>

#include "core/cost.hpp"
#include "core/request.hpp"
#include "tree/subforest.hpp"

namespace treecache {

/// What kind of cache change a round triggered.
enum class ChangeKind : std::uint8_t {
  kNone = 0,
  kFetch,         // a positive changeset was fetched
  kEvict,         // a negative changeset was evicted
  kPhaseRestart,  // a fetch would exceed capacity: cache emptied, new phase
};

/// Per-round result. `changed` points into an internal buffer of the
/// algorithm and is valid only until the next step()/reset() call.
struct StepOutcome {
  bool paid = false;                  // 1 was paid to serve the request
  ChangeKind change = ChangeKind::kNone;
  std::span<const NodeId> changed{};  // fetched or evicted nodes (per kind)
  // Nodes evicted in the same round to make room for a kFetch (used by
  // capacity-eviction baselines like LRU; TC never mixes directions in one
  // round). Applied before `changed` when replaying outcomes.
  std::span<const NodeId> also_evicted{};
  // For kPhaseRestart: the saturated fetch set that did not fit and its
  // size. The paper's analysis treats it as an "artificial fetch" when
  // measuring k_P (Section 5); instrumentation uses it for field accounting.
  std::span<const NodeId> aborted_fetch{};
  std::uint32_t aborted_fetch_size = 0;

  [[nodiscard]] std::uint64_t service_cost() const { return paid ? 1 : 0; }
};

/// Receives the (request, outcome) pairs of a batched step in stream order.
/// Outcome spans obey the same lifetime rule as step()'s return value —
/// valid only until the next round is stepped — so a sink must consume them
/// immediately (aggregate, copy out), never store them.
class OutcomeSink {
 public:
  virtual ~OutcomeSink() = default;
  virtual void on_outcome(const Request& request,
                          const StepOutcome& outcome) = 0;
};

/// An online algorithm maintains a subforest cache and serves one request per
/// round, paying the bypassing-model costs. Implementations must keep
/// cache() a valid subforest after every step.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Serves the round-t request and applies at most one cache change.
  virtual StepOutcome step(Request request) = 0;

  /// Serves a whole batch in stream order, handing each outcome to `sink`
  /// right after its round. Semantically identical to calling step() in a
  /// loop (tests enforce this for every registered algorithm); overrides
  /// exist so the driver's hot path amortizes the virtual dispatch over a
  /// batch instead of paying it per round.
  virtual void step_batch(std::span<const Request> requests,
                          OutcomeSink& sink) {
    for (const Request& request : requests) {
      sink.on_outcome(request, step(request));
    }
  }

  /// Restores the initial (empty-cache) state and zeroes the cost.
  virtual void reset() = 0;

  [[nodiscard]] virtual const Subforest& cache() const = 0;
  [[nodiscard]] virtual const Cost& cost() const = 0;
};

}  // namespace treecache
