#include "core/changeset_enum.hpp"

namespace treecache {

namespace {
std::vector<std::vector<NodeId>> enumerate_subsets(
    const Subforest& cache, const std::vector<NodeId>& candidates,
    bool positive, std::size_t max_candidates) {
  TC_CHECK(candidates.size() <= max_candidates,
           "too many candidate nodes for exhaustive enumeration");
  std::vector<std::vector<NodeId>> result;
  std::vector<NodeId> subset;
  const std::size_t m = candidates.size();
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << m); ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (std::uint64_t{1} << i)) subset.push_back(candidates[i]);
    }
    const bool valid = positive ? cache.is_valid_positive_changeset(subset)
                                : cache.is_valid_negative_changeset(subset);
    if (valid) result.push_back(subset);
  }
  return result;
}
}  // namespace

std::vector<std::vector<NodeId>> enumerate_positive_changesets(
    const Subforest& cache, std::size_t max_candidates) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < cache.tree().size(); ++v) {
    if (!cache.contains(v)) candidates.push_back(v);
  }
  return enumerate_subsets(cache, candidates, /*positive=*/true,
                           max_candidates);
}

std::vector<std::vector<NodeId>> enumerate_negative_changesets(
    const Subforest& cache, std::size_t max_candidates) {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < cache.tree().size(); ++v) {
    if (cache.contains(v)) candidates.push_back(v);
  }
  return enumerate_subsets(cache, candidates, /*positive=*/false,
                           max_candidates);
}

}  // namespace treecache
