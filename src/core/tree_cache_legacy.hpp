// TC with its per-node state in construction-order (NodeId-keyed) arrays —
// the pre-SoA layout, frozen when core/tree_cache moved onto the
// preorder-indexed core/node_state block.
//
// This is NOT dead code kept out of nostalgia: it is the layout-comparison
// baseline. It runs the identical §6 algorithm over the identical abstract
// state, but spreads that state across six separate NodeId-keyed arrays
// (Subforest flags, CounterTable value+stamp, two EpochArrays for the
// positive index, two plain vectors for the negative index), so every
// ancestor-walk step is a cache-miss chain and every subtree collection
// jumps across non-contiguous ids. Registered as "tc-legacy":
//  * bench_throughput and `treecache throughput --algos tc,tc-legacy`
//    measure the SoA win as an apples-to-apples before/after row pair;
//  * every registry-driven differential suite replays it against "tc",
//    which pins the refactored TreeCache to the old behavior bit for bit.
// Do not optimize this file; its value is staying what PR 6 shipped.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counter_table.hpp"
#include "core/online_algorithm.hpp"
#include "core/tree_cache.hpp"  // PhaseStats
#include "tree/tree.hpp"

namespace treecache {

struct LegacyTreeCacheConfig {
  /// Cost α ≥ 1 of fetching or evicting one node. (The paper assumes α even
  /// for analysis constants only; the algorithm accepts any α ≥ 1.)
  std::uint64_t alpha = 2;
  /// Cache capacity k_ONL ≥ 1.
  std::size_t capacity = 16;
};

class LegacyTreeCache final : public OnlineAlgorithm {
 public:
  LegacyTreeCache(const Tree& tree, LegacyTreeCacheConfig config);

  [[nodiscard]] std::string_view name() const override { return "TC-legacy"; }
  StepOutcome step(Request request) override;
  void step_batch(std::span<const Request> requests,
                  OutcomeSink& sink) override;
  void reset() override;
  [[nodiscard]] const Subforest& cache() const override { return cache_; }
  [[nodiscard]] const Cost& cost() const override { return cost_; }

  [[nodiscard]] const Tree& tree() const { return *tree_; }
  [[nodiscard]] const LegacyTreeCacheConfig& config() const { return config_; }

  /// Current round number (number of step() calls since reset).
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// Per-node counter value (for tests and instrumentation).
  [[nodiscard]] std::uint64_t counter(NodeId v) const { return cnt_.get(v); }

  /// Completed and current phases, in order. The last entry is the open
  /// (possibly unfinished) phase.
  [[nodiscard]] const std::vector<PhaseStats>& phases() const {
    return phases_;
  }

  /// Cumulative count of elementary operations (path steps, aggregate
  /// updates, changeset-node visits); the empirical counterpart of
  /// Theorem 6.1's bound.
  [[nodiscard]] std::uint64_t work() const { return work_; }

  // --- white-box accessors used by the test suite ---------------------
  /// cnt_t(P_t(u)); meaningful only for non-cached u.
  [[nodiscard]] std::int64_t debug_pcnt(NodeId u) const { return pcnt_.get(u); }
  /// |P_t(u)|; meaningful only for non-cached u.
  [[nodiscard]] std::uint32_t debug_psize(NodeId u) const {
    return tree_->subtree_size(u) - cached_below_.get(u);
  }
  /// I(u) = cnt(H(u)) − |H(u)|·α; meaningful only for cached u.
  [[nodiscard]] std::int64_t debug_hI(NodeId u) const { return h_value_[u]; }
  /// S(u) = |H(u)|; meaningful only for cached u.
  [[nodiscard]] std::uint64_t debug_hS(NodeId u) const { return h_size_[u]; }

 private:
  StepOutcome handle_positive(NodeId v);
  StepOutcome handle_negative(NodeId v);

  /// Fetches X = P_t(u) (already collected in changeset_, preorder);
  /// cnt_x is the counter mass X carried before the resets.
  void apply_fetch(NodeId u, std::uint64_t cnt_x);
  /// Evicts H(u) (already collected in changeset_, preorder).
  void apply_evict(NodeId u);
  /// Evicts the whole cache and starts a new phase. `aborted_fetch_size` is
  /// the size of the fetch that did not fit (counted into k_P).
  void phase_restart(std::uint32_t aborted_fetch_size);

  /// Collects P_t(u) into changeset_ (preorder) and returns cnt(P_t(u)).
  std::uint64_t collect_missing(NodeId u);
  /// Collects H(u) into changeset_ (preorder) and returns cnt(H(u)).
  std::uint64_t collect_h_set(NodeId u);

  /// Propagates a +1 counter increment at cached node v through the (I, S)
  /// aggregates and returns the root of v's maximal cached tree.
  NodeId propagate_negative_increment(NodeId v);

  const Tree* tree_;
  LegacyTreeCacheConfig config_;

  Subforest cache_;
  CounterTable cnt_;

  // §6.1 positive index, valid for non-cached nodes (epoch = phase).
  EpochArray<std::int64_t> pcnt_;          // cnt_t(P_t(u))
  EpochArray<std::uint32_t> cached_below_; // |cached ∩ T(u)|

  // §6.2 negative index, valid for cached nodes.
  std::vector<std::int64_t> h_value_;  // I(u)
  std::vector<std::uint64_t> h_size_;  // S(u)

  // Lazily maintained superset of the maximal cached roots, used to empty
  // the cache in O(|cache|) at a phase restart.
  std::vector<NodeId> root_hints_;

  Cost cost_;
  std::uint64_t round_ = 0;
  std::uint64_t work_ = 0;
  std::vector<PhaseStats> phases_;

  // Scratch buffers (reused across rounds; exposed via StepOutcome::changed).
  std::vector<NodeId> path_;
  std::vector<NodeId> changeset_;
  std::vector<NodeId> aborted_buf_;
  std::vector<NodeId> stack_;
  std::vector<std::uint32_t> scratch_count_;
  std::vector<std::uint8_t> scratch_mark_;
};

}  // namespace treecache
