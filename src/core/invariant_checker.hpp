// Specification checker: validates an algorithm run against the paper's
// *definition* of TC and the invariants of Lemma 5.1 / Claim A.1.
//
// The checker mirrors the cache and the counters from the observed
// (request, outcome) stream alone — it shares no state with the
// implementation under test. On trees small enough for exhaustive changeset
// enumeration it verifies, per round:
//
//   * the service charge matches the bypassing model;
//   * Claim A.1, invariant 2: cnt_t(X) ≤ |X|·α for every valid changeset;
//   * an applied changeset contains the requested node (Lemma 5.1(1)),
//     is exactly saturated (Lemma 5.1(2)), is a single tree cap
//     (Lemma 5.1(4)) and is maximal (no valid saturated strict superset);
//   * after an application no valid changeset is saturated (Lemma 5.1(3));
//   * when the algorithm does nothing, no valid saturated changeset exists
//     (TC's definition requires acting whenever one does);
//   * a phase restart is justified: the abandoned fetch is saturated, valid
//     and does not fit into the capacity.
//
// Violations throw CheckFailure with a description.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_algorithm.hpp"
#include "tree/subforest.hpp"

namespace treecache {

class SpecChecker {
 public:
  /// `alpha` and `capacity` must match the algorithm's configuration.
  /// Exhaustive enumeration is used only when the candidate counts stay at
  /// most `max_enum_candidates`; otherwise only the cheap per-round checks
  /// run.
  SpecChecker(const Tree& tree, std::uint64_t alpha, std::size_t capacity,
              std::size_t max_enum_candidates = 14);

  /// Feed round t's request and the algorithm's outcome, in order.
  void observe(Request request, const StepOutcome& outcome);

  [[nodiscard]] const Subforest& mirror_cache() const { return mirror_; }
  [[nodiscard]] std::uint64_t rounds() const { return round_; }

  /// Number of rounds on which the exhaustive enumeration checks ran.
  [[nodiscard]] std::uint64_t exhaustive_rounds() const {
    return exhaustive_rounds_;
  }

 private:
  [[nodiscard]] bool enumeration_feasible() const;
  [[nodiscard]] std::uint64_t cnt_sum(std::span<const NodeId> nodes) const;
  /// Checks that `changeset` is a single tree cap (one member whose parent
  /// is outside the set; every other member's parent inside).
  void check_single_tree_cap(std::span<const NodeId> changeset) const;
  void check_no_saturated_changeset(const char* when) const;
  void check_superset_maximality(std::span<const NodeId> changeset,
                                 bool positive) const;

  const Tree* tree_;
  std::uint64_t alpha_;
  std::size_t capacity_;
  std::size_t max_enum_candidates_;

  Subforest mirror_;
  std::vector<std::uint64_t> cnt_;
  std::uint64_t round_ = 0;
  std::uint64_t exhaustive_rounds_ = 0;
};

}  // namespace treecache
