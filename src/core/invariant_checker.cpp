#include "core/invariant_checker.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/changeset_enum.hpp"

namespace treecache {

SpecChecker::SpecChecker(const Tree& tree, std::uint64_t alpha,
                         std::size_t capacity,
                         std::size_t max_enum_candidates)
    : tree_(&tree),
      alpha_(alpha),
      capacity_(capacity),
      max_enum_candidates_(max_enum_candidates),
      mirror_(tree),
      cnt_(tree.size(), 0) {}

bool SpecChecker::enumeration_feasible() const {
  // Both the cached and the non-cached candidate sets must be enumerable.
  const std::size_t cached = mirror_.size();
  const std::size_t non_cached = tree_->size() - cached;
  return cached <= max_enum_candidates_ && non_cached <= max_enum_candidates_;
}

std::uint64_t SpecChecker::cnt_sum(std::span<const NodeId> nodes) const {
  std::uint64_t total = 0;
  for (const NodeId v : nodes) total += cnt_[v];
  return total;
}

void SpecChecker::check_single_tree_cap(
    std::span<const NodeId> changeset) const {
  std::unordered_set<NodeId> members(changeset.begin(), changeset.end());
  std::size_t roots = 0;
  for (const NodeId v : changeset) {
    const NodeId p = tree_->parent(v);
    if (p == kNoNode || !members.contains(p)) ++roots;
  }
  TC_CHECK(roots == 1,
           "applied changeset must be a single tree cap (Lemma 5.1(4))");
}

void SpecChecker::check_no_saturated_changeset(const char* when) const {
  // TC must act whenever a valid saturated changeset exists (a saturated
  // fetch that does not fit triggers a restart, never silence), and right
  // after an application nothing may be saturated (Lemma 5.1(3)). So in
  // both "no action" and "after application" states saturation must be
  // strictly absent.
  for (const auto& x : enumerate_positive_changesets(mirror_)) {
    TC_CHECK(cnt_sum(x) < x.size() * alpha_,
             std::string("saturated positive changeset exists ") + when);
  }
  for (const auto& x : enumerate_negative_changesets(mirror_)) {
    TC_CHECK(cnt_sum(x) < x.size() * alpha_,
             std::string("saturated negative changeset exists ") + when);
  }
}

void SpecChecker::check_superset_maximality(std::span<const NodeId> changeset,
                                            bool positive) const {
  std::vector<NodeId> sorted(changeset.begin(), changeset.end());
  std::sort(sorted.begin(), sorted.end());
  const auto all = positive ? enumerate_positive_changesets(mirror_)
                            : enumerate_negative_changesets(mirror_);
  for (const auto& y : all) {
    if (y.size() <= sorted.size()) continue;
    if (!std::includes(y.begin(), y.end(), sorted.begin(), sorted.end())) {
      continue;
    }
    TC_CHECK(cnt_sum(y) < y.size() * alpha_,
             "applied changeset not maximal: a saturated strict superset "
             "exists");
  }
}

void SpecChecker::observe(Request request, const StepOutcome& outcome) {
  ++round_;
  const NodeId v = request.node;
  TC_CHECK(v < tree_->size(), "request outside the tree");

  // 1. Service charge must follow the bypassing model.
  const bool should_pay = request.sign == Sign::kPositive
                              ? !mirror_.contains(v)
                              : mirror_.contains(v);
  TC_CHECK(outcome.paid == should_pay, "service charge mismatch");
  if (should_pay) ++cnt_[v];

  const bool exhaustive = enumeration_feasible();
  if (exhaustive) ++exhaustive_rounds_;

  switch (outcome.change) {
    case ChangeKind::kNone: {
      if (exhaustive) check_no_saturated_changeset("with no action taken");
      // TC must act whenever a *fitting* saturated changeset exists; a
      // saturated fetch that exceeds capacity triggers a restart instead,
      // so "no action" additionally implies no saturated set at all.
      break;
    }
    case ChangeKind::kFetch: {
      const auto x = outcome.changed;
      TC_CHECK(mirror_.is_valid_positive_changeset(x),
               "fetched set is not a valid positive changeset");
      TC_CHECK(std::find(x.begin(), x.end(), v) != x.end(),
               "fetched set must contain the requested node (Lemma 5.1(1))");
      TC_CHECK(cnt_sum(x) == x.size() * alpha_,
               "fetched set must be exactly saturated (Lemma 5.1(2))");
      check_single_tree_cap(x);
      TC_CHECK(mirror_.size() + x.size() <= capacity_,
               "fetch exceeds the capacity");
      if (exhaustive) check_superset_maximality(x, /*positive=*/true);
      // Apply bottom-up (deepest first).
      std::vector<NodeId> order(x.begin(), x.end());
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return tree_->depth(a) > tree_->depth(b);
      });
      for (const NodeId u : order) {
        mirror_.insert(u);
        cnt_[u] = 0;
      }
      if (exhaustive) check_no_saturated_changeset("after application");
      break;
    }
    case ChangeKind::kEvict: {
      const auto x = outcome.changed;
      TC_CHECK(mirror_.is_valid_negative_changeset(x),
               "evicted set is not a valid negative changeset");
      TC_CHECK(std::find(x.begin(), x.end(), v) != x.end(),
               "evicted set must contain the requested node (Lemma 5.1(1))");
      TC_CHECK(cnt_sum(x) == x.size() * alpha_,
               "evicted set must be exactly saturated (Lemma 5.1(2))");
      check_single_tree_cap(x);
      if (exhaustive) check_superset_maximality(x, /*positive=*/false);
      std::vector<NodeId> order(x.begin(), x.end());
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return tree_->depth(a) < tree_->depth(b);
      });
      for (const NodeId u : order) {
        mirror_.erase(u);
        cnt_[u] = 0;
      }
      if (exhaustive) check_no_saturated_changeset("after application");
      break;
    }
    case ChangeKind::kPhaseRestart: {
      const auto aborted = outcome.aborted_fetch;
      TC_CHECK(aborted.size() == outcome.aborted_fetch_size,
               "aborted fetch size mismatch");
      TC_CHECK(mirror_.is_valid_positive_changeset(aborted),
               "aborted fetch is not a valid positive changeset");
      TC_CHECK(cnt_sum(aborted) == aborted.size() * alpha_,
               "aborted fetch must be exactly saturated");
      TC_CHECK(mirror_.size() + aborted.size() > capacity_,
               "restart without a capacity violation");
      // The whole cache must be evicted.
      std::vector<NodeId> evicted(outcome.changed.begin(),
                                  outcome.changed.end());
      std::sort(evicted.begin(), evicted.end());
      const std::vector<NodeId> cached = mirror_.as_vector();
      TC_CHECK(evicted == cached, "restart must evict exactly the cache");
      mirror_.clear();
      std::fill(cnt_.begin(), cnt_.end(), std::uint64_t{0});  // new phase
      break;
    }
  }
  TC_CHECK(mirror_.is_valid(), "cache must remain a subforest");
}

}  // namespace treecache
