#include "core/tree_cache_legacy.hpp"

#include <algorithm>
#include <memory>

#include "sim/registry.hpp"

namespace treecache {

LegacyTreeCache::LegacyTreeCache(const Tree& tree, LegacyTreeCacheConfig config)
    : tree_(&tree),
      config_(config),
      cache_(tree),
      cnt_(tree.size()),
      pcnt_(tree.size(), 0),
      cached_below_(tree.size(), 0),
      h_value_(tree.size(), 0),
      h_size_(tree.size(), 0),
      scratch_count_(tree.size(), 0),
      scratch_mark_(tree.size(), 0) {
  TC_CHECK(config_.alpha >= 1, "alpha must be a positive integer");
  TC_CHECK(config_.capacity >= 1, "capacity must be at least 1");
  phases_.push_back(PhaseStats{.first_round = 1});
}

void LegacyTreeCache::reset() {
  cache_.clear();
  cnt_.reset_all();
  pcnt_.reset_all();
  cached_below_.reset_all();
  root_hints_.clear();
  cost_ = Cost{};
  round_ = 0;
  work_ = 0;
  phases_.clear();
  phases_.push_back(PhaseStats{.first_round = 1});
  path_.clear();
  changeset_.clear();
  aborted_buf_.clear();
  stack_.clear();
  // h_value_/h_size_ are only read for cached nodes and re-initialized on
  // fetch, and the scratch arrays are kept zeroed by their users — but a
  // reset instance promises to be indistinguishable from a fresh one, so
  // clear them instead of relying on those comment-level invariants.
  std::fill(h_value_.begin(), h_value_.end(), std::int64_t{0});
  std::fill(h_size_.begin(), h_size_.end(), std::uint64_t{0});
  std::fill(scratch_count_.begin(), scratch_count_.end(), std::uint32_t{0});
  std::fill(scratch_mark_.begin(), scratch_mark_.end(), std::uint8_t{0});
}

StepOutcome LegacyTreeCache::step(Request request) {
  TC_CHECK(request.node < tree_->size(), "request to node outside the tree");
  ++round_;
  return request.sign == Sign::kPositive ? handle_positive(request.node)
                                         : handle_negative(request.node);
}

void LegacyTreeCache::step_batch(std::span<const Request> requests,
                           OutcomeSink& sink) {
  // LegacyTreeCache is final, so step() devirtualizes here: the batch pays one
  // virtual dispatch total instead of one per round, and step_batch ≡
  // step holds by construction.
  for (const Request& request : requests) {
    sink.on_outcome(request, step(request));
  }
}

StepOutcome LegacyTreeCache::handle_positive(NodeId v) {
  if (cache_.contains(v)) return {};  // request served by the cache, free
  StepOutcome out;
  out.paid = true;
  ++cost_.service;
  cnt_.increment(v);

  // Every ancestor of a non-cached node is non-cached (the cache is
  // descendant-closed), so v lies in P_t(u) for each ancestor u: bump all
  // the aggregates on the path and remember it for the top-down scan.
  path_.clear();
  for (NodeId u = v; u != kNoNode; u = tree_->parent(u)) {
    TC_DCHECK(!cache_.contains(u),
              "ancestor of a non-cached node must be non-cached");
    pcnt_.add(u, 1);
    path_.push_back(u);
    ++work_;
  }

  // Scan root→v and fetch the first saturated candidate P_t(u): every valid
  // positive changeset containing v equals P_t(u) for an ancestor u, and
  // checking supersets first makes the chosen set maximal (Section 6.1).
  for (auto it = path_.rbegin(); it != path_.rend(); ++it) {
    const NodeId u = *it;
    const auto psize = static_cast<std::uint64_t>(tree_->subtree_size(u)) -
                       cached_below_.get(u);
    ++work_;
    if (static_cast<std::uint64_t>(pcnt_.get(u)) >= psize * config_.alpha) {
      TC_DCHECK(static_cast<std::uint64_t>(pcnt_.get(u)) ==
                    psize * config_.alpha,
                "saturated changeset must be exactly saturated (Lemma 5.1)");
      if (cache_.size() + psize > config_.capacity) {
        collect_missing(u);
        aborted_buf_.assign(changeset_.begin(), changeset_.end());
        phase_restart(static_cast<std::uint32_t>(psize));
        out.change = ChangeKind::kPhaseRestart;
        out.aborted_fetch_size = static_cast<std::uint32_t>(psize);
        out.aborted_fetch = aborted_buf_;
        out.changed = changeset_;
      } else {
        const std::uint64_t cnt_x = collect_missing(u);
        TC_DCHECK(changeset_.size() == psize, "P_t(u) size mismatch");
        apply_fetch(u, cnt_x);
        out.change = ChangeKind::kFetch;
        out.changed = changeset_;
      }
      return out;
    }
  }
  return out;
}

StepOutcome LegacyTreeCache::handle_negative(NodeId v) {
  if (!cache_.contains(v)) return {};  // node only lives at the controller
  StepOutcome out;
  out.paid = true;
  ++cost_.service;
  cnt_.increment(v);

  const NodeId u = propagate_negative_increment(v);
  // val_t(H(u)) > 0  ⇔  I(u) >= 0: H(u) is saturated and maximal (§6.2).
  if (h_value_[u] >= 0) {
    const std::uint64_t cnt_h = collect_h_set(u);
    TC_DCHECK(cnt_h == h_size_[u] * config_.alpha,
              "evicted H(u) must be exactly saturated");
    (void)cnt_h;
    apply_evict(u);
    out.change = ChangeKind::kEvict;
    out.changed = changeset_;
  }
  return out;
}

NodeId LegacyTreeCache::propagate_negative_increment(NodeId v) {
  // The +1 to cnt(v) enters I(v) directly; above v it propagates through
  // the recursion I(p) = cnt(p) − α + Σ_{children w: I(w) ≥ 0} I(w).
  // On an increment a child's inclusion can only flip excluded→included
  // (exactly when its I reaches 0), so each level updates in O(1).
  std::int64_t old_i = h_value_[v];
  h_value_[v] += 1;
  std::int64_t new_i = h_value_[v];
  std::int64_t d_size = 0;  // ΔS of the current child level
  NodeId u = v;
  while (true) {
    ++work_;
    const NodeId p = tree_->parent(u);
    if (p == kNoNode || !cache_.contains(p)) return u;
    const bool included_before = old_i >= 0;
    const bool included_after = new_i >= 0;
    if (!included_before && !included_after) {
      // Nothing changes higher up; just locate the cached-tree root.
      NodeId r = p;
      while (true) {
        ++work_;
        const NodeId q = tree_->parent(r);
        if (q == kNoNode || !cache_.contains(q)) return r;
        r = q;
      }
    }
    TC_DCHECK(included_after, "inclusion cannot flip off on an increment");
    const std::int64_t d_i = new_i - (included_before ? old_i : 0);
    const std::int64_t d_s =
        included_before ? d_size : static_cast<std::int64_t>(h_size_[u]);
    old_i = h_value_[p];
    h_value_[p] += d_i;
    new_i = h_value_[p];
    h_size_[p] =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(h_size_[p]) + d_s);
    d_size = d_s;
    u = p;
  }
}

std::uint64_t LegacyTreeCache::collect_missing(NodeId u) {
  changeset_.clear();
  stack_.clear();
  stack_.push_back(u);
  std::uint64_t total = 0;
  while (!stack_.empty()) {
    const NodeId x = stack_.back();
    stack_.pop_back();
    changeset_.push_back(x);
    total += cnt_.get(x);
    for (const NodeId c : tree_->children(x)) {
      ++work_;
      if (!cache_.contains(c)) stack_.push_back(c);
    }
    ++work_;
  }
  return total;
}

std::uint64_t LegacyTreeCache::collect_h_set(NodeId u) {
  changeset_.clear();
  stack_.clear();
  stack_.push_back(u);
  std::uint64_t total = 0;
  while (!stack_.empty()) {
    const NodeId x = stack_.back();
    stack_.pop_back();
    changeset_.push_back(x);
    total += cnt_.get(x);
    for (const NodeId c : tree_->children(x)) {
      ++work_;
      // Children of a cached node are always cached; include those whose
      // best tree cap has positive value.
      TC_DCHECK(cache_.contains(c), "cache must be descendant-closed");
      if (h_value_[c] >= 0) stack_.push_back(c);
    }
    ++work_;
  }
  return total;
}

void LegacyTreeCache::apply_fetch(NodeId u, std::uint64_t cnt_x) {
  const auto x_size = static_cast<std::uint32_t>(changeset_.size());
  // changeset_ is in preorder; reversed iteration inserts children before
  // parents, which keeps the cache descendant-closed at every step, and
  // lets (I, S) be initialized bottom-up in the same pass.
  for (auto it = changeset_.rbegin(); it != changeset_.rend(); ++it) {
    const NodeId x = *it;
    cache_.insert(x);
    cnt_.reset(x);
    std::int64_t i_value = -static_cast<std::int64_t>(config_.alpha);
    std::uint64_t s_value = 1;
    for (const NodeId c : tree_->children(x)) {
      ++work_;
      if (h_value_[c] >= 0) {
        i_value += h_value_[c];
        s_value += h_size_[c];
      }
    }
    h_value_[x] = i_value;
    h_size_[x] = s_value;
    ++work_;
  }
  // Ancestors strictly above u stay non-cached; their candidate sets shrink
  // by X and lose the cnt_x counter mass that X carried.
  for (NodeId a = tree_->parent(u); a != kNoNode; a = tree_->parent(a)) {
    pcnt_.add(a, -static_cast<std::int64_t>(cnt_x));
    TC_DCHECK(pcnt_.get(a) >= 0, "cnt(P_t(a)) must stay non-negative");
    cached_below_.add(a, x_size);
    ++work_;
  }
  root_hints_.push_back(u);
  cost_.reorg += config_.alpha * x_size;
  phases_.back().fetches += x_size;
}

void LegacyTreeCache::apply_evict(NodeId u) {
  const auto x_size = static_cast<std::uint32_t>(changeset_.size());
  // Top-down eviction (changeset_ is preorder) keeps descendant-closure.
  for (const NodeId x : changeset_) {
    cache_.erase(x);
    cnt_.reset(x);
    scratch_mark_[x] = 1;
    ++work_;
  }
  // Evicted nodes become the non-cached tops of their subtrees: P_t(x) is
  // exactly the evicted part of T(x), whose counters were just reset, so
  // cnt(P_t(x)) = 0 and |P_t(x)| = |X ∩ T(x)|, computed bottom-up.
  for (auto it = changeset_.rbegin(); it != changeset_.rend(); ++it) {
    const NodeId x = *it;
    scratch_count_[x] += 1;
    const NodeId p = tree_->parent(x);
    if (p != kNoNode && scratch_mark_[p]) {
      scratch_count_[p] += scratch_count_[x];
    }
    pcnt_.set(x, 0);
    cached_below_.set(x, tree_->subtree_size(x) - scratch_count_[x]);
    ++work_;
  }
  // Cached children left under evicted nodes become maximal roots.
  for (const NodeId x : changeset_) {
    for (const NodeId c : tree_->children(x)) {
      ++work_;
      if (cache_.contains(c)) root_hints_.push_back(c);
    }
  }
  for (const NodeId x : changeset_) {
    scratch_count_[x] = 0;
    scratch_mark_[x] = 0;
  }
  // Ancestors strictly above u: the evicted nodes join their P_t sets with
  // zero counters, so only the cached-node count changes.
  for (NodeId a = tree_->parent(u); a != kNoNode; a = tree_->parent(a)) {
    cached_below_.add(a, -static_cast<std::int64_t>(x_size));
    ++work_;
  }
  cost_.reorg += config_.alpha * x_size;
  phases_.back().evictions += x_size;
}

void LegacyTreeCache::phase_restart(std::uint32_t aborted_fetch_size) {
  // Collect the whole cache: every valid entry of root_hints_ that is still
  // a maximal root owns a completely cached subtree T(r).
  changeset_.clear();
  for (const NodeId r : root_hints_) {
    if (!cache_.contains(r)) continue;  // stale hint (already evicted)
    const NodeId p = tree_->parent(r);
    if (p != kNoNode && cache_.contains(p)) continue;  // no longer maximal
    if (scratch_mark_[r]) continue;                    // duplicate hint
    scratch_mark_[r] = 1;
    stack_.clear();
    stack_.push_back(r);
    while (!stack_.empty()) {
      const NodeId x = stack_.back();
      stack_.pop_back();
      TC_DCHECK(cache_.contains(x), "maximal root subtree must be cached");
      changeset_.push_back(x);
      for (const NodeId c : tree_->children(x)) stack_.push_back(c);
      ++work_;
    }
  }
  for (const NodeId r : root_hints_) scratch_mark_[r] = 0;
  root_hints_.clear();

  const auto evicted = static_cast<std::uint32_t>(changeset_.size());
  TC_DCHECK(evicted == cache_.size(), "restart must evict the whole cache");
  for (const NodeId x : changeset_) cache_.erase(x);
  cost_.reorg += config_.alpha * evicted;

  PhaseStats& phase = phases_.back();
  phase.last_round = round_;
  phase.finished = true;
  // k_P counts the cache right after the "artificial fetch" of the set that
  // did not fit, before the final eviction (Section 5): k_P >= k_ONL + 1.
  phase.k_end = evicted + aborted_fetch_size;

  cnt_.reset_all();
  pcnt_.reset_all();
  cached_below_.reset_all();
  phases_.push_back(PhaseStats{.first_round = round_ + 1});
}

namespace {
const sim::AlgorithmRegistrar kRegisterTcLegacy{
    "tc-legacy",
    "TC with the frozen NodeId-indexed state layout (pre-SoA baseline)",
    [](const Tree& tree, const sim::Params& p) {
      return std::make_unique<LegacyTreeCache>(
          tree,
          LegacyTreeCacheConfig{.alpha = p.alpha(), .capacity = p.capacity()});
    }};
}  // namespace

}  // namespace treecache
