#include "core/tree_cache.hpp"

#include <algorithm>
#include <memory>

#include "sim/registry.hpp"

namespace treecache {

TreeCache::TreeCache(const Tree& tree, TreeCacheConfig config)
    : tree_(&tree),
      config_(config),
      sizes_(tree.preorder_sizes().data()),
      kernels_(&kernels::active()),
      cache_(tree),
      state_(tree.size()) {
  TC_CHECK(config_.alpha >= 1, "alpha must be a positive integer");
  TC_CHECK(config_.capacity >= 1, "capacity must be at least 1");
  phases_.push_back(PhaseStats{.first_round = 1});
  // Per-instance scratch arena: sized once here so steady-state rounds do
  // no allocation. A shard constructed on its pinned worker thread first-
  // touches these pages there, placing the arena with the shard.
  path_.reserve(tree.height());
  const std::size_t changeset_cap =
      std::min<std::size_t>(tree.size(), 2 * config_.capacity + 2);
  rank_changeset_.reserve(changeset_cap);
  changeset_.reserve(changeset_cap);
}

void TreeCache::reset() {
  kernels_ = &kernels::active();
  cache_.clear();
  state_.reset();
  root_hints_.clear();
  cost_ = Cost{};
  round_ = 0;
  work_ = 0;
  phases_.clear();
  phases_.push_back(PhaseStats{.first_round = 1});
  path_.clear();
  rank_changeset_.clear();
  changeset_.clear();
  aborted_buf_.clear();
}

StepOutcome TreeCache::step(Request request) {
  TC_CHECK(request.node < tree_->size(), "request to node outside the tree");
  ++round_;
  // One NodeId → rank translation on entry; the whole round runs in rank
  // coordinates and translates back once when a changeset is exposed.
  const std::uint32_t rv = tree_->preorder_index(request.node);
  return request.sign == Sign::kPositive ? handle_positive(rv)
                                         : handle_negative(rv);
}

void TreeCache::step_batch(std::span<const Request> requests,
                           OutcomeSink& sink) {
  // TreeCache is final, so step() devirtualizes here: the batch pays one
  // virtual dispatch total instead of one per round, and step_batch ≡
  // step holds by construction.
  for (const Request& request : requests) {
    sink.on_outcome(request, step(request));
  }
}

std::span<const NodeId> TreeCache::translate_changeset(
    std::vector<NodeId>& out) const {
  const auto from = tree_->from_preorder();
  out.resize(rank_changeset_.size());
  for (std::size_t i = 0; i < rank_changeset_.size(); ++i) {
    out[i] = from[rank_changeset_[i]];
  }
  return out;
}

StepOutcome TreeCache::handle_positive(std::uint32_t rv) {
  if (state_.cached(rv)) return {};  // request served by the cache, free
  StepOutcome out;
  out.paid = true;
  ++cost_.service;
  state_.bump_counter(rv);

  // Every ancestor of a non-cached node is non-cached (the cache is
  // descendant-closed), so v lies in P_t(u) for each ancestor u: bump all
  // the aggregates on the path and remember it for the top-down scan.
  path_.clear();
  for (std::uint32_t r = rv; r != kNoNode; r = tree_->preorder_parent(r)) {
    TC_DCHECK(!state_.cached(r),
              "ancestor of a non-cached node must be non-cached");
    state_.pos(r).pcnt += 1;
    path_.push_back(r);
    ++work_;
  }

  // Scan root→v and fetch the first saturated candidate P_t(u): every valid
  // positive changeset containing v equals P_t(u) for an ancestor u, and
  // checking supersets first makes the chosen set maximal (Section 6.1).
  for (auto it = path_.rbegin(); it != path_.rend(); ++it) {
    const std::uint32_t r = *it;
    const auto psize =
        static_cast<std::uint64_t>(sizes_[r]) - state_.cached_below(r);
    ++work_;
    if (static_cast<std::uint64_t>(state_.pcnt(r)) >= psize * config_.alpha) {
      TC_DCHECK(static_cast<std::uint64_t>(state_.pcnt(r)) ==
                    psize * config_.alpha,
                "saturated changeset must be exactly saturated (Lemma 5.1)");
      if (cache_.size() + psize > config_.capacity) {
        collect_missing(r);
        translate_changeset(aborted_buf_);
        phase_restart(static_cast<std::uint32_t>(psize));
        out.change = ChangeKind::kPhaseRestart;
        out.aborted_fetch_size = static_cast<std::uint32_t>(psize);
        out.aborted_fetch = aborted_buf_;
        out.changed = translate_changeset(changeset_);
      } else {
        const std::uint64_t cnt_x = collect_missing(r);
        TC_DCHECK(rank_changeset_.size() == psize, "P_t(u) size mismatch");
        apply_fetch(r, cnt_x);
        out.change = ChangeKind::kFetch;
        out.changed = translate_changeset(changeset_);
      }
      return out;
    }
  }
  return out;
}

StepOutcome TreeCache::handle_negative(std::uint32_t rv) {
  if (!state_.cached(rv)) return {};  // node only lives at the controller
  StepOutcome out;
  out.paid = true;
  ++cost_.service;
  state_.bump_counter(rv);

  const std::uint32_t ru = propagate_negative_increment(rv);
  // val_t(H(u)) > 0  ⇔  I(u) >= 0: H(u) is saturated and maximal (§6.2).
  if (state_.neg(ru).value >= 0) {
    const std::uint64_t cnt_h = collect_h_set(ru);
    TC_DCHECK(cnt_h == state_.neg(ru).size * config_.alpha,
              "evicted H(u) must be exactly saturated");
    (void)cnt_h;
    apply_evict(ru);
    out.change = ChangeKind::kEvict;
    out.changed = translate_changeset(changeset_);
  }
  return out;
}

std::uint32_t TreeCache::propagate_negative_increment(std::uint32_t rv) {
  // The +1 to cnt(v) enters I(v) directly; above v it propagates through
  // the recursion I(p) = cnt(p) − α + Σ_{children w: I(w) ≥ 0} I(w).
  // On an increment a child's inclusion can only flip excluded→included
  // (exactly when its I reaches 0), so each level updates in O(1).
  std::int64_t old_i = state_.neg(rv).value;
  state_.neg(rv).value += 1;
  std::int64_t new_i = old_i + 1;
  std::int64_t d_size = 0;  // ΔS of the current child level
  std::uint32_t u = rv;
  while (true) {
    ++work_;
    const std::uint32_t p = tree_->preorder_parent(u);
    if (p == kNoNode || !state_.cached(p)) return u;
    const bool included_before = old_i >= 0;
    const bool included_after = new_i >= 0;
    if (!included_before && !included_after) {
      // Nothing changes higher up; just locate the cached-tree root.
      std::uint32_t r = p;
      while (true) {
        ++work_;
        const std::uint32_t q = tree_->preorder_parent(r);
        if (q == kNoNode || !state_.cached(q)) return r;
        r = q;
      }
    }
    TC_DCHECK(included_after, "inclusion cannot flip off on an increment");
    const std::int64_t d_i = new_i - (included_before ? old_i : 0);
    const std::int64_t d_s =
        included_before ? d_size
                        : static_cast<std::int64_t>(state_.neg(u).size);
    NodeState::NegEntry& np = state_.neg(p);
    old_i = np.value;
    np.value += d_i;
    new_i = np.value;
    np.size =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(np.size) + d_s);
    d_size = d_s;
    u = p;
  }
}

std::uint64_t TreeCache::collect_missing(std::uint32_t ru) {
  rank_changeset_.clear();
  // T(u) is the slice [ru, ru + |T(u)|); a cached node's subtree is fully
  // cached (descendant-closure), so the kernel skips it as one jump and
  // emits the uncached runs with bit scans over the packed bitmap.
  const kernels::MissingScan scan{.cached_bits = state_.cached_bits(),
                                  .sizes = sizes_,
                                  .cnt = state_.counters(),
                                  .epoch = state_.epoch()};
  const kernels::ScanResult res =
      kernels_->scan_missing(scan, ru, ru + sizes_[ru], rank_changeset_);
  work_ += res.visits;
  return res.total;
}

std::uint64_t TreeCache::collect_h_set(std::uint32_t ru) {
  rank_changeset_.clear();
  // H(u) is u plus, per child w with I(w) ≥ 0, the set H(w): a node belongs
  // iff no strict ancestor inside T(u) has I < 0, so the kernel skips a
  // subtree whose root has I < 0 as one contiguous jump.
  TC_DCHECK(state_.cached(ru), "H-set root must be cached");
  const kernels::HScan scan{.neg = state_.neg_entries(),
                            .sizes = sizes_,
                            .cnt = state_.counters(),
                            .epoch = state_.epoch()};
  const kernels::ScanResult res =
      kernels_->scan_h_candidates(scan, ru, ru + sizes_[ru], rank_changeset_);
  work_ += res.visits;
  return res.total;
}

void TreeCache::apply_fetch(std::uint32_t ru, std::uint64_t cnt_x) {
  const auto x_size = static_cast<std::uint32_t>(rank_changeset_.size());
  const auto from = tree_->from_preorder();
  // rank_changeset_ is ascending (preorder); reversed iteration inserts
  // children before parents, which keeps the cache descendant-closed at
  // every step, and lets (I, S) be initialized bottom-up in the same pass.
  // Child enumeration needs no adjacency: the first child of r is r + 1,
  // the next sibling of c is c + |T(c)|.
  for (auto it = rank_changeset_.rbegin(); it != rank_changeset_.rend();
       ++it) {
    const std::uint32_t r = *it;
    state_.set_cached(r);
    cache_.insert(from[r]);
    state_.reset_counter(r);
    std::int64_t i_value = -static_cast<std::int64_t>(config_.alpha);
    std::uint64_t s_value = 1;
    const std::uint32_t end = r + sizes_[r];
    for (std::uint32_t c = r + 1; c < end; c += sizes_[c]) {
      ++work_;
      const NodeState::NegEntry& nc = state_.neg(c);
      if (nc.value >= 0) {
        i_value += nc.value;
        s_value += nc.size;
      }
    }
    state_.neg(r) = NodeState::NegEntry{.value = i_value, .size = s_value};
    ++work_;
  }
  // Ancestors strictly above u stay non-cached; their candidate sets shrink
  // by X and lose the cnt_x counter mass that X carried.
  for (std::uint32_t a = tree_->preorder_parent(ru); a != kNoNode;
       a = tree_->preorder_parent(a)) {
    NodeState::PosEntry& pe = state_.pos(a);
    pe.pcnt -= static_cast<std::int64_t>(cnt_x);
    TC_DCHECK(pe.pcnt >= 0, "cnt(P_t(a)) must stay non-negative");
    pe.cached_below += x_size;
    ++work_;
  }
  root_hints_.push_back(ru);
  cost_.reorg += config_.alpha * x_size;
  phases_.back().fetches += x_size;
}

void TreeCache::apply_evict(std::uint32_t ru) {
  const auto x_size = static_cast<std::uint32_t>(rank_changeset_.size());
  const auto from = tree_->from_preorder();
  // Top-down eviction (ascending rank) keeps descendant-closure.
  for (const std::uint32_t r : rank_changeset_) {
    state_.clear_cached(r);
    cache_.erase(from[r]);
    state_.reset_counter(r);
    ++work_;
  }
  // Evicted nodes become the non-cached tops of their subtrees: P_t(x) is
  // exactly the evicted part of T(x), whose counters were just reset, so
  // cnt(P_t(x)) = 0 and |P_t(x)| = |X ∩ T(x)|. rank_changeset_ is sorted
  // ascending, so X ∩ T(x) is the contiguous run of entries in
  // [x, x + |T(x)|) starting at x itself — a binary search away.
  for (std::size_t i = 0; i < rank_changeset_.size(); ++i) {
    const std::uint32_t r = rank_changeset_[i];
    const std::uint32_t size = sizes_[r];
    const auto first =
        rank_changeset_.begin() + static_cast<std::ptrdiff_t>(i);
    const auto last = std::lower_bound(first, rank_changeset_.end(), r + size);
    NodeState::PosEntry& pe = state_.pos(r);
    pe.pcnt = 0;
    pe.cached_below = size - static_cast<std::uint32_t>(last - first);
    ++work_;
  }
  // Cached children left under evicted nodes become maximal roots.
  for (const std::uint32_t r : rank_changeset_) {
    const std::uint32_t end = r + sizes_[r];
    for (std::uint32_t c = r + 1; c < end; c += sizes_[c]) {
      ++work_;
      if (state_.cached(c)) root_hints_.push_back(c);
    }
  }
  // Ancestors strictly above u: the evicted nodes join their P_t sets with
  // zero counters, so only the cached-node count changes.
  for (std::uint32_t a = tree_->preorder_parent(ru); a != kNoNode;
       a = tree_->preorder_parent(a)) {
    state_.pos(a).cached_below -= x_size;
    ++work_;
  }
  cost_.reorg += config_.alpha * x_size;
  phases_.back().evictions += x_size;
}

void TreeCache::phase_restart(std::uint32_t aborted_fetch_size) {
  // Collect the whole cache: every entry of root_hints_ that is still a
  // maximal root owns a completely cached subtree T(r) — a contiguous rank
  // slice. Sorting dedups the hints and makes the collection (hence the
  // eviction below) globally ascending, i.e. top-down per subtree.
  std::sort(root_hints_.begin(), root_hints_.end());
  root_hints_.erase(std::unique(root_hints_.begin(), root_hints_.end()),
                    root_hints_.end());
  rank_changeset_.clear();
  for (const std::uint32_t r : root_hints_) {
    if (!state_.cached(r)) continue;  // stale hint (already evicted)
    const std::uint32_t p = tree_->preorder_parent(r);
    if (p != kNoNode && state_.cached(p)) continue;  // no longer maximal
    const std::uint32_t end = r + sizes_[r];
    kernels_->emit_iota(rank_changeset_, r, end);
    work_ += end - r;
    // Clearing the slice here (instead of in a second pass) is safe: the
    // hints are ascending, so a hint nested inside this slice is visited
    // later and skipped as stale by the cached(r) test above.
    state_.clear_cached_range(r, end);
  }
  root_hints_.clear();

  const auto evicted = static_cast<std::uint32_t>(rank_changeset_.size());
  TC_DCHECK(evicted == cache_.size(), "restart must evict the whole cache");
  cache_.clear();
  cost_.reorg += config_.alpha * evicted;

  PhaseStats& phase = phases_.back();
  phase.last_round = round_;
  phase.finished = true;
  // k_P counts the cache right after the "artificial fetch" of the set that
  // did not fit, before the final eviction (Section 5): k_P >= k_ONL + 1.
  phase.k_end = evicted + aborted_fetch_size;

  state_.new_phase();
  phases_.push_back(PhaseStats{.first_round = round_ + 1});
}

namespace {
const sim::AlgorithmRegistrar kRegisterTc{
    "tc", "the paper's O(h)-competitive counter algorithm (Section 3)",
    [](const Tree& tree, const sim::Params& p) {
      return std::make_unique<TreeCache>(
          tree,
          TreeCacheConfig{.alpha = p.alpha(), .capacity = p.capacity()});
    }};
}  // namespace

}  // namespace treecache
