// Cost accounting shared by all algorithms.
#pragma once

#include <cstdint>
#include <ostream>

namespace treecache {

/// Total cost = service (1 per paid request, bypassing model) +
/// reorganization (α per fetched or evicted node).
struct Cost {
  std::uint64_t service = 0;
  std::uint64_t reorg = 0;

  [[nodiscard]] std::uint64_t total() const { return service + reorg; }

  Cost& operator+=(const Cost& other) {
    service += other.service;
    reorg += other.reorg;
    return *this;
  }

  friend Cost operator+(Cost a, const Cost& b) { return a += b; }
  friend bool operator==(const Cost&, const Cost&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Cost& c) {
  return os << "{service=" << c.service << ", reorg=" << c.reorg
            << ", total=" << c.total() << '}';
}

}  // namespace treecache
