// IPv4/IPv6 addresses and width-parameterized prefixes for the FIB
// application (§2 of the paper) and the rib/ ingest subsystem. The key
// width is a template parameter: `Prefix` (32-bit IPv4 keys, this header)
// and `Prefix6` (128-bit IPv6 keys, fib/ipv6.hpp) share one BasicPrefix
// so the trie, rule-tree, RIB generator and feed machinery stay generic.
#pragma once

#include <charconv>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>

#include "util/check.hpp"

namespace treecache {
class Rng;
}  // namespace treecache

namespace treecache::fib {

/// Address-family traits, one specialization per key width. `kWidth` is
/// the key width in bits, `kName` the family name used in error messages;
/// `parse`/`to_string` implement the family's textual address form (parse
/// is strict and throws CheckFailure with 1-based column positions);
/// `random` draws uniform key bits from the simulation RNG.
template <typename BitsT>
struct AddressFamily;  // specialized for Address (32) and Address6 (128)

using Address = std::uint32_t;

template <>
struct AddressFamily<Address> {
  static constexpr unsigned kWidth = 32;
  static constexpr const char* kName = "IPv4";
  [[nodiscard]] static std::string to_string(Address addr);
  /// Strict dotted-quad parser: exactly four decimal octets in [0, 255],
  /// nothing before or after. Errors carry the 1-based column.
  [[nodiscard]] static Address parse(std::string_view text);
  [[nodiscard]] static Address random(Rng& rng);
};

/// The netmask for `length`: all-ones in the top `length` bits of a
/// width-kWidth key.
template <typename BitsT>
[[nodiscard]] constexpr BitsT prefix_mask(std::uint8_t length) {
  constexpr unsigned kWidth = AddressFamily<BitsT>::kWidth;
  if (length == 0) return BitsT{};
  return static_cast<BitsT>((~BitsT{}) << (kWidth - length));
}

/// Bit `i` of a key, MSB first: bit 0 is the top (leftmost) bit.
template <typename BitsT>
[[nodiscard]] constexpr bool key_bit(const BitsT& bits, unsigned i) {
  constexpr unsigned kWidth = AddressFamily<BitsT>::kWidth;
  return ((bits >> (kWidth - 1 - i)) & BitsT{1}) != BitsT{};
}

/// A prefix `bits/length` over a width-parameterized key; bits beyond
/// `length` are stored as zero. Ordering is (bits, length) via the
/// defaulted comparison — total and deterministic, which the set-based
/// RIB generator and the rule-tree build rely on.
template <typename BitsT>
struct BasicPrefix {
  using Bits = BitsT;
  static constexpr unsigned kWidth = AddressFamily<BitsT>::kWidth;

  BitsT bits{};
  std::uint8_t length = 0;  // 0..kWidth

  /// Normalizes the host bits (beyond /length) to zero.
  static BasicPrefix make(BitsT bits, std::uint8_t length) {
    TC_CHECK(length <= kWidth, "prefix length out of range");
    return BasicPrefix{static_cast<BitsT>(bits & prefix_mask<BitsT>(length)),
                       length};
  }

  /// Parses "<address>/<length>" in the family's textual form. Strict:
  /// rejects malformed addresses, out-of-range lengths, host bits set
  /// beyond /length, and trailing garbage — errors carry 1-based column
  /// positions so feed files fail loudly and point at the byte.
  static BasicPrefix parse(const std::string& text);

  [[nodiscard]] bool contains(const BitsT& addr) const {
    return (addr & prefix_mask<BitsT>(length)) == bits;
  }

  /// True iff this prefix covers `other` (equal or shorter matching prefix).
  [[nodiscard]] bool contains(const BasicPrefix& other) const {
    return length <= other.length && contains(other.bits);
  }

  [[nodiscard]] std::string to_string() const {
    return AddressFamily<BitsT>::to_string(bits) + "/" +
           std::to_string(length);
  }

  friend auto operator<=>(const BasicPrefix&, const BasicPrefix&) = default;
};

template <typename BitsT>
BasicPrefix<BitsT> BasicPrefix<BitsT>::parse(const std::string& text) {
  using Family = AddressFamily<BitsT>;
  const auto fail = [&](const std::string& what, std::size_t column) {
    return CheckFailure(std::string(Family::kName) + " prefix \"" + text +
                        "\": " + what + " at column " +
                        std::to_string(column + 1));
  };
  const auto slash = text.find('/');
  if (slash == std::string::npos) throw fail("expected '/<length>'", text.size());
  const BitsT addr = Family::parse(std::string_view(text).substr(0, slash));
  const std::string_view len_text = std::string_view(text).substr(slash + 1);
  unsigned length = 0;
  const auto [end, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || end == len_text.data()) {
    throw fail("expected a decimal prefix length", slash + 1);
  }
  if (end != len_text.data() + len_text.size()) {
    throw fail("trailing characters after the prefix length",
               slash + 1 + static_cast<std::size_t>(end - len_text.data()));
  }
  if (length > kWidth) {
    throw fail("prefix length " + std::to_string(length) + " exceeds /" +
                   std::to_string(kWidth),
               slash + 1);
  }
  const auto len8 = static_cast<std::uint8_t>(length);
  if ((addr & prefix_mask<BitsT>(len8)) != addr) {
    throw fail("host bits set beyond /" + std::to_string(length), 0);
  }
  return BasicPrefix{addr, len8};
}

using Prefix = BasicPrefix<Address>;

[[nodiscard]] std::string address_to_string(Address addr);
[[nodiscard]] Address parse_address(const std::string& text);

}  // namespace treecache::fib
