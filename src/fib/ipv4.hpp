// IPv4 addresses and prefixes for the FIB application (§2 of the paper).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace treecache::fib {

using Address = std::uint32_t;

/// A prefix `bits/length`; bits beyond `length` are stored as zero.
struct Prefix {
  Address bits = 0;
  std::uint8_t length = 0;  // 0..32

  /// Normalizes the low bits to zero.
  static Prefix make(Address bits, std::uint8_t length) {
    TC_CHECK(length <= 32, "prefix length out of range");
    const Address mask =
        length == 0 ? 0 : ~Address{0} << (32 - length);
    return Prefix{bits & mask, length};
  }

  /// Parses dotted-quad "a.b.c.d/len". Throws CheckFailure on bad input.
  static Prefix parse(const std::string& text);

  [[nodiscard]] bool contains(Address addr) const {
    if (length == 0) return true;
    const Address mask = ~Address{0} << (32 - length);
    return (addr & mask) == bits;
  }

  /// True iff this prefix covers `other` (equal or shorter matching prefix).
  [[nodiscard]] bool contains(const Prefix& other) const {
    return length <= other.length && contains(other.bits);
  }

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;
};

[[nodiscard]] std::string address_to_string(Address addr);
[[nodiscard]] Address parse_address(const std::string& text);

}  // namespace treecache::fib
