#include "fib/ipv4.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace treecache::fib {

namespace {

[[noreturn]] void fail_v4(std::string_view text, const std::string& what,
                          std::size_t column) {
  throw CheckFailure("IPv4 address \"" + std::string(text) + "\": " + what +
                     " at column " + std::to_string(column + 1));
}

}  // namespace

std::string AddressFamily<Address>::to_string(Address addr) {
  std::ostringstream os;
  os << (addr >> 24) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

Address AddressFamily<Address>::parse(std::string_view text) {
  std::size_t i = 0;
  Address addr = 0;
  for (int octet_index = 0; octet_index < 4; ++octet_index) {
    if (octet_index > 0) {
      if (i >= text.size() || text[i] != '.') fail_v4(text, "expected '.'", i);
      ++i;
    }
    const std::size_t start = i;
    unsigned value = 0;
    std::size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + static_cast<unsigned>(text[i] - '0');
      ++digits;
      ++i;
      if (digits > 3) fail_v4(text, "octet has more than three digits", start);
    }
    if (digits == 0) fail_v4(text, "expected a decimal octet", i);
    if (value > 255) fail_v4(text, "octet out of range (0..255)", start);
    addr = (addr << 8) | value;
  }
  if (i != text.size()) fail_v4(text, "trailing characters", i);
  return addr;
}

Address AddressFamily<Address>::random(Rng& rng) {
  return static_cast<Address>(rng());
}

std::string address_to_string(Address addr) {
  return AddressFamily<Address>::to_string(addr);
}

Address parse_address(const std::string& text) {
  return AddressFamily<Address>::parse(text);
}

}  // namespace treecache::fib
