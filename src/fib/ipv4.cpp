#include "fib/ipv4.hpp"

#include <sstream>

namespace treecache::fib {

std::string address_to_string(Address addr) {
  std::ostringstream os;
  os << (addr >> 24) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

Address parse_address(const std::string& text) {
  std::istringstream is(text);
  Address addr = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    char dot = 0;
    TC_CHECK(static_cast<bool>(is >> octet), "malformed IPv4 address");
    TC_CHECK(octet <= 255, "IPv4 octet out of range");
    addr = (addr << 8) | octet;
    if (i < 3) {
      TC_CHECK(static_cast<bool>(is >> dot) && dot == '.',
               "malformed IPv4 address");
    }
  }
  return addr;
}

Prefix Prefix::parse(const std::string& text) {
  const auto slash = text.find('/');
  TC_CHECK(slash != std::string::npos, "prefix needs /length");
  const Address addr = parse_address(text.substr(0, slash));
  const unsigned long length = std::stoul(text.substr(slash + 1));
  TC_CHECK(length <= 32, "prefix length out of range");
  return Prefix::make(addr, static_cast<std::uint8_t>(length));
}

std::string Prefix::to_string() const {
  return address_to_string(bits) + "/" + std::to_string(length);
}

}  // namespace treecache::fib
