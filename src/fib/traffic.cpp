#include "fib/traffic.hpp"

#include <numeric>

namespace treecache::fib {

PacketSampler::PacketSampler(const RuleTree& rules, double zipf_skew,
                             Rng& rng)
    : rules_(&rules),
      ranked_([&] {
        // Rank the non-root rules in random order.
        std::vector<NodeId> ids(rules.tree.size() - 1);
        std::iota(ids.begin(), ids.end(), NodeId{1});
        rng.shuffle(ids);
        return ids;
      }()),
      sampler_(std::max<std::size_t>(ranked_.size(), 1), zipf_skew) {
  TC_CHECK(!ranked_.empty(), "rule tree has only the default rule");
}

NodeId PacketSampler::sample_rule(Rng& rng) const {
  return ranked_[sampler_.sample(rng)];
}

Address PacketSampler::sample_address(Rng& rng) const {
  const NodeId rule = sample_rule(rng);
  const Prefix p = rules_->prefix[rule];
  const Address span_mask =
      p.length == 32 ? 0 : ((Address{1} << (32 - p.length)) - 1);
  // A handful of rejection rounds keeps most packets on the sampled rule;
  // residual hits land on a more specific child, which is fine.
  Address addr = p.bits | (static_cast<Address>(rng()) & span_mask);
  for (int tries = 0; tries < 8 && rules_->lpm(addr) != rule; ++tries) {
    addr = p.bits | (static_cast<Address>(rng()) & span_mask);
  }
  return addr;
}

FibTraceSource::FibTraceSource(const RuleTree& rules,
                               const FibWorkloadConfig& config, Rng rng)
    : rules_(&rules),
      config_(config),
      sampler_(rules, config.zipf_skew, rng),
      start_rng_(rng),
      rng_(rng) {
  TC_CHECK(config_.alpha >= 1, "alpha must be positive");
}

std::size_t FibTraceSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size()) {
    if (pending_ > 0) {
      --pending_;
      buffer[n++] = negative(pending_node_);
      continue;
    }
    if (events_done_ == config_.events) break;
    ++events_done_;
    if (rng_.chance(config_.update_probability)) {
      pending_node_ = sampler_.sample_rule(rng_);
      pending_ = config_.alpha;
    } else {
      buffer[n++] =
          positive(rules_->lpm(sampler_.sample_address(rng_)));
    }
  }
  return n;
}

std::unique_ptr<RequestSource> FibTraceSource::fork() const {
  // Copy (sampler permutation included), then rewind to the captured
  // post-setup RNG state: the fork replays the identical stream.
  auto copy = std::make_unique<FibTraceSource>(*this);
  copy->reset();
  return copy;
}

void FibTraceSource::reset() {
  rng_ = start_rng_;
  events_done_ = 0;
  pending_ = 0;
}

ChunkedTrace make_fib_workload(const RuleTree& rules,
                               const FibWorkloadConfig& config, Rng& rng) {
  TC_CHECK(config.alpha >= 1, "alpha must be positive");
  const PacketSampler packets(rules, config.zipf_skew, rng);
  ChunkedTrace out;
  out.trace.reserve(config.events);
  for (std::size_t event = 0; event < config.events; ++event) {
    if (rng.chance(config.update_probability)) {
      const NodeId rule = packets.sample_rule(rng);
      const std::size_t begin = out.trace.size();
      append_repeated(out.trace, negative(rule), config.alpha);
      out.chunks.emplace_back(begin, out.trace.size());
    } else {
      out.trace.push_back(positive(rules.lpm(packets.sample_address(rng))));
    }
  }
  return out;
}

}  // namespace treecache::fib
