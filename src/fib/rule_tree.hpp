// Rule dependency tree extraction (§2 of the paper).
//
// The forwarding rules of a FIB form an implicit tree under prefix
// inclusion: the parent of a rule is its longest proper ancestor prefix.
// An artificial default rule 0.0.0.0/0 (node 0) roots the tree; it
// forwards unmatched packets to the controller (Figure 1). Tree caching
// runs on exactly this tree: caching a rule requires caching all of its
// more-specific descendants, which is what makes LPM over the cached
// subset return correct egress ports.
#pragma once

#include <vector>

#include "fib/prefix_trie.hpp"
#include "tree/tree.hpp"

namespace treecache::fib {

struct RuleTree {
  Tree tree;                   // node 0 = artificial default rule
  std::vector<Prefix> prefix;  // per tree node
  PrefixTrie trie;             // LPM over ALL rules → tree node id

  /// Full-table longest-prefix match; node 0 (default rule) if nothing
  /// more specific matches.
  [[nodiscard]] NodeId lpm(Address addr) const {
    return trie.lookup(addr).value_or(0);
  }
};

/// Builds the rule tree from a set of prefixes. Duplicates are dropped; a
/// 0.0.0.0/0 entry, if present, merges into the artificial root. Node ids
/// are assigned so that parents precede children (sorted by prefix length).
[[nodiscard]] RuleTree build_rule_tree(std::vector<Prefix> prefixes);

}  // namespace treecache::fib
