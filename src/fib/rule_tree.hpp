// Rule dependency tree extraction (§2 of the paper).
//
// The forwarding rules of a FIB form an implicit tree under prefix
// inclusion: the parent of a rule is its longest proper ancestor prefix.
// An artificial default rule /0 (node 0) roots the tree; it forwards
// unmatched packets to the controller (Figure 1). Tree caching runs on
// exactly this tree: caching a rule requires caching all of its
// more-specific descendants, which is what makes LPM over the cached
// subset return correct egress ports. Generic over the key width:
// RuleTree is the IPv4 instantiation, RuleTree6 the IPv6 one.
#pragma once

#include <vector>

#include "fib/ipv6.hpp"
#include "fib/prefix_trie.hpp"
#include "tree/tree.hpp"

namespace treecache::fib {

template <typename PrefixT>
struct BasicRuleTree {
  using Bits = typename PrefixT::Bits;

  Tree tree;                    // node 0 = artificial default rule
  std::vector<PrefixT> prefix;  // per tree node
  BasicPrefixTrie<PrefixT> trie;  // LPM over ALL rules → tree node id

  /// Full-table longest-prefix match; node 0 (default rule) if nothing
  /// more specific matches.
  [[nodiscard]] NodeId lpm(const Bits& addr) const {
    return trie.lookup(addr).value_or(0);
  }
};

using RuleTree = BasicRuleTree<Prefix>;
using RuleTree6 = BasicRuleTree<Prefix6>;

/// Builds the rule tree from a set of prefixes. Duplicates are dropped; a
/// /0 entry, if present, merges into the artificial root. Node ids are
/// assigned so that parents precede children (sorted by prefix length).
template <typename PrefixT>
[[nodiscard]] BasicRuleTree<PrefixT> build_rule_tree(
    std::vector<PrefixT> prefixes);

}  // namespace treecache::fib
