// IPv6: a 128-bit key type plus the AddressFamily specialization that
// lets BasicPrefix / BasicPrefixTrie / BasicRuleTree / rib_gen run on
// IPv6 prefixes unchanged. Text form is RFC 4291 hex groups with a
// single "::" compression; formatting follows RFC 5952 (lowercase,
// longest zero run of >= 2 groups compressed, leftmost on ties).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "fib/ipv4.hpp"

namespace treecache::fib {

/// 128-bit unsigned key: two 64-bit limbs with exactly the operator set
/// the generic prefix machinery needs (masks, shifts, comparisons).
/// Ordering is numeric — high limb first — via the defaulted comparison.
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr U128() = default;
  constexpr explicit U128(std::uint64_t value) : lo(value) {}
  constexpr U128(std::uint64_t hi, std::uint64_t lo) : hi(hi), lo(lo) {}

  friend constexpr U128 operator&(const U128& a, const U128& b) {
    return U128{a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr U128 operator|(const U128& a, const U128& b) {
    return U128{a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr U128 operator^(const U128& a, const U128& b) {
    return U128{a.hi ^ b.hi, a.lo ^ b.lo};
  }
  friend constexpr U128 operator~(const U128& a) {
    return U128{~a.hi, ~a.lo};
  }
  friend constexpr U128 operator<<(const U128& a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return U128{};
    if (n >= 64) return U128{a.lo << (n - 64), 0};
    return U128{(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }
  friend constexpr U128 operator>>(const U128& a, unsigned n) {
    if (n == 0) return a;
    if (n >= 128) return U128{};
    if (n >= 64) return U128{0, a.hi >> (n - 64)};
    return U128{a.hi >> n, (a.lo >> n) | (a.hi << (64 - n))};
  }

  friend constexpr auto operator<=>(const U128&, const U128&) = default;
};

using Address6 = U128;

template <>
struct AddressFamily<Address6> {
  static constexpr unsigned kWidth = 128;
  static constexpr const char* kName = "IPv6";
  [[nodiscard]] static std::string to_string(const Address6& addr);
  /// Strict RFC 4291 parser: 1-4 hex digits per group, exactly eight
  /// groups unless a single "::" supplies the missing zeros. Errors
  /// carry the 1-based column.
  [[nodiscard]] static Address6 parse(std::string_view text);
  [[nodiscard]] static Address6 random(Rng& rng);
};

using Prefix6 = BasicPrefix<Address6>;

[[nodiscard]] std::string address6_to_string(const Address6& addr);
[[nodiscard]] Address6 parse_address6(const std::string& text);

}  // namespace treecache::fib
