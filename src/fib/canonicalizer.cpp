#include "fib/canonicalizer.hpp"

#include <algorithm>

namespace treecache::fib {

namespace {
/// Applies one recorded modification to the shadow cache, in a validity-
/// preserving order, and returns the number of changed nodes.
std::size_t apply_to_shadow(Subforest& shadow, const Tree& tree,
                            ChangeKind kind, std::span<const NodeId> nodes) {
  std::vector<NodeId> order(nodes.begin(), nodes.end());
  switch (kind) {
    case ChangeKind::kFetch:
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return tree.depth(a) > tree.depth(b);  // deepest first
      });
      for (const NodeId v : order) {
        if (!shadow.contains(v)) shadow.insert(v);
      }
      break;
    case ChangeKind::kEvict:
    case ChangeKind::kPhaseRestart:
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return tree.depth(a) < tree.depth(b);  // shallowest first
      });
      for (const NodeId v : order) {
        if (shadow.contains(v)) shadow.erase(v);
      }
      break;
    case ChangeKind::kNone:
      break;
  }
  return order.size();
}
}  // namespace

CanonicalizationReport run_canonicalized(const Tree& tree,
                                         const ChunkedTrace& input,
                                         OnlineAlgorithm& alg) {
  CanonicalizationReport report;
  report.chunks = input.chunks.size();

  Subforest shadow(tree);
  std::size_t next_chunk = 0;
  struct PendingChange {
    ChangeKind kind;
    std::vector<NodeId> nodes;
  };
  std::vector<PendingChange> pending;
  bool chunk_dirty = false;  // a change happened strictly inside the chunk

  for (std::size_t i = 0; i < input.trace.size(); ++i) {
    const Request r = input.trace[i];
    // Is round i inside a chunk? Chunks are ordered and disjoint.
    while (next_chunk < input.chunks.size() &&
           input.chunks[next_chunk].second <= i) {
      ++next_chunk;
    }
    const bool in_chunk = next_chunk < input.chunks.size() &&
                          input.chunks[next_chunk].first <= i &&
                          i < input.chunks[next_chunk].second;
    const bool chunk_last =
        in_chunk && (i + 1 == input.chunks[next_chunk].second);

    // The canonical solution serves from the shadow cache.
    const bool shadow_pays = r.sign == Sign::kPositive
                                 ? !shadow.contains(r.node)
                                 : shadow.contains(r.node);
    if (shadow_pays) ++report.canonical_cost.service;

    const StepOutcome out = alg.step(r);
    if (out.change != ChangeKind::kNone) {
      if (!out.also_evicted.empty()) {  // room-making evictions come first
        pending.push_back(
            PendingChange{ChangeKind::kEvict,
                          std::vector<NodeId>(out.also_evicted.begin(),
                                              out.also_evicted.end())});
      }
      pending.push_back(PendingChange{
          out.change,
          std::vector<NodeId>(out.changed.begin(), out.changed.end())});
      // A change at the chunk's LAST round already happens after the whole
      // chunk was served — it is canonical as-is. Only changes strictly
      // inside the chunk get postponed (and can raise the service cost).
      if (in_chunk && !chunk_last) chunk_dirty = true;
    }

    // Outside chunks, or at a chunk's last round, sync the shadow cache.
    // (Node-movement costs are identical to the algorithm's — the moves
    // merely happen later — so reorg is copied wholesale at the end.)
    if (!in_chunk || chunk_last) {
      if (chunk_last && chunk_dirty) ++report.dirty_chunks;
      chunk_dirty = false;
      for (const PendingChange& change : pending) {
        apply_to_shadow(shadow, tree, change.kind, change.nodes);
      }
      pending.clear();
    }
  }
  // Any modifications pending after the last round are applied (trace may
  // end mid-chunk).
  for (const PendingChange& change : pending) {
    apply_to_shadow(shadow, tree, change.kind, change.nodes);
  }
  pending.clear();

  report.raw_cost = alg.cost();
  // The canonical solution performs exactly the same node movements, only
  // later; its reorganization cost equals the algorithm's.
  report.canonical_cost.reorg = report.raw_cost.reorg;
  return report;
}

}  // namespace treecache::fib
