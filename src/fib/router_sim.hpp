// Controller/switch simulation of Figure 1 — the self-contained reference
// event loop. Production paths run the same loop through the unified
// driver instead (fib/router_source.hpp + sim::run_source); equality of
// the two is enforced by tests/test_fib_engine.cpp.
//
// The switch holds the cached subforest of rules; packets are looked up by
// LPM over the cached rules only. A miss (no cached rule matches beyond the
// artificial default) costs 1 — the packet detours via the controller,
// which then feeds the corresponding positive request to the caching
// algorithm. Rule updates cost α when the rule is cached (a chunk of α
// negative requests, Appendix B).
//
// The simulation also *proves the model's point* operationally: it checks
// on every packet that LPM over the cached subforest never resolves to a
// wrong (less specific) rule — the subforest invariant makes partial FIBs
// forwarding-correct. Any violation is counted in forwarding_errors (and
// must be zero for every subforest-invariant algorithm). If a violation
// does occur, the controller detects the stray flow and detours it, so the
// mis-forwarded packet is charged and reported to the caching algorithm
// exactly like a miss (a positive request for the full-table match) rather
// than silently disappearing from the online instance.
#pragma once

#include <cstdint>

#include "core/online_algorithm.hpp"
#include "fib/traffic.hpp"

namespace treecache::fib {

struct RouterSimConfig {
  std::size_t packets = 100000;
  double zipf_skew = 1.0;
  /// Chance per event that a rule update arrives instead of a packet.
  double update_probability = 0.0;
  std::uint64_t alpha = 16;  // must match the algorithm's α
  std::uint64_t seed = 1;
};

struct RouterSimResult {
  std::uint64_t packets = 0;  // = hits + misses + forwarding_errors
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;           // controller detours (no cached match)
  std::uint64_t updates = 0;          // rule-update events
  std::uint64_t cached_updates = 0;   // updates that hit a cached rule
  /// Packets a cached rule mis-forwarded (then corrected via controller
  /// detour). MUST stay 0 for subforest-invariant algorithms.
  std::uint64_t forwarding_errors = 0;
  Cost algorithm_cost;

  /// Aggregates per-shard slices of one event stream (the engine's mirror
  /// split): every counter and the cost, field by field — so a new counter
  /// added here is summed everywhere, not silently dropped from sharded
  /// aggregates.
  RouterSimResult& operator+=(const RouterSimResult& other) {
    packets += other.packets;
    hits += other.hits;
    misses += other.misses;
    updates += other.updates;
    cached_updates += other.cached_updates;
    forwarding_errors += other.forwarding_errors;
    algorithm_cost += other.algorithm_cost;
    return *this;
  }

  [[nodiscard]] double hit_rate() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(packets);
  }
  [[nodiscard]] double miss_rate() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(misses) /
                              static_cast<double>(packets);
  }
};

/// Runs the event loop against `alg` (whose tree must be rules.tree).
[[nodiscard]] RouterSimResult run_router_sim(const RuleTree& rules,
                                             OnlineAlgorithm& alg,
                                             const RouterSimConfig& config);

}  // namespace treecache::fib
