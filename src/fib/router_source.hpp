// The Figure-1 switch/controller event loop as a closed-loop RequestSource.
//
// RouterSource replays exactly the event stream of run_router_sim
// (fib/router_sim.hpp, the reference implementation — equality is enforced
// by tests), but instead of stepping the algorithm itself it emits the
// requests the controller would feed it and lets the shared sim::run_source
// driver do the stepping. The switch-side state it needs — "is this rule
// cached right now?" for LPM over the cached subforest and for the
// cached-update statistic — is mirrored from the StepOutcome feedback the
// driver hands to observe() after every round, so the source never touches
// the algorithm.
//
// Closed-loop batching contract: a pending α-chunk is predetermined and may
// be batched, but after emitting a packet request fill() returns — the next
// event reads the mirror, which the not-yet-observed outcome may change.
#pragma once

#include <cstdint>
#include <vector>

#include "core/request_source.hpp"
#include "fib/router_sim.hpp"
#include "fib/traffic.hpp"

namespace treecache::fib {

class RouterSource final : public RequestSource {
 public:
  /// `rules` must outlive the source. The algorithm driven against this
  /// source must start from an empty cache (a fresh or reset() instance)
  /// on the same rule tree.
  RouterSource(const RuleTree& rules, const RouterSimConfig& config);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  void observe(const StepOutcome& outcome) override;
  [[nodiscard]] bool is_closed_loop() const override { return true; }

  /// Event-loop statistics accumulated so far. `algorithm_cost` is left
  /// zero — the caller owns the algorithm and its cost.
  [[nodiscard]] const RouterSimResult& stats() const { return stats_; }

 private:
  [[nodiscard]] bool cached(NodeId v) const { return cached_[v] != 0; }

  const RuleTree* rules_;
  RouterSimConfig config_;
  Rng rng_;               // seeded, then consumed by the sampler's setup
  PacketSampler sampler_;
  Rng start_rng_;         // rng_ state AFTER the sampler's permutation draw
  std::vector<std::uint8_t> cached_;  // mirror of the algorithm's cache
  RouterSimResult stats_;
  NodeId pending_node_ = 0;
  std::uint64_t pending_ = 0;  // negatives left in the current α-chunk
};

}  // namespace treecache::fib
