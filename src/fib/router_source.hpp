// The Figure-1 switch/controller event loop as a closed-loop RequestSource.
//
// RouterSource replays exactly the event stream of run_router_sim
// (fib/router_sim.hpp, the reference implementation — equality is enforced
// by tests), but instead of stepping the algorithm itself it emits the
// requests the controller would feed it and lets the shared sim::run_source
// driver do the stepping. The switch-side state it needs — "is this rule
// cached right now?" for LPM over the cached subforest and for the
// cached-update statistic — is mirrored from the StepOutcome feedback the
// driver hands to observe_batch() after stepping, so the source never
// touches the algorithm.
//
// Closed-loop batching contract: a pending α-chunk is predetermined and may
// be batched, but after emitting a packet request fill() returns — the next
// event reads the mirror, which the not-yet-observed outcome may change.
//
// Sharding (the producer/consumer mirror split): split() builds ONE
// RouterEventProducer plus one RouterMirrorSource per shard of an
// engine::ShardPlan. Events — event types, sampled rules and addresses —
// are pure RNG, independent of any cache state, so the producer generates
// the global stream ONCE and routes each event into the queue of the shard
// owning its full-table match (the plan partitions the rule tree by
// top-level prefix, and every rule an address's trie walk can touch is an
// ancestor of its LPM match: same top-level prefix, plus the default rule,
// whose per-shard replica each line card mirrors locally). A mirror pulls
// only its own queue; consulting only the shard's own cache mirror, so
// feedback never crosses shards: each mirror needs exactly its shard's
// outcomes, in per-shard order, while outcomes may complete out of order
// globally. Requests are emitted in shard-LOCAL node ids and
// observe_batch() expects shard-local outcomes — a mirror plugs straight
// into the shard's algorithm instance with no translation in the engine.
//
// Threading: the producer is deliberately lock-free-by-exclusivity — all
// sibling mirrors must be consumed from one thread (the engine's run_split
// producer thread), which is the SplitKind::kShared contract.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/request_source.hpp"
#include "engine/shard_plan.hpp"
#include "fib/router_sim.hpp"
#include "fib/traffic.hpp"

namespace treecache::fib {

enum class RouterEventKind : std::uint8_t { kPacket, kUpdate };

/// One pre-generated event of the global router stream. `node` is the
/// GLOBAL id of the packet's full-table LPM match (resp. the updated
/// rule) — global so the consuming mirror can compare it against its
/// cached-LPM walk, which sees global rule ids; the mirror localizes it
/// only when emitting a request.
struct RouterEvent {
  Address addr = 0;  // packets only: the sampled address
  NodeId node = 0;
  RouterEventKind kind = RouterEventKind::kPacket;
};

/// Generates the global event stream ONCE — in exactly the RNG order of
/// the reference loop — and routes every event into a per-shard queue
/// keyed by the shard owning `node`. Generation is pull-driven: a mirror
/// that finds its queue empty pumps the producer until an owned event
/// appears or the stream ends, so memory stays bounded by the skew between
/// shards, not the stream length (drained queues recycle their storage).
///
/// Single-threaded by design: all consumers share the caller's thread.
class RouterEventProducer {
 public:
  /// `rules` and `plan` must outlive the producer.
  RouterEventProducer(const RuleTree& rules, const RouterSimConfig& config,
                      const engine::ShardPlan& plan);

  RouterEventProducer(const RouterEventProducer&) = delete;
  RouterEventProducer& operator=(const RouterEventProducer&) = delete;

  /// Generates up to `budget` further events of the global stream into the
  /// per-shard queues; returns how many were generated (0 = exhausted).
  std::size_t pump(std::size_t budget);

  /// Pumps until `shard` has a queued event or the stream ends; true when
  /// an event is available.
  bool pump_for(std::size_t shard);

  /// Pops the next event owned by `shard` (callers check pump_for first).
  RouterEvent pop(std::size_t shard);

  [[nodiscard]] bool has_event(std::size_t shard) const {
    const Queue& q = queues_[shard];
    return q.head < q.events.size();
  }
  /// Events generated but not yet consumed by `shard` — test hook for the
  /// stable-partition property.
  [[nodiscard]] std::size_t buffered(std::size_t shard) const {
    const Queue& q = queues_[shard];
    return q.events.size() - q.head;
  }
  /// True once the global stream has generated its last event. Queues may
  /// still hold unconsumed events.
  [[nodiscard]] bool exhausted() const {
    return packets_generated_ >= config_.packets;
  }

  /// Rewinds generation to the first event and drops every queued one.
  /// All sibling mirrors must be reset together (the kShared contract).
  void reset();

  /// Standalone-mirror mode: drop every event not owned by `shard` at
  /// generation time instead of queuing it — the other queues have no
  /// consumer, and without this a lone mirror would buffer O(stream).
  /// Generation (RNG, packet count) is unaffected.
  void discard_foreign(std::size_t shard);

  [[nodiscard]] const RuleTree& rules() const { return *rules_; }
  [[nodiscard]] const RouterSimConfig& config() const { return config_; }
  [[nodiscard]] const engine::ShardPlan& plan() const { return *plan_; }

 private:
  struct Queue {
    std::vector<RouterEvent> events;
    std::size_t head = 0;  // consumed prefix; storage recycled when drained
  };

  static constexpr std::size_t kAllShards =
      std::numeric_limits<std::size_t>::max();

  const RuleTree* rules_;
  RouterSimConfig config_;
  const engine::ShardPlan* plan_;
  Rng rng_;        // seeded, then consumed by the sampler's setup
  PacketSampler sampler_;
  Rng start_rng_;  // rng_ state AFTER the sampler's permutation draw
  std::vector<Queue> queues_;         // one per shard of the plan
  std::uint64_t packets_generated_ = 0;  // global termination condition
  std::size_t solo_shard_ = kAllShards;  // discard_foreign() mode
};

/// One shard's slice of the closed loop: consumes its shard's events from
/// a (usually shared) RouterEventProducer, emits the requests those events
/// imply (in shard-local ids), and keeps one cache mirror for the shard's
/// algorithm instance, fed by observe_batch() with that instance's
/// outcomes in per-shard order. RouterSource below IS the trivial
/// single-shard mirror behind the classic interface, so the two can never
/// drift apart.
class RouterMirrorSource final : public RequestSource {
 public:
  /// Standalone mirror with a PRIVATE producer — the sequential reference
  /// shape (tests drive one per shard independently). Replays the full
  /// global generation per mirror, so S standalone mirrors pay the S×
  /// generation tax the shared split exists to avoid. `rules` and `plan`
  /// must outlive the source.
  RouterMirrorSource(const RuleTree& rules, const RouterSimConfig& config,
                     const engine::ShardPlan& plan, std::size_t shard);

  /// Producer-fed mirror sharing `producer` with its sibling shards (the
  /// shape RouterSource::split builds): generation runs once for all of
  /// them. See the kShared contract in the header comment.
  RouterMirrorSource(std::shared_ptr<RouterEventProducer> producer,
                     std::size_t shard);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  /// Resets the mirror AND rewinds its producer — with a shared producer,
  /// all sibling mirrors must be reset together.
  void reset() override;
  void observe_batch(std::span<const StepOutcome> outcomes) override;
  [[nodiscard]] bool is_closed_loop() const override { return true; }

  /// Statistics of the events this shard owns. Summing over all mirrors
  /// of a plan reconstructs the full event stream: every packet and every
  /// update is owned by exactly one shard.
  [[nodiscard]] const RouterSimResult& stats() const { return stats_; }
  [[nodiscard]] std::size_t shard() const { return shard_; }

 private:
  /// Cache-mirror lookup by GLOBAL rule id, as the trie walk sees rules.
  /// Foreign rules read as uncached except the default rule, which reads
  /// this shard's replica (local node 0) — the line card's own copy.
  [[nodiscard]] bool cached_rule(NodeId v) const;

  std::shared_ptr<RouterEventProducer> producer_;
  const RuleTree* rules_;  // == &producer_->rules(), cached for the walk
  const engine::ShardPlan* plan_;
  std::size_t shard_;
  std::uint64_t alpha_;
  std::vector<std::uint8_t> cached_;  // by LOCAL id, incl. replica root
  RouterSimResult stats_;             // owned events only
  NodeId pending_local_ = 0;
  std::uint64_t pending_ = 0;  // negatives left in the current α-chunk
};

/// The unsharded event loop: a thin wrapper over a RouterMirrorSource on
/// the trivial one-shard plan, so there is exactly ONE implementation of
/// the event stream — a mirror cannot drift out of lockstep with the
/// "whole" source, because they are the same code. Equality with the
/// self-contained reference loop (fib/router_sim.hpp) is enforced by
/// tests, and transitively pins every shard mirror.
class RouterSource final : public RequestSource {
 public:
  /// `rules` must outlive the source. The algorithm driven against this
  /// source must start from an empty cache (a fresh or reset() instance)
  /// on the same rule tree.
  RouterSource(const RuleTree& rules, const RouterSimConfig& config);

  // The internal mirror's producer points at the member plan: default
  // copy/move would dangle it.
  RouterSource(const RouterSource&) = delete;
  RouterSource& operator=(const RouterSource&) = delete;

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  void observe_batch(std::span<const StepOutcome> outcomes) override;
  [[nodiscard]] bool is_closed_loop() const override { return true; }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override {
    return std::make_unique<RouterSource>(*rules_, config_);
  }

  /// One producer-fed RouterMirrorSource per shard, all sharing a single
  /// RouterEventProducer (see the header comment): generation runs once,
  /// whatever the shard count. `plan` must be built over this source's
  /// rule tree and outlive the mirrors; every element is a
  /// RouterMirrorSource, so callers that need per-shard router statistics
  /// may downcast.
  [[nodiscard]] std::vector<std::unique_ptr<RequestSource>> split(
      const engine::ShardPlan& plan) const override;
  [[nodiscard]] SplitKind split_kind() const override {
    return SplitKind::kShared;
  }

  /// Event-loop statistics accumulated so far. `algorithm_cost` is left
  /// zero — the caller owns the algorithm and its cost.
  [[nodiscard]] const RouterSimResult& stats() const {
    return whole_.stats();
  }

 private:
  const RuleTree* rules_;
  RouterSimConfig config_;
  engine::ShardPlan trivial_plan_;  // one shard = the whole rule tree
  RouterMirrorSource whole_;        // initialized after the plan it views
};

}  // namespace treecache::fib
