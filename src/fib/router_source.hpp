// The Figure-1 switch/controller event loop as a closed-loop RequestSource.
//
// RouterSource replays exactly the event stream of run_router_sim
// (fib/router_sim.hpp, the reference implementation — equality is enforced
// by tests), but instead of stepping the algorithm itself it emits the
// requests the controller would feed it and lets the shared sim::run_source
// driver do the stepping. The switch-side state it needs — "is this rule
// cached right now?" for LPM over the cached subforest and for the
// cached-update statistic — is mirrored from the StepOutcome feedback the
// driver hands to observe() after every round, so the source never touches
// the algorithm.
//
// Closed-loop batching contract: a pending α-chunk is predetermined and may
// be batched, but after emitting a packet request fill() returns — the next
// event reads the mirror, which the not-yet-observed outcome may change.
//
// Sharding (the mirror split): split() turns the source into one
// RouterMirrorSource per shard of an engine::ShardPlan. Every mirror
// replays the SAME global event stream — event types, sampled rules and
// addresses are pure RNG, independent of any cache state, so all mirrors
// stay in lockstep by construction — but a mirror only *acts on* the
// events whose full-table match lands in its shard (the plan partitions
// the rule tree by top-level prefix, and every rule an address's trie walk
// can touch is an ancestor of its LPM match: same top-level prefix, plus
// the default rule, whose per-shard replica each line card mirrors
// locally). Owned events consult only the shard's own cache mirror, so
// feedback never crosses shards: each mirror needs exactly its shard's
// outcomes, in per-shard order, while outcomes may complete out of order
// globally. Requests are emitted in shard-LOCAL node ids and observe()
// expects shard-local outcomes — a mirror plugs straight into the shard's
// algorithm instance with no translation in the engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/request_source.hpp"
#include "engine/shard_plan.hpp"
#include "fib/router_sim.hpp"
#include "fib/traffic.hpp"

namespace treecache::fib {

/// One shard's slice of the closed loop: replays the global event stream
/// in RNG lockstep with every other mirror, emits only the requests owned
/// by its shard (in shard-local ids), and keeps one cache mirror for the
/// shard's algorithm instance, fed by observe() with that instance's
/// outcomes in per-shard order. RouterSource below IS the trivial
/// single-shard mirror behind the classic interface, so the two can never
/// drift apart. `rules` and `plan` must outlive the source.
class RouterMirrorSource final : public RequestSource {
 public:
  RouterMirrorSource(const RuleTree& rules, const RouterSimConfig& config,
                     const engine::ShardPlan& plan, std::size_t shard);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  void observe(const StepOutcome& outcome) override;
  [[nodiscard]] bool is_closed_loop() const override { return true; }

  /// Statistics of the events this shard owns. Summing over all mirrors
  /// of a plan reconstructs the full event stream: every packet and every
  /// update is owned by exactly one shard.
  [[nodiscard]] const RouterSimResult& stats() const { return stats_; }
  [[nodiscard]] std::size_t shard() const { return shard_; }

 private:
  /// Is global rule `v` owned by this shard?
  [[nodiscard]] bool owns(NodeId v) const;
  /// Cache-mirror lookup by GLOBAL rule id, as the trie walk sees rules.
  /// Foreign rules read as uncached except the default rule, which reads
  /// this shard's replica (local node 0) — the line card's own copy.
  [[nodiscard]] bool cached_rule(NodeId v) const;

  const RuleTree* rules_;
  RouterSimConfig config_;
  const engine::ShardPlan* plan_;
  std::size_t shard_;
  Rng rng_;        // seeded, then consumed by the sampler's setup
  PacketSampler sampler_;
  Rng start_rng_;  // rng_ state AFTER the sampler's permutation draw
  std::vector<std::uint8_t> cached_;  // by LOCAL id, incl. replica root
  RouterSimResult stats_;             // owned events only
  std::uint64_t packets_seen_ = 0;    // GLOBAL packet count (termination)
  NodeId pending_local_ = 0;
  std::uint64_t pending_ = 0;  // negatives left in the current α-chunk
};

/// The unsharded event loop: a thin wrapper over a RouterMirrorSource on
/// the trivial one-shard plan, so there is exactly ONE implementation of
/// the event stream — a mirror cannot drift out of RNG lockstep with the
/// "whole" source, because they are the same code. Equality with the
/// self-contained reference loop (fib/router_sim.hpp) is enforced by
/// tests, and transitively pins every shard mirror.
class RouterSource final : public RequestSource {
 public:
  /// `rules` must outlive the source. The algorithm driven against this
  /// source must start from an empty cache (a fresh or reset() instance)
  /// on the same rule tree.
  RouterSource(const RuleTree& rules, const RouterSimConfig& config);

  // The internal mirror points at the member plan: default copy/move
  // would dangle it.
  RouterSource(const RouterSource&) = delete;
  RouterSource& operator=(const RouterSource&) = delete;

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  void observe(const StepOutcome& outcome) override;
  [[nodiscard]] bool is_closed_loop() const override { return true; }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override {
    return std::make_unique<RouterSource>(*rules_, config_);
  }

  /// One RouterMirrorSource per shard (see the header comment). `plan`
  /// must be built over this source's rule tree and outlive the mirrors;
  /// every element is a RouterMirrorSource, so callers that need per-shard
  /// router statistics may downcast.
  [[nodiscard]] std::vector<std::unique_ptr<RequestSource>> split(
      const engine::ShardPlan& plan) const override;

  /// Event-loop statistics accumulated so far. `algorithm_cost` is left
  /// zero — the caller owns the algorithm and its cost.
  [[nodiscard]] const RouterSimResult& stats() const {
    return whole_.stats();
  }

 private:
  const RuleTree* rules_;
  RouterSimConfig config_;
  engine::ShardPlan trivial_plan_;  // one shard = the whole rule tree
  RouterMirrorSource whole_;        // initialized after the plan it views
};

}  // namespace treecache::fib
