#include "fib/router_source.hpp"

#include <algorithm>

#include "core/online_algorithm.hpp"
#include "engine/shard_plan.hpp"

namespace treecache::fib {

RouterSource::RouterSource(const RuleTree& rules,
                           const RouterSimConfig& config)
    : rules_(&rules),
      config_(config),
      trivial_plan_(rules.tree, 1),
      whole_(rules, config, trivial_plan_, 0) {}

std::size_t RouterSource::fill(std::span<Request> buffer) {
  return whole_.fill(buffer);
}

void RouterSource::reset() { whole_.reset(); }

void RouterSource::observe(const StepOutcome& outcome) {
  whole_.observe(outcome);
}

std::vector<std::unique_ptr<RequestSource>> RouterSource::split(
    const engine::ShardPlan& plan) const {
  TC_CHECK(&plan.universe() == &rules_->tree,
           "the shard plan was built over a different tree than this "
           "router's rule tree");
  std::vector<std::unique_ptr<RequestSource>> out;
  out.reserve(plan.num_shards());
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    out.push_back(
        std::make_unique<RouterMirrorSource>(*rules_, config_, plan, s));
  }
  return out;
}

// --- RouterMirrorSource ---------------------------------------------------

RouterMirrorSource::RouterMirrorSource(const RuleTree& rules,
                                       const RouterSimConfig& config,
                                       const engine::ShardPlan& plan,
                                       std::size_t shard)
    : rules_(&rules),
      config_(config),
      plan_(&plan),
      shard_(shard),
      // Identical construction order to RouterSource: the sampler's
      // permutation draw consumes the same seed state, so every mirror —
      // and the unsharded source — ranks rules identically.
      rng_(config.seed),
      sampler_(rules, config.zipf_skew, rng_),
      start_rng_(rng_),
      cached_(plan.shard_tree(shard).size(), 0) {
  TC_CHECK(shard_ < plan.num_shards(), "shard index outside the plan");
  TC_CHECK(config_.update_probability >= 0.0 &&
               config_.update_probability < 1.0,
           "update probability must lie in [0, 1) so packet events can "
           "finish the run");
}

bool RouterMirrorSource::owns(NodeId v) const {
  return plan_->shard_of(v) == shard_;
}

bool RouterMirrorSource::cached_rule(NodeId v) const {
  if (owns(v)) return cached_[plan_->to_local(v)] != 0;
  // An address's trie walk only visits ancestors of its full-table match:
  // rules of the owning shard, plus the default rule. The latter reads as
  // this shard's replica root (local node 0), never as foreign state.
  return v == rules_->tree.root() && cached_[0] != 0;
}

std::size_t RouterMirrorSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  // A pending update chunk is predetermined: drain it (or as much as fits)
  // and return, so its outcomes are observed before the next owned event
  // reads the cache mirror.
  while (pending_ > 0 && n < buffer.size()) {
    --pending_;
    buffer[n++] = negative(pending_local_);
  }
  if (n > 0) return n;

  // Replay the global event stream. `packets_seen_` counts every packet
  // event — the termination condition is global, so all mirrors stop after
  // the same event — while stats_ counts only the events this shard owns.
  while (packets_seen_ < config_.packets) {
    if (rng_.chance(config_.update_probability)) {
      const NodeId rule = sampler_.sample_rule(rng_);
      if (!owns(rule)) continue;  // another line card's update
      ++stats_.updates;
      if (cached_rule(rule)) ++stats_.cached_updates;
      pending_local_ = plan_->to_local(rule);
      pending_ = config_.alpha;
      while (pending_ > 0 && n < buffer.size()) {
        --pending_;
        buffer[n++] = negative(pending_local_);
      }
      return n;
    }

    const Address addr = sampler_.sample_address(rng_);
    const NodeId full_match = rules_->lpm(addr);
    ++packets_seen_;
    // Packets whose full-table match is the default rule belong to shard 0
    // (the plan routes the root there), like every other match.
    if (!owns(full_match)) continue;
    ++stats_.packets;
    // The switch looks up the packet over this card's cached rules only.
    const auto cached_match = rules_->trie.lookup_if(
        addr, [&](RuleId rule) { return cached_rule(rule); });

    if (cached_match.has_value() && *cached_match == full_match) {
      ++stats_.hits;
      continue;
    }
    if (cached_match.has_value()) {
      // Mis-forwarded by a cached, less specific rule: controller detour,
      // charged like a miss.
      ++stats_.forwarding_errors;
    } else {
      ++stats_.misses;
    }
    buffer[n++] = positive(plan_->to_local(full_match));
    // Stop here: the fetch this request may trigger changes the mirror
    // the next owned packet lookup depends on.
    return n;
  }
  return 0;
}

void RouterMirrorSource::reset() {
  rng_ = start_rng_;
  std::ranges::fill(cached_, 0);
  stats_ = {};
  packets_seen_ = 0;
  pending_ = 0;
}

void RouterMirrorSource::observe(const StepOutcome& outcome) {
  // Outcomes arrive in shard-LOCAL ids, straight from this shard's
  // algorithm instance.
  for (const NodeId v : outcome.also_evicted) cached_[v] = 0;
  switch (outcome.change) {
    case ChangeKind::kNone:
      break;
    case ChangeKind::kFetch:
      for (const NodeId v : outcome.changed) cached_[v] = 1;
      break;
    case ChangeKind::kEvict:
      for (const NodeId v : outcome.changed) cached_[v] = 0;
      break;
    case ChangeKind::kPhaseRestart:
      std::ranges::fill(cached_, 0);
      break;
  }
}

}  // namespace treecache::fib
