#include "fib/router_source.hpp"

#include <algorithm>

#include "core/online_algorithm.hpp"

namespace treecache::fib {

RouterSource::RouterSource(const RuleTree& rules,
                           const RouterSimConfig& config)
    : rules_(&rules),
      config_(config),
      rng_(config.seed),
      sampler_(rules, config.zipf_skew, rng_),
      start_rng_(rng_),
      cached_(rules.tree.size(), 0) {
  // Only packet events advance stats_.packets, so an update probability of
  // 1 (or more) would never terminate the event loop.
  TC_CHECK(config_.update_probability >= 0.0 &&
               config_.update_probability < 1.0,
           "update probability must lie in [0, 1) so packet events can "
           "finish the run");
}

std::size_t RouterSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  // A pending update chunk is predetermined: drain it (or as much as fits)
  // and return, so its outcomes are observed before the next event reads
  // the cache mirror.
  while (pending_ > 0 && n < buffer.size()) {
    --pending_;
    buffer[n++] = negative(pending_node_);
  }
  if (n > 0) return n;

  while (stats_.packets < config_.packets) {
    if (rng_.chance(config_.update_probability)) {
      // A BGP-style update to a Zipf-popular rule. The controller updates
      // its full table for free; a cached copy on the switch costs α,
      // modelled as α negative requests (Appendix B).
      const NodeId rule = sampler_.sample_rule(rng_);
      ++stats_.updates;
      if (cached(rule)) ++stats_.cached_updates;
      pending_node_ = rule;
      pending_ = config_.alpha;
      while (pending_ > 0 && n < buffer.size()) {
        --pending_;
        buffer[n++] = negative(pending_node_);
      }
      return n;
    }

    const Address addr = sampler_.sample_address(rng_);
    const NodeId full_match = rules_->lpm(addr);
    // The switch looks up the packet over its cached rules only.
    const auto cached_match = rules_->trie.lookup_if(
        addr, [&](RuleId rule) { return cached(rule); });
    ++stats_.packets;

    if (cached_match.has_value()) {
      if (*cached_match == full_match) {
        // Forwarding is correct; the algorithm never sees the packet.
        ++stats_.hits;
        continue;
      }
      // Mis-forwarded. The controller detects the stray flow and detours
      // it, so the online algorithm sees (and is charged for) the same
      // positive request a miss would have produced.
      ++stats_.forwarding_errors;
    } else {
      // Only the artificial default rule matched: detour via controller.
      ++stats_.misses;
    }
    buffer[n++] = positive(full_match);
    // Stop here: the fetch this request may trigger changes the mirror
    // the next packet lookup depends on.
    return n;
  }
  return 0;
}

void RouterSource::reset() {
  rng_ = start_rng_;
  std::ranges::fill(cached_, 0);
  stats_ = {};
  pending_ = 0;
}

void RouterSource::observe(const StepOutcome& outcome) {
  for (const NodeId v : outcome.also_evicted) cached_[v] = 0;
  switch (outcome.change) {
    case ChangeKind::kNone:
      break;
    case ChangeKind::kFetch:
      for (const NodeId v : outcome.changed) cached_[v] = 1;
      break;
    case ChangeKind::kEvict:
      for (const NodeId v : outcome.changed) cached_[v] = 0;
      break;
    case ChangeKind::kPhaseRestart:
      // The cache was emptied wholesale.
      std::ranges::fill(cached_, 0);
      break;
  }
}

}  // namespace treecache::fib
