#include "fib/router_source.hpp"

#include <algorithm>
#include <utility>

#include "core/online_algorithm.hpp"
#include "engine/shard_plan.hpp"

namespace treecache::fib {
namespace {

/// Events generated per pump_for round: large enough to amortize the call,
/// small enough that a mirror never runs far ahead of its siblings.
constexpr std::size_t kPumpChunk = 256;

std::shared_ptr<RouterEventProducer> require_producer(
    std::shared_ptr<RouterEventProducer> producer) {
  TC_CHECK(producer != nullptr, "router mirror needs an event producer");
  return producer;
}

/// A private producer for a standalone mirror: nobody consumes the other
/// shards' queues, so their events are dropped at generation time.
std::shared_ptr<RouterEventProducer> make_solo_producer(
    const RuleTree& rules, const RouterSimConfig& config,
    const engine::ShardPlan& plan, std::size_t shard) {
  auto producer =
      std::make_shared<RouterEventProducer>(rules, config, plan);
  producer->discard_foreign(shard);
  return producer;
}

}  // namespace

// --- RouterEventProducer --------------------------------------------------

RouterEventProducer::RouterEventProducer(const RuleTree& rules,
                                         const RouterSimConfig& config,
                                         const engine::ShardPlan& plan)
    : rules_(&rules),
      config_(config),
      plan_(&plan),
      // Identical construction order to the reference loop: the sampler's
      // permutation draw consumes the same seed state, so every producer —
      // whatever its plan — ranks rules identically.
      rng_(config.seed),
      sampler_(rules, config.zipf_skew, rng_),
      start_rng_(rng_),
      queues_(plan.num_shards()) {
  TC_CHECK(config_.update_probability >= 0.0 &&
               config_.update_probability < 1.0,
           "update probability must lie in [0, 1) so packet events can "
           "finish the run");
}

void RouterEventProducer::discard_foreign(std::size_t shard) {
  TC_CHECK(shard < queues_.size(), "shard index outside the plan");
  solo_shard_ = shard;
}

std::size_t RouterEventProducer::pump(std::size_t budget) {
  std::size_t generated = 0;
  while (generated < budget && packets_generated_ < config_.packets) {
    if (rng_.chance(config_.update_probability)) {
      const NodeId rule = sampler_.sample_rule(rng_);
      const std::size_t owner = plan_->shard_of(rule);
      if (solo_shard_ == kAllShards || owner == solo_shard_) {
        queues_[owner].events.push_back(RouterEvent{
            .addr = 0, .node = rule, .kind = RouterEventKind::kUpdate});
      }
    } else {
      const Address addr = sampler_.sample_address(rng_);
      // The full-table match is resolved here, once — mirrors never rerun
      // the global LPM. Packets whose match is the default rule belong to
      // shard 0 (the plan routes the root there), like every other match.
      const NodeId match = rules_->lpm(addr);
      ++packets_generated_;
      const std::size_t owner = plan_->shard_of(match);
      if (solo_shard_ == kAllShards || owner == solo_shard_) {
        queues_[owner].events.push_back(RouterEvent{
            .addr = addr, .node = match, .kind = RouterEventKind::kPacket});
      }
    }
    ++generated;
  }
  return generated;
}

bool RouterEventProducer::pump_for(std::size_t shard) {
  while (!has_event(shard) && !exhausted()) pump(kPumpChunk);
  return has_event(shard);
}

RouterEvent RouterEventProducer::pop(std::size_t shard) {
  Queue& q = queues_[shard];
  TC_CHECK(q.head < q.events.size(), "pop from an empty shard queue");
  const RouterEvent event = q.events[q.head++];
  if (q.head == q.events.size()) {
    // Recycle the storage: queues stay sized to the inter-shard skew of
    // one pump round, not the stream length.
    q.events.clear();
    q.head = 0;
  }
  return event;
}

void RouterEventProducer::reset() {
  rng_ = start_rng_;
  packets_generated_ = 0;
  for (Queue& q : queues_) {
    q.events.clear();
    q.head = 0;
  }
}

// --- RouterMirrorSource ---------------------------------------------------

RouterMirrorSource::RouterMirrorSource(const RuleTree& rules,
                                       const RouterSimConfig& config,
                                       const engine::ShardPlan& plan,
                                       std::size_t shard)
    : RouterMirrorSource(make_solo_producer(rules, config, plan, shard),
                         shard) {}

RouterMirrorSource::RouterMirrorSource(
    std::shared_ptr<RouterEventProducer> producer, std::size_t shard)
    : producer_(require_producer(std::move(producer))),
      rules_(&producer_->rules()),
      plan_(&producer_->plan()),
      shard_(shard),
      alpha_(producer_->config().alpha),
      cached_(plan_->shard_tree(shard).size(), 0) {
  TC_CHECK(shard_ < plan_->num_shards(), "shard index outside the plan");
}

bool RouterMirrorSource::cached_rule(NodeId v) const {
  if (plan_->shard_of(v) == shard_) return cached_[plan_->to_local(v)] != 0;
  // An address's trie walk only visits ancestors of its full-table match:
  // rules of the owning shard, plus the default rule. The latter reads as
  // this shard's replica root (local node 0), never as foreign state.
  return v == rules_->tree.root() && cached_[0] != 0;
}

std::size_t RouterMirrorSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  // A pending update chunk is predetermined: drain it (or as much as fits)
  // and return, so its outcomes are observed before the next owned event
  // reads the cache mirror.
  while (pending_ > 0 && n < buffer.size()) {
    --pending_;
    buffer[n++] = negative(pending_local_);
  }
  if (n > 0) return n;

  // Consume this shard's slice of the pre-generated global stream. The
  // producer's termination is global — all mirrors stop after the same
  // event — while stats_ counts only the events this shard owns.
  while (producer_->pump_for(shard_)) {
    const RouterEvent event = producer_->pop(shard_);
    if (event.kind == RouterEventKind::kUpdate) {
      ++stats_.updates;
      if (cached_rule(event.node)) ++stats_.cached_updates;
      pending_local_ = plan_->to_local(event.node);
      pending_ = alpha_;
      while (pending_ > 0 && n < buffer.size()) {
        --pending_;
        buffer[n++] = negative(pending_local_);
      }
      return n;
    }

    ++stats_.packets;
    // The switch looks up the packet over this card's cached rules only;
    // event.node is the pre-resolved full-table match, in global ids like
    // the rules the walk visits.
    const auto cached_match = rules_->trie.lookup_if(
        event.addr, [&](RuleId rule) { return cached_rule(rule); });

    if (cached_match.has_value() && *cached_match == event.node) {
      ++stats_.hits;
      continue;
    }
    if (cached_match.has_value()) {
      // Mis-forwarded by a cached, less specific rule: controller detour,
      // charged like a miss.
      ++stats_.forwarding_errors;
    } else {
      ++stats_.misses;
    }
    buffer[n++] = positive(plan_->to_local(event.node));
    // Stop here: the fetch this request may trigger changes the mirror
    // the next owned packet lookup depends on.
    return n;
  }
  return 0;
}

void RouterMirrorSource::reset() {
  producer_->reset();
  std::ranges::fill(cached_, 0);
  stats_ = {};
  pending_ = 0;
}

void RouterMirrorSource::observe_batch(
    std::span<const StepOutcome> outcomes) {
  // Outcomes arrive in shard-LOCAL ids, straight from this shard's
  // algorithm instance, in per-shard stream order.
  for (const StepOutcome& outcome : outcomes) {
    for (const NodeId v : outcome.also_evicted) cached_[v] = 0;
    switch (outcome.change) {
      case ChangeKind::kNone:
        break;
      case ChangeKind::kFetch:
        for (const NodeId v : outcome.changed) cached_[v] = 1;
        break;
      case ChangeKind::kEvict:
        for (const NodeId v : outcome.changed) cached_[v] = 0;
        break;
      case ChangeKind::kPhaseRestart:
        std::ranges::fill(cached_, 0);
        break;
    }
  }
}

// --- RouterSource ---------------------------------------------------------

RouterSource::RouterSource(const RuleTree& rules,
                           const RouterSimConfig& config)
    : rules_(&rules),
      config_(config),
      trivial_plan_(rules.tree, 1),
      whole_(std::make_shared<RouterEventProducer>(rules, config,
                                                   trivial_plan_),
             0) {}

std::size_t RouterSource::fill(std::span<Request> buffer) {
  return whole_.fill(buffer);
}

void RouterSource::reset() { whole_.reset(); }

void RouterSource::observe_batch(std::span<const StepOutcome> outcomes) {
  whole_.observe_batch(outcomes);
}

std::vector<std::unique_ptr<RequestSource>> RouterSource::split(
    const engine::ShardPlan& plan) const {
  TC_CHECK(&plan.universe() == &rules_->tree,
           "the shard plan was built over a different tree than this "
           "router's rule tree");
  // ONE producer, shared by every mirror: the global stream is generated
  // once, and each mirror consumes exactly its shard's slice of it.
  auto producer =
      std::make_shared<RouterEventProducer>(*rules_, config_, plan);
  std::vector<std::unique_ptr<RequestSource>> out;
  out.reserve(plan.num_shards());
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    out.push_back(std::make_unique<RouterMirrorSource>(producer, s));
  }
  return out;
}

}  // namespace treecache::fib
