// Binary trie over IPv4 prefixes with longest-matching-prefix lookup.
//
// The trie is the router's lookup structure: lookup(addr) returns the
// longest inserted prefix containing addr. lookup_if additionally restricts
// matches to a caller predicate — the router simulation uses it with
// "is this rule cached?" to model lookups over the switch's partial FIB.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fib/ipv4.hpp"

namespace treecache::fib {

/// Value attached to an inserted prefix (the rule id / tree node id).
using RuleId = std::uint32_t;

class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts a prefix; returns false if the exact prefix already exists.
  bool insert(Prefix prefix, RuleId rule);

  [[nodiscard]] std::size_t size() const { return rules_; }

  /// Longest matching prefix over all rules, or nullopt if none matches.
  [[nodiscard]] std::optional<RuleId> lookup(Address addr) const {
    return lookup_if(addr, [](RuleId) { return true; });
  }

  /// Longest matching prefix among rules accepted by `pred`.
  template <typename Pred>
  [[nodiscard]] std::optional<RuleId> lookup_if(Address addr,
                                                Pred&& pred) const {
    std::optional<RuleId> best;
    std::uint32_t node = 0;
    for (int bit = 31;; --bit) {
      if (nodes_[node].rule != kNoRule && pred(nodes_[node].rule)) {
        best = nodes_[node].rule;
      }
      if (bit < 0) break;
      const std::uint32_t child =
          nodes_[node].child[(addr >> bit) & 1];
      if (child == 0) break;
      node = child;
    }
    return best;
  }

  /// Rule stored at exactly this prefix, if any.
  [[nodiscard]] std::optional<RuleId> exact(Prefix prefix) const;

  /// The longest PROPER ancestor prefix of `prefix` that carries a rule.
  [[nodiscard]] std::optional<RuleId> parent_rule(Prefix prefix) const;

 private:
  static constexpr RuleId kNoRule = ~RuleId{0};
  struct Node {
    std::uint32_t child[2] = {0, 0};  // 0 = absent (node 0 is the root)
    RuleId rule = kNoRule;
  };
  std::vector<Node> nodes_;
  std::size_t rules_ = 0;
};

}  // namespace treecache::fib
