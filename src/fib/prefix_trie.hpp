// Binary trie over width-parameterized prefixes with longest-matching-
// prefix lookup. BasicPrefixTrie<Prefix> (IPv4) and BasicPrefixTrie<Prefix6>
// (IPv6) are the two instantiations (explicit, in prefix_trie.cpp).
//
// The trie is the router's lookup structure: lookup(addr) returns the
// longest inserted prefix containing addr. lookup_if additionally restricts
// matches to a caller predicate — the router simulation uses it with
// "is this rule cached?" to model lookups over the switch's partial FIB.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fib/ipv4.hpp"

namespace treecache::fib {

/// Value attached to an inserted prefix (the rule id / tree node id).
using RuleId = std::uint32_t;

template <typename PrefixT>
class BasicPrefixTrie {
 public:
  using Bits = typename PrefixT::Bits;
  static constexpr unsigned kWidth = PrefixT::kWidth;

  BasicPrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts a prefix; returns false if the exact prefix already exists.
  bool insert(const PrefixT& prefix, RuleId rule);

  [[nodiscard]] std::size_t size() const { return rules_; }

  /// Longest matching prefix over all rules, or nullopt if none matches.
  [[nodiscard]] std::optional<RuleId> lookup(const Bits& addr) const {
    return lookup_if(addr, [](RuleId) { return true; });
  }

  /// Longest matching prefix among rules accepted by `pred`.
  template <typename Pred>
  [[nodiscard]] std::optional<RuleId> lookup_if(const Bits& addr,
                                                Pred&& pred) const {
    std::optional<RuleId> best;
    std::uint32_t node = 0;
    for (unsigned depth = 0;; ++depth) {
      if (nodes_[node].rule != kNoRule && pred(nodes_[node].rule)) {
        best = nodes_[node].rule;
      }
      if (depth == kWidth) break;
      const std::uint32_t child =
          nodes_[node].child[key_bit(addr, depth) ? 1 : 0];
      if (child == 0) break;
      node = child;
    }
    return best;
  }

  /// Rule stored at exactly this prefix, if any.
  [[nodiscard]] std::optional<RuleId> exact(const PrefixT& prefix) const;

  /// The longest PROPER ancestor prefix of `prefix` that carries a rule.
  [[nodiscard]] std::optional<RuleId> parent_rule(const PrefixT& prefix) const;

 private:
  static constexpr RuleId kNoRule = ~RuleId{0};
  struct Node {
    std::uint32_t child[2] = {0, 0};  // 0 = absent (node 0 is the root)
    RuleId rule = kNoRule;
  };
  std::vector<Node> nodes_;
  std::size_t rules_ = 0;
};

using PrefixTrie = BasicPrefixTrie<Prefix>;

}  // namespace treecache::fib
