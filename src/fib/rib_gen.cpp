#include "fib/rib_gen.hpp"

#include <algorithm>
#include <set>

namespace treecache::fib {

const std::vector<double>& default_length_histogram() {
  // Relative masses for /0../32. Peaked at /24 (~55–60% of real tables),
  // with the secondary ridge across /16../23 and a thin head of short
  // prefixes — the well-known shape of the global IPv4 table.
  static const std::vector<double> histogram = [] {
    std::vector<double> h(33, 0.0);
    h[8] = 0.4;
    h[9] = 0.3;
    h[10] = 0.5;
    h[11] = 0.7;
    h[12] = 1.0;
    h[13] = 1.4;
    h[14] = 2.0;
    h[15] = 2.2;
    h[16] = 6.0;
    h[17] = 3.0;
    h[18] = 4.0;
    h[19] = 6.5;
    h[20] = 7.5;
    h[21] = 8.0;
    h[22] = 12.0;
    h[23] = 12.0;
    h[24] = 55.0;
    return h;
  }();
  return histogram;
}

const std::vector<double>& default_length_histogram6() {
  // Relative masses for /0../128, modelled on the global IPv6 table:
  // dominant mass at /48 (site assignments), ridges at /32 (RIR
  // allocations), /29, /40, /44, and a /64 tail. Only lengths up to /64
  // carry mass — like /24 for IPv4, nothing longer propagates globally.
  static const std::vector<double> histogram = [] {
    std::vector<double> h(129, 0.0);
    h[16] = 0.2;
    h[20] = 0.3;
    h[24] = 0.6;
    h[28] = 1.0;
    h[29] = 3.0;
    h[32] = 12.0;
    h[36] = 3.0;
    h[40] = 4.5;
    h[44] = 5.0;
    h[48] = 48.0;
    h[52] = 1.5;
    h[56] = 4.0;
    h[60] = 1.0;
    h[64] = 6.0;
    return h;
  }();
  return histogram;
}

template <typename PrefixT>
std::vector<PrefixT> generate_prefixes(const RibConfig& config,
                                       const std::vector<double>& histogram,
                                       Rng& rng) {
  using Bits = typename PrefixT::Bits;
  using Family = AddressFamily<Bits>;
  constexpr unsigned kWidth = PrefixT::kWidth;
  TC_CHECK(config.rules >= 1, "need at least one rule");
  TC_CHECK(histogram.size() == kWidth + 1,
           "histogram must cover lengths 0..kWidth");

  // The shortest length carrying histogram mass bounds samples from below
  // (8 for the IPv4 shape: nothing shorter than a /8 is ever generated).
  std::uint8_t min_length = 0;
  while (min_length <= kWidth &&
         histogram[min_length] == 0.0) {
    ++min_length;
  }
  TC_CHECK(min_length <= kWidth, "empty length histogram");
  TC_CHECK(config.max_length >= min_length && config.max_length <= kWidth,
           "max_length out of the histogram's range");

  // Length sampler restricted to [0, max_length].
  std::vector<double> cdf(config.max_length + 1, 0.0);
  double acc = 0.0;
  for (std::size_t len = 0; len < cdf.size(); ++len) {
    acc += histogram[len];
    cdf[len] = acc;
  }
  TC_CHECK(acc > 0.0, "empty length histogram");
  auto sample_length = [&]() -> std::uint8_t {
    const double u = rng.uniform01() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint8_t>(it - cdf.begin());
  };

  std::set<PrefixT> unique;
  std::vector<PrefixT> rib;
  rib.reserve(config.rules);
  std::size_t attempts = 0;
  const std::size_t max_attempts = config.rules * 64 + 4096;
  while (rib.size() < config.rules) {
    TC_CHECK(++attempts <= max_attempts,
             "RIB generation stalled; relax the configuration");
    PrefixT candidate;
    if (!rib.empty() && rng.chance(config.deaggregation)) {
      // Deaggregate an existing prefix: extend by 1..8 bits.
      const PrefixT base = rib[rng.below(rib.size())];
      const auto extra = static_cast<std::uint8_t>(1 + rng.below(8));
      const std::uint8_t length = std::min<std::uint8_t>(
          config.max_length, static_cast<std::uint8_t>(base.length + extra));
      if (length <= base.length) continue;
      // Random bits exactly in positions base.length .. length-1 (MSB
      // numbering): the part of the new mask beyond the base's mask.
      const Bits span =
          prefix_mask<Bits>(length) & ~prefix_mask<Bits>(base.length);
      const Bits suffix = Family::random(rng) & span;
      candidate = PrefixT::make(base.bits | suffix, length);
    } else {
      const std::uint8_t length =
          std::max<std::uint8_t>(min_length, sample_length());
      candidate = PrefixT::make(Family::random(rng), length);
    }
    if (unique.insert(candidate).second) rib.push_back(candidate);
  }
  return rib;
}

template std::vector<Prefix> generate_prefixes<Prefix>(
    const RibConfig&, const std::vector<double>&, Rng&);
template std::vector<Prefix6> generate_prefixes<Prefix6>(
    const RibConfig&, const std::vector<double>&, Rng&);

std::vector<Prefix> generate_rib(const RibConfig& config, Rng& rng) {
  return generate_prefixes<Prefix>(config, default_length_histogram(), rng);
}

std::vector<Prefix6> generate_rib6(const RibConfig& config, Rng& rng) {
  return generate_prefixes<Prefix6>(config, default_length_histogram6(), rng);
}

}  // namespace treecache::fib
