#include "fib/rib_gen.hpp"

#include <algorithm>
#include <set>

namespace treecache::fib {

const std::vector<double>& default_length_histogram() {
  // Relative masses for /0../32. Peaked at /24 (~55–60% of real tables),
  // with the secondary ridge across /16../23 and a thin head of short
  // prefixes — the well-known shape of the global IPv4 table.
  static const std::vector<double> histogram = [] {
    std::vector<double> h(33, 0.0);
    h[8] = 0.4;
    h[9] = 0.3;
    h[10] = 0.5;
    h[11] = 0.7;
    h[12] = 1.0;
    h[13] = 1.4;
    h[14] = 2.0;
    h[15] = 2.2;
    h[16] = 6.0;
    h[17] = 3.0;
    h[18] = 4.0;
    h[19] = 6.5;
    h[20] = 7.5;
    h[21] = 8.0;
    h[22] = 12.0;
    h[23] = 12.0;
    h[24] = 55.0;
    return h;
  }();
  return histogram;
}

std::vector<Prefix> generate_rib(const RibConfig& config, Rng& rng) {
  TC_CHECK(config.rules >= 1, "need at least one rule");
  TC_CHECK(config.max_length >= 8 && config.max_length <= 32,
           "max_length must be in [8, 32]");

  // Length sampler restricted to [0, max_length].
  const auto& histogram = default_length_histogram();
  std::vector<double> cdf(config.max_length + 1, 0.0);
  double acc = 0.0;
  for (std::size_t len = 0; len < cdf.size(); ++len) {
    acc += histogram[len];
    cdf[len] = acc;
  }
  TC_CHECK(acc > 0.0, "empty length histogram");
  auto sample_length = [&]() -> std::uint8_t {
    const double u = rng.uniform01() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint8_t>(it - cdf.begin());
  };

  std::set<Prefix> unique;
  std::vector<Prefix> rib;
  rib.reserve(config.rules);
  std::size_t attempts = 0;
  const std::size_t max_attempts = config.rules * 64 + 4096;
  while (rib.size() < config.rules) {
    TC_CHECK(++attempts <= max_attempts,
             "RIB generation stalled; relax the configuration");
    Prefix candidate;
    if (!rib.empty() && rng.chance(config.deaggregation)) {
      // Deaggregate an existing prefix: extend by 1..8 bits.
      const Prefix base = rib[rng.below(rib.size())];
      const auto extra = static_cast<std::uint8_t>(1 + rng.below(8));
      const std::uint8_t length = std::min<std::uint8_t>(
          config.max_length, static_cast<std::uint8_t>(base.length + extra));
      if (length <= base.length) continue;
      // Random bits exactly in positions (32-length) .. (32-base.length-1).
      const Address high = (Address{1} << (32 - base.length)) - 1;
      const Address low = (Address{1} << (32 - length)) - 1;
      const Address suffix = static_cast<Address>(rng()) & (high & ~low);
      candidate = Prefix::make(base.bits | suffix, length);
    } else {
      const std::uint8_t length = std::max<std::uint8_t>(8, sample_length());
      candidate = Prefix::make(static_cast<Address>(rng()), length);
    }
    if (unique.insert(candidate).second) rib.push_back(candidate);
  }
  return rib;
}

}  // namespace treecache::fib
