#include "fib/prefix_trie.hpp"

#include "fib/ipv6.hpp"

namespace treecache::fib {

template <typename PrefixT>
bool BasicPrefixTrie<PrefixT>::insert(const PrefixT& prefix, RuleId rule) {
  TC_CHECK(rule != kNoRule, "rule id reserved");
  std::uint32_t node = 0;
  for (unsigned i = 0; i < prefix.length; ++i) {
    const std::uint32_t branch = key_bit(prefix.bits, i) ? 1 : 0;
    if (nodes_[node].child[branch] == 0) {
      nodes_[node].child[branch] = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    node = nodes_[node].child[branch];
  }
  if (nodes_[node].rule != kNoRule) return false;
  nodes_[node].rule = rule;
  ++rules_;
  return true;
}

template <typename PrefixT>
std::optional<RuleId> BasicPrefixTrie<PrefixT>::exact(
    const PrefixT& prefix) const {
  std::uint32_t node = 0;
  for (unsigned i = 0; i < prefix.length; ++i) {
    const std::uint32_t child =
        nodes_[node].child[key_bit(prefix.bits, i) ? 1 : 0];
    if (child == 0) return std::nullopt;
    node = child;
  }
  if (nodes_[node].rule == kNoRule) return std::nullopt;
  return nodes_[node].rule;
}

template <typename PrefixT>
std::optional<RuleId> BasicPrefixTrie<PrefixT>::parent_rule(
    const PrefixT& prefix) const {
  std::optional<RuleId> best;
  std::uint32_t node = 0;
  for (unsigned i = 0; i < prefix.length; ++i) {
    if (nodes_[node].rule != kNoRule) best = nodes_[node].rule;
    const std::uint32_t child =
        nodes_[node].child[key_bit(prefix.bits, i) ? 1 : 0];
    if (child == 0) break;
    node = child;
  }
  return best;
}

template class BasicPrefixTrie<Prefix>;
template class BasicPrefixTrie<Prefix6>;

}  // namespace treecache::fib
