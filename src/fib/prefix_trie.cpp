#include "fib/prefix_trie.hpp"

namespace treecache::fib {

bool PrefixTrie::insert(Prefix prefix, RuleId rule) {
  TC_CHECK(rule != kNoRule, "rule id reserved");
  std::uint32_t node = 0;
  for (int i = 0; i < prefix.length; ++i) {
    const int bit = 31 - i;
    const std::uint32_t branch = (prefix.bits >> bit) & 1;
    if (nodes_[node].child[branch] == 0) {
      nodes_[node].child[branch] = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    node = nodes_[node].child[branch];
  }
  if (nodes_[node].rule != kNoRule) return false;
  nodes_[node].rule = rule;
  ++rules_;
  return true;
}

std::optional<RuleId> PrefixTrie::exact(Prefix prefix) const {
  std::uint32_t node = 0;
  for (int i = 0; i < prefix.length; ++i) {
    const int bit = 31 - i;
    const std::uint32_t child = nodes_[node].child[(prefix.bits >> bit) & 1];
    if (child == 0) return std::nullopt;
    node = child;
  }
  if (nodes_[node].rule == kNoRule) return std::nullopt;
  return nodes_[node].rule;
}

std::optional<RuleId> PrefixTrie::parent_rule(Prefix prefix) const {
  std::optional<RuleId> best;
  std::uint32_t node = 0;
  for (int i = 0; i < prefix.length; ++i) {
    if (nodes_[node].rule != kNoRule) best = nodes_[node].rule;
    const int bit = 31 - i;
    const std::uint32_t child = nodes_[node].child[(prefix.bits >> bit) & 1];
    if (child == 0) break;
    node = child;
  }
  return best;
}

}  // namespace treecache::fib
