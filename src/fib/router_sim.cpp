#include "fib/router_sim.hpp"

namespace treecache::fib {

RouterSimResult run_router_sim(const RuleTree& rules, OnlineAlgorithm& alg,
                               const RouterSimConfig& config) {
  TC_CHECK(&alg.cache().tree() == &rules.tree,
           "algorithm must run on the rule tree");
  // Only packet events advance result.packets, so an update probability of
  // 1 (or more) would never terminate the event loop.
  TC_CHECK(config.update_probability >= 0.0 &&
               config.update_probability < 1.0,
           "update probability must lie in [0, 1) so packet events can "
           "finish the run");
  Rng rng(config.seed);
  const PacketSampler sampler(rules, config.zipf_skew, rng);
  RouterSimResult result;

  while (result.packets < config.packets) {
    if (rng.chance(config.update_probability)) {
      // A BGP-style update to a Zipf-popular rule. The controller updates
      // its full table for free; a cached copy on the switch costs α,
      // modelled as α negative requests (Appendix B).
      const NodeId rule = sampler.sample_rule(rng);
      ++result.updates;
      if (alg.cache().contains(rule)) ++result.cached_updates;
      for (std::uint64_t i = 0; i < config.alpha; ++i) {
        alg.step(negative(rule));
      }
      continue;
    }

    const Address addr = sampler.sample_address(rng);
    const NodeId full_match = rules.lpm(addr);
    // The switch looks up the packet over its cached rules only.
    const auto cached_match = rules.trie.lookup_if(
        addr, [&](RuleId rule) { return alg.cache().contains(rule); });
    ++result.packets;

    if (cached_match.has_value()) {
      // A cached rule matched: forwarding is only correct if it is the
      // same rule the full table would pick.
      if (*cached_match == full_match) {
        ++result.hits;
      } else {
        // Mis-forwarded. The controller detects the stray flow and detours
        // it, so the online algorithm sees (and is charged for) the same
        // positive request a miss would have produced; without it,
        // mis-forwarded flows would be invisible to the algorithm.
        ++result.forwarding_errors;
        alg.step(positive(full_match));
      }
    } else {
      // Only the artificial default rule matched: detour via controller.
      ++result.misses;
      alg.step(positive(full_match));
    }
  }
  result.algorithm_cost = alg.cost();
  return result;
}

}  // namespace treecache::fib
