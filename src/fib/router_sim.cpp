#include "fib/router_sim.hpp"

namespace treecache::fib {

RouterSimResult run_router_sim(const RuleTree& rules, OnlineAlgorithm& alg,
                               const RouterSimConfig& config) {
  TC_CHECK(&alg.cache().tree() == &rules.tree,
           "algorithm must run on the rule tree");
  Rng rng(config.seed);
  const PacketSampler sampler(rules, config.zipf_skew, rng);
  RouterSimResult result;

  while (result.packets < config.packets) {
    if (rng.chance(config.update_probability)) {
      // A BGP-style update to a Zipf-popular rule. The controller updates
      // its full table for free; a cached copy on the switch costs α,
      // modelled as α negative requests (Appendix B).
      const NodeId rule = sampler.sample_rule(rng);
      ++result.updates;
      if (alg.cache().contains(rule)) ++result.cached_updates;
      for (std::uint64_t i = 0; i < config.alpha; ++i) {
        alg.step(negative(rule));
      }
      continue;
    }

    const Address addr = sampler.sample_address(rng);
    const NodeId full_match = rules.lpm(addr);
    // The switch looks up the packet over its cached rules only.
    const auto cached_match = rules.trie.lookup_if(
        addr, [&](RuleId rule) { return alg.cache().contains(rule); });
    ++result.packets;

    if (cached_match.has_value()) {
      // A cached rule matched: forwarding is only correct if it is the
      // same rule the full table would pick.
      if (*cached_match == full_match) {
        ++result.hits;
      } else {
        ++result.forwarding_errors;
      }
    } else {
      // Only the artificial default rule matched: detour via controller.
      ++result.misses;
      alg.step(positive(full_match));
    }
  }
  result.algorithm_cost = alg.cost();
  return result;
}

}  // namespace treecache::fib
