#include "fib/rule_tree.hpp"

#include <algorithm>

namespace treecache::fib {

template <typename PrefixT>
BasicRuleTree<PrefixT> build_rule_tree(std::vector<PrefixT> prefixes) {
  // Sort by length (parents first), then numerically; drop duplicates
  // and any explicit default route (it is the artificial root).
  std::sort(prefixes.begin(), prefixes.end(),
            [](const PrefixT& a, const PrefixT& b) {
              return a.length != b.length ? a.length < b.length
                                          : a.bits < b.bits;
            });
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  std::erase_if(prefixes, [](const PrefixT& p) { return p.length == 0; });

  std::vector<PrefixT> node_prefix;
  node_prefix.reserve(prefixes.size() + 1);
  node_prefix.push_back(PrefixT{});  // node 0: the /0 default rule

  std::vector<NodeId> parent;
  parent.reserve(prefixes.size() + 1);
  parent.push_back(kNoNode);

  // Because parents are shorter and inserted first, parent_rule() resolves
  // each prefix's longest proper ancestor among already-inserted rules,
  // which is its final parent.
  BasicPrefixTrie<PrefixT> trie;
  TC_CHECK(trie.insert(PrefixT{}, 0), "fresh trie must accept the root");
  for (const PrefixT& p : prefixes) {
    const auto node = static_cast<NodeId>(node_prefix.size());
    parent.push_back(trie.parent_rule(p).value_or(0));
    TC_CHECK(trie.insert(p, node), "duplicate prefix after dedupe");
    node_prefix.push_back(p);
  }
  return BasicRuleTree<PrefixT>{Tree(std::move(parent)),
                                std::move(node_prefix), std::move(trie)};
}

template RuleTree build_rule_tree<Prefix>(std::vector<Prefix>);
template RuleTree6 build_rule_tree<Prefix6>(std::vector<Prefix6>);

}  // namespace treecache::fib
