#include "fib/rule_tree.hpp"

#include <algorithm>

namespace treecache::fib {

RuleTree build_rule_tree(std::vector<Prefix> prefixes) {
  // Sort by length (parents first), then lexicographically; drop duplicates
  // and any explicit default route (it is the artificial root).
  std::sort(prefixes.begin(), prefixes.end(),
            [](const Prefix& a, const Prefix& b) {
              return a.length != b.length ? a.length < b.length
                                          : a.bits < b.bits;
            });
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  std::erase_if(prefixes, [](const Prefix& p) { return p.length == 0; });

  std::vector<Prefix> node_prefix;
  node_prefix.reserve(prefixes.size() + 1);
  node_prefix.push_back(Prefix{});  // node 0: 0.0.0.0/0

  std::vector<NodeId> parent;
  parent.reserve(prefixes.size() + 1);
  parent.push_back(kNoNode);

  // Because parents are shorter and inserted first, parent_rule() resolves
  // each prefix's longest proper ancestor among already-inserted rules,
  // which is its final parent.
  PrefixTrie trie;
  TC_CHECK(trie.insert(Prefix{}, 0), "fresh trie must accept the root");
  for (const Prefix& p : prefixes) {
    const auto node = static_cast<NodeId>(node_prefix.size());
    parent.push_back(trie.parent_rule(p).value_or(0));
    TC_CHECK(trie.insert(p, node), "duplicate prefix after dedupe");
    node_prefix.push_back(p);
  }
  return RuleTree{Tree(std::move(parent)), std::move(node_prefix),
                  std::move(trie)};
}

}  // namespace treecache::fib
