#include "fib/ipv6.hpp"

#include <array>
#include <cstdio>
#include <vector>

#include "util/rng.hpp"

namespace treecache::fib {

namespace {

[[noreturn]] void fail_v6(std::string_view text, const std::string& what,
                          std::size_t column) {
  throw CheckFailure("IPv6 address \"" + std::string(text) + "\": " + what +
                     " at column " + std::to_string(column + 1));
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Scans one 1-4 hex-digit group starting at `i`; advances `i`.
std::uint16_t scan_group(std::string_view text, std::size_t& i) {
  const std::size_t start = i;
  unsigned value = 0;
  std::size_t digits = 0;
  while (i < text.size()) {
    const int d = hex_digit(text[i]);
    if (d < 0) break;
    value = value * 16 + static_cast<unsigned>(d);
    ++digits;
    ++i;
    if (digits > 4) fail_v6(text, "group has more than four hex digits", start);
  }
  if (digits == 0) fail_v6(text, "expected a hex group", start);
  return static_cast<std::uint16_t>(value);
}

std::array<std::uint16_t, 8> address_groups(const Address6& addr) {
  std::array<std::uint16_t, 8> groups{};
  for (int g = 0; g < 8; ++g) {
    const std::uint64_t limb = g < 4 ? addr.hi : addr.lo;
    const unsigned shift = 48 - 16 * (static_cast<unsigned>(g) % 4);
    groups[static_cast<std::size_t>(g)] =
        static_cast<std::uint16_t>((limb >> shift) & 0xffff);
  }
  return groups;
}

}  // namespace

std::string AddressFamily<Address6>::to_string(const Address6& addr) {
  const auto groups = address_groups(addr);
  // RFC 5952: compress the longest run of zero groups (>= 2), leftmost on
  // ties; everything lowercase, no leading zeros within a group.
  int best_start = -1;
  int best_len = 1;  // runs of length 1 are never compressed
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

Address6 AddressFamily<Address6>::parse(std::string_view text) {
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool compressed = false;
  std::size_t i = 0;
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    compressed = true;
    i = 2;
  } else if (!text.empty() && text[0] == ':') {
    fail_v6(text, "expected a hex group", 0);
  }
  while (i < text.size()) {
    auto& side = compressed ? tail : head;
    side.push_back(scan_group(text, i));
    if (i == text.size()) break;
    if (text[i] != ':') fail_v6(text, "expected ':'", i);
    ++i;
    if (i < text.size() && text[i] == ':') {
      if (compressed) fail_v6(text, "more than one \"::\"", i - 1);
      compressed = true;
      ++i;
    } else if (i == text.size()) {
      fail_v6(text, "trailing ':'", i - 1);
    }
  }
  if (!compressed && head.size() != 8) {
    fail_v6(text, "expected eight groups (or a \"::\")", text.size());
  }
  if (compressed && head.size() + tail.size() > 7) {
    fail_v6(text, "\"::\" must stand for at least one zero group",
            text.size());
  }
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t g = 0; g < head.size(); ++g) groups[g] = head[g];
  for (std::size_t g = 0; g < tail.size(); ++g) {
    groups[8 - tail.size() + g] = tail[g];
  }
  Address6 addr;
  for (std::size_t g = 0; g < 4; ++g) {
    addr.hi = (addr.hi << 16) | groups[g];
    addr.lo = (addr.lo << 16) | groups[g + 4];
  }
  return addr;
}

Address6 AddressFamily<Address6>::random(Rng& rng) {
  const std::uint64_t hi = rng();
  const std::uint64_t lo = rng();
  return Address6{hi, lo};
}

std::string address6_to_string(const Address6& addr) {
  return AddressFamily<Address6>::to_string(addr);
}

Address6 parse_address6(const std::string& text) {
  return AddressFamily<Address6>::parse(text);
}

}  // namespace treecache::fib
