// Packet and rule-update stream generation for the FIB experiments.
//
// Traffic is Zipf-distributed over rules (Sarrar et al., cited in §2);
// updates follow the Appendix-B model: one BGP update to a rule becomes a
// chunk of α negative requests to its tree node.
#pragma once

#include <cstdint>

#include "core/request_source.hpp"
#include "core/trace.hpp"
#include "fib/rule_tree.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace treecache::fib {

/// Zipf popularity over rules, with addresses drawn inside the chosen
/// rule's prefix.
class PacketSampler {
 public:
  /// Popularity ranks are a random permutation of the non-root rules.
  PacketSampler(const RuleTree& rules, double zipf_skew, Rng& rng);

  /// Draws the tree node a packet's full-table LPM resolves to.
  [[nodiscard]] NodeId sample_rule(Rng& rng) const;

  /// Draws an address whose LPM is (usually) the sampled rule; if the
  /// rule's children cover the sampled address, the packet simply belongs
  /// to the more specific rule — realistic either way.
  [[nodiscard]] Address sample_address(Rng& rng) const;

 private:
  const RuleTree* rules_;
  std::vector<NodeId> ranked_;
  ZipfSampler sampler_;
};

struct FibWorkloadConfig {
  std::size_t events = 100000;        // packets + update chunks
  double zipf_skew = 1.0;
  double update_probability = 0.01;   // chance an event is a rule update
  std::uint64_t alpha = 16;           // chunk length per update
};

/// Packets become positive requests to their full-table LPM node; updates
/// become α-chunks of negative requests to a Zipf-popular rule. Chunk
/// boundaries are recorded for the Appendix-B canonicalization experiment.
/// (Eager variant of FibTraceSource; kept for chunk-aware consumers —
/// both draw the identical stream from the same RNG state, enforced by
/// tests/test_request_source.cpp.)
[[nodiscard]] ChunkedTrace make_fib_workload(const RuleTree& rules,
                                             const FibWorkloadConfig& config,
                                             Rng& rng);

/// Streaming FIB workload: the open-loop packet/update stream of
/// make_fib_workload as a pull-based source, emitting `config.events`
/// events lazily (one positive request per packet, an α-chunk of negative
/// requests per update). `rules` must outlive the source.
class FibTraceSource final : public RequestSource {
 public:
  FibTraceSource(const RuleTree& rules, const FibWorkloadConfig& config,
                 Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;
  // size_hint stays nullopt: events expand to 1 or alpha requests, so the
  // exact request count is unknown until the stream ends.

 private:
  const RuleTree* rules_;
  FibWorkloadConfig config_;
  PacketSampler sampler_;
  Rng start_rng_;  // state AFTER the sampler's permutation draw
  Rng rng_;
  std::size_t events_done_ = 0;
  NodeId pending_node_ = 0;
  std::uint64_t pending_ = 0;  // negatives left in the current chunk
};

}  // namespace treecache::fib
