// FIB-derived workloads behind the WorkloadRegistry (the paper's §2
// application as a registry-resolvable scenario family).
//
// A FIB workload is defined over the rule tree of a synthetic RIB, so its
// whole definition travels in one Params bag: the RIB block (rules, deagg,
// max-len, rib-seed) names the substrate and the traffic block (length,
// skew, update-prob, alpha) names the request stream. The substrate is
// reproducible from the params alone — rule_tree_from_params() rebuilds
// the exact tree a fib* workload expects (seeded by "rib-seed" only,
// independent of the traffic seed), and the registered factories verify
// that the tree they are handed matches it, so a grid cannot silently run
// FIB traffic on an unrelated tree.
//
// Registered names (see the .cpp):
//   fib        Zipf packet LPM traffic + BGP-style α-chunk updates
//   fib-stable pure packet traffic (no updates)
//   fib-churn  update-heavy variant of fib
#pragma once

#include <string_view>

#include "fib/rib_gen.hpp"
#include "fib/rule_tree.hpp"
#include "sim/registry.hpp"

namespace treecache::fib {

/// RIB parameter block shared by the fib* workloads, the `treecache fib`
/// subcommand and the benches: rules (default 4096), deagg (0.45),
/// max-len (24).
[[nodiscard]] RibConfig rib_config_from_params(const sim::Params& params);

/// Deterministically builds the rule tree the fib* workloads with these
/// params run on. Seeded by "rib-seed" (default 1); the traffic seed never
/// touches the substrate, so every cell of a sweep shares one table.
[[nodiscard]] RuleTree rule_tree_from_params(const sim::Params& params);

/// rule_tree_from_params behind a process-wide, thread-safe cache keyed by
/// the RIB block, so a grid instantiating many fib* cells synthesizes each
/// substrate once instead of once per cell. Entries live for the process.
[[nodiscard]] const RuleTree& shared_rule_tree(const sim::Params& params);

/// True for workload names of the FIB family ("fib", "fib-*"), which
/// require their tree to come from rule_tree_from_params().
[[nodiscard]] bool is_fib_workload_name(std::string_view name);

}  // namespace treecache::fib
