// Appendix B: canonical solutions and the factor-2 cost bound.
//
// In the forwarding-table application a rule update is a chunk of α
// negative requests. A solution is *canonical* if it never modifies the
// cache in the middle of a chunk. Appendix B argues any solution B can be
// transformed online into a canonical B' by postponing all mid-chunk cache
// modifications to the chunk's end, with B'(I) ≤ 2·B(I).
//
// run_canonicalized replays a chunked trace through an algorithm while
// simulating the postponement on a shadow cache, returning both costs so
// tests and benches can verify the bound (and measure the actual gap).
#pragma once

#include <cstdint>

#include "core/online_algorithm.hpp"
#include "core/trace.hpp"
#include "tree/tree.hpp"

namespace treecache::fib {

struct CanonicalizationReport {
  Cost raw_cost;        // B: the algorithm's own cost
  Cost canonical_cost;  // B': serve from the shadow cache, sync at chunk end
  std::uint64_t chunks = 0;
  /// Chunks with a cache change strictly before their last round (a change
  /// at the last round happens after the whole chunk and is already
  /// canonical).
  std::uint64_t dirty_chunks = 0;

  [[nodiscard]] double ratio() const {
    return raw_cost.total() == 0
               ? 1.0
               : static_cast<double>(canonical_cost.total()) /
                     static_cast<double>(raw_cost.total());
  }
};

/// Replays `input` through `alg` (which must start fresh on `tree`).
[[nodiscard]] CanonicalizationReport run_canonicalized(
    const Tree& tree, const ChunkedTrace& input, OnlineAlgorithm& alg);

}  // namespace treecache::fib
