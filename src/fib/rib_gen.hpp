// Synthetic RIB (routing table) generator.
//
// SUBSTITUTION (documented in DESIGN.md): the paper motivates the problem
// with real BGP tables (Route-Views) but runs no experiment on them; no
// public RIB snapshot ships with this repository. The generator reproduces
// the two structural properties that matter for tree caching:
//   * a realistic prefix-length histogram (mass peaked at /24, secondary
//     mass at /16..: the classic BGP shape; for IPv6, peaked at /48 with
//     ridges at /32 and /64), and
//   * nesting ("deaggregation"): a tunable fraction of prefixes are drawn
//     as more-specific children of existing prefixes, which is what gives
//     the rule tree its depth and branching.
// Real tables enter through src/rib/ (feed ingest) instead; this stays the
// self-contained source for CI-sized universes and fixtures.
#pragma once

#include <cstddef>
#include <vector>

#include "fib/ipv4.hpp"
#include "fib/ipv6.hpp"
#include "util/rng.hpp"

namespace treecache::fib {

struct RibConfig {
  std::size_t rules = 10000;
  /// Probability that a new prefix is generated as a more-specific child
  /// of an already generated prefix (1–8 extra bits).
  double deaggregation = 0.45;
  /// Cap on prefix length (real tables rarely carry anything past /24
  /// globally; set 32 to allow host routes. IPv6 callers pass up to 128,
  /// typically 64).
  std::uint8_t max_length = 24;
};

/// Generates `config.rules` distinct IPv4 prefixes.
[[nodiscard]] std::vector<Prefix> generate_rib(const RibConfig& config,
                                               Rng& rng);

/// Generates `config.rules` distinct IPv6 prefixes (pass max_length up to
/// 128; the /48-peaked histogram below supplies the length shape).
[[nodiscard]] std::vector<Prefix6> generate_rib6(const RibConfig& config,
                                                 Rng& rng);

/// The default IPv4 prefix-length histogram (index = length 0..32, value =
/// relative mass), modelled on the published shape of global BGP tables.
[[nodiscard]] const std::vector<double>& default_length_histogram();

/// The IPv6 counterpart (index = length 0..128): mass peaked at /48 with
/// secondary ridges at /32 (RIR allocations) and /64.
[[nodiscard]] const std::vector<double>& default_length_histogram6();

/// Generic core shared by both families: samples lengths from
/// `histogram[len]` (relative mass per length, clamped to the lowest
/// length carrying mass) and deaggregates with the family's key width.
template <typename PrefixT>
[[nodiscard]] std::vector<PrefixT> generate_prefixes(
    const RibConfig& config, const std::vector<double>& histogram, Rng& rng);

}  // namespace treecache::fib
