// Synthetic RIB (routing table) generator.
//
// SUBSTITUTION (documented in DESIGN.md): the paper motivates the problem
// with real BGP tables (Route-Views) but runs no experiment on them; no
// public RIB snapshot ships with this repository. The generator reproduces
// the two structural properties that matter for tree caching:
//   * a realistic prefix-length histogram (mass peaked at /24, secondary
//     mass at /16..: the classic BGP shape), and
//   * nesting ("deaggregation"): a tunable fraction of prefixes are drawn
//     as more-specific children of existing prefixes, which is what gives
//     the rule tree its depth and branching.
#pragma once

#include <cstddef>
#include <vector>

#include "fib/ipv4.hpp"
#include "util/rng.hpp"

namespace treecache::fib {

struct RibConfig {
  std::size_t rules = 10000;
  /// Probability that a new prefix is generated as a more-specific child
  /// of an already generated prefix (1–8 extra bits).
  double deaggregation = 0.45;
  /// Cap on prefix length (real tables rarely carry anything past /24
  /// globally; set 32 to allow host routes).
  std::uint8_t max_length = 24;
};

/// Generates `config.rules` distinct prefixes.
[[nodiscard]] std::vector<Prefix> generate_rib(const RibConfig& config,
                                               Rng& rng);

/// The default prefix-length histogram (index = length 0..32, value =
/// relative mass), modelled on the published shape of global BGP tables.
[[nodiscard]] const std::vector<double>& default_length_histogram();

}  // namespace treecache::fib
