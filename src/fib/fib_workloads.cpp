#include "fib/fib_workloads.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "fib/traffic.hpp"

namespace treecache::fib {

RibConfig rib_config_from_params(const sim::Params& params) {
  return RibConfig{
      .rules = params.get_u64("rules", 4096),
      .deaggregation = params.get_double("deagg", 0.45),
      .max_length =
          static_cast<std::uint8_t>(params.get_u64("max-len", 24))};
}

RuleTree rule_tree_from_params(const sim::Params& params) {
  Rng rib_rng(params.get_u64("rib-seed", 1));
  return build_rule_tree(generate_rib(rib_config_from_params(params), rib_rng));
}

bool is_fib_workload_name(std::string_view name) {
  return name == "fib" || name.starts_with("fib-");
}

const RuleTree& shared_rule_tree(const sim::Params& params) {
  // Key = everything rule_tree_from_params reads (the RibConfig fields
  // plus the seed); keep it in sync with rib_config_from_params.
  using Key = std::tuple<std::size_t, double, std::uint8_t, std::uint64_t>;
  const RibConfig config = rib_config_from_params(params);
  const Key key{config.rules, config.deaggregation, config.max_length,
                params.get_u64("rib-seed", 1)};

  static std::mutex mutex;
  static std::map<Key, std::unique_ptr<RuleTree>> cache;
  const std::scoped_lock lock(mutex);
  std::unique_ptr<RuleTree>& slot = cache[key];
  if (slot == nullptr) {
    slot = std::make_unique<RuleTree>(rule_tree_from_params(params));
  }
  return *slot;
}

namespace {

std::unique_ptr<RequestSource> fib_source(const Tree& tree,
                                          const sim::Params& p,
                                          std::uint64_t seed,
                                          double update_probability) {
  const RuleTree& rules = shared_rule_tree(p);
  TC_CHECK(tree.parent_array() == rules.tree.parent_array(),
           "fib* workloads run on their own RIB rule tree; build it with "
           "fib::rule_tree_from_params(params) (CLI: `--tree fib`, or "
           "gen-rib with the same --rules/--deagg/--max-len/--rib-seed)");
  const FibWorkloadConfig config{
      .events = p.get_u64("length", 100000),
      .zipf_skew = p.get_double("skew", 1.0),
      .update_probability = update_probability,
      .alpha = p.alpha()};
  // shared_rule_tree entries live for the process, so the source's
  // reference into the cache stays valid however long it streams.
  return std::make_unique<FibTraceSource>(rules, config, Rng(seed));
}

const sim::WorkloadRegistrar kRegisterFib{
    "fib",
    "RIB rule tree: Zipf packet LPM traffic + BGP-style alpha-chunk updates",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed) {
      return fib_source(tree, p, seed, p.get_double("update-prob", 0.01));
    }};

const sim::WorkloadRegistrar kRegisterFibStable{
    "fib-stable", "RIB rule tree: pure Zipf packet traffic, no rule updates",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed) {
      return fib_source(tree, p, seed, 0.0);
    }};

const sim::WorkloadRegistrar kRegisterFibChurn{
    "fib-churn",
    "RIB rule tree: update-heavy FIB stream (default update-prob 0.05)",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed) {
      return fib_source(tree, p, seed, p.get_double("update-prob", 0.05));
    }};

}  // namespace

}  // namespace treecache::fib
