#include "tree/tree_io.hpp"

#include <sstream>
#include <vector>

namespace treecache {

std::string to_parent_string(const Tree& tree) {
  std::ostringstream os;
  const auto& parents = tree.parent_array();
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (i > 0) os << ' ';
    if (parents[i] == kNoNode) {
      os << -1;
    } else {
      os << parents[i];
    }
  }
  return os.str();
}

Tree from_parent_string(const std::string& text) {
  std::istringstream is(text);
  std::vector<NodeId> parents;
  long long value = 0;
  while (is >> value) {
    TC_CHECK(value >= -1, "parent ids must be >= -1");
    parents.push_back(value == -1 ? kNoNode : static_cast<NodeId>(value));
  }
  TC_CHECK(is.eof(), "trailing garbage in parent string");
  TC_CHECK(!parents.empty(), "empty parent string");
  return Tree(std::move(parents));
}

namespace {
void render_ascii(const Tree& tree, NodeId v, const std::string& indent,
                  bool last, const NodeAnnotator& annotate,
                  std::ostringstream& os) {
  if (v == tree.root()) {
    os << v;
  } else {
    os << indent << (last ? "└─ " : "├─ ") << v;
  }
  if (annotate) {
    const std::string note = annotate(v);
    if (!note.empty()) os << ' ' << note;
  }
  os << '\n';
  const auto kids = tree.children(v);
  const std::string child_indent =
      (v == tree.root()) ? std::string{}
                         : indent + (last ? "   " : "│  ");
  for (std::size_t i = 0; i < kids.size(); ++i) {
    render_ascii(tree, kids[i], child_indent, i + 1 == kids.size(), annotate,
                 os);
  }
}
}  // namespace

std::string to_ascii(const Tree& tree, const NodeAnnotator& annotate) {
  std::ostringstream os;
  render_ascii(tree, tree.root(), "", true, annotate, os);
  return os.str();
}

std::string to_dot(const Tree& tree, const NodeAnnotator& annotate) {
  std::ostringstream os;
  os << "digraph T {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < tree.size(); ++v) {
    os << "  n" << v << " [label=\"" << v;
    if (annotate) {
      const std::string note = annotate(v);
      if (!note.empty()) os << "\\n" << note;
    }
    os << "\"];\n";
  }
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.parent(v) != kNoNode) {
      os << "  n" << tree.parent(v) << " -> n" << v << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace treecache
