#include "tree/subforest.hpp"

#include <algorithm>

#include "core/kernels.hpp"

namespace treecache {

void Subforest::insert(NodeId v) {
  TC_DCHECK(!contains(v), "node already cached");
#ifndef NDEBUG
  for (const NodeId c : tree_->children(v)) {
    TC_DCHECK(contains(c), "insert would break descendant-closure");
  }
#endif
  cached_[v] = 1;
  const std::uint32_t r = tree_->preorder_index(v);
  rank_bits_[r >> 6] |= std::uint64_t{1} << (r & 63);
  ++size_;
}

void Subforest::erase(NodeId v) {
  TC_DCHECK(contains(v), "node not cached");
#ifndef NDEBUG
  const NodeId p = tree_->parent(v);
  TC_DCHECK(p == kNoNode || !contains(p),
            "erase would break descendant-closure");
#endif
  cached_[v] = 0;
  const std::uint32_t r = tree_->preorder_index(v);
  rank_bits_[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
  --size_;
}

bool Subforest::is_valid() const {
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (!contains(v)) continue;
    for (const NodeId c : tree_->children(v)) {
      if (!contains(c)) return false;
    }
  }
  return true;
}

bool Subforest::is_valid_positive_changeset(
    std::span<const NodeId> changeset) const {
  if (changeset.empty()) return false;
  std::vector<std::uint8_t> added(tree_->size(), 0);
  for (const NodeId v : changeset) {
    if (v >= tree_->size()) return false;
    if (contains(v)) return false;   // must be disjoint from the cache
    if (added[v]) return false;      // no duplicates
    added[v] = 1;
  }
  for (const NodeId v : changeset) {
    for (const NodeId c : tree_->children(v)) {
      if (!contains(c) && !added[c]) return false;
    }
  }
  return true;
}

bool Subforest::is_valid_negative_changeset(
    std::span<const NodeId> changeset) const {
  if (changeset.empty()) return false;
  std::vector<std::uint8_t> removed(tree_->size(), 0);
  for (const NodeId v : changeset) {
    if (v >= tree_->size()) return false;
    if (!contains(v)) return false;  // must be inside the cache
    if (removed[v]) return false;    // no duplicates
    removed[v] = 1;
  }
  // cache \ X descendant-closed ⇔ X ancestor-closed within the cache:
  // an evicted node's cached parent must be evicted too.
  for (const NodeId v : changeset) {
    const NodeId p = tree_->parent(v);
    if (p != kNoNode && contains(p) && !removed[p]) return false;
  }
  return true;
}

std::vector<NodeId> Subforest::maximal_roots() const {
  std::vector<NodeId> roots;
  maximal_roots(roots);
  return roots;
}

void Subforest::maximal_roots(std::vector<NodeId>& out) const {
  out.clear();
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (!contains(v)) continue;
    const NodeId p = tree_->parent(v);
    if (p == kNoNode || !contains(p)) out.push_back(v);
  }
}

NodeId Subforest::cached_tree_root(NodeId v) const {
  TC_CHECK(contains(v), "node not cached");
  NodeId u = v;
  for (NodeId p = tree_->parent(u); p != kNoNode && contains(p);
       p = tree_->parent(u)) {
    u = p;
  }
  return u;
}

std::vector<NodeId> Subforest::missing_subtree(NodeId u) const {
  std::vector<NodeId> result;
  missing_subtree(u, result);
  return result;
}

void Subforest::missing_subtree(NodeId u, std::vector<NodeId>& out) const {
  TC_CHECK(!contains(u), "P_t(u) is defined for non-cached u only");
  out.clear();
  // T(u) is a contiguous preorder-rank slice; a cached node's subtree is
  // entirely cached (descendant-closure), so the scan kernel skips it as
  // one jump and bit-scans the uncached runs off the rank bitmap. The
  // kernel appends ranks (= preorder, parents first); they are translated
  // to NodeIds in place, so a reused `out` means no allocation at all.
  const std::uint32_t ru = tree_->preorder_index(u);
  const kernels::MissingScan scan{.cached_bits = rank_bits_.data(),
                                  .sizes = tree_->preorder_sizes().data(),
                                  .cnt = nullptr,
                                  .epoch = 0};
  kernels::active().scan_missing(scan, ru, ru + tree_->subtree_size(u), out);
  const auto from = tree_->from_preorder();
  for (NodeId& v : out) v = from[v];
}

std::vector<NodeId> Subforest::as_vector() const {
  std::vector<NodeId> out;
  as_vector(out);
  return out;
}

void Subforest::as_vector(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(size_);
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (contains(v)) out.push_back(v);
  }
}

}  // namespace treecache
