#include "tree/subforest.hpp"

#include <algorithm>

namespace treecache {

void Subforest::insert(NodeId v) {
  TC_DCHECK(!contains(v), "node already cached");
#ifndef NDEBUG
  for (const NodeId c : tree_->children(v)) {
    TC_DCHECK(contains(c), "insert would break descendant-closure");
  }
#endif
  cached_[v] = 1;
  ++size_;
}

void Subforest::erase(NodeId v) {
  TC_DCHECK(contains(v), "node not cached");
#ifndef NDEBUG
  const NodeId p = tree_->parent(v);
  TC_DCHECK(p == kNoNode || !contains(p),
            "erase would break descendant-closure");
#endif
  cached_[v] = 0;
  --size_;
}

bool Subforest::is_valid() const {
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (!contains(v)) continue;
    for (const NodeId c : tree_->children(v)) {
      if (!contains(c)) return false;
    }
  }
  return true;
}

bool Subforest::is_valid_positive_changeset(
    std::span<const NodeId> changeset) const {
  if (changeset.empty()) return false;
  std::vector<std::uint8_t> added(tree_->size(), 0);
  for (const NodeId v : changeset) {
    if (v >= tree_->size()) return false;
    if (contains(v)) return false;   // must be disjoint from the cache
    if (added[v]) return false;      // no duplicates
    added[v] = 1;
  }
  for (const NodeId v : changeset) {
    for (const NodeId c : tree_->children(v)) {
      if (!contains(c) && !added[c]) return false;
    }
  }
  return true;
}

bool Subforest::is_valid_negative_changeset(
    std::span<const NodeId> changeset) const {
  if (changeset.empty()) return false;
  std::vector<std::uint8_t> removed(tree_->size(), 0);
  for (const NodeId v : changeset) {
    if (v >= tree_->size()) return false;
    if (!contains(v)) return false;  // must be inside the cache
    if (removed[v]) return false;    // no duplicates
    removed[v] = 1;
  }
  // cache \ X descendant-closed ⇔ X ancestor-closed within the cache:
  // an evicted node's cached parent must be evicted too.
  for (const NodeId v : changeset) {
    const NodeId p = tree_->parent(v);
    if (p != kNoNode && contains(p) && !removed[p]) return false;
  }
  return true;
}

std::vector<NodeId> Subforest::maximal_roots() const {
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (!contains(v)) continue;
    const NodeId p = tree_->parent(v);
    if (p == kNoNode || !contains(p)) roots.push_back(v);
  }
  return roots;
}

NodeId Subforest::cached_tree_root(NodeId v) const {
  TC_CHECK(contains(v), "node not cached");
  NodeId u = v;
  for (NodeId p = tree_->parent(u); p != kNoNode && contains(p);
       p = tree_->parent(u)) {
    u = p;
  }
  return u;
}

std::vector<NodeId> Subforest::missing_subtree(NodeId u) const {
  TC_CHECK(!contains(u), "P_t(u) is defined for non-cached u only");
  std::vector<NodeId> result;
  std::vector<NodeId> stack{u};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    result.push_back(v);
    for (const NodeId c : tree_->children(v)) {
      if (!contains(c)) stack.push_back(c);
    }
  }
  return result;
}

std::vector<NodeId> Subforest::as_vector() const {
  std::vector<NodeId> out;
  out.reserve(size_);
  for (NodeId v = 0; v < tree_->size(); ++v) {
    if (contains(v)) out.push_back(v);
  }
  return out;
}

}  // namespace treecache
