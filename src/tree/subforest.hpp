// Cache state: a descendant-closed subset of a Tree.
//
// The paper requires the cache to be a subforest of T: if v is cached, all of
// T(v) is cached. Equivalently the cached set is a union of complete
// subtrees, the non-cached set is ancestor-closed, and every maximal cached
// tree is T(r) for its root r. Subforest maintains the membership flags plus
// the size, and offers the validity predicates used by the algorithms, the
// specification checker and the tests.
#pragma once

#include <span>
#include <vector>

#include "tree/tree.hpp"

namespace treecache {

class Subforest {
 public:
  /// Empty cache over `tree`. The tree must outlive the subforest.
  explicit Subforest(const Tree& tree)
      : tree_(&tree),
        cached_(tree.size(), 0),
        rank_bits_((tree.size() + 63) / 64, 0) {}

  [[nodiscard]] const Tree& tree() const { return *tree_; }

  [[nodiscard]] bool contains(NodeId v) const {
    TC_DCHECK(v < cached_.size(), "node out of range");
    return cached_[v] != 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(cached_.begin(), cached_.end(), std::uint8_t{0});
    std::fill(rank_bits_.begin(), rank_bits_.end(), std::uint64_t{0});
    size_ = 0;
  }

  /// Caches v. To preserve descendant-closure incrementally, all children of
  /// v must already be cached (apply fetch changesets bottom-up).
  void insert(NodeId v);

  /// Evicts v. The parent of v must not be cached (apply eviction changesets
  /// top-down).
  void erase(NodeId v);

  /// O(n) full validation of descendant-closure.
  [[nodiscard]] bool is_valid() const;

  /// True iff X is a valid positive changeset for this cache: X non-empty,
  /// disjoint from the cache, no duplicates, and cache ∪ X descendant-closed.
  [[nodiscard]] bool is_valid_positive_changeset(
      std::span<const NodeId> changeset) const;

  /// True iff X is a valid negative changeset: X non-empty, X ⊆ cache, no
  /// duplicates, and cache \ X descendant-closed.
  [[nodiscard]] bool is_valid_negative_changeset(
      std::span<const NodeId> changeset) const;

  /// Cached nodes whose parent is not cached — the roots of the maximal
  /// cached trees.
  [[nodiscard]] std::vector<NodeId> maximal_roots() const;

  // Output-buffer forms of the collection queries, for hot-path callers
  // that would otherwise allocate a fresh vector every round: `out` is
  // cleared and refilled, so a reused buffer amortizes to zero allocations.
  // The convenience forms above delegate to these.

  /// maximal_roots() into `out`.
  void maximal_roots(std::vector<NodeId>& out) const;
  /// missing_subtree(u) into `out` (preorder, parents first).
  void missing_subtree(NodeId u, std::vector<NodeId>& out) const;
  /// as_vector() into `out` (increasing id order).
  void as_vector(std::vector<NodeId>& out) const;

  /// Root of the maximal cached tree containing v (requires contains(v)).
  /// O(depth) by walking up while the parent is cached.
  [[nodiscard]] NodeId cached_tree_root(NodeId v) const;

  /// All non-cached nodes of T(u), i.e. the paper's P_t(u). Requires
  /// !contains(u). The result is returned in preorder (parents first).
  [[nodiscard]] std::vector<NodeId> missing_subtree(NodeId u) const;

  /// Cached nodes in increasing id order.
  [[nodiscard]] std::vector<NodeId> as_vector() const;

  friend bool operator==(const Subforest& a, const Subforest& b) {
    return a.tree_ == b.tree_ && a.cached_ == b.cached_;
  }

 private:
  const Tree* tree_;
  std::vector<std::uint8_t> cached_;
  /// Preorder-rank-indexed mirror of the membership flags as a word-packed
  /// bitmap, so missing_subtree runs on the scan_missing kernel
  /// (core/kernels.hpp) instead of a per-rank byte walk.
  std::vector<std::uint64_t> rank_bits_;
  std::size_t size_ = 0;
};

}  // namespace treecache
