// Tree serialization and pretty-printing.
#pragma once

#include <functional>
#include <string>

#include "tree/tree.hpp"

namespace treecache {

/// Serializes a tree to a whitespace-separated parent list, e.g. "-1 0 0 1".
/// The root's parent is written as -1.
[[nodiscard]] std::string to_parent_string(const Tree& tree);

/// Parses the format produced by to_parent_string. Throws CheckFailure on
/// malformed input.
[[nodiscard]] Tree from_parent_string(const std::string& text);

/// Optional per-node annotation for renderers (e.g. "[cached, cnt=3]").
using NodeAnnotator = std::function<std::string(NodeId)>;

/// ASCII rendering with box-drawing indentation, one node per line:
///   0
///   ├─ 1
///   │  └─ 3
///   └─ 2
[[nodiscard]] std::string to_ascii(const Tree& tree,
                                   const NodeAnnotator& annotate = {});

/// Graphviz DOT rendering (for documentation figures).
[[nodiscard]] std::string to_dot(const Tree& tree,
                                 const NodeAnnotator& annotate = {});

}  // namespace treecache
