#include "tree/tree.hpp"

#include <algorithm>

namespace treecache {

Tree::Tree(std::vector<NodeId> parent) : parent_(std::move(parent)) {
  const std::size_t n = parent_.size();
  TC_CHECK(n > 0, "tree must have at least one node");
  TC_CHECK(n < kNoNode, "tree too large for NodeId");

  // Locate the unique root and validate parent ids.
  root_ = kNoNode;
  for (NodeId v = 0; v < n; ++v) {
    if (parent_[v] == kNoNode) {
      TC_CHECK(root_ == kNoNode, "more than one root");
      root_ = v;
    } else {
      TC_CHECK(parent_[v] < n, "parent id out of range");
      TC_CHECK(parent_[v] != v, "node is its own parent");
    }
  }
  TC_CHECK(root_ != kNoNode, "no root (every node has a parent)");

  // CSR children adjacency via counting sort.
  child_offset_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v != root_) ++child_offset_[parent_[v] + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) child_offset_[i] += child_offset_[i - 1];
  child_list_.resize(n - 1);
  {
    std::vector<std::size_t> cursor(child_offset_.begin(),
                                    child_offset_.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      if (v != root_) child_list_[cursor[parent_[v]]++] = v;
    }
  }

  max_degree_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    max_degree_ =
        std::max(max_degree_, static_cast<std::uint32_t>(num_children(v)));
  }

  // Iterative preorder DFS: fills depth, tin/tout, preorder, and detects
  // cycles (a cycle leaves nodes unvisited).
  depth_.assign(n, 0);
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  preorder_.clear();
  preorder_.reserve(n);
  std::vector<NodeId> stack;
  stack.push_back(root_);
  std::uint32_t timer = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    tin_[v] = timer++;
    preorder_.push_back(v);
    const auto kids = children(v);
    // Push in reverse so children are visited in construction order.
    for (std::size_t i = kids.size(); i > 0; --i) {
      const NodeId c = kids[i - 1];
      depth_[c] = depth_[v] + 1;
      stack.push_back(c);
    }
  }
  TC_CHECK(preorder_.size() == n, "parent array contains a cycle");

  // Reverse preorder lists every node after all of its descendants, which is
  // the only property consumers of postorder() rely on (bottom-up
  // aggregation); subtrees need not be contiguous.
  postorder_.assign(preorder_.rbegin(), preorder_.rend());

  // Subtree sizes and tout via reverse-preorder aggregation.
  subtree_size_.assign(n, 1);
  for (const NodeId v : postorder_) {
    if (v != root_) subtree_size_[parent_[v]] += subtree_size_[v];
  }
  for (NodeId v = 0; v < n; ++v) tout_[v] = tin_[v] + subtree_size_[v] - 1;

  height_ = 0;
  for (NodeId v = 0; v < n; ++v) height_ = std::max(height_, depth_[v] + 1);

  // Rank-space topology and the identity-permutation flag.
  rank_parent_.assign(n, kNoNode);
  rank_size_.assign(n, 0);
  preorder_labeled_ = true;
  for (std::uint32_t r = 0; r < n; ++r) {
    const NodeId v = preorder_[r];
    if (v != r) preorder_labeled_ = false;
    rank_size_[r] = subtree_size_[v];
    if (v != root_) rank_parent_[r] = tin_[parent_[v]];
  }
}

std::vector<NodeId> Tree::leaves() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v) {
    if (is_leaf(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Tree::path_to_root(NodeId v) const {
  TC_CHECK(v < size(), "node out of range");
  std::vector<NodeId> path;
  for (NodeId u = v; u != kNoNode; u = parent_[u]) path.push_back(u);
  return path;
}

}  // namespace treecache
