// Immutable rooted tree — the universe of the tree-caching problem.
//
// The tree is stored in flat arrays (CSR children adjacency, Euler-tour
// intervals, depths, subtree sizes), which keeps every query used by the
// algorithm O(1) and cache-friendly. Trees are immutable after construction;
// algorithms keep their own per-node state in parallel arrays indexed by
// NodeId.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace treecache {

/// Dense node identifier; nodes of a tree with n nodes are 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (the root's parent).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// A rooted tree over nodes 0..n-1 given by a parent array.
///
/// Terminology follows the paper: T(v) is the subtree rooted at v (v plus all
/// descendants); height() counts *levels* (a single node has height 1), which
/// matches the paper's use of h(T) as the number of root-distance layers.
class Tree {
 public:
  /// Builds a tree from `parent`, where parent[root] == kNoNode and every
  /// other entry is the node's parent. Throws CheckFailure unless the input
  /// describes exactly one tree (single root, no cycles, ids in range).
  explicit Tree(std::vector<NodeId> parent);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] NodeId root() const { return root_; }

  [[nodiscard]] NodeId parent(NodeId v) const {
    TC_DCHECK(v < size(), "node out of range");
    return parent_[v];
  }

  /// Children of v in construction order.
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const {
    TC_DCHECK(v < size(), "node out of range");
    return {child_list_.data() + child_offset_[v],
            child_offset_[v + 1] - child_offset_[v]};
  }

  [[nodiscard]] std::size_t num_children(NodeId v) const {
    TC_DCHECK(v < size(), "node out of range");
    return child_offset_[v + 1] - child_offset_[v];
  }

  [[nodiscard]] bool is_leaf(NodeId v) const { return num_children(v) == 0; }

  /// Number of edges from the root (root has depth 0).
  [[nodiscard]] std::uint32_t depth(NodeId v) const {
    TC_DCHECK(v < size(), "node out of range");
    return depth_[v];
  }

  /// Number of levels: 1 + max depth. h(T) in the paper.
  [[nodiscard]] std::uint32_t height() const { return height_; }

  /// Maximum number of children over all nodes. deg(T) in the paper.
  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }

  /// |T(v)|: v plus all its descendants.
  [[nodiscard]] std::uint32_t subtree_size(NodeId v) const {
    TC_DCHECK(v < size(), "node out of range");
    return subtree_size_[v];
  }

  /// True iff a == d or a is a proper ancestor of d (O(1) via Euler tour).
  [[nodiscard]] bool is_ancestor_or_self(NodeId a, NodeId d) const {
    TC_DCHECK(a < size() && d < size(), "node out of range");
    return tin_[a] <= tin_[d] && tout_[d] <= tout_[a];
  }

  /// Nodes in preorder (parents before children).
  [[nodiscard]] std::span<const NodeId> preorder() const { return preorder_; }

  /// Position of v in preorder(); T(v) occupies the contiguous interval
  /// [preorder_index(v), preorder_index(v) + subtree_size(v)).
  [[nodiscard]] std::uint32_t preorder_index(NodeId v) const {
    TC_DCHECK(v < size(), "node out of range");
    return tin_[v];
  }

  // --- Preorder remap facility -----------------------------------------
  // Per-node state indexed by preorder rank makes every subtree a
  // contiguous slice (core/node_state.hpp builds on this). The two
  // permutation tables convert NodeId-keyed data in bulk; the rank-space
  // topology accessors let ancestor walks and child scans stay entirely in
  // rank coordinates: the first child of rank r is r + 1 and the next
  // sibling of rank c is c + preorder_subtree_size(c), so child iteration
  // needs no adjacency array at all.

  /// NodeId → preorder rank, as a whole table (element-wise this is
  /// preorder_index).
  [[nodiscard]] std::span<const std::uint32_t> to_preorder() const {
    return tin_;
  }

  /// Preorder rank → NodeId — the inverse permutation (alias of
  /// preorder()).
  [[nodiscard]] std::span<const NodeId> from_preorder() const {
    return preorder_;
  }

  /// Rank of the parent of the node at rank r (kNoNode for the root).
  [[nodiscard]] std::uint32_t preorder_parent(std::uint32_t r) const {
    TC_DCHECK(r < size(), "rank out of range");
    return rank_parent_[r];
  }

  /// |T(v)| of the node v at rank r; T(v) is the rank slice
  /// [r, r + preorder_subtree_size(r)).
  [[nodiscard]] std::uint32_t preorder_subtree_size(std::uint32_t r) const {
    TC_DCHECK(r < size(), "rank out of range");
    return rank_size_[r];
  }

  /// The whole subtree-size stripe, rank-indexed. Scan loops capture this
  /// once (`.data()`) instead of calling preorder_subtree_size per rank;
  /// the scan kernels (core/kernels.hpp) take it as a raw stripe.
  [[nodiscard]] std::span<const std::uint32_t> preorder_sizes() const {
    return rank_size_;
  }

  /// True iff NodeId already equals preorder rank, i.e. both remap tables
  /// are the identity. ShardPlan's relabeled shard trees guarantee this.
  [[nodiscard]] bool is_preorder_labeled() const { return preorder_labeled_; }

  /// A copy of `tree` whose NodeIds ARE preorder ranks (its remap tables
  /// are the identity). The node at rank r of `tree` becomes node r.
  [[nodiscard]] static Tree preorder_relabeled(const Tree& tree) {
    return Tree(std::vector<NodeId>(tree.rank_parent_.begin(),
                                    tree.rank_parent_.end()));
  }

  /// Nodes in postorder (children before parents).
  [[nodiscard]] std::span<const NodeId> postorder() const {
    return postorder_;
  }

  /// All leaves of the tree.
  [[nodiscard]] std::vector<NodeId> leaves() const;

  /// The node sequence v, parent(v), ..., root.
  [[nodiscard]] std::vector<NodeId> path_to_root(NodeId v) const;

  /// The parent array this tree was built from (parent[root] == kNoNode).
  [[nodiscard]] const std::vector<NodeId>& parent_array() const {
    return parent_;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::size_t> child_offset_;  // size n+1, CSR offsets
  std::vector<NodeId> child_list_;         // size n-1
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> subtree_size_;
  std::vector<std::uint32_t> tin_, tout_;  // preorder interval of T(v)
  std::vector<NodeId> preorder_, postorder_;
  // Rank-space topology: parent rank and subtree size of the node at each
  // preorder rank (rank_parent_ doubles as the preorder-relabeled parent
  // array).
  std::vector<std::uint32_t> rank_parent_;
  std::vector<std::uint32_t> rank_size_;
  NodeId root_ = kNoNode;
  std::uint32_t height_ = 0;
  std::uint32_t max_degree_ = 0;
  bool preorder_labeled_ = false;
};

}  // namespace treecache
