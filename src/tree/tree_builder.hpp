// Tree generators for tests, examples and benchmarks.
//
// Every generator returns a Tree whose root is node 0. Shapes cover the
// regimes that matter for the algorithm's guarantees: height h(T) (path,
// caterpillar, spider), degree deg(T) (star, k-ary), and realistic mixtures
// (random recursive/attachment trees, the Appendix-D gadget shape).
#pragma once

#include <cstddef>

#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace treecache::trees {

/// A path (line) of n nodes: 0 - 1 - ... - n-1, rooted at 0. Height n.
[[nodiscard]] Tree path(std::size_t n);

/// Root with `leaf_count` leaf children. Height 2, degree leaf_count.
[[nodiscard]] Tree star(std::size_t leaf_count);

/// Complete `arity`-ary tree with `levels` levels (height == levels).
[[nodiscard]] Tree complete_kary(std::size_t levels, std::size_t arity);

/// Path of `spine` nodes, each spine node carrying `legs` leaf children.
[[nodiscard]] Tree caterpillar(std::size_t spine, std::size_t legs);

/// Root with `legs` disjoint paths of `leg_length` nodes hanging below it.
[[nodiscard]] Tree spider(std::size_t legs, std::size_t leg_length);

/// Random recursive tree: node i attaches to a uniform node < i.
/// Expected height Θ(log n), unbounded degree.
[[nodiscard]] Tree random_recursive(std::size_t n, Rng& rng);

/// Random tree where each node may receive at most `max_children` children;
/// node i attaches to a uniform non-full node < i. With max_children == 2
/// this produces random binary trees.
[[nodiscard]] Tree random_bounded_degree(std::size_t n,
                                         std::size_t max_children, Rng& rng);

/// Random tree with height capped at `max_height` levels: node i attaches to
/// a uniform existing node of depth < max_height - 1.
[[nodiscard]] Tree random_bounded_height(std::size_t n,
                                         std::size_t max_height, Rng& rng);

/// The Appendix-D gadget shape: root r with two identical subtrees T1, T2.
/// Each subtree is a complete binary tree with `leaf_count` leaves (so each
/// has size 2*leaf_count - 1). Returns the tree; T1's root is node 1 and
/// T2's root is node 2*leaf_count (see gadget.hpp for the request script).
[[nodiscard]] Tree two_subtree_gadget(std::size_t leaf_count);

}  // namespace treecache::trees
