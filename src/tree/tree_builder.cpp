#include "tree/tree_builder.hpp"

#include <vector>

namespace treecache::trees {

namespace {
/// Appends a heap-shaped full binary tree of `size` nodes (size must be odd
/// so that every internal node has exactly two children) under `root_parent`.
/// Nodes are appended to `parent` contiguously; returns the subtree root id.
NodeId append_heap_binary(std::vector<NodeId>& parent, NodeId root_parent,
                          std::size_t size) {
  TC_CHECK(size % 2 == 1, "full binary tree needs an odd node count");
  const NodeId base = static_cast<NodeId>(parent.size());
  parent.push_back(root_parent);
  for (std::size_t i = 1; i < size; ++i) {
    parent.push_back(base + static_cast<NodeId>((i - 1) / 2));
  }
  return base;
}
}  // namespace

Tree path(std::size_t n) {
  TC_CHECK(n >= 1, "path needs at least one node");
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  for (std::size_t i = 1; i < n; ++i) parent[i] = static_cast<NodeId>(i - 1);
  return Tree(std::move(parent));
}

Tree star(std::size_t leaf_count) {
  std::vector<NodeId> parent(leaf_count + 1, 0);
  parent[0] = kNoNode;
  return Tree(std::move(parent));
}

Tree complete_kary(std::size_t levels, std::size_t arity) {
  TC_CHECK(levels >= 1, "need at least one level");
  TC_CHECK(arity >= 1, "arity must be positive");
  std::vector<NodeId> parent{kNoNode};
  std::size_t level_begin = 0;
  std::size_t level_end = 1;
  for (std::size_t level = 1; level < levels; ++level) {
    const std::size_t next_begin = parent.size();
    for (std::size_t p = level_begin; p < level_end; ++p) {
      for (std::size_t c = 0; c < arity; ++c) {
        parent.push_back(static_cast<NodeId>(p));
      }
    }
    level_begin = next_begin;
    level_end = parent.size();
  }
  return Tree(std::move(parent));
}

Tree caterpillar(std::size_t spine, std::size_t legs) {
  TC_CHECK(spine >= 1, "caterpillar needs a spine");
  std::vector<NodeId> parent;
  parent.reserve(spine * (legs + 1));
  std::vector<NodeId> spine_ids(spine);
  for (std::size_t i = 0; i < spine; ++i) {
    spine_ids[i] = static_cast<NodeId>(parent.size());
    parent.push_back(i == 0 ? kNoNode : spine_ids[i - 1]);
    for (std::size_t l = 0; l < legs; ++l) parent.push_back(spine_ids[i]);
  }
  return Tree(std::move(parent));
}

Tree spider(std::size_t legs, std::size_t leg_length) {
  std::vector<NodeId> parent{kNoNode};
  for (std::size_t leg = 0; leg < legs; ++leg) {
    NodeId prev = 0;
    for (std::size_t i = 0; i < leg_length; ++i) {
      const NodeId id = static_cast<NodeId>(parent.size());
      parent.push_back(prev);
      prev = id;
    }
  }
  return Tree(std::move(parent));
}

Tree random_recursive(std::size_t n, Rng& rng) {
  TC_CHECK(n >= 1, "tree needs at least one node");
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  for (std::size_t i = 1; i < n; ++i) {
    parent[i] = static_cast<NodeId>(rng.below(i));
  }
  return Tree(std::move(parent));
}

Tree random_bounded_degree(std::size_t n, std::size_t max_children, Rng& rng) {
  TC_CHECK(n >= 1, "tree needs at least one node");
  TC_CHECK(max_children >= 1, "max_children must be positive");
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  std::vector<std::size_t> child_count(n, 0);
  std::vector<NodeId> open{0};  // nodes that can still take a child
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t slot = rng.below(open.size());
    const NodeId p = open[slot];
    parent[i] = p;
    if (++child_count[p] == max_children) {
      open[slot] = open.back();
      open.pop_back();
    }
    open.push_back(static_cast<NodeId>(i));
  }
  return Tree(std::move(parent));
}

Tree random_bounded_height(std::size_t n, std::size_t max_height, Rng& rng) {
  TC_CHECK(n >= 1, "tree needs at least one node");
  TC_CHECK(max_height >= 1, "height bound must be positive");
  std::vector<NodeId> parent(n);
  parent[0] = kNoNode;
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<NodeId> eligible;  // nodes with depth < max_height - 1
  if (max_height >= 2) eligible.push_back(0);
  for (std::size_t i = 1; i < n; ++i) {
    TC_CHECK(!eligible.empty(), "height bound unsatisfiable");
    const NodeId p = rng.pick(eligible);
    parent[i] = p;
    depth[i] = depth[p] + 1;
    if (depth[i] + 1 < max_height) eligible.push_back(static_cast<NodeId>(i));
  }
  return Tree(std::move(parent));
}

Tree two_subtree_gadget(std::size_t leaf_count) {
  TC_CHECK(leaf_count >= 1, "gadget needs at least one leaf per subtree");
  const std::size_t subtree_size = 2 * leaf_count - 1;
  std::vector<NodeId> parent{kNoNode};
  append_heap_binary(parent, 0, subtree_size);  // T1 root: node 1
  append_heap_binary(parent, 0, subtree_size);  // T2 root: node 2*leaf_count
  return Tree(std::move(parent));
}

}  // namespace treecache::trees
