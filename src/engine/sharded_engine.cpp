#include "engine/sharded_engine.hpp"

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/stopwatch.hpp"

namespace treecache::engine {
namespace {

/// Bound on chunks buffered per worker: enough to keep workers busy while
/// the demux refills, small enough that a slow shard backpressures the
/// producer instead of ballooning memory.
constexpr std::size_t kMaxQueuedChunks = 16;

/// FIFO of (shard, chunk) pairs feeding one worker. A shard is pinned to
/// exactly one worker, so per-shard order is the queue order.
struct WorkerQueue {
  std::mutex mutex;
  std::condition_variable ready;  // consumer: work available or shutdown
  std::condition_variable space;  // producer: below the chunk bound
  std::deque<std::pair<std::size_t, std::vector<Request>>> chunks;
  bool done = false;
};

}  // namespace

ShardedEngine::ShardedEngine(const Tree& tree, const std::string& algorithm,
                             const sim::Params& params, EngineConfig config)
    : plan_(tree, config.shards), config_(config) {
  TC_CHECK(config_.batch >= 1, "engine batch size must be at least 1");
  // Single-shard plans delegate to run_source, whose batch is fixed:
  // normalize so config() never claims a geometry that was not used.
  if (plan_.num_shards() == 1) config_.batch = sim::kDriverBatchSize;
  algs_.reserve(plan_.num_shards());
  for (std::size_t s = 0; s < plan_.num_shards(); ++s) {
    algs_.push_back(
        sim::make_algorithm(algorithm, plan_.shard_tree(s), params));
  }
}

std::size_t ShardedEngine::effective_threads() const {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t requested =
      config_.threads == 0 ? hardware : config_.threads;
  return std::min(requested, plan_.num_shards());
}

EngineResult ShardedEngine::run(RequestSource& source) {
  const std::size_t num_shards = plan_.num_shards();
  for (auto& alg : algs_) alg->reset();

  EngineResult out;
  out.shards = num_shards;
  const Stopwatch timer;

  if (num_shards == 1) {
    // Unsharded: the plain driver, which also feeds closed-loop sources.
    out.threads = 1;
    out.per_shard.push_back(sim::run_source(*algs_[0], source));
    out.total = out.per_shard.front();
    out.total.wall_seconds = timer.seconds();
    // Per-shard results uniformly carry no wall time (only the aggregate
    // does), matching the multi-shard path.
    out.per_shard.front().wall_seconds = 0.0;
    return out;
  }
  // Outcomes complete out of order across shards, so observe() is never
  // called: a closed-loop source would silently starve its mirror.
  TC_CHECK(!source.is_closed_loop(),
           "closed-loop sources require a single shard (see ROADMAP)");

  const std::size_t workers = effective_threads();
  out.threads = workers;
  out.per_shard.resize(num_shards);
  std::vector<sim::AccountingSink> sinks;
  sinks.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    sinks.emplace_back(out.per_shard[s], *algs_[s], nullptr);
  }

  // Per-shard demux buffers, flushed to the shard's executor when full.
  std::vector<std::vector<Request>> pending(num_shards);
  for (auto& p : pending) p.reserve(config_.batch);
  std::array<Request, sim::kDriverBatchSize> buffer;

  if (workers <= 1) {
    // Sequential demux: identical routing and per-shard chunking, stepped
    // inline. Per-shard results match the threaded path by construction.
    const auto flush = [&](std::size_t s) {
      algs_[s]->step_batch(pending[s], sinks[s]);
      pending[s].clear();
    };
    for (;;) {
      const std::size_t n = source.fill(buffer);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = plan_.shard_of(buffer[i].node);
        pending[s].push_back(plan_.to_local(buffer[i]));
        if (pending[s].size() >= config_.batch) flush(s);
      }
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!pending[s].empty()) flush(s);
    }
  } else {
    // Threaded: shard s is pinned to worker s % workers; the caller thread
    // demuxes and the workers drain their queues through step_batch.
    std::vector<WorkerQueue> queues(workers);
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        WorkerQueue& queue = queues[w];
        for (;;) {
          std::pair<std::size_t, std::vector<Request>> item;
          {
            std::unique_lock<std::mutex> lock(queue.mutex);
            queue.ready.wait(lock, [&] {
              return !queue.chunks.empty() || queue.done;
            });
            if (queue.chunks.empty()) return;  // done and drained
            item = std::move(queue.chunks.front());
            queue.chunks.pop_front();
          }
          queue.space.notify_one();
          try {
            algs_[item.first]->step_batch(item.second, sinks[item.first]);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!error) error = std::current_exception();
            }
            // The producer may be blocked on this queue's bound; flip
            // `failed` under the queue mutex so it cannot evaluate the wait
            // predicate between the store and the wakeup (a lost notify
            // would deadlock run()), then wake it.
            {
              const std::lock_guard<std::mutex> lock(queue.mutex);
              failed.store(true, std::memory_order_relaxed);
            }
            queue.space.notify_all();
            return;
          }
        }
      });
    }

    const auto enqueue = [&](std::size_t s) {
      WorkerQueue& queue = queues[s % workers];
      {
        std::unique_lock<std::mutex> lock(queue.mutex);
        queue.space.wait(lock, [&] {
          return queue.chunks.size() < kMaxQueuedChunks ||
                 failed.load(std::memory_order_relaxed);
        });
        queue.chunks.emplace_back(s, std::move(pending[s]));
      }
      queue.ready.notify_one();
      pending[s] = {};
      pending[s].reserve(config_.batch);
    };

    // A demux-side throw (source.fill, shard_of on an out-of-range node)
    // must not unwind past joinable workers — that would std::terminate.
    // Capture it, run the regular shutdown, and rethrow after the join.
    std::exception_ptr producer_error;
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t n = source.fill(buffer);
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t s = plan_.shard_of(buffer[i].node);
          pending[s].push_back(plan_.to_local(buffer[i]));
          if (pending[s].size() >= config_.batch) enqueue(s);
        }
      }
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (!pending[s].empty() &&
            !failed.load(std::memory_order_relaxed)) {
          enqueue(s);
        }
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    for (auto& queue : queues) {
      {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        queue.done = true;
      }
      queue.ready.notify_one();
      // A failed run may leave a producer-side wait pending in theory;
      // wake it so shutdown cannot stall.
      queue.space.notify_all();
    }
    for (auto& worker : pool) worker.join();
    if (producer_error) std::rethrow_exception(producer_error);
    if (error) std::rethrow_exception(error);
  }

  // Finalize each shard, then aggregate in shard order (a fixed order, so
  // the totals are reproducible bit for bit).
  for (std::size_t s = 0; s < num_shards; ++s) {
    sim::RunResult& r = out.per_shard[s];
    r.cost = algs_[s]->cost();
    r.final_cache_size = algs_[s]->cache().size();
    out.total.cost += r.cost;
    out.total.rounds += r.rounds;
    out.total.paid_requests += r.paid_requests;
    out.total.paid_positive += r.paid_positive;
    out.total.paid_negative += r.paid_negative;
    out.total.fetched_nodes += r.fetched_nodes;
    out.total.evicted_nodes += r.evicted_nodes;
    out.total.phase_restarts += r.phase_restarts;
    out.total.restart_evictions += r.restart_evictions;
    out.total.max_cache_size =
        std::max(out.total.max_cache_size, r.max_cache_size);
    out.total.final_cache_size += r.final_cache_size;
  }
  out.total.wall_seconds = timer.seconds();
  return out;
}

}  // namespace treecache::engine
