#include "engine/sharded_engine.hpp"

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "core/outcome_buffer.hpp"
#include "core/tree_cache.hpp"
#include "util/stopwatch.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace treecache::engine {
namespace {

/// Pins the calling thread to the CPU owned by worker `w` (w modulo the
/// hardware concurrency — the same mapping every pool uses, so a worker
/// lands on the same core at construction and on every run). Returns the
/// CPU, or -1 when pinning is unavailable or denied (reported, not fatal).
int pin_to_cpu(std::size_t w) {
#if defined(__linux__)
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());
  const int cpu = static_cast<int>(w % hardware);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (sched_setaffinity(0, sizeof(set), &set) == 0) return cpu;
#else
  (void)w;
#endif
  return -1;
}

/// Bound on chunks buffered per worker: enough to keep workers busy while
/// the demux refills, small enough that a slow shard backpressures the
/// producer instead of ballooning memory.
constexpr std::size_t kMaxQueuedChunks = 16;

/// FIFO of (shard, chunk) pairs feeding one worker. A shard is pinned to
/// exactly one worker, so per-shard order is the queue order.
struct WorkerQueue {
  std::mutex mutex;
  std::condition_variable ready;  // consumer: work available or shutdown
  std::condition_variable space;  // producer: below the chunk bound
  std::deque<std::pair<std::size_t, std::vector<Request>>> chunks;
  bool done = false;
};

/// Per-shard outcome feedback of a closed-loop run, shared by the producer
/// (drains into the mirrors' observe_batch()) and the workers (publish
/// flattened sub-chunks, blocking while the shard's single ring slot is
/// occupied). One mutex guards all rings: feedback traffic is sub-chunk
/// grained, never per outcome.
struct Feedback {
  explicit Feedback(std::size_t shards, std::size_t bound)
      : rings(shards), bound(bound) {}

  std::mutex mutex;
  std::condition_variable ready;  // producer: outcomes to drain, or abort
  std::condition_variable space;  // workers: the shard's ring was drained
  std::vector<OutcomeBuffer> rings;  // one published sub-chunk per shard
  std::size_t pending = 0;  // total buffered outcomes across shards
  std::size_t bound;        // worker-side flush threshold (outcomes)
  bool aborted = false;

  /// Producer-side shutdown: discard everything and release every blocked
  /// worker. Without the drain a worker waiting out an occupied ring would
  /// never observe shutdown and the join below would deadlock.
  void abort_and_drain() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      aborted = true;
      for (auto& ring : rings) ring.clear();
      pending = 0;
    }
    space.notify_all();
    ready.notify_all();
  }
};

/// Thrown out of a worker's sink when the run is being torn down; filtered
/// by the worker loop (it is shutdown, not an error to report).
struct AbortRun {};

/// The worker-side sink of a closed-loop shard: accounts every round into
/// the shard's RunResult (worker-local — the shard is pinned) and appends
/// the outcome to a flattened worker-local OutcomeBuffer — no per-outcome
/// heap copies — published to the shard's feedback ring in sub-chunks of
/// at most `feedback.bound` outcomes.
class FeedbackSink final : public OutcomeSink {
 public:
  FeedbackSink(sim::RunResult& result, const OnlineAlgorithm& alg,
               Feedback& feedback, std::size_t shard, OutcomeBuffer& local)
      : result_(&result),
        alg_(&alg),
        feedback_(&feedback),
        shard_(shard),
        local_(&local) {}

  void on_outcome(const Request& request,
                  const StepOutcome& outcome) override {
    sim::accumulate_outcome(*result_, request, outcome,
                            alg_->cache().size());
    local_->append(outcome);
    if (local_->size() >= feedback_->bound) publish();
  }

  /// Hands the buffered outcomes to the shard's ring slot — an O(1) buffer
  /// swap (the drained slot's storage comes back as the new local buffer),
  /// waiting out the producer when the previous sub-chunk is still there.
  /// The worker loop calls this once more after each chunk for the tail.
  void publish() {
    if (local_->empty()) return;
    {
      std::unique_lock<std::mutex> lock(feedback_->mutex);
      feedback_->space.wait(lock, [&] {
        return feedback_->rings[shard_].empty() || feedback_->aborted;
      });
      if (feedback_->aborted) throw AbortRun{};
      feedback_->rings[shard_].swap(*local_);
      feedback_->pending += feedback_->rings[shard_].size();
    }
    feedback_->ready.notify_one();
  }

 private:
  sim::RunResult* result_;
  const OnlineAlgorithm* alg_;
  Feedback* feedback_;
  std::size_t shard_;
  OutcomeBuffer* local_;
};

/// The once-per-process latch for warn_replicated_split below; the rearm
/// hook (tests) lives in the header.
std::atomic<bool> g_replicated_split_warned{false};

/// stderr diagnostic for the split_kind() satellite contract: a replicated
/// split is correct but regenerates the whole stream once per shard.
/// Deduplicated process-wide — a sweep or multi-run process hitting the
/// fallback at several call sites (closed-loop split, threaded open-loop
/// split) or across many runs prints it once, not once per run.
void warn_replicated_split(std::size_t shards) {
  if (g_replicated_split_warned.exchange(true)) return;
  std::cerr << "treecache: warning: multi-shard run falls back to "
               "replicated generation (RequestSource::split cloned the "
               "stream for each of "
            << shards
            << " shards); generation cost scales with the shard count — "
               "see RequestSource::split_kind() (warned once per process)\n";
}

}  // namespace

void rearm_replicated_split_warning() {
  g_replicated_split_warned.store(false);
}

ShardedEngine::ShardedEngine(const Tree& tree, const std::string& algorithm,
                             const sim::Params& params, EngineConfig config)
    : plan_(tree, config.shards), config_(config) {
  TC_CHECK(config_.batch >= 1, "engine batch size must be at least 1");
  TC_CHECK(config_.feedback >= 1,
           "engine feedback bound must be at least 1");
  // Single-shard plans delegate to run_source, whose batch is fixed:
  // normalize so config() never claims a geometry that was not used.
  if (plan_.num_shards() == 1) config_.batch = sim::kDriverBatchSize;
  // Pinning only matters where worker threads exist; normalize it away on
  // single-worker geometries so config() reports what was done.
  if (effective_threads() <= 1) config_.pin_threads = false;

  const std::size_t num_shards = plan_.num_shards();
  algs_.resize(num_shards);
  tc_.resize(num_shards);
  if (config_.pin_threads) {
    // Build shard s on pinned worker s % workers — the owner under the
    // run-time mapping of every pool. The instance's NodeState block and
    // scratch arena are first-touched on that worker's core, so their
    // pages are placed on its NUMA node. The registry is read-only after
    // static init, so concurrent make_algorithm calls are safe; each
    // thread writes disjoint algs_/tc_/worker_cpus_ slots and the join
    // publishes them.
    const std::size_t workers = effective_threads();
    worker_cpus_.assign(workers, -1);
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        worker_cpus_[w] = pin_to_cpu(w);
        try {
          for (std::size_t s = w; s < num_shards; s += workers) {
            algs_[s] =
                sim::make_algorithm(algorithm, plan_.shard_tree(s), params);
            tc_[s] = dynamic_cast<TreeCache*>(algs_[s].get());
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
    }
    for (auto& worker : pool) worker.join();
    if (error) std::rethrow_exception(error);
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) {
      algs_[s] = sim::make_algorithm(algorithm, plan_.shard_tree(s), params);
      // Downcast once here; step_shard then calls the final TreeCache
      // directly, off the virtual path, for every chunk of the run.
      tc_[s] = dynamic_cast<TreeCache*>(algs_[s].get());
    }
  }
}

void ShardedEngine::step_shard(std::size_t s,
                               std::span<const Request> requests,
                               OutcomeSink& sink) {
  if (TreeCache* const tc = tc_[s]) {
    tc->step_batch(requests, sink);  // direct call: TreeCache is final
  } else {
    algs_[s]->step_batch(requests, sink);
  }
}

std::size_t ShardedEngine::effective_threads() const {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t requested =
      config_.threads == 0 ? hardware : config_.threads;
  return std::min(requested, plan_.num_shards());
}

EngineResult ShardedEngine::run(RequestSource& source) {
  const std::size_t num_shards = plan_.num_shards();
  if (num_shards > 1 && source.is_closed_loop()) {
    // Closed loop: split into one mirror per shard, so each shard's
    // feedback stays local (see the header comment). The split replays
    // the stream from the start, which is what run() means anyway.
    const auto mirrors = source.split(plan_);
    TC_CHECK(mirrors.size() == num_shards,
             "closed-loop source cannot split into per-shard mirrors "
             "(RequestSource::split); run it with a single shard");
    if (source.split_kind() == SplitKind::kReplicated) {
      warn_replicated_split(num_shards);
    }
    return run_split(mirrors);
  }
  for (auto& alg : algs_) alg->reset();

  EngineResult out;
  out.shards = num_shards;
  out.pinned = config_.pin_threads;
  out.worker_cpus = worker_cpus_;
  const Stopwatch timer;

  if (num_shards == 1) {
    // Unsharded: the plain driver, which also feeds closed-loop sources.
    out.threads = 1;
    out.per_shard.push_back(sim::run_source(*algs_[0], source));
    out.total = out.per_shard.front();
    out.total.wall_seconds = timer.seconds();
    // Per-shard results uniformly carry no wall time (only the aggregate
    // does), matching the multi-shard path.
    out.per_shard.front().wall_seconds = 0.0;
    return out;
  }

  const std::size_t workers = effective_threads();
  out.threads = workers;
  out.per_shard.resize(num_shards);

  // Open-loop scale-out: with more than one worker, prefer splitting the
  // source so generation itself runs on the workers — the demux below
  // serializes fill() on this thread. Shared-generation parts must stay
  // on one thread, so only independent (non-kShared) splits qualify; a
  // source that cannot split falls through to the demux.
  if (workers > 1 && source.split_kind() != SplitKind::kShared) {
    const auto parts = source.split(plan_);
    if (parts.size() == num_shards) {
      if (source.split_kind() == SplitKind::kReplicated) {
        warn_replicated_split(num_shards);
      }
      run_parts_threaded(parts, out, workers);
      finalize(out);
      out.total.wall_seconds = timer.seconds();
      return out;
    }
  }

  std::vector<sim::AccountingSink> sinks;
  sinks.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    sinks.emplace_back(out.per_shard[s], *algs_[s], nullptr);
  }

  // Per-shard demux buffers, flushed to the shard's executor when full.
  std::vector<std::vector<Request>> pending(num_shards);
  for (auto& p : pending) p.reserve(config_.batch);
  std::array<Request, sim::kDriverBatchSize> buffer;

  if (workers <= 1) {
    // Sequential demux: identical routing and per-shard chunking, stepped
    // inline. Per-shard results match the threaded path by construction.
    const auto flush = [&](std::size_t s) {
      step_shard(s, pending[s], sinks[s]);
      pending[s].clear();
    };
    for (;;) {
      const std::size_t n = source.fill(buffer);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = plan_.shard_of(buffer[i].node);
        pending[s].push_back(plan_.to_local(buffer[i]));
        if (pending[s].size() >= config_.batch) flush(s);
      }
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (!pending[s].empty()) flush(s);
    }
  } else {
    // Threaded: shard s is pinned to worker s % workers; the caller thread
    // demuxes and the workers drain their queues through step_batch.
    std::vector<WorkerQueue> queues(workers);
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        if (config_.pin_threads) pin_to_cpu(w);  // same core as construction
        WorkerQueue& queue = queues[w];
        for (;;) {
          std::pair<std::size_t, std::vector<Request>> item;
          {
            std::unique_lock<std::mutex> lock(queue.mutex);
            queue.ready.wait(lock, [&] {
              return !queue.chunks.empty() || queue.done;
            });
            if (queue.chunks.empty()) return;  // done and drained
            item = std::move(queue.chunks.front());
            queue.chunks.pop_front();
          }
          queue.space.notify_one();
          try {
            step_shard(item.first, item.second, sinks[item.first]);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!error) error = std::current_exception();
            }
            // The producer may be blocked on this queue's bound; flip
            // `failed` under the queue mutex so it cannot evaluate the wait
            // predicate between the store and the wakeup (a lost notify
            // would deadlock run()), then wake it.
            {
              const std::lock_guard<std::mutex> lock(queue.mutex);
              failed.store(true, std::memory_order_relaxed);
            }
            queue.space.notify_all();
            return;
          }
        }
      });
    }

    const auto enqueue = [&](std::size_t s) {
      WorkerQueue& queue = queues[s % workers];
      {
        std::unique_lock<std::mutex> lock(queue.mutex);
        queue.space.wait(lock, [&] {
          return queue.chunks.size() < kMaxQueuedChunks ||
                 failed.load(std::memory_order_relaxed);
        });
        queue.chunks.emplace_back(s, std::move(pending[s]));
      }
      queue.ready.notify_one();
      pending[s] = {};
      pending[s].reserve(config_.batch);
    };

    // A demux-side throw (source.fill, shard_of on an out-of-range node)
    // must not unwind past joinable workers — that would std::terminate.
    // Capture it, run the regular shutdown, and rethrow after the join.
    std::exception_ptr producer_error;
    try {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t n = source.fill(buffer);
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t s = plan_.shard_of(buffer[i].node);
          pending[s].push_back(plan_.to_local(buffer[i]));
          if (pending[s].size() >= config_.batch) enqueue(s);
        }
      }
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (!pending[s].empty() &&
            !failed.load(std::memory_order_relaxed)) {
          enqueue(s);
        }
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    for (auto& queue : queues) {
      {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        queue.done = true;
      }
      queue.ready.notify_one();
      // A failed run may leave a producer-side wait pending in theory;
      // wake it so shutdown cannot stall.
      queue.space.notify_all();
    }
    for (auto& worker : pool) worker.join();
    if (producer_error) std::rethrow_exception(producer_error);
    if (error) std::rethrow_exception(error);
  }

  finalize(out);
  out.total.wall_seconds = timer.seconds();
  return out;
}

void ShardedEngine::finalize(EngineResult& out) const {
  // Finalize each shard from its instance, then aggregate in shard order
  // (a fixed order, so the totals are reproducible bit for bit).
  for (std::size_t s = 0; s < plan_.num_shards(); ++s) {
    sim::RunResult& r = out.per_shard[s];
    r.cost = algs_[s]->cost();
    r.final_cache_size = algs_[s]->cache().size();
    // Per-shard results uniformly carry no wall time; only the aggregate
    // does (some paths, e.g. run_source per shard, measure one).
    r.wall_seconds = 0.0;
    out.total.cost += r.cost;
    out.total.rounds += r.rounds;
    out.total.paid_requests += r.paid_requests;
    out.total.paid_positive += r.paid_positive;
    out.total.paid_negative += r.paid_negative;
    out.total.fetched_nodes += r.fetched_nodes;
    out.total.evicted_nodes += r.evicted_nodes;
    out.total.phase_restarts += r.phase_restarts;
    out.total.restart_evictions += r.restart_evictions;
    out.total.max_cache_size =
        std::max(out.total.max_cache_size, r.max_cache_size);
    out.total.final_cache_size += r.final_cache_size;
  }
}

EngineResult ShardedEngine::run_split(
    std::span<const std::unique_ptr<RequestSource>> mirrors) {
  const std::size_t num_shards = plan_.num_shards();
  TC_CHECK(mirrors.size() == num_shards,
           "run_split needs exactly one source per shard");
  for (const auto& mirror : mirrors) {
    TC_CHECK(mirror != nullptr, "run_split was handed a null source");
  }
  for (auto& alg : algs_) alg->reset();

  EngineResult out;
  out.shards = num_shards;
  out.pinned = config_.pin_threads;
  out.worker_cpus = worker_cpus_;
  out.per_shard.resize(num_shards);
  const Stopwatch timer;
  const std::size_t workers = num_shards == 1 ? 1 : effective_threads();
  out.threads = workers;

  if (workers <= 1) {
    // Sequential reference shape: each shard's loop is the exact
    // fill → step → observe alternation of sim::run_source. Shards are
    // interleaved round-robin, one chunk per pass, rather than run to
    // exhaustion one by one: mirrors of a shared-generation split
    // (SplitKind::kShared) pull from one producer, and draining shard 0
    // first would buffer almost the whole stream for its siblings —
    // interleaving keeps the producer's queues bounded by the inter-shard
    // skew. Shards share no state, so the order is free and per-shard
    // results are unchanged.
    std::vector<Request> buffer(config_.batch);
    std::vector<sim::AccountingSink> sinks;
    sinks.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      sinks.emplace_back(out.per_shard[s], *algs_[s], mirrors[s].get());
    }
    std::vector<bool> done(num_shards, false);
    std::size_t remaining = num_shards;
    while (remaining > 0) {
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (done[s]) continue;
        const std::size_t n =
            mirrors[s]->fill({buffer.data(), buffer.size()});
        if (n == 0) {
          // fill() contract: 0 is final until reset — the shard is done
          // even while its siblings keep consuming the shared stream.
          done[s] = true;
          --remaining;
          continue;
        }
        step_shard(s, {buffer.data(), n}, sinks[s]);
      }
    }
  } else {
    run_split_threaded(mirrors, out, workers);
  }
  finalize(out);
  out.total.wall_seconds = timer.seconds();
  return out;
}

void ShardedEngine::run_split_threaded(
    std::span<const std::unique_ptr<RequestSource>> mirrors,
    EngineResult& out, std::size_t workers) {
  const std::size_t num_shards = plan_.num_shards();
  // Worker chunk queues carry at most one in-flight chunk per pinned shard
  // (the producer refills a mirror only after draining its feedback), so
  // unlike the open-loop demux they need no capacity bound — and must not
  // have one: a producer blocked on chunk space could never drain the
  // feedback a blocked worker is waiting on.
  std::vector<WorkerQueue> queues(workers);
  Feedback feedback(num_shards, config_.feedback);
  std::exception_ptr worker_error;
  std::mutex error_mutex;

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      if (config_.pin_threads) pin_to_cpu(w);  // same core as construction
      WorkerQueue& queue = queues[w];
      // One recycled flat buffer per worker: the publish() swap protocol
      // rotates storage between worker and producer, so the steady state
      // allocates nothing. A worker drains it fully after every chunk, so
      // sharing it across this worker's pinned shards cannot mix outcomes.
      OutcomeBuffer scratch;
      for (;;) {
        std::pair<std::size_t, std::vector<Request>> item;
        {
          std::unique_lock<std::mutex> lock(queue.mutex);
          queue.ready.wait(lock, [&] {
            return !queue.chunks.empty() || queue.done;
          });
          if (queue.chunks.empty()) return;  // done and drained
          item = std::move(queue.chunks.front());
          queue.chunks.pop_front();
        }
        const std::size_t s = item.first;
        FeedbackSink sink(out.per_shard[s], *algs_[s], feedback, s,
                          scratch);
        try {
          step_shard(s, item.second, sink);
          sink.publish();  // the sub-bound tail of the chunk
        } catch (const AbortRun&) {
          return;  // torn down mid-chunk: shutdown, not an error
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!worker_error) worker_error = std::current_exception();
          }
          // Wake the producer (waiting on feedback.ready) and any peers
          // blocked on a full outcome queue.
          feedback.abort_and_drain();
          return;
        }
      }
    });
  }

  // Producer: fill every mirror whose previous chunk has fully fed back,
  // dispatch to the shard's pinned worker, then drain the feedback rings
  // into the mirrors' observe_batch() — per-shard FIFO order, one swap and
  // one virtual call per published sub-chunk — which readies the next
  // fill. Closed-loop strict alternation per shard, pipelined across
  // shards.
  enum class MirrorState : std::uint8_t { kReady, kInFlight, kDone };
  std::vector<MirrorState> state(num_shards, MirrorState::kReady);
  std::vector<std::size_t> expected(num_shards, 0);  // outcomes to drain
  std::size_t active = num_shards;
  std::size_t in_flight = 0;
  std::vector<Request> chunk(config_.batch);
  std::vector<OutcomeBuffer> drained(num_shards);
  std::exception_ptr producer_error;
  try {
    while (active > 0) {
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (state[s] != MirrorState::kReady) continue;
        const std::size_t n = mirrors[s]->fill({chunk.data(), chunk.size()});
        if (n == 0) {
          state[s] = MirrorState::kDone;
          --active;
          continue;
        }
        WorkerQueue& queue = queues[s % workers];
        {
          const std::lock_guard<std::mutex> lock(queue.mutex);
          queue.chunks.emplace_back(
              s, std::vector<Request>(chunk.begin(),
                                      chunk.begin() +
                                          static_cast<std::ptrdiff_t>(n)));
        }
        queue.ready.notify_one();
        expected[s] = n;
        state[s] = MirrorState::kInFlight;
        ++in_flight;
      }
      // Every active shard is now in flight (fills above leave a shard
      // either dispatched or done), so in_flight == 0 implies active == 0.
      if (in_flight == 0) break;
      {
        std::unique_lock<std::mutex> lock(feedback.mutex);
        feedback.ready.wait(lock, [&] {
          return feedback.pending > 0 || feedback.aborted;
        });
        if (feedback.aborted) break;  // a worker failed; rethrown below
        for (std::size_t s = 0; s < num_shards; ++s) {
          // O(1) swap: the ring slot's storage moves out for draining and
          // the (empty, capacity-bearing) drained buffer moves in, to be
          // recycled by the next worker publish.
          if (!feedback.rings[s].empty()) feedback.rings[s].swap(drained[s]);
        }
        feedback.pending = 0;
      }
      feedback.space.notify_all();
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (drained[s].empty()) continue;
        mirrors[s]->observe_batch(drained[s].views());
        expected[s] -= drained[s].size();
        drained[s].clear();
        if (expected[s] == 0 && state[s] == MirrorState::kInFlight) {
          state[s] = MirrorState::kReady;
          --in_flight;
        }
      }
    }
  } catch (...) {
    producer_error = std::current_exception();
  }
  // Shutdown. Drain the per-shard outcome queues and flip the abort flag
  // BEFORE joining: a worker waiting out a full queue never checks the
  // chunk queue's `done`, so joining without the drain deadlocks when the
  // producer bailed mid-run (fill() threw, a worker failed, ...). Tested
  // by the fault-injection case in tests/test_engine_closed_loop.cpp.
  feedback.abort_and_drain();
  for (auto& queue : queues) {
    {
      const std::lock_guard<std::mutex> lock(queue.mutex);
      queue.done = true;
    }
    queue.ready.notify_one();
  }
  for (auto& worker : pool) worker.join();
  if (producer_error) std::rethrow_exception(producer_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void ShardedEngine::run_parts_threaded(
    std::span<const std::unique_ptr<RequestSource>> parts,
    EngineResult& out, std::size_t workers) {
  const std::size_t num_shards = plan_.num_shards();
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      if (config_.pin_threads) pin_to_cpu(w);  // same core as construction
      try {
        std::vector<Request> buffer(config_.batch);
        // Shard s is pinned to worker s % workers, like the demux path, so
        // per-shard order is trivially the part's stream order. Parts are
        // already shard-local (RequestSource::split remaps ids), so the
        // loop is the plain fill → step_batch driver, one shard at a time.
        for (std::size_t s = w; s < num_shards; s += workers) {
          sim::AccountingSink sink(out.per_shard[s], *algs_[s], nullptr);
          for (;;) {
            const std::size_t n =
                parts[s]->fill({buffer.data(), buffer.size()});
            if (n == 0) break;
            step_shard(s, {buffer.data(), n}, sink);
          }
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& worker : pool) worker.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace treecache::engine
