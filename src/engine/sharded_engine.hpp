// Sharded execution engine: many algorithm instances, one request stream.
//
// A ShardedEngine owns one OnlineAlgorithm instance per shard of a
// ShardPlan (each built by the registry over its shard tree, each with the
// full per-instance capacity — the line-card model: every card holds its
// own TCAM slice). run() pulls batches from a RequestSource on the caller
// thread, routes every request to the shard owning its node, and lets
// worker threads drain per-shard queues through the batched
// OnlineAlgorithm::step_batch hot path.
//
// Determinism contract: routing is a pure function of the requested node,
// each shard consumes its subsequence in stream order (a shard is pinned
// to one worker; queues are FIFO), and shard instances share no state — so
// every per-shard RunResult, and therefore the aggregate, is bit-identical
// regardless of the worker-thread count, including the sequential
// threads=1 demux. Tests enforce equality against independent per-shard
// sequential runs and across thread counts.
//
// Open loops at scale: when the source can split (RequestSource::split)
// and more than one worker is available, each worker self-drives its
// shards' parts through fill → step_batch — request generation itself
// runs on the workers instead of serializing on a demux thread. Sources
// that cannot split keep the demux path (the caller thread routes batches
// to per-shard queues). A multi-shard run over a replicated split
// (SplitKind::kReplicated — every part replays the whole stream) logs a
// warning to stderr: it is correct, but pays the generation cost once per
// shard.
//
// Closed loops: with one shard the engine delegates to sim::run_source,
// which feeds outcomes back to the source, so closed-loop sources (the FIB
// router) run unchanged. With multiple shards a closed-loop source is
// split into per-shard mirrors (RequestSource::split — for the FIB router
// a SplitKind::kShared split: one event producer generates the stream
// once, mirrors consume per-shard event queues) and run through a
// per-shard outcome feedback loop: the producer thread fills each mirror
// and dispatches the chunk to the shard's pinned worker; the worker steps
// it, accumulating outcomes into a flattened OutcomeBuffer, and publishes
// sub-chunks of at most EngineConfig::feedback outcomes into the shard's
// single-slot feedback ring (an O(1) buffer swap — no per-outcome heap
// copies); the producer drains the rings into the mirrors' observe_batch()
// — in per-shard order — and refills a mirror only once its whole chunk
// has fed back. Feedback never crosses shards, outcomes may complete out
// of order globally, and each shard's closed loop is exactly the
// sequential fill → step → observe alternation, so per-shard results are
// bit-identical for every thread count and equal to independent per-shard
// sequential runs (the differential suite in
// tests/test_engine_closed_loop.cpp enforces this for every registered
// algorithm). A closed-loop source whose split() returns empty is refused
// with more than one shard.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/request_source.hpp"
#include "engine/shard_plan.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"

namespace treecache {
class TreeCache;
}

namespace treecache::engine {

struct EngineConfig {
  /// Requested shard count; the plan caps it at the number of top-level
  /// subtrees. 1 = unsharded (delegates to sim::run_source).
  std::size_t shards = 1;
  /// Worker threads for the sharded path; 0 picks one per shard, capped at
  /// the hardware concurrency. Never more than one worker per shard.
  std::size_t threads = 1;
  /// Demux chunk size: requests handed to one shard per step_batch call.
  /// Single-shard plans run through sim::run_source, whose batch is always
  /// kDriverBatchSize — the constructor normalizes this field accordingly,
  /// so config() reports the geometry actually used.
  std::size_t batch = sim::kDriverBatchSize;
  /// Closed-loop runs only: a worker publishes its flattened outcomes to
  /// the shard's feedback ring whenever this many have accumulated (and at
  /// the end of each chunk), then waits for the producer to drain the ring
  /// before publishing more. Small values backpressure workers instead of
  /// growing memory; must be >= 1 (1 = per-outcome handoff).
  std::size_t feedback = 1024;
  /// Pin worker w to CPU w % hardware_concurrency (Linux sched_setaffinity;
  /// a no-op elsewhere and when affinity is denied). Shard instances are
  /// then also *constructed* on their pinned worker, so each shard's
  /// NodeState block and scratch arena are first-touched — hence placed —
  /// on the core (and NUMA node) that runs it. Only effective when the run
  /// actually uses more than one worker; the constructor normalizes it to
  /// false otherwise, so config() reports what was done.
  bool pin_threads = false;
};

struct EngineResult {
  /// Aggregate over shards: costs and tallies are sums, max_cache_size is
  /// the largest single-instance peak, final_cache_size the total cached
  /// across instances, wall_seconds the engine wall time (per-shard results
  /// carry no wall time of their own).
  sim::RunResult total;
  std::vector<sim::RunResult> per_shard;
  std::size_t shards = 0;
  std::size_t threads = 0;  // workers actually used
  /// True iff the run used pinned workers (EngineConfig::pin_threads after
  /// normalization); worker_cpus[w] is the CPU worker w landed on, or -1
  /// when the affinity call failed (reported, not fatal).
  bool pinned = false;
  std::vector<int> worker_cpus;
};

class ShardedEngine {
 public:
  /// Plans the shards over `tree` and builds one registry-resolved
  /// `algorithm` instance per shard on its shard tree. `tree` must outlive
  /// the engine.
  ShardedEngine(const Tree& tree, const std::string& algorithm,
                const sim::Params& params, EngineConfig config);

  /// Resets every instance and runs `source` to exhaustion. See the header
  /// comment for the determinism and closed-loop contracts. A multi-shard
  /// closed-loop source is split() into mirrors and routed through
  /// run_split; it must be shardable or the run is refused. Paths that
  /// split (closed loops; open loops with more than one worker) replay
  /// the stream from its very beginning — pass a fresh or reset source.
  [[nodiscard]] EngineResult run(RequestSource& source);

  /// Resets every instance and runs one pre-split per-shard source per
  /// shard (mirrors[s] feeds shard s's instance, already in shard-local
  /// ids). Callers that need mirror-side state afterwards — e.g. per-shard
  /// router statistics — split themselves and keep the mirrors; run() is
  /// sugar over this for everyone else. Mirrors must be fresh (or reset)
  /// and are run to exhaustion.
  [[nodiscard]] EngineResult run_split(
      std::span<const std::unique_ptr<RequestSource>> mirrors);

  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  /// The configuration as normalized by the constructor (see
  /// EngineConfig::batch) — what result documents should echo.
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const OnlineAlgorithm& algorithm(std::size_t s) const {
    return *algs_[s];
  }

 private:
  /// Steps one chunk on shard `s`. When the instance is the paper's TC the
  /// call goes through a cached concrete TreeCache pointer — TreeCache is
  /// final, so the compiler emits a direct (inlinable) call into the
  /// preorder-SoA batch loop with no virtual dispatch anywhere on the
  /// per-request path. Every other algorithm takes the virtual step_batch.
  void step_shard(std::size_t s, std::span<const Request> requests,
                  OutcomeSink& sink);

  [[nodiscard]] std::size_t effective_threads() const;
  /// Sums per-shard results (already finalized from the instances) into
  /// out.total, in shard order — fixed order, bit-reproducible totals.
  void finalize(EngineResult& out) const;
  void run_split_threaded(
      std::span<const std::unique_ptr<RequestSource>> mirrors,
      EngineResult& out, std::size_t workers);
  /// Open-loop scale-out over split() parts: worker w self-drives the
  /// parts of shards w, w+workers, ... to exhaustion — generation runs on
  /// the workers, no demux in the middle. Parts must be independently
  /// consumable (any SplitKind but kShared).
  void run_parts_threaded(
      std::span<const std::unique_ptr<RequestSource>> parts,
      EngineResult& out, std::size_t workers);

  ShardPlan plan_;
  EngineConfig config_;
  /// CPU each worker was pinned to at construction (-1 = affinity denied);
  /// empty when pin_threads is off. Run-time pools re-pin worker w to the
  /// same w % hardware_concurrency slot.
  std::vector<int> worker_cpus_;
  std::vector<std::unique_ptr<OnlineAlgorithm>> algs_;  // one per shard
  /// algs_[s] downcast once at construction: non-null iff shard s runs the
  /// concrete TreeCache (the step_shard fast path), non-owning.
  std::vector<TreeCache*> tc_;
};

/// Re-arms the once-per-process "replicated generation" stderr warning
/// (it deduplicates across runs and call sites). Test hook only.
void rearm_replicated_split_warning();

}  // namespace treecache::engine
