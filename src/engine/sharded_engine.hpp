// Sharded execution engine: many algorithm instances, one request stream.
//
// A ShardedEngine owns one OnlineAlgorithm instance per shard of a
// ShardPlan (each built by the registry over its shard tree, each with the
// full per-instance capacity — the line-card model: every card holds its
// own TCAM slice). run() pulls batches from a RequestSource on the caller
// thread, routes every request to the shard owning its node, and lets
// worker threads drain per-shard queues through the batched
// OnlineAlgorithm::step_batch hot path.
//
// Determinism contract: routing is a pure function of the requested node,
// each shard consumes its subsequence in stream order (a shard is pinned
// to one worker; queues are FIFO), and shard instances share no state — so
// every per-shard RunResult, and therefore the aggregate, is bit-identical
// regardless of the worker-thread count, including the sequential
// threads=1 demux. Tests enforce equality against independent per-shard
// sequential runs and across thread counts.
//
// Closed loops: with one shard the engine delegates to sim::run_source,
// which feeds outcomes back to the source, so closed-loop sources (the FIB
// router) run unchanged. With multiple shards the stream must be open-loop
// — outcomes complete out of order across shards, so observe() is never
// called (cross-shard closed-loop handling is a ROADMAP open item).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/request_source.hpp"
#include "engine/shard_plan.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"

namespace treecache::engine {

struct EngineConfig {
  /// Requested shard count; the plan caps it at the number of top-level
  /// subtrees. 1 = unsharded (delegates to sim::run_source).
  std::size_t shards = 1;
  /// Worker threads for the sharded path; 0 picks one per shard, capped at
  /// the hardware concurrency. Never more than one worker per shard.
  std::size_t threads = 1;
  /// Demux chunk size: requests handed to one shard per step_batch call.
  /// Single-shard plans run through sim::run_source, whose batch is always
  /// kDriverBatchSize — the constructor normalizes this field accordingly,
  /// so config() reports the geometry actually used.
  std::size_t batch = sim::kDriverBatchSize;
};

struct EngineResult {
  /// Aggregate over shards: costs and tallies are sums, max_cache_size is
  /// the largest single-instance peak, final_cache_size the total cached
  /// across instances, wall_seconds the engine wall time (per-shard results
  /// carry no wall time of their own).
  sim::RunResult total;
  std::vector<sim::RunResult> per_shard;
  std::size_t shards = 0;
  std::size_t threads = 0;  // workers actually used
};

class ShardedEngine {
 public:
  /// Plans the shards over `tree` and builds one registry-resolved
  /// `algorithm` instance per shard on its shard tree. `tree` must outlive
  /// the engine.
  ShardedEngine(const Tree& tree, const std::string& algorithm,
                const sim::Params& params, EngineConfig config);

  /// Resets every instance and runs `source` to exhaustion. See the header
  /// comment for the determinism and closed-loop contracts.
  [[nodiscard]] EngineResult run(RequestSource& source);

  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  /// The configuration as normalized by the constructor (see
  /// EngineConfig::batch) — what result documents should echo.
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const OnlineAlgorithm& algorithm(std::size_t s) const {
    return *algs_[s];
  }

 private:
  [[nodiscard]] std::size_t effective_threads() const;

  ShardPlan plan_;
  EngineConfig config_;
  std::vector<std::unique_ptr<OnlineAlgorithm>> algs_;  // one per shard
};

}  // namespace treecache::engine
