#include "engine/shard_plan.hpp"

#include <algorithm>
#include <numeric>

namespace treecache::engine {

ShardPlan::ShardPlan(const Tree& tree, std::size_t max_shards)
    : universe_(&tree) {
  const std::span<const NodeId> children = tree.children(tree.root());
  const std::size_t target =
      std::min(std::max<std::size_t>(max_shards, 1),
               std::max<std::size_t>(children.size(), 1));
  shard_of_.assign(tree.size(), 0);
  local_id_.assign(tree.size(), 0);

  if (target <= 1) {
    // Trivial plan: one shard whose tree IS the universe. Identity maps,
    // no relabeled tree (shard_tree returns the universe).
    Shard whole;
    whole.roots.assign(children.begin(), children.end());
    whole.preorder_begin = 0;
    whole.preorder_end = static_cast<std::uint32_t>(tree.size());
    shards_.push_back(std::move(whole));
    std::iota(local_id_.begin(), local_id_.end(), NodeId{0});
    global_id_.emplace_back(local_id_);
    return;
  }

  // Group the root's children into `target` contiguous runs, greedily
  // filling each run to its fair share ceil(remaining/runs-left) of the
  // remaining node mass while always leaving one child per later run.
  // Contiguity in child order is contiguity in preorder: sibling subtrees
  // occupy adjacent preorder intervals.
  std::uint64_t remaining = tree.size() - 1;  // all nodes below the root
  std::size_t next_child = 0;
  for (std::size_t g = 0; g < target; ++g) {
    const std::size_t runs_left = target - g;
    const std::uint64_t budget = (remaining + runs_left - 1) / runs_left;
    Shard shard;
    std::uint64_t taken = 0;
    while (next_child < children.size() &&
           (shard.roots.empty() ||
            (taken < budget &&
             children.size() - next_child > runs_left - 1))) {
      const NodeId c = children[next_child++];
      shard.roots.push_back(c);
      taken += tree.subtree_size(c);
    }
    remaining -= taken;
    shard.preorder_begin =
        g == 0 ? 0 : tree.preorder_index(shard.roots.front());
    shard.preorder_end = tree.preorder_index(shard.roots.back()) +
                         tree.subtree_size(shard.roots.back());
    shards_.push_back(std::move(shard));
  }

  // Relabel each shard's slice into its own Tree. Local ids follow global
  // preorder; shards after the first get a replica of the global root as
  // local node 0 (their subtree roots reparent onto it).
  const std::span<const NodeId> preorder = tree.preorder();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    const bool replicated_root = s > 0;
    const auto local_of = [&](std::uint32_t preorder_pos) -> NodeId {
      return replicated_root ? preorder_pos - shard.preorder_begin + 1
                             : preorder_pos;
    };
    std::vector<NodeId> global(shard.nodes() + (replicated_root ? 1 : 0));
    if (replicated_root) global[0] = tree.root();
    for (std::uint32_t i = shard.preorder_begin; i < shard.preorder_end;
         ++i) {
      const NodeId g = preorder[i];
      shard_of_[g] = static_cast<std::uint32_t>(s);
      local_id_[g] = local_of(i);
      global[local_of(i)] = g;
    }
    std::vector<NodeId> parent(global.size(), kNoNode);
    for (std::uint32_t i = shard.preorder_begin; i < shard.preorder_end;
         ++i) {
      const NodeId g = preorder[i];
      const NodeId p = tree.parent(g);
      // Subtree roots hang off the (replica of the) global root; shard 0's
      // first slot is the real root and keeps kNoNode.
      if (p != kNoNode) {
        parent[local_of(i)] = p == tree.root() ? NodeId{0} : local_id_[p];
      }
    }
    trees_.emplace_back(std::move(parent));
    global_id_.push_back(std::move(global));
    // Local ids follow ascending global preorder and sibling subtrees stay
    // in child order, so the relabeled tree's DFS visits 0, 1, 2, … — the
    // guarantee the preorder-indexed NodeState layout builds on.
    TC_DCHECK(trees_.back().is_preorder_labeled(),
              "shard tree must be preorder-labeled");
  }
}

}  // namespace treecache::engine
