// Shard planning: a deterministic partition of the universe tree into
// contiguous-preorder subtree shards, the way a router's line cards each
// hold a slice of the FIB.
//
// The partition unit is a top-level subtree T(c) for a child c of the
// global root: adjacent children own adjacent preorder intervals, so every
// shard is one contiguous preorder range of the universe and the
// shard-of-node lookup is a single array read. Children are grouped
// greedily into size-balanced contiguous runs; asking for more shards than
// the root has children yields one shard per child.
//
// Each shard gets its own Tree to run an algorithm instance on:
//   * shard 0 owns the global root, so its tree is the root plus its run
//     of top-level subtrees — ids relabeled to local preorder;
//   * every other shard's tree is a REPLICA of the global root (local node
//     0 — the line card's copy of the default rule) with the shard's
//     subtree roots as children. The replica never receives requests;
//     routing is by the requested node only, so the request → shard map is
//     a pure function of the plan.
// For FIB rule trees (fib/rule_tree.hpp) this is exactly "shard by
// top-level prefix": node 0 is the artificial default rule and every shard
// boundary lands between top-level prefixes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/request.hpp"
#include "tree/tree.hpp"

namespace treecache::engine {

/// One shard: a contiguous preorder slice of the universe tree.
struct Shard {
  /// Global ids of the top-level subtree roots owned by this shard, in
  /// preorder. Shard 0 additionally owns the global root itself (not
  /// listed here).
  std::vector<NodeId> roots;
  /// The global preorder interval [begin, end) the shard covers. Shard 0's
  /// interval starts at the root (preorder index 0).
  std::uint32_t preorder_begin = 0;
  std::uint32_t preorder_end = 0;

  [[nodiscard]] std::size_t nodes() const {
    return preorder_end - preorder_begin;
  }
};

class ShardPlan {
 public:
  /// Partitions `tree` into min(max_shards, max(1, #children(root)))
  /// shards. `tree` must outlive the plan. max_shards == 1 is the trivial
  /// plan: one shard whose tree IS the universe (no relabeling).
  ShardPlan(const Tree& tree, std::size_t max_shards);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const Shard& shard(std::size_t s) const { return shards_[s]; }
  [[nodiscard]] const Tree& universe() const { return *universe_; }

  /// The tree shard `s`'s algorithm instance runs on. For the trivial
  /// 1-shard plan this is the universe itself (never a relabeled copy).
  [[nodiscard]] const Tree& shard_tree(std::size_t s) const {
    return trees_.empty() ? *universe_ : trees_[s];
  }

  /// Which shard serves requests to global node `v`.
  [[nodiscard]] std::size_t shard_of(NodeId v) const {
    TC_CHECK(v < shard_of_.size(), "request to node outside the universe");
    return shard_of_[v];
  }

  /// Global node → its id in shard_tree(shard_of(v)).
  [[nodiscard]] NodeId to_local(NodeId v) const {
    TC_DCHECK(v < local_id_.size(), "node outside the universe");
    return local_id_[v];
  }

  /// Shard-local node → global node. The replica root (local 0 of shards
  /// s > 0) maps back to the global root, so the round trip
  /// to_local(to_global(s, l)) == l holds for every node that can be
  /// requested and the replica maps to the rule it duplicates.
  [[nodiscard]] NodeId to_global(std::size_t s, NodeId local) const {
    return global_id_[s][local];
  }

  /// The request routed into its shard's id space.
  [[nodiscard]] Request to_local(Request request) const {
    return Request{to_local(request.node), request.sign};
  }

  // --- Preorder remap tables --------------------------------------------
  // Local ids are assigned in ascending global preorder, so every shard
  // tree is preorder-labeled (Tree::is_preorder_labeled() holds): a shard's
  // local NodeId IS its preorder rank, and the preorder-indexed NodeState
  // SoA of its TreeCache needs no per-request permutation at all. These
  // whole-table views let workers translate NodeId-keyed data in bulk
  // instead of calling to_local/to_global per element.

  /// Global node → shard-local id, as a whole table (element-wise this is
  /// to_local; pair it with shard_of to know which shard owns the id).
  [[nodiscard]] std::span<const NodeId> local_ids() const {
    return local_id_;
  }

  /// Shard-local id → global node for shard `s` (element-wise to_global).
  [[nodiscard]] std::span<const NodeId> global_ids(std::size_t s) const {
    TC_DCHECK(s < global_id_.size(), "shard out of range");
    return global_id_[s];
  }

 private:
  const Tree* universe_;
  std::vector<Shard> shards_;
  std::vector<Tree> trees_;
  std::vector<std::uint32_t> shard_of_;          // per global node
  std::vector<NodeId> local_id_;                 // per global node
  std::vector<std::vector<NodeId>> global_id_;   // per shard, per local node
};

}  // namespace treecache::engine
