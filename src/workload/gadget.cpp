#include "workload/gadget.hpp"

#include <algorithm>

#include "tree/tree_builder.hpp"

namespace treecache::workload {

GadgetScript build_appendix_d_gadget(std::size_t leaf_count,
                                     std::uint64_t alpha) {
  TC_CHECK(leaf_count >= 2, "gadget needs at least 2 leaves per subtree");
  TC_CHECK(alpha >= 2, "gadget needs alpha >= 2");

  GadgetScript script{.tree = trees::two_subtree_gadget(leaf_count),
                      .trace = {},
                      .alpha = alpha,
                      .subtree_size = 0,
                      .leaf_count = leaf_count,
                      .t1_nodes = {},
                      .t2_nodes = {},
                      .expectations = {}};
  script.leaf_count = leaf_count;
  const std::size_t s = 2 * leaf_count - 1;
  script.subtree_size = s;
  const Tree& tree = script.tree;

  for (NodeId v = 1; v <= s; ++v) script.t1_nodes.push_back(v);
  for (NodeId v = static_cast<NodeId>(s + 1); v < tree.size(); ++v) {
    script.t2_nodes.push_back(v);
  }

  Trace& trace = script.trace;
  auto expect = [&](ChangeKind kind, std::vector<NodeId> nodes) {
    std::sort(nodes.begin(), nodes.end());
    script.expectations.push_back(
        GadgetExpectation{trace.size(), kind, std::move(nodes)});
  };

  // Stage 0 (fill): fetch the tree node by node, children before parents.
  for (const NodeId v : tree.postorder()) {
    append_repeated(trace, positive(v), alpha);
    expect(ChangeKind::kFetch, {v});
  }

  // Stage 1: alpha negatives on every T1 node, then on the root
  //   → evict the tree cap {r} ∪ T1.
  for (const NodeId v : script.t1_nodes) {
    append_repeated(trace, negative(v), alpha);
  }
  append_repeated(trace, negative(tree.root()), alpha);
  {
    std::vector<NodeId> cap = script.t1_nodes;
    cap.push_back(tree.root());
    expect(ChangeKind::kEvict, std::move(cap));
  }

  // Stage 2: (s+1)·alpha − ℓ positives at the root; no cache change.
  append_repeated(trace, positive(tree.root()), (s + 1) * alpha - leaf_count);

  // Stage 3: alpha negatives on every T2 node, subtree root last
  //   → evict T2.
  for (auto it = script.t2_nodes.rbegin(); it != script.t2_nodes.rend();
       ++it) {
    append_repeated(trace, negative(*it), alpha);
  }
  expect(ChangeKind::kEvict, script.t2_nodes);

  // Stage 4: s·alpha − 1 positives at T1's root; still no fetch (see the
  // header note about the off-by-one versus the paper's informal text).
  append_repeated(trace, positive(1), s * alpha - 1);

  // Stage 5: ℓ + 1 positives at the root → fetch the whole tree at once.
  append_repeated(trace, positive(tree.root()), leaf_count + 1);
  {
    std::vector<NodeId> everything(tree.size());
    for (NodeId v = 0; v < tree.size(); ++v) everything[v] = v;
    expect(ChangeKind::kFetch, std::move(everything));
  }
  return script;
}

Cost replay_gadget(const GadgetScript& script, OnlineAlgorithm& alg) {
  std::size_t next_expectation = 0;
  for (std::size_t round = 1; round <= script.trace.size(); ++round) {
    const StepOutcome out = alg.step(script.trace[round - 1]);
    const bool expected_here =
        next_expectation < script.expectations.size() &&
        script.expectations[next_expectation].round == round;
    if (expected_here) {
      const GadgetExpectation& e = script.expectations[next_expectation];
      TC_CHECK(out.change == e.kind,
               "gadget: wrong change kind at round " + std::to_string(round));
      std::vector<NodeId> got(out.changed.begin(), out.changed.end());
      std::sort(got.begin(), got.end());
      TC_CHECK(got == e.nodes,
               "gadget: wrong changeset at round " + std::to_string(round));
      ++next_expectation;
    } else {
      TC_CHECK(out.change == ChangeKind::kNone,
               "gadget: unexpected cache change at round " +
                   std::to_string(round));
    }
  }
  TC_CHECK(next_expectation == script.expectations.size(),
           "gadget: missing expected cache changes");
  return alg.cost();
}

}  // namespace treecache::workload
