#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace treecache {

std::vector<double> zipf_weights(std::size_t n, double skew) {
  TC_CHECK(n >= 1, "need at least one rank");
  TC_CHECK(skew >= 0.0, "negative skew not supported");
  std::vector<double> weights(n);
  for (std::size_t r = 0; r < n; ++r) {
    weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), skew);
  }
  return weights;
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  const auto weights = zipf_weights(n, skew);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += weights[r];
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  return sample_at(rng.uniform01());
}

std::size_t ZipfSampler::sample_at(double u) const {
  TC_CHECK(u >= 0.0 && u < 1.0, "u must lie in [0, 1)");
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  TC_CHECK(rank < cdf_.size(), "rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace treecache
