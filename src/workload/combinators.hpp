// Source combinators: build composite scenarios out of registered
// workloads without writing a new generator.
//
// Registered names (parts resolve recursively through the
// WorkloadRegistry, so combinators compose — a part may itself be a
// combinator, just not the combinator's own name):
//
//   concat        parts=a,b,...          phase changes: runs each part to
//                 exhaustion in order, splitting "length" evenly across
//                 the parts (remainder to the earliest parts).
//   mix           parts=a,b,...          statistical blend: each request
//                 weights=w1,w2,...      comes from part i with probability
//                                        proportional to w_i; "length" is
//                                        split across parts by weight.
//   churn-inject  inner=<name>           wraps a workload and injects an
//                 churn-period=N         alpha-chunk of negative requests
//                                        to a uniformly random node after
//                                        every N inner requests.
//
// Feedback routing: concat forwards every observed outcome batch to the
// part that emitted the last fill (fill never spans a part boundary), and
// churn-inject forwards every outcome — including those of its injected
// requests — to the inner source, so a closed-loop inner keeps an accurate
// view of the cache. mix interleaves parts per request, which cannot
// respect a closed-loop source's batching contract; its parts must be
// open-loop (every registered generator is).
#pragma once

#include <memory>
#include <vector>

#include "core/request_source.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace treecache::workload {

/// Plays each part to exhaustion, in order. fill() never spans a part
/// boundary, so observe_batch() can always route to the emitting part.
class ConcatSource final : public RequestSource {
 public:
  explicit ConcatSource(std::vector<std::unique_ptr<RequestSource>> parts);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override;
  void observe_batch(std::span<const StepOutcome> outcomes) override;
  /// Forks every part; nullptr if any part cannot fork.
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  std::vector<std::unique_ptr<RequestSource>> parts_;
  std::size_t active_ = 0;  // part that emitted the last batch
};

/// Weighted random interleaving: each request is drawn from part i with
/// probability w_i / Σw among the parts that still have requests;
/// exhausted when every part is. Parts must be open-loop (see above).
class MixSource final : public RequestSource {
 public:
  MixSource(std::vector<std::unique_ptr<RequestSource>> parts,
            std::vector<double> weights, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override;
  /// Forks every part; nullptr if any part cannot fork.
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  std::vector<std::unique_ptr<RequestSource>> parts_;
  std::vector<double> weights_;
  Rng start_rng_;
  Rng rng_;
  std::vector<std::uint8_t> exhausted_;
};

/// Periodic churn injection: after every `period` requests of the inner
/// source, an alpha-chunk of negative requests to a uniformly random node
/// is spliced into the stream (modelling background rule updates that the
/// base workload does not know about).
class ChurnInjectSource final : public RequestSource {
 public:
  ChurnInjectSource(std::unique_ptr<RequestSource> inner, const Tree& tree,
                    std::uint64_t period, std::uint64_t alpha, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override;
  void observe_batch(std::span<const StepOutcome> outcomes) override;
  /// Forks the inner source; nullptr if it cannot fork.
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  std::unique_ptr<RequestSource> inner_;
  const Tree* tree_;
  std::uint64_t period_;
  std::uint64_t alpha_;
  Rng start_rng_;
  Rng rng_;
  std::uint64_t since_chunk_ = 0;  // inner requests since the last chunk
  NodeId pending_node_ = 0;
  std::uint64_t pending_ = 0;
};

}  // namespace treecache::workload
