// The Appendix D construction: a positive field whose requests provably
// cannot be spread evenly (the "troublesome example" of Figure 4).
//
// The tree is a root r with two full binary subtrees T1 and T2 of size s
// (ℓ leaves each). The request script reproduces the paper's five stages:
//
//   0. fill: the whole tree is fetched node by node (α positives each);
//   1. α negative requests to every node of T1, then to r
//        → TC evicts the tree cap {r} ∪ T1;
//   2. (s+1)·α − ℓ positive requests at r (not enough to refetch);
//   3. α negative requests to every node of T2 (root last)
//        → TC evicts T2;
//   4. s·α − 1 positive requests at the root of T1 (no fetch triggers);
//   5. ℓ + 1 positive requests at r → TC fetches the ENTIRE tree, closing
//      one positive field that covers all 2s+1 nodes.
//
// Note on stages 4/5: the paper's informal text gives s·α and ℓ requests;
// under the exact saturation rule cnt(X) ≥ |X|·α that would saturate
// P(T1root) = T1 at the end of stage 4 and fetch T1 early. We shift one
// request from stage 4 to stage 5, which preserves the construction's
// point: all but the last ℓ+1 requests of the final field sit on nodes of
// {r} ∪ T1, so legal down-shifting can deliver α/2 requests to at most
// about half of the field's nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_algorithm.hpp"
#include "core/trace.hpp"
#include "tree/tree.hpp"

namespace treecache::workload {

struct GadgetExpectation {
  std::size_t round = 0;  // 1-based round at which the change must happen
  ChangeKind kind = ChangeKind::kNone;
  std::vector<NodeId> nodes;  // sorted changeset
};

struct GadgetScript {
  Tree tree;
  Trace trace;
  std::uint64_t alpha = 0;
  std::size_t subtree_size = 0;  // s
  std::size_t leaf_count = 0;    // ℓ
  std::vector<NodeId> t1_nodes;  // sorted
  std::vector<NodeId> t2_nodes;  // sorted
  /// Cache-change expectations in round order; the last one is the final
  /// whole-tree fetch.
  std::vector<GadgetExpectation> expectations;
};

/// Builds the tree, the full request script and the expected TC behaviour.
/// Requires leaf_count >= 2 and alpha >= 2.
[[nodiscard]] GadgetScript build_appendix_d_gadget(std::size_t leaf_count,
                                                   std::uint64_t alpha);

/// Replays the script through `alg` and verifies every expectation (throws
/// CheckFailure on mismatch). Returns the algorithm's total cost.
Cost replay_gadget(const GadgetScript& script, OnlineAlgorithm& alg);

}  // namespace treecache::workload
