#include "workload/combinators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "sim/registry.hpp"

namespace treecache::workload {

namespace {

/// fork() for a part list: every part must fork or the composite cannot.
std::vector<std::unique_ptr<RequestSource>> fork_parts(
    const std::vector<std::unique_ptr<RequestSource>>& parts) {
  std::vector<std::unique_ptr<RequestSource>> out;
  out.reserve(parts.size());
  for (const auto& part : parts) {
    auto copy = part->fork();
    if (copy == nullptr) return {};
    out.push_back(std::move(copy));
  }
  return out;
}

}  // namespace

ConcatSource::ConcatSource(
    std::vector<std::unique_ptr<RequestSource>> parts)
    : parts_(std::move(parts)) {
  TC_CHECK(!parts_.empty(), "concat needs at least one part");
}

std::size_t ConcatSource::fill(std::span<Request> buffer) {
  while (active_ < parts_.size()) {
    const std::size_t n = parts_[active_]->fill(buffer);
    if (n > 0) return n;
    ++active_;
  }
  return 0;
}

std::unique_ptr<RequestSource> ConcatSource::fork() const {
  auto parts = fork_parts(parts_);
  if (parts.empty()) return nullptr;
  return std::make_unique<ConcatSource>(std::move(parts));
}

void ConcatSource::reset() {
  for (const auto& part : parts_) part->reset();
  active_ = 0;
}

std::optional<std::uint64_t> ConcatSource::size_hint() const {
  std::uint64_t total = 0;
  for (std::size_t i = active_; i < parts_.size(); ++i) {
    const auto hint = parts_[i]->size_hint();
    if (!hint.has_value()) return std::nullopt;
    total += *hint;
  }
  return total;
}

void ConcatSource::observe_batch(std::span<const StepOutcome> outcomes) {
  // All outcomes of a batch arrive before the next fill(), and a fill
  // never spans a part boundary, so the whole batch belongs to the part
  // that is still active.
  if (active_ < parts_.size()) parts_[active_]->observe_batch(outcomes);
}

MixSource::MixSource(std::vector<std::unique_ptr<RequestSource>> parts,
                     std::vector<double> weights, Rng rng)
    : parts_(std::move(parts)),
      weights_(std::move(weights)),
      start_rng_(rng),
      rng_(rng),
      exhausted_(parts_.size(), 0) {
  TC_CHECK(!parts_.empty(), "mix needs at least one part");
  TC_CHECK(parts_.size() == weights_.size(),
           "mix needs one weight per part");
  for (const double w : weights_) {
    TC_CHECK(w > 0.0, "mix weights must be positive");
  }
}

std::size_t MixSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size()) {
    double total = 0.0;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (!exhausted_[i]) total += weights_[i];
    }
    if (total == 0.0) break;
    double u = rng_.uniform01() * total;
    std::size_t pick = parts_.size();
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (exhausted_[i]) continue;
      pick = i;
      u -= weights_[i];
      if (u < 0.0) break;
    }
    Request r;
    if (parts_[pick]->fill({&r, 1}) == 1) {
      buffer[n++] = r;
    } else {
      exhausted_[pick] = 1;
    }
  }
  return n;
}

std::unique_ptr<RequestSource> MixSource::fork() const {
  auto parts = fork_parts(parts_);
  if (parts.empty()) return nullptr;
  return std::make_unique<MixSource>(std::move(parts), weights_, start_rng_);
}

void MixSource::reset() {
  for (const auto& part : parts_) part->reset();
  std::ranges::fill(exhausted_, 0);
  rng_ = start_rng_;
}

std::optional<std::uint64_t> MixSource::size_hint() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) {
    const auto hint = part->size_hint();
    if (!hint.has_value()) return std::nullopt;
    total += *hint;
  }
  return total;
}

ChurnInjectSource::ChurnInjectSource(std::unique_ptr<RequestSource> inner,
                                     const Tree& tree, std::uint64_t period,
                                     std::uint64_t alpha, Rng rng)
    : inner_(std::move(inner)),
      tree_(&tree),
      period_(period),
      alpha_(alpha),
      start_rng_(rng),
      rng_(rng) {
  TC_CHECK(inner_ != nullptr, "churn-inject needs an inner source");
  TC_CHECK(period_ >= 1, "churn-period must be positive");
  TC_CHECK(alpha_ >= 1, "alpha must be positive");
}

std::size_t ChurnInjectSource::fill(std::span<Request> buffer) {
  // Drain the injected chunk first; it never mixes with inner requests in
  // one batch, so the inner source's own batching contract is preserved.
  std::size_t n = 0;
  while (pending_ > 0 && n < buffer.size()) {
    --pending_;
    buffer[n++] = negative(pending_node_);
  }
  if (n > 0) return n;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(buffer.size(), period_ - since_chunk_));
  const std::size_t got = inner_->fill(buffer.first(want));
  since_chunk_ += got;
  if (got == 0) return 0;  // inner exhausted: no trailing chunk
  if (since_chunk_ == period_) {
    since_chunk_ = 0;
    pending_node_ = static_cast<NodeId>(rng_.below(tree_->size()));
    pending_ = alpha_;
  }
  return got;
}

std::unique_ptr<RequestSource> ChurnInjectSource::fork() const {
  auto inner = inner_->fork();
  if (inner == nullptr) return nullptr;
  return std::make_unique<ChurnInjectSource>(std::move(inner), *tree_,
                                             period_, alpha_, start_rng_);
}

void ChurnInjectSource::reset() {
  inner_->reset();
  rng_ = start_rng_;
  since_chunk_ = 0;
  pending_ = 0;
}

std::optional<std::uint64_t> ChurnInjectSource::size_hint() const {
  const auto inner_hint = inner_->size_hint();
  if (!inner_hint.has_value()) return std::nullopt;
  const std::uint64_t chunks_ahead = (since_chunk_ + *inner_hint) / period_;
  return *inner_hint + pending_ + chunks_ahead * alpha_;
}

void ChurnInjectSource::observe_batch(std::span<const StepOutcome> outcomes) {
  inner_->observe_batch(outcomes);
}

// Registry adapters. Parts resolve recursively through the registry with
// the shared Params bag; "length" is rewritten (each part gets its share)
// and the structural keys of the delegating combinator are stripped, so
// skew/neg/... apply to every part uniformly while a nested combinator
// falls back to its own defaults instead of re-reading its parent's
// structure (which would also recurse forever on parts=concat).
namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  for (std::string item; std::getline(ss, item, ',');) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> split_weights(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& item : split_names(csv)) {
    try {
      out.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw CheckFailure("weight '" + item + "' is not a number");
    }
  }
  return out;
}

sim::Params strip_keys(const sim::Params& p,
                       std::initializer_list<const char*> keys) {
  auto values = p.all();
  for (const char* key : keys) values.erase(key);
  return sim::Params(std::move(values));
}

const sim::WorkloadRegistrar kRegisterConcat{
    "concat",
    "phases: runs parts=a,b,... to exhaustion in order, splitting length",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      const auto parts = split_names(p.get("parts", "zipf,uniform"));
      TC_CHECK(!parts.empty(), "concat needs parts=a,b,...");
      const std::uint64_t length = p.get_u64("length", 100000);
      Rng seeder(seed);
      std::vector<std::unique_ptr<RequestSource>> sources;
      sources.reserve(parts.size());
      for (std::size_t i = 0; i < parts.size(); ++i) {
        TC_CHECK(parts[i] != "concat", "concat cannot name itself as a part");
        sim::Params sub = strip_keys(p, {"parts", "weights"});
        sub.set("length", std::to_string(length / parts.size() +
                                         (i < length % parts.size() ? 1 : 0)));
        sources.push_back(sim::make_source(parts[i], tree, sub, seeder()));
      }
      return std::make_unique<ConcatSource>(std::move(sources));
    }};

const sim::WorkloadRegistrar kRegisterMix{
    "mix",
    "weighted blend: each request drawn from parts=a,b,... by weights=...",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      const auto parts = split_names(p.get("parts", "zipf,uniform"));
      TC_CHECK(!parts.empty(), "mix needs parts=a,b,...");
      std::vector<double> weights =
          p.has("weights") ? split_weights(p.get("weights", ""))
                           : std::vector<double>(parts.size(), 1.0);
      TC_CHECK(weights.size() == parts.size(),
               "mix needs one weight per part");
      const std::uint64_t length = p.get_u64("length", 100000);
      const double weight_sum =
          std::accumulate(weights.begin(), weights.end(), 0.0);
      Rng seeder(seed);
      std::vector<std::unique_ptr<RequestSource>> sources;
      sources.reserve(parts.size());
      // Cumulative split so the part lengths sum to `length` exactly.
      std::uint64_t assigned = 0;
      double cumulative = 0.0;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        TC_CHECK(parts[i] != "mix", "mix cannot name itself as a part");
        cumulative += weights[i];
        const std::uint64_t upto =
            i + 1 == parts.size()
                ? length
                : static_cast<std::uint64_t>(std::llround(
                      static_cast<double>(length) * cumulative / weight_sum));
        sim::Params sub = strip_keys(p, {"parts", "weights"});
        sub.set("length", std::to_string(upto - assigned));
        assigned = upto;
        sources.push_back(sim::make_source(parts[i], tree, sub, seeder()));
      }
      return std::make_unique<MixSource>(std::move(sources),
                                         std::move(weights), Rng(seeder()));
    }};

const sim::WorkloadRegistrar kRegisterChurnInject{
    "churn-inject",
    "wraps inner=<workload>, injecting an alpha-chunk of negatives every "
    "churn-period requests",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      const std::string inner_name = p.get("inner", "zipf");
      TC_CHECK(inner_name != "churn-inject",
               "churn-inject cannot wrap itself");
      Rng seeder(seed);
      auto inner = sim::make_source(inner_name, tree,
                                    strip_keys(p, {"inner"}), seeder());
      return std::make_unique<ChurnInjectSource>(
          std::move(inner), tree, p.get_u64("churn-period", 1000), p.alpha(),
          Rng(seeder()));
    }};

}  // namespace

}  // namespace treecache::workload
