// Streaming request sources for tests, examples and benchmarks.
//
// Every generator is a pull-based RequestSource: construction does the
// upfront setup (rank permutations, Zipf CDFs) and captures the RNG state,
// so reset() replays the identical stream and a run's memory use is O(tree),
// independent of how many requests are drawn. The eager *_trace helpers
// below materialize a source for callers that want a vector; they advance
// the caller's RNG via split() so consecutive calls draw distinct traces.
#pragma once

#include <cstdint>
#include <vector>

#include "core/request_source.hpp"
#include "core/trace.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace treecache::workload {

/// Uniformly random nodes; each request is negative with probability
/// `negative_fraction`.
class UniformSource final : public RequestSource {
 public:
  UniformSource(const Tree& tree, std::uint64_t length,
                double negative_fraction, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return remaining_;
  }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  const Tree* tree_;
  std::uint64_t length_;
  double negative_fraction_;
  Rng start_rng_;
  Rng rng_;
  std::uint64_t remaining_;
};

/// Zipf(skew)-popular nodes over a random rank permutation (drawn once at
/// construction). With `leaves_only`, ranks cover the leaves only
/// (FIB-like: traffic hits most-specific rules).
class ZipfSource final : public RequestSource {
 public:
  ZipfSource(const Tree& tree, std::uint64_t length, double skew,
             double negative_fraction, bool leaves_only, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return remaining_;
  }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  std::uint64_t length_;
  double negative_fraction_;
  std::vector<NodeId> ranked_;
  ZipfSampler sampler_;
  Rng start_rng_;
  Rng rng_;
  std::uint64_t remaining_;
};

/// Moving hotspot: positive requests concentrate on a random subtree; the
/// hotspot jumps to another node with probability `move_probability` per
/// request. Mimics temporal locality with working-set shifts.
class HotspotSource final : public RequestSource {
 public:
  HotspotSource(const Tree& tree, std::uint64_t length,
                double move_probability, double negative_fraction, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return remaining_;
  }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  const Tree* tree_;
  std::uint64_t length_;
  double move_probability_;
  double negative_fraction_;
  Rng start_rng_;
  Rng rng_;
  NodeId hot_ = 0;
  std::uint64_t remaining_;
};

/// FIB-style churn: Zipf-popular positive requests interleaved with rule
/// updates, each modelled as a chunk of `alpha` negative requests to a
/// Zipf-popular node (Appendix B). `update_probability` is the per-round
/// chance that the next event is an update chunk instead of one packet.
/// Emits exactly `length` requests (the final chunk is truncated).
class UpdateChurnSource final : public RequestSource {
 public:
  UpdateChurnSource(const Tree& tree, std::uint64_t length, double skew,
                    std::uint64_t alpha, double update_probability, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return remaining_;
  }
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  std::uint64_t length_;
  std::uint64_t alpha_;
  double update_probability_;
  std::vector<NodeId> ranked_;
  ZipfSampler sampler_;
  Rng start_rng_;
  Rng rng_;
  NodeId pending_node_ = 0;
  std::uint64_t pending_ = 0;  // negatives left in the current chunk
  std::uint64_t remaining_;
};

// Eager convenience wrappers: materialize the matching source. Each call
// advances `rng` (via split), so repeated calls produce distinct traces.

[[nodiscard]] Trace uniform_trace(const Tree& tree, std::size_t length,
                                  double negative_fraction, Rng& rng);

[[nodiscard]] Trace zipf_trace(const Tree& tree, std::size_t length,
                               double skew, double negative_fraction,
                               Rng& rng);

[[nodiscard]] Trace zipf_leaf_trace(const Tree& tree, std::size_t length,
                                    double skew, double negative_fraction,
                                    Rng& rng);

[[nodiscard]] Trace hotspot_trace(const Tree& tree, std::size_t length,
                                  double move_probability,
                                  double negative_fraction, Rng& rng);

[[nodiscard]] Trace update_churn_trace(const Tree& tree, std::size_t length,
                                       double skew, std::uint64_t alpha,
                                       double update_probability, Rng& rng);

}  // namespace treecache::workload
