// Request-trace generators for tests, examples and benchmarks.
#pragma once

#include <cstdint>

#include "core/trace.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace treecache::workload {

/// Uniformly random requests; each is negative with probability
/// `negative_fraction`.
[[nodiscard]] Trace uniform_trace(const Tree& tree, std::size_t length,
                                  double negative_fraction, Rng& rng);

/// Zipf-popular nodes: a random rank permutation is drawn over all nodes and
/// requests sample ranks from Zipf(skew).
[[nodiscard]] Trace zipf_trace(const Tree& tree, std::size_t length,
                               double skew, double negative_fraction,
                               Rng& rng);

/// Zipf over the leaves only (FIB-like: traffic hits most-specific rules).
[[nodiscard]] Trace zipf_leaf_trace(const Tree& tree, std::size_t length,
                                    double skew, double negative_fraction,
                                    Rng& rng);

/// Moving hotspot: positive requests concentrate on a random subtree; the
/// hotspot jumps to another node with probability `move_probability` per
/// request. Mimics temporal locality with working-set shifts.
[[nodiscard]] Trace hotspot_trace(const Tree& tree, std::size_t length,
                                  double move_probability,
                                  double negative_fraction, Rng& rng);

/// FIB-style churn: Zipf-popular positive requests interleaved with rule
/// updates, each modelled as a chunk of `alpha` negative requests to a
/// Zipf-popular node (Appendix B). `update_probability` is the per-round
/// chance that the next event is an update chunk instead of one packet.
[[nodiscard]] Trace update_churn_trace(const Tree& tree, std::size_t length,
                                       double skew, std::uint64_t alpha,
                                       double update_probability, Rng& rng);

}  // namespace treecache::workload
