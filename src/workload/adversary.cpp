#include "workload/adversary.hpp"

namespace treecache::workload {

Trace lift_paging_sequence(const std::vector<PageId>& pages,
                           std::uint64_t alpha) {
  Trace trace;
  trace.reserve(pages.size() * alpha);
  for (const PageId p : pages) {
    append_repeated(trace, positive(static_cast<NodeId>(p + 1)), alpha);
  }
  return trace;
}

Trace run_paging_adversary(OnlineAlgorithm& alg, const Tree& star,
                           std::uint64_t alpha, std::size_t chunks) {
  TC_CHECK(star.num_children(star.root()) == star.size() - 1,
           "adversary needs a star tree");
  Trace trace;
  trace.reserve(chunks * alpha);
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    // The lowest-id leaf outside the cache (leaves are 1..n-1).
    NodeId victim = kNoNode;
    for (NodeId leaf = 1; leaf < star.size(); ++leaf) {
      if (!alg.cache().contains(leaf)) {
        victim = leaf;
        break;
      }
    }
    TC_CHECK(victim != kNoNode,
             "cache covers all leaves: give the adversary more pages");
    for (std::uint64_t i = 0; i < alpha; ++i) {
      trace.push_back(positive(victim));
      alg.step(trace.back());
    }
  }
  return trace;
}

std::vector<PageId> chunk_pages(const Trace& trace, std::uint64_t alpha) {
  TC_CHECK(alpha >= 1, "alpha must be positive");
  TC_CHECK(trace.size() % alpha == 0, "trace is not chunk-aligned");
  std::vector<PageId> pages;
  pages.reserve(trace.size() / alpha);
  for (std::size_t i = 0; i < trace.size(); i += alpha) {
    TC_CHECK(trace[i].sign == Sign::kPositive && trace[i].node >= 1,
             "not a lifted paging trace");
    for (std::size_t j = 1; j < alpha; ++j) {
      TC_CHECK(trace[i + j] == trace[i], "chunk is not uniform");
    }
    pages.push_back(trace[i].node - 1);
  }
  return pages;
}

}  // namespace treecache::workload
