// Zipf(s) sampling over ranks 0..n-1 (rank 0 most popular).
//
// The FIB application leans on the empirical observation (Sarrar et al.,
// cited in §2 of the paper) that per-rule traffic is Zipf-distributed; the
// sampler below backs all skewed workload generators.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace treecache {

class ZipfSampler {
 public:
  /// P(rank = r) ∝ 1 / (r+1)^skew. skew = 0 is uniform.
  ZipfSampler(std::size_t n, double skew);

  /// Draws a rank in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// The rank whose CDF interval contains u ∈ [0, 1): rank r covers
  /// (cdf(r-1), cdf(r)], except rank 0 which also covers 0. Exposed so
  /// tests can probe draws landing exactly on a CDF step.
  [[nodiscard]] std::size_t sample_at(double u) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Probability mass of a rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

/// Unnormalized Zipf weights 1/(r+1)^skew for ranks 0..n-1.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t n, double skew);

}  // namespace treecache
