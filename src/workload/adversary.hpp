// Adversarial instances from the Appendix C lower bound (Theorem C.1).
//
// The reduction maps paging over N pages to tree caching on a star whose
// leaves are the pages: one paging request becomes a chunk of α positive
// requests to the corresponding leaf. The adaptive adversary below always
// requests a page absent from the online algorithm's cache — against any
// deterministic algorithm with cache k_ONL over k_ONL + 1 pages this forces
// the Sleator–Tarjan Ω(k_ONL/(k_ONL − k_OPT + 1)) ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/paging.hpp"
#include "core/online_algorithm.hpp"
#include "core/trace.hpp"
#include "tree/tree.hpp"

namespace treecache::workload {

/// Lifts a paging request sequence over pages 0..universe-1 to a tree
/// caching trace on a star: page p → α positive requests to leaf p + 1.
/// The star tree must come from trees::star(universe).
[[nodiscard]] Trace lift_paging_sequence(const std::vector<PageId>& pages,
                                         std::uint64_t alpha);

/// Runs the adaptive adversary against `alg` for `chunks` page requests:
/// each chunk requests the lowest-id leaf currently absent from the
/// algorithm's cache, as α positive requests fed one by one. The star tree
/// must have strictly more leaves than the algorithm can cache. Returns the
/// generated trace (the algorithm has been advanced; read alg.cost()).
[[nodiscard]] Trace run_paging_adversary(OnlineAlgorithm& alg,
                                         const Tree& star,
                                         std::uint64_t alpha,
                                         std::size_t chunks);

/// Extracts the per-chunk page sequence back out of a lifted trace
/// (inverse of lift_paging_sequence; used to feed Belady/OPT).
[[nodiscard]] std::vector<PageId> chunk_pages(const Trace& trace,
                                              std::uint64_t alpha);

}  // namespace treecache::workload
