#include "workload/generators.hpp"

#include <algorithm>
#include <numeric>

#include "sim/registry.hpp"
#include "workload/zipf.hpp"

namespace treecache::workload {

namespace {
Sign draw_sign(double negative_fraction, Rng& rng) {
  return rng.chance(negative_fraction) ? Sign::kNegative : Sign::kPositive;
}

/// Random node-per-rank assignment for Zipf popularity.
std::vector<NodeId> random_rank_assignment(std::span<const NodeId> nodes,
                                           Rng& rng) {
  std::vector<NodeId> ranked(nodes.begin(), nodes.end());
  rng.shuffle(ranked);
  return ranked;
}
}  // namespace

Trace uniform_trace(const Tree& tree, std::size_t length,
                    double negative_fraction, Rng& rng) {
  Trace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    trace.push_back(Request{static_cast<NodeId>(rng.below(tree.size())),
                            draw_sign(negative_fraction, rng)});
  }
  return trace;
}

Trace zipf_trace(const Tree& tree, std::size_t length, double skew,
                 double negative_fraction, Rng& rng) {
  std::vector<NodeId> all(tree.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  const auto ranked = random_rank_assignment(all, rng);
  const ZipfSampler sampler(ranked.size(), skew);
  Trace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    trace.push_back(Request{ranked[sampler.sample(rng)],
                            draw_sign(negative_fraction, rng)});
  }
  return trace;
}

Trace zipf_leaf_trace(const Tree& tree, std::size_t length, double skew,
                      double negative_fraction, Rng& rng) {
  const auto leaves = tree.leaves();
  const auto ranked = random_rank_assignment(leaves, rng);
  const ZipfSampler sampler(ranked.size(), skew);
  Trace trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    trace.push_back(Request{ranked[sampler.sample(rng)],
                            draw_sign(negative_fraction, rng)});
  }
  return trace;
}

Trace hotspot_trace(const Tree& tree, std::size_t length,
                    double move_probability, double negative_fraction,
                    Rng& rng) {
  Trace trace;
  trace.reserve(length);
  auto hot = static_cast<NodeId>(rng.below(tree.size()));
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.chance(move_probability)) {
      hot = static_cast<NodeId>(rng.below(tree.size()));
    }
    // Request a node near the hotspot: a uniform node of T(hot) (by
    // rejection from the preorder interval) or an ancestor occasionally.
    NodeId v = hot;
    if (tree.subtree_size(hot) > 1 && rng.chance(0.7)) {
      // T(hot) occupies a contiguous preorder interval starting at hot.
      const auto pre = tree.preorder();
      v = pre[tree.preorder_index(hot) + rng.below(tree.subtree_size(hot))];
    } else if (rng.chance(0.3)) {
      const auto path = tree.path_to_root(hot);
      v = path[rng.below(path.size())];
    }
    trace.push_back(Request{v, draw_sign(negative_fraction, rng)});
  }
  return trace;
}

Trace update_churn_trace(const Tree& tree, std::size_t length, double skew,
                         std::uint64_t alpha, double update_probability,
                         Rng& rng) {
  std::vector<NodeId> all(tree.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  const auto ranked = random_rank_assignment(all, rng);
  const ZipfSampler sampler(ranked.size(), skew);
  Trace trace;
  trace.reserve(length);
  while (trace.size() < length) {
    const NodeId v = ranked[sampler.sample(rng)];
    if (rng.chance(update_probability)) {
      // One rule update = alpha negative requests (Appendix B).
      append_repeated(trace, negative(v),
                      std::min<std::size_t>(alpha, length - trace.size()));
    } else {
      trace.push_back(positive(v));
    }
  }
  return trace;
}

// Registry adapters. Shared parameter keys: length (default 100000),
// neg (negative fraction, 0.2), skew (Zipf exponent, 1.0); per-workload
// keys are named after the matching CLI flags.
namespace {

const sim::WorkloadRegistrar kRegisterUniform{
    "uniform", "uniformly random nodes, Bernoulli(neg) negative requests",
    [](const Tree& tree, const sim::Params& p, Rng& rng) {
      return uniform_trace(tree, p.get_u64("length", 100000),
                           p.get_double("neg", 0.2), rng);
    }};

const sim::WorkloadRegistrar kRegisterZipf{
    "zipf", "Zipf(skew)-popular nodes over a random rank permutation",
    [](const Tree& tree, const sim::Params& p, Rng& rng) {
      return zipf_trace(tree, p.get_u64("length", 100000),
                        p.get_double("skew", 1.0), p.get_double("neg", 0.2),
                        rng);
    }};

const sim::WorkloadRegistrar kRegisterZipfLeaf{
    "zipfleaf", "Zipf over leaves only (FIB-like most-specific traffic)",
    [](const Tree& tree, const sim::Params& p, Rng& rng) {
      return zipf_leaf_trace(tree, p.get_u64("length", 100000),
                             p.get_double("skew", 1.0),
                             p.get_double("neg", 0.2), rng);
    }};

const sim::WorkloadRegistrar kRegisterHotspot{
    "hotspot", "moving-hotspot subtree with per-request jump probability",
    [](const Tree& tree, const sim::Params& p, Rng& rng) {
      return hotspot_trace(tree, p.get_u64("length", 100000),
                           p.get_double("move-prob", 0.01),
                           p.get_double("neg", 0.2), rng);
    }};

const sim::WorkloadRegistrar kRegisterChurn{
    "churn", "Zipf traffic interleaved with alpha-chunk rule updates",
    [](const Tree& tree, const sim::Params& p, Rng& rng) {
      return update_churn_trace(tree, p.get_u64("length", 100000),
                                p.get_double("skew", 1.0), p.alpha(),
                                p.get_double("update-prob", 0.05), rng);
    }};

}  // namespace

}  // namespace treecache::workload
