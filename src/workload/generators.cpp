#include "workload/generators.hpp"

#include <algorithm>
#include <numeric>

#include "sim/registry.hpp"

namespace treecache::workload {

namespace {
Sign draw_sign(double negative_fraction, Rng& rng) {
  return rng.chance(negative_fraction) ? Sign::kNegative : Sign::kPositive;
}

/// Random node-per-rank assignment for Zipf popularity.
std::vector<NodeId> random_rank_assignment(std::span<const NodeId> nodes,
                                           Rng& rng) {
  std::vector<NodeId> ranked(nodes.begin(), nodes.end());
  rng.shuffle(ranked);
  return ranked;
}

std::vector<NodeId> all_nodes(const Tree& tree) {
  std::vector<NodeId> all(tree.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  return all;
}
}  // namespace

UniformSource::UniformSource(const Tree& tree, std::uint64_t length,
                             double negative_fraction, Rng rng)
    : tree_(&tree),
      length_(length),
      negative_fraction_(negative_fraction),
      start_rng_(rng),
      rng_(rng),
      remaining_(length) {}

std::size_t UniformSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size() && remaining_ > 0) {
    --remaining_;
    buffer[n++] = Request{static_cast<NodeId>(rng_.below(tree_->size())),
                          draw_sign(negative_fraction_, rng_)};
  }
  return n;
}

std::unique_ptr<RequestSource> UniformSource::fork() const {
  // Copy, then rewind: the copy's reset() restores the captured start RNG,
  // so the fork replays the identical stream from round one.
  auto copy = std::make_unique<UniformSource>(*this);
  copy->reset();
  return copy;
}

void UniformSource::reset() {
  rng_ = start_rng_;
  remaining_ = length_;
}

ZipfSource::ZipfSource(const Tree& tree, std::uint64_t length, double skew,
                       double negative_fraction, bool leaves_only, Rng rng)
    : length_(length),
      negative_fraction_(negative_fraction),
      ranked_(random_rank_assignment(
          leaves_only ? tree.leaves() : all_nodes(tree), rng)),
      sampler_(ranked_.size(), skew),
      start_rng_(rng),  // state AFTER the permutation draw: reset replays
      rng_(rng),        // sampling only, over the one fixed ranking
      remaining_(length) {}

std::size_t ZipfSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size() && remaining_ > 0) {
    --remaining_;
    buffer[n++] = Request{ranked_[sampler_.sample(rng_)],
                          draw_sign(negative_fraction_, rng_)};
  }
  return n;
}

std::unique_ptr<RequestSource> ZipfSource::fork() const {
  // Copy, then rewind: the copy's reset() restores the captured start RNG,
  // so the fork replays the identical stream from round one.
  auto copy = std::make_unique<ZipfSource>(*this);
  copy->reset();
  return copy;
}

void ZipfSource::reset() {
  rng_ = start_rng_;
  remaining_ = length_;
}

HotspotSource::HotspotSource(const Tree& tree, std::uint64_t length,
                             double move_probability,
                             double negative_fraction, Rng rng)
    : tree_(&tree),
      length_(length),
      move_probability_(move_probability),
      negative_fraction_(negative_fraction),
      start_rng_(rng),
      rng_(rng),
      hot_(static_cast<NodeId>(rng_.below(tree.size()))),
      remaining_(length) {
  // hot_ consumed one draw from rng_; start_rng_ deliberately keeps the
  // pre-draw state so reset() re-derives the same initial hotspot.
}

std::size_t HotspotSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size() && remaining_ > 0) {
    --remaining_;
    if (rng_.chance(move_probability_)) {
      hot_ = static_cast<NodeId>(rng_.below(tree_->size()));
    }
    // Request a node near the hotspot: a uniform node of T(hot) (via the
    // contiguous preorder interval) or an ancestor occasionally.
    NodeId v = hot_;
    if (tree_->subtree_size(hot_) > 1 && rng_.chance(0.7)) {
      const auto pre = tree_->preorder();
      v = pre[tree_->preorder_index(hot_) +
              rng_.below(tree_->subtree_size(hot_))];
    } else if (rng_.chance(0.3)) {
      const auto path = tree_->path_to_root(hot_);
      v = path[rng_.below(path.size())];
    }
    buffer[n++] = Request{v, draw_sign(negative_fraction_, rng_)};
  }
  return n;
}

std::unique_ptr<RequestSource> HotspotSource::fork() const {
  // Copy, then rewind: the copy's reset() restores the captured start RNG,
  // so the fork replays the identical stream from round one.
  auto copy = std::make_unique<HotspotSource>(*this);
  copy->reset();
  return copy;
}

void HotspotSource::reset() {
  rng_ = start_rng_;
  hot_ = static_cast<NodeId>(rng_.below(tree_->size()));
  remaining_ = length_;
}

UpdateChurnSource::UpdateChurnSource(const Tree& tree, std::uint64_t length,
                                     double skew, std::uint64_t alpha,
                                     double update_probability, Rng rng)
    : length_(length),
      alpha_(alpha),
      update_probability_(update_probability),
      ranked_(random_rank_assignment(all_nodes(tree), rng)),
      sampler_(ranked_.size(), skew),
      start_rng_(rng),
      rng_(rng),
      remaining_(length) {
  TC_CHECK(alpha_ >= 1, "alpha must be positive");
}

std::size_t UpdateChurnSource::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size() && remaining_ > 0) {
    if (pending_ > 0) {
      --pending_;
      --remaining_;
      buffer[n++] = negative(pending_node_);
      continue;
    }
    const NodeId v = ranked_[sampler_.sample(rng_)];
    if (rng_.chance(update_probability_)) {
      // One rule update = alpha negative requests (Appendix B); the last
      // chunk truncates so exactly `length` requests are emitted.
      pending_node_ = v;
      pending_ = alpha_;
    } else {
      --remaining_;
      buffer[n++] = positive(v);
    }
  }
  return n;
}

std::unique_ptr<RequestSource> UpdateChurnSource::fork() const {
  // Copy, then rewind: the copy's reset() restores the captured start RNG,
  // so the fork replays the identical stream from round one.
  auto copy = std::make_unique<UpdateChurnSource>(*this);
  copy->reset();
  return copy;
}

void UpdateChurnSource::reset() {
  rng_ = start_rng_;
  pending_ = 0;
  remaining_ = length_;
}

Trace uniform_trace(const Tree& tree, std::size_t length,
                    double negative_fraction, Rng& rng) {
  UniformSource source(tree, length, negative_fraction, rng.split());
  return materialize(source);
}

Trace zipf_trace(const Tree& tree, std::size_t length, double skew,
                 double negative_fraction, Rng& rng) {
  ZipfSource source(tree, length, skew, negative_fraction,
                    /*leaves_only=*/false, rng.split());
  return materialize(source);
}

Trace zipf_leaf_trace(const Tree& tree, std::size_t length, double skew,
                      double negative_fraction, Rng& rng) {
  ZipfSource source(tree, length, skew, negative_fraction,
                    /*leaves_only=*/true, rng.split());
  return materialize(source);
}

Trace hotspot_trace(const Tree& tree, std::size_t length,
                    double move_probability, double negative_fraction,
                    Rng& rng) {
  HotspotSource source(tree, length, move_probability, negative_fraction,
                       rng.split());
  return materialize(source);
}

Trace update_churn_trace(const Tree& tree, std::size_t length, double skew,
                         std::uint64_t alpha, double update_probability,
                         Rng& rng) {
  UpdateChurnSource source(tree, length, skew, alpha, update_probability,
                           rng.split());
  return materialize(source);
}

// Registry adapters. Shared parameter keys: length (default 100000),
// neg (negative fraction, 0.2), skew (Zipf exponent, 1.0); per-workload
// keys are named after the matching CLI flags.
namespace {

const sim::WorkloadRegistrar kRegisterUniform{
    "uniform", "uniformly random nodes, Bernoulli(neg) negative requests",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      return std::make_unique<UniformSource>(tree,
                                             p.get_u64("length", 100000),
                                             p.get_double("neg", 0.2),
                                             Rng(seed));
    }};

const sim::WorkloadRegistrar kRegisterZipf{
    "zipf", "Zipf(skew)-popular nodes over a random rank permutation",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      return std::make_unique<ZipfSource>(
          tree, p.get_u64("length", 100000), p.get_double("skew", 1.0),
          p.get_double("neg", 0.2), /*leaves_only=*/false, Rng(seed));
    }};

const sim::WorkloadRegistrar kRegisterZipfLeaf{
    "zipfleaf", "Zipf over leaves only (FIB-like most-specific traffic)",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      return std::make_unique<ZipfSource>(
          tree, p.get_u64("length", 100000), p.get_double("skew", 1.0),
          p.get_double("neg", 0.2), /*leaves_only=*/true, Rng(seed));
    }};

const sim::WorkloadRegistrar kRegisterHotspot{
    "hotspot", "moving-hotspot subtree with per-request jump probability",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      return std::make_unique<HotspotSource>(
          tree, p.get_u64("length", 100000), p.get_double("move-prob", 0.01),
          p.get_double("neg", 0.2), Rng(seed));
    }};

const sim::WorkloadRegistrar kRegisterChurn{
    "churn", "Zipf traffic interleaved with alpha-chunk rule updates",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      return std::make_unique<UpdateChurnSource>(
          tree, p.get_u64("length", 100000), p.get_double("skew", 1.0),
          p.alpha(), p.get_double("update-prob", 0.05), Rng(seed));
    }};

}  // namespace

}  // namespace treecache::workload
