#include "sim/fib_engine.hpp"

#include "engine/sharded_engine.hpp"
#include "fib/fib_workloads.hpp"
#include "fib/router_source.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "util/json.hpp"

namespace treecache::sim {

fib::RouterSimConfig fib_router_config(const Params& params,
                                       std::uint64_t seed) {
  return fib::RouterSimConfig{
      .packets = params.get_u64("packets", 100000),
      .zipf_skew = params.get_double("skew", 1.0),
      .update_probability = params.get_double("update-prob", 0.01),
      .alpha = params.alpha(),
      .seed = seed};
}

FibScenarioResult run_fib_scenario(const fib::RuleTree& rules,
                                   const FibScenario& scenario) {
  // The closed-loop router is just another RequestSource. With one shard
  // the engine delegates to run_source (outcomes feed back after every
  // round); with more, the source splits into per-shard mirrors and the
  // engine runs them through the outcome-feedback queues — we split here
  // rather than inside run() so the mirrors' router statistics survive
  // the run and can be aggregated into the result.
  engine::ShardedEngine eng(rules.tree, scenario.algorithm, scenario.params,
                            scenario.engine);
  fib::RouterSource source(rules,
                           fib_router_config(scenario.params, scenario.seed));
  FibScenarioResult out{.scenario = scenario, .router = {}};
  out.shards = eng.plan().num_shards();
  if (out.shards == 1) {
    const engine::EngineResult result = eng.run(source);
    out.router = source.stats();
    out.router.algorithm_cost = result.total.cost;
    out.threads = result.threads;
    return out;
  }
  const auto mirrors = source.split(eng.plan());
  const engine::EngineResult result = eng.run_split(mirrors);
  out.threads = result.threads;
  for (const auto& part : mirrors) {
    const auto* mirror =
        dynamic_cast<const fib::RouterMirrorSource*>(part.get());
    TC_CHECK(mirror != nullptr,
             "RouterSource::split must yield router mirrors");
    out.router += mirror->stats();
  }
  out.router.algorithm_cost = result.total.cost;
  return out;
}

FibScenarioResult run_fib_scenario(const FibScenario& scenario) {
  return run_fib_scenario(fib::shared_rule_tree(scenario.params), scenario);
}

std::vector<FibScenarioResult> run_fib_sweep(const fib::RuleTree& rules,
                                             const FibSweepAxes& axes,
                                             const Params& base,
                                             std::uint64_t seed,
                                             engine::EngineConfig engine) {
  TC_CHECK(!axes.algorithms.empty() && !axes.skews.empty() &&
               !axes.capacities.empty() && !axes.alphas.empty(),
           "every sweep axis needs at least one value");
  // Resolve every name up front so a typo fails before any cell runs.
  for (const auto& name : axes.algorithms) {
    (void)AlgorithmRegistry::instance().at(name);
  }
  // One traffic seed per (skew, capacity, alpha) point: all algorithms at
  // a point replay the identical packet/update stream.
  const std::size_t points =
      axes.skews.size() * axes.capacities.size() * axes.alphas.size();
  std::vector<std::uint64_t> point_seeds(points);
  Rng seeder(seed);
  for (auto& s : point_seeds) s = seeder();

  const std::size_t cells = axes.algorithms.size() * points;
  const auto run_cell = [&](std::size_t i, Rng&) {
    const std::size_t point = i % points;
    const std::size_t alpha_i = point % axes.alphas.size();
    const std::size_t capacity_i =
        (point / axes.alphas.size()) % axes.capacities.size();
    const std::size_t skew_i =
        point / (axes.alphas.size() * axes.capacities.size());
    FibScenario cell{.algorithm = axes.algorithms[i / points],
                     .params = base,
                     .seed = point_seeds[point],
                     .engine = engine};
    cell.params.set("skew", util::format_double(axes.skews[skew_i]));
    cell.params.set("capacity",
                    std::to_string(axes.capacities[capacity_i]));
    cell.params.set("alpha", std::to_string(axes.alphas[alpha_i]));
    return run_fib_scenario(rules, cell);
  };
  // One level of parallelism at a time: a multi-worker sharded cell
  // already owns the cores (engine workers + its sweep thread blocked as
  // producer), so sweeping such cells in parallel would run up to
  // ncores × (threads + 1) live threads. Cells are order-independent
  // (pre-derived per-point seeds), so running them in sequence changes
  // nothing but the thread count.
  if (engine.shards > 1 && engine.threads != 1) {
    std::vector<FibScenarioResult> out;
    out.reserve(cells);
    Rng unused(seed);
    for (std::size_t i = 0; i < cells; ++i) out.push_back(run_cell(i, unused));
    return out;
  }
  return parallel_sweep<FibScenarioResult>(cells, seed, run_cell);
}

}  // namespace treecache::sim
