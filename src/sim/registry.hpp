// Registry-driven simulator core.
//
// Online algorithms, workload sources, offline evaluators and paging
// policies self-register behind name-keyed factories, so the simulator, the
// CLI, parameter sweeps and the benchmark harness all resolve
// algorithm × workload × parameter grids from one table instead of
// hand-wired #include lists.
//
// Workload factories are STREAMING: they return a pull-based
// std::unique_ptr<RequestSource> (core/request_source.hpp), not a
// materialized Trace, so `sim::run_source` drives arbitrarily long runs in
// O(1) memory and closed-loop sources (e.g. the FIB router) plug into the
// same driver. `make_workload` materializes a source for consumers that
// genuinely need a vector (offline evaluators, trace files, span tests).
//
// Adding a new algorithm takes three steps and touches only its own files:
//   1. implement `class MyAlg final : public OnlineAlgorithm` anywhere;
//   2. in my_alg.cpp, add a translation-unit-local registrar:
//        namespace {
//        const sim::AlgorithmRegistrar kReg{
//            "myalg", "one-line summary",
//            [](const Tree& t, const sim::Params& p) {
//              return std::make_unique<MyAlg>(t, p.alpha(), p.capacity());
//            }};
//        }  // namespace
//   3. list my_alg.cpp in src/CMakeLists.txt.
//
// Adding a streaming workload is the same dance with a WorkloadRegistrar.
// Implement fill() (emit up to buffer.size() requests, return how many;
// 0 = exhausted) and reset() (replay the identical stream), then register:
//   class PingPongSource final : public RequestSource {
//    public:
//     PingPongSource(const Tree& tree, std::uint64_t length)
//         : tree_(&tree), remaining_(length) {}
//     std::size_t fill(std::span<Request> buffer) override {
//       std::size_t n = 0;
//       while (n < buffer.size() && remaining_ > 0) {
//         const NodeId leaf = remaining_-- % 2 ? tree_->leaves().front()
//                                              : tree_->leaves().back();
//         buffer[n++] = positive(leaf);
//       }
//       return n;
//     }
//     void reset() override { remaining_ = length_; }  // + store length_
//     std::optional<std::uint64_t> size_hint() const override {
//       return remaining_;
//     }
//    ...
//   };
//   namespace {
//   const sim::WorkloadRegistrar kReg{
//       "pingpong", "alternates between the two outermost leaves",
//       [](const Tree& t, const sim::Params& p, std::uint64_t /*seed*/) {
//         return std::make_unique<PingPongSource>(
//             t, p.get_u64("length", 100000));
//       }};
//   }  // namespace
// No edits to src/sim/ or tools/ are required; `treecache run --workload
// pingpong --length 1000000000` streams it, tests/test_registry.cpp and
// the streamed≡materialized suite in tests/test_request_source.cpp pick it
// up automatically, and the combinators (workload/combinators.hpp: concat,
// mix, churn-inject) can name it as a part.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/paging.hpp"
#include "core/online_algorithm.hpp"
#include "core/request_source.hpp"
#include "core/trace.hpp"
#include "tree/tree.hpp"

namespace treecache::sim {

/// Uniform string-keyed parameter bag passed to every factory. Common knobs
/// (alpha, capacity, length, ...) have typed accessors with the library-wide
/// defaults; algorithm-specific knobs go through the generic getters, so a
/// factory can consume CLI flags or sweep-grid axes without a bespoke
/// config struct per registration.
class Params {
 public:
  Params() = default;
  explicit Params(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  // The two knobs every tree-caching algorithm shares.
  [[nodiscard]] std::uint64_t alpha() const { return get_u64("alpha", 16); }
  [[nodiscard]] std::size_t capacity() const {
    return get_u64("capacity", 64);
  }

  /// All key/value pairs, e.g. for serializing the scenario that produced
  /// a result.
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Builds an online algorithm over `tree` configured from `params`.
using AlgorithmFactory = std::function<std::unique_ptr<OnlineAlgorithm>(
    const Tree& tree, const Params& params)>;

/// Builds a streaming request source over `tree` from `params` ("length",
/// "skew", "neg", ...). All randomness derives from `seed`, so the source
/// replays the identical stream after reset(). The source may keep a
/// reference to `tree`, which must outlive it.
using WorkloadFactory = std::function<std::unique_ptr<RequestSource>(
    const Tree& tree, const Params& params, std::uint64_t seed)>;

/// Computes an offline cost/bound for a (tree, trace) instance — exact
/// offline optimum, static-cache optimum, etc.
using OfflineEvaluatorFactory = std::function<std::uint64_t(
    const Tree& tree, const Trace& trace, const Params& params)>;

/// Builds a classic paging policy with capacity k (Appendix C reduction).
using PagingFactory =
    std::function<std::unique_ptr<PagingAlgorithm>(std::size_t k)>;

/// One generic name → factory table. Keys are unique; lookups throw
/// CheckFailure listing the registered names on a miss.
template <typename Factory>
class Registry {
 public:
  struct Entry {
    std::string summary;
    Factory factory;
  };

  /// The process-wide table for this factory kind.
  static Registry& instance();

  void add(const std::string& name, std::string summary, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }

  /// The factory registered under `name`; throws CheckFailure if absent.
  [[nodiscard]] const Factory& at(const std::string& name) const;

  [[nodiscard]] const std::string& summary(const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// "name — summary" lines for --help output.
  [[nodiscard]] std::string describe() const;

 private:
  std::map<std::string, Entry> entries_;
};

using AlgorithmRegistry = Registry<AlgorithmFactory>;
using WorkloadRegistry = Registry<WorkloadFactory>;
using OfflineEvaluatorRegistry = Registry<OfflineEvaluatorFactory>;
using PagingRegistry = Registry<PagingFactory>;

/// Convenience lookups: resolve a name and invoke the factory.
[[nodiscard]] std::unique_ptr<OnlineAlgorithm> make_algorithm(
    const std::string& name, const Tree& tree, const Params& params);
[[nodiscard]] std::unique_ptr<RequestSource> make_source(
    const std::string& name, const Tree& tree, const Params& params,
    std::uint64_t seed);
/// make_source materialized into a Trace (offline evaluators, span tests).
[[nodiscard]] Trace make_workload(const std::string& name, const Tree& tree,
                                  const Params& params, std::uint64_t seed);
[[nodiscard]] std::uint64_t evaluate_offline(const std::string& name,
                                             const Tree& tree,
                                             const Trace& trace,
                                             const Params& params);
[[nodiscard]] std::unique_ptr<PagingAlgorithm> make_paging(
    const std::string& name, std::size_t k);

/// Static registrars: declare one as a namespace-local const in the
/// component's own .cpp to self-register at load time.
struct AlgorithmRegistrar {
  AlgorithmRegistrar(const std::string& name, std::string summary,
                     AlgorithmFactory factory) {
    AlgorithmRegistry::instance().add(name, std::move(summary),
                                      std::move(factory));
  }
};

struct WorkloadRegistrar {
  WorkloadRegistrar(const std::string& name, std::string summary,
                    WorkloadFactory factory) {
    WorkloadRegistry::instance().add(name, std::move(summary),
                                     std::move(factory));
  }
};

struct OfflineEvaluatorRegistrar {
  OfflineEvaluatorRegistrar(const std::string& name, std::string summary,
                            OfflineEvaluatorFactory factory) {
    OfflineEvaluatorRegistry::instance().add(name, std::move(summary),
                                             std::move(factory));
  }
};

struct PagingRegistrar {
  PagingRegistrar(const std::string& name, std::string summary,
                  PagingFactory factory) {
    PagingRegistry::instance().add(name, std::move(summary),
                                   std::move(factory));
  }
};

}  // namespace treecache::sim
