// Registry-driven simulator core.
//
// Online algorithms, workload generators, offline evaluators and paging
// policies self-register behind name-keyed factories, so the simulator, the
// CLI, parameter sweeps and the benchmark harness all resolve
// algorithm × workload × parameter grids from one table instead of
// hand-wired #include lists.
//
// Adding a new algorithm takes three steps and touches only its own files:
//   1. implement `class MyAlg final : public OnlineAlgorithm` anywhere;
//   2. in my_alg.cpp, add a translation-unit-local registrar:
//        namespace {
//        const sim::AlgorithmRegistrar kReg{
//            "myalg", "one-line summary",
//            [](const Tree& t, const sim::Params& p) {
//              return std::make_unique<MyAlg>(t, p.alpha(), p.capacity());
//            }};
//        }  // namespace
//   3. list my_alg.cpp in src/CMakeLists.txt.
// No edits to src/sim/ or tools/ are required; `treecache_cli run
// --alg myalg` and tests/test_registry.cpp pick it up automatically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/paging.hpp"
#include "core/online_algorithm.hpp"
#include "core/trace.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace treecache::sim {

/// Uniform string-keyed parameter bag passed to every factory. Common knobs
/// (alpha, capacity, length, ...) have typed accessors with the library-wide
/// defaults; algorithm-specific knobs go through the generic getters, so a
/// factory can consume CLI flags or sweep-grid axes without a bespoke
/// config struct per registration.
class Params {
 public:
  Params() = default;
  explicit Params(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  // The two knobs every tree-caching algorithm shares.
  [[nodiscard]] std::uint64_t alpha() const { return get_u64("alpha", 16); }
  [[nodiscard]] std::size_t capacity() const {
    return get_u64("capacity", 64);
  }

  /// All key/value pairs, e.g. for serializing the scenario that produced
  /// a result.
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Builds an online algorithm over `tree` configured from `params`.
using AlgorithmFactory = std::function<std::unique_ptr<OnlineAlgorithm>(
    const Tree& tree, const Params& params)>;

/// Generates a request trace over `tree` from `params` ("length", "skew",
/// "neg", ...) using the caller's RNG stream.
using WorkloadFactory =
    std::function<Trace(const Tree& tree, const Params& params, Rng& rng)>;

/// Computes an offline cost/bound for a (tree, trace) instance — exact
/// offline optimum, static-cache optimum, etc.
using OfflineEvaluatorFactory = std::function<std::uint64_t(
    const Tree& tree, const Trace& trace, const Params& params)>;

/// Builds a classic paging policy with capacity k (Appendix C reduction).
using PagingFactory =
    std::function<std::unique_ptr<PagingAlgorithm>(std::size_t k)>;

/// One generic name → factory table. Keys are unique; lookups throw
/// CheckFailure listing the registered names on a miss.
template <typename Factory>
class Registry {
 public:
  struct Entry {
    std::string summary;
    Factory factory;
  };

  /// The process-wide table for this factory kind.
  static Registry& instance();

  void add(const std::string& name, std::string summary, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }

  /// The factory registered under `name`; throws CheckFailure if absent.
  [[nodiscard]] const Factory& at(const std::string& name) const;

  [[nodiscard]] const std::string& summary(const std::string& name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// "name — summary" lines for --help output.
  [[nodiscard]] std::string describe() const;

 private:
  std::map<std::string, Entry> entries_;
};

using AlgorithmRegistry = Registry<AlgorithmFactory>;
using WorkloadRegistry = Registry<WorkloadFactory>;
using OfflineEvaluatorRegistry = Registry<OfflineEvaluatorFactory>;
using PagingRegistry = Registry<PagingFactory>;

/// Convenience lookups: resolve a name and invoke the factory.
[[nodiscard]] std::unique_ptr<OnlineAlgorithm> make_algorithm(
    const std::string& name, const Tree& tree, const Params& params);
[[nodiscard]] Trace make_workload(const std::string& name, const Tree& tree,
                                  const Params& params, Rng& rng);
[[nodiscard]] std::uint64_t evaluate_offline(const std::string& name,
                                             const Tree& tree,
                                             const Trace& trace,
                                             const Params& params);
[[nodiscard]] std::unique_ptr<PagingAlgorithm> make_paging(
    const std::string& name, std::size_t k);

/// Static registrars: declare one as a namespace-local const in the
/// component's own .cpp to self-register at load time.
struct AlgorithmRegistrar {
  AlgorithmRegistrar(const std::string& name, std::string summary,
                     AlgorithmFactory factory) {
    AlgorithmRegistry::instance().add(name, std::move(summary),
                                      std::move(factory));
  }
};

struct WorkloadRegistrar {
  WorkloadRegistrar(const std::string& name, std::string summary,
                    WorkloadFactory factory) {
    WorkloadRegistry::instance().add(name, std::move(summary),
                                     std::move(factory));
  }
};

struct OfflineEvaluatorRegistrar {
  OfflineEvaluatorRegistrar(const std::string& name, std::string summary,
                            OfflineEvaluatorFactory factory) {
    OfflineEvaluatorRegistry::instance().add(name, std::move(summary),
                                             std::move(factory));
  }
};

struct PagingRegistrar {
  PagingRegistrar(const std::string& name, std::string summary,
                  PagingFactory factory) {
    PagingRegistry::instance().add(name, std::move(summary),
                                   std::move(factory));
  }
};

}  // namespace treecache::sim
