// Parallel parameter sweeps for the benchmark harness.
//
// Each sweep point is an independent simulation; points are distributed
// across cores with OpenMP (see util/parallel.hpp) and each derives its own
// RNG stream, so results are deterministic regardless of thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace treecache::sim {

/// Runs body(i, rng) for every index with an independent deterministic RNG
/// per point, in parallel, collecting the results in order.
template <typename Result, typename Body>
std::vector<Result> parallel_sweep(std::size_t points, std::uint64_t seed,
                                   Body&& body) {
  // Pre-derive one seed per point so the assignment of RNG streams to
  // points does not depend on scheduling.
  std::vector<std::uint64_t> seeds(points);
  Rng seeder(seed);
  for (auto& s : seeds) s = seeder();
  std::vector<Result> results(points);
  parallel_for(points, [&](std::size_t i) {
    Rng rng(seeds[i]);
    results[i] = body(i, rng);
  });
  return results;
}

/// Repeats a measurement `reps` times with independent RNGs and returns the
/// samples in order (convenience over parallel_sweep for scalar outputs).
template <typename Body>
std::vector<double> repeat_measure(std::size_t reps, std::uint64_t seed,
                                   Body&& body) {
  return parallel_sweep<double>(reps, seed, [&](std::size_t i, Rng& rng) {
    return body(i, rng);
  });
}

}  // namespace treecache::sim
