// The one driver every experiment runs through: pulls requests from a
// RequestSource (open-loop trace generators and closed-loop feedback
// sources alike), steps the algorithm, feeds outcomes back to the source,
// and aggregates statistics. run_trace is the span convenience over it.
#pragma once

#include <functional>
#include <span>

#include "core/online_algorithm.hpp"
#include "core/request_source.hpp"

namespace treecache::sim {

struct RunResult {
  Cost cost;
  std::uint64_t rounds = 0;
  std::uint64_t paid_requests = 0;
  std::uint64_t paid_positive = 0;  // positive requests that cost 1 (misses)
  std::uint64_t paid_negative = 0;  // negative requests that cost 1
  std::uint64_t fetched_nodes = 0;
  std::uint64_t evicted_nodes = 0;   // via negative changesets
  std::uint64_t phase_restarts = 0;
  std::uint64_t restart_evictions = 0;  // nodes evicted by restarts
  std::size_t max_cache_size = 0;
  std::size_t final_cache_size = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// Called after every round with (1-based round, request, outcome).
using StepObserver =
    std::function<void(std::size_t, Request, const StepOutcome&)>;

/// Runs the source to exhaustion from the algorithm's current state: pulls
/// batches via RequestSource::fill, steps each request, and hands every
/// StepOutcome back to source.observe() (closed-loop sources depend on
/// this). Memory use is O(1) in the stream length. When
/// `validate_every_step` is set, the cache is checked to be a subforest
/// after every round (O(n) per round — test-sized runs only).
[[nodiscard]] RunResult run_source(OnlineAlgorithm& alg,
                                   RequestSource& source,
                                   const StepObserver& observer = {},
                                   bool validate_every_step = false);

/// Convenience: runs an in-memory trace through run_source via a borrowing
/// TraceSource, so both paths share one accounting loop.
[[nodiscard]] RunResult run_trace(OnlineAlgorithm& alg,
                                  std::span<const Request> trace,
                                  const StepObserver& observer = {},
                                  bool validate_every_step = false);

}  // namespace treecache::sim
