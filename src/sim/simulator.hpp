// Trace-driven simulation of any OnlineAlgorithm with aggregate statistics.
#pragma once

#include <functional>
#include <span>

#include "core/online_algorithm.hpp"
#include "core/trace.hpp"

namespace treecache::sim {

struct RunResult {
  Cost cost;
  std::uint64_t rounds = 0;
  std::uint64_t paid_requests = 0;
  std::uint64_t paid_positive = 0;  // positive requests that cost 1 (misses)
  std::uint64_t paid_negative = 0;  // negative requests that cost 1
  std::uint64_t fetched_nodes = 0;
  std::uint64_t evicted_nodes = 0;   // via negative changesets
  std::uint64_t phase_restarts = 0;
  std::uint64_t restart_evictions = 0;  // nodes evicted by restarts
  std::size_t max_cache_size = 0;
  std::size_t final_cache_size = 0;
};

/// Called after every round with (1-based round, request, outcome).
using StepObserver =
    std::function<void(std::size_t, Request, const StepOutcome&)>;

/// Runs the trace from the algorithm's current state. When
/// `validate_every_step` is set, the cache is checked to be a subforest
/// after every round (O(n) per round — test-sized traces only).
[[nodiscard]] RunResult run_trace(OnlineAlgorithm& alg,
                                  std::span<const Request> trace,
                                  const StepObserver& observer = {},
                                  bool validate_every_step = false);

}  // namespace treecache::sim
