// The one driver every experiment runs through: pulls requests from a
// RequestSource (open-loop trace generators and closed-loop feedback
// sources alike), steps the algorithm, feeds outcomes back to the source,
// and aggregates statistics. run_trace is the span convenience over it.
//
// The no-observer, no-validation configuration is the hot path: it drives
// the algorithm through OnlineAlgorithm::step_batch with an AccountingSink,
// so a round pays no std::function emptiness test, no StepOutcome copy and
// (for algorithms that override step_batch) no virtual step() dispatch.
// sharded execution at scale lives in engine/sharded_engine.hpp, which
// reuses the same per-round accounting so its totals are comparable.
#pragma once

#include <functional>
#include <span>

#include "core/online_algorithm.hpp"
#include "core/request_source.hpp"

namespace treecache::sim {

struct RunResult {
  Cost cost;
  std::uint64_t rounds = 0;
  std::uint64_t paid_requests = 0;
  std::uint64_t paid_positive = 0;  // positive requests that cost 1 (misses)
  std::uint64_t paid_negative = 0;  // negative requests that cost 1
  std::uint64_t fetched_nodes = 0;
  std::uint64_t evicted_nodes = 0;   // via negative changesets
  std::uint64_t phase_restarts = 0;
  std::uint64_t restart_evictions = 0;  // nodes evicted by restarts
  std::size_t max_cache_size = 0;
  std::size_t final_cache_size = 0;
  // Wall-clock seconds the driver spent on the run, so every result doubles
  // as a throughput sample. Measured, hence excluded from equality: two
  // replays of one scenario are "the same run" even though their timings
  // differ.
  double wall_seconds = 0.0;

  /// Rounds per wall-clock second; 0 when no time was recorded.
  [[nodiscard]] double requests_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(rounds) / wall_seconds
                              : 0.0;
  }

  friend bool operator==(const RunResult& a, const RunResult& b) {
    return a.cost == b.cost && a.rounds == b.rounds &&
           a.paid_requests == b.paid_requests &&
           a.paid_positive == b.paid_positive &&
           a.paid_negative == b.paid_negative &&
           a.fetched_nodes == b.fetched_nodes &&
           a.evicted_nodes == b.evicted_nodes &&
           a.phase_restarts == b.phase_restarts &&
           a.restart_evictions == b.restart_evictions &&
           a.max_cache_size == b.max_cache_size &&
           a.final_cache_size == b.final_cache_size;
  }
};

/// Folds one round into `result`: payment split, changeset tallies, and the
/// running cache-size peak (`cache_size` is the cache size right after the
/// step). Shared by run_source and the sharded engine so their accounting
/// can never drift apart. cost/final_cache_size/wall_seconds are finalized
/// by the caller once the stream ends.
inline void accumulate_outcome(RunResult& result, const Request& request,
                               const StepOutcome& outcome,
                               std::size_t cache_size) {
  ++result.rounds;
  if (outcome.paid) {
    ++result.paid_requests;
    if (request.sign == Sign::kPositive) {
      ++result.paid_positive;
    } else {
      ++result.paid_negative;
    }
  }
  result.evicted_nodes += outcome.also_evicted.size();
  switch (outcome.change) {
    case ChangeKind::kNone:
      break;
    case ChangeKind::kFetch:
      result.fetched_nodes += outcome.changed.size();
      break;
    case ChangeKind::kEvict:
      result.evicted_nodes += outcome.changed.size();
      break;
    case ChangeKind::kPhaseRestart:
      ++result.phase_restarts;
      result.restart_evictions += outcome.changed.size();
      break;
  }
  if (cache_size > result.max_cache_size) result.max_cache_size = cache_size;
}

/// The hot-path sink: accumulates every outcome into a RunResult and
/// (when a source is attached) forwards the closed-loop feedback through
/// observe() — i.e. an observe_batch() of one, straight from the
/// algorithm's scratch, no copies; sources must accept any feedback
/// granularity. This is what run_source hands to step_batch when no
/// observer is set; the sharded engine attaches one per shard, without a
/// source (its threaded closed-loop path batches feedback through
/// OutcomeBuffer rings instead — see engine/sharded_engine.hpp).
class AccountingSink final : public OutcomeSink {
 public:
  AccountingSink(RunResult& result, const OnlineAlgorithm& alg,
                 RequestSource* source)
      : result_(&result), alg_(&alg), source_(source) {}

  void on_outcome(const Request& request,
                  const StepOutcome& outcome) override {
    accumulate_outcome(*result_, request, outcome, alg_->cache().size());
    if (source_ != nullptr) source_->observe(outcome);
  }

 private:
  RunResult* result_;
  const OnlineAlgorithm* alg_;
  RequestSource* source_;
};

/// Requests pulled from a source per fill() call by run_source (and the
/// demux chunk the sharded engine defaults to).
inline constexpr std::size_t kDriverBatchSize = 4096;

/// Called after every round with (1-based round, request, outcome).
using StepObserver =
    std::function<void(std::size_t, Request, const StepOutcome&)>;

/// Runs the source to exhaustion from the algorithm's current state: pulls
/// batches via RequestSource::fill, steps each request, and hands every
/// StepOutcome back to the source's observe_batch() feedback (closed-loop
/// sources depend on this). Memory use is O(1) in the stream length.
/// With no observer and no validation the run goes through the batched
/// hot path; when
/// `validate_every_step` is set, the cache is checked to be a subforest
/// after every round (O(n) per round — test-sized runs only).
[[nodiscard]] RunResult run_source(OnlineAlgorithm& alg,
                                   RequestSource& source,
                                   const StepObserver& observer = {},
                                   bool validate_every_step = false);

/// Convenience: runs an in-memory trace through run_source via a borrowing
/// TraceSource, so both paths share one accounting loop.
[[nodiscard]] RunResult run_trace(OnlineAlgorithm& alg,
                                  std::span<const Request> trace,
                                  const StepObserver& observer = {},
                                  bool validate_every_step = false);

}  // namespace treecache::sim
