// Standardized bench output: every experiment prints a banner naming the
// paper artifact it reproduces, the claim, and then its table(s).
#pragma once

#include <string_view>

namespace treecache::sim {

/// Prints a framed banner:
///   == E3: Theorem 6.1 — per-request work ==
///   claim: <one line from the paper>
void print_experiment_banner(std::string_view id, std::string_view title,
                             std::string_view paper_claim);

/// Prints a short labelled key-value line ("  <label>: <value>").
void print_note(std::string_view label, std::string_view value);

}  // namespace treecache::sim
