// Standardized result output.
//
// Console side: every experiment prints a banner naming the paper artifact
// it reproduces, the claim, and then its table(s).
//
// JSON side: machine-readable documents for the CLI (`--json`), the grid
// engine and the benches. Every top-level document carries a "schema" tag:
//   treecache.run/2    one scenario        {schema, scenario, result}
//                      (v2: result gained wall_seconds/requests_per_second,
//                      so every --json run doubles as a perf sample)
//   treecache.grid/1   algorithm × workload grid    {schema, cells: [...]}
//   treecache.fib/2    closed-loop FIB sweep        {schema, cells: [...]}
//                      (v2: every cell carries an "engine" object — the
//                      closed loop now shards by top-level prefix)
//   treecache.throughput/1   sharded-engine run
//                      {schema, scenario, engine, result, per_shard: [...]}
//   treecache.bench/1  bench table   {schema, experiment, title, rows: [...]}
// The bench emitter writes BENCH_<id>.json into $TREECACHE_BENCH_JSON_DIR,
// which is how CI captures the perf trajectory as artifacts.
#pragma once

#include <string>
#include <string_view>

#include "sim/fib_engine.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"

// The sim layer only *reports on* the engine; keep the upward dependency to
// these forward declarations (engine/sharded_engine.hpp is included by
// reporting.cpp alone).
namespace treecache::engine {
struct EngineConfig;
struct EngineResult;
class ShardPlan;
}  // namespace treecache::engine

namespace treecache::sim {

/// Prints a framed banner:
///   == E3: Theorem 6.1 — per-request work ==
///   claim: <one line from the paper>
void print_experiment_banner(std::string_view id, std::string_view title,
                             std::string_view paper_claim);

/// Prints a short labelled key-value line ("  <label>: <value>").
void print_note(std::string_view label, std::string_view value);

/// Cost/accounting object of one simulator run.
[[nodiscard]] util::Json to_json(const RunResult& result);

/// {algorithm, workload, seed, params} of one scenario.
[[nodiscard]] util::Json to_json(const Scenario& scenario);

/// Full single-run document (schema treecache.run/2).
[[nodiscard]] util::Json scenario_json(const ScenarioResult& result);

/// Full grid document over run_grid cells (schema treecache.grid/1).
[[nodiscard]] util::Json grid_json(const std::vector<ScenarioResult>& cells);

/// One closed-loop FIB cell: {algorithm, seed, params, engine, result} —
/// "engine" (fib/2) is {shards_requested, shards, threads}, the closed
/// loop's sharding geometry (results are thread-count invariant).
[[nodiscard]] util::Json to_json(const FibScenarioResult& result);

/// Full FIB sweep document (schema treecache.fib/2).
[[nodiscard]] util::Json fib_sweep_json(
    const std::vector<FibScenarioResult>& cells);

/// Full sharded-engine document (schema treecache.throughput/1): the
/// scenario, the engine geometry (requested and planned shard counts,
/// workers, batch), the aggregate result and one entry per shard. A
/// trace-driven run (empty scenario.workload) passes the file in
/// `trace_path`, recorded inside the scenario object exactly as
/// treecache.run/2 records it.
[[nodiscard]] util::Json throughput_json(const Scenario& scenario,
                                         const engine::EngineConfig& config,
                                         const engine::ShardPlan& plan,
                                         const engine::EngineResult& result,
                                         std::string_view trace_path = {});

/// Machine-readable companion to a bench's console tables. When
/// $TREECACHE_BENCH_JSON_DIR is set, wraps `rows` (an array of row
/// objects) in the treecache.bench/1 envelope, writes it to
/// <dir>/BENCH_<id>.json and returns the path; otherwise a no-op
/// returning "".
std::string write_bench_json(std::string_view id, std::string_view title,
                             util::Json rows);

}  // namespace treecache::sim
