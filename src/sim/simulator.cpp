#include "sim/simulator.hpp"

#include <array>

#include "util/stopwatch.hpp"

namespace treecache::sim {

RunResult run_source(OnlineAlgorithm& alg, RequestSource& source,
                     const StepObserver& observer, bool validate_every_step) {
  RunResult result;
  const Stopwatch timer;
  std::array<Request, kDriverBatchSize> buffer;
  if (!observer && !validate_every_step) {
    // Hot path: whole batches go through step_batch with the accounting
    // sink — no per-round std::function test, no StepOutcome copy, and no
    // virtual step() dispatch for algorithms that override step_batch.
    AccountingSink sink(result, alg, &source);
    for (;;) {
      const std::size_t n = source.fill(buffer);
      if (n == 0) break;
      alg.step_batch(std::span<const Request>(buffer.data(), n), sink);
    }
  } else {
    for (;;) {
      const std::size_t n = source.fill(buffer);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        const Request request = buffer[i];
        const StepOutcome out = alg.step(request);
        accumulate_outcome(result, request, out, alg.cache().size());
        if (validate_every_step) {
          TC_CHECK(alg.cache().is_valid(), "cache stopped being a subforest");
        }
        // Feedback before the observer: the source's view must be current
        // by the time anything else inspects the round.
        source.observe(out);
        if (observer) observer(result.rounds, request, out);
      }
    }
  }
  result.cost = alg.cost();
  result.final_cache_size = alg.cache().size();
  result.wall_seconds = timer.seconds();
  return result;
}

RunResult run_trace(OnlineAlgorithm& alg, std::span<const Request> trace,
                    const StepObserver& observer, bool validate_every_step) {
  TraceSource source(trace);
  return run_source(alg, source, observer, validate_every_step);
}

}  // namespace treecache::sim
