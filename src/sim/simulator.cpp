#include "sim/simulator.hpp"

#include <algorithm>

namespace treecache::sim {

RunResult run_trace(OnlineAlgorithm& alg, std::span<const Request> trace,
                    const StepObserver& observer, bool validate_every_step) {
  RunResult result;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const StepOutcome out = alg.step(trace[i]);
    ++result.rounds;
    if (out.paid) {
      ++result.paid_requests;
      if (trace[i].sign == Sign::kPositive) {
        ++result.paid_positive;
      } else {
        ++result.paid_negative;
      }
    }
    result.evicted_nodes += out.also_evicted.size();
    switch (out.change) {
      case ChangeKind::kNone:
        break;
      case ChangeKind::kFetch:
        result.fetched_nodes += out.changed.size();
        break;
      case ChangeKind::kEvict:
        result.evicted_nodes += out.changed.size();
        break;
      case ChangeKind::kPhaseRestart:
        ++result.phase_restarts;
        result.restart_evictions += out.changed.size();
        break;
    }
    result.max_cache_size = std::max(result.max_cache_size,
                                     alg.cache().size());
    if (validate_every_step) {
      TC_CHECK(alg.cache().is_valid(), "cache stopped being a subforest");
    }
    if (observer) observer(i + 1, trace[i], out);
  }
  result.cost = alg.cost();
  result.final_cache_size = alg.cache().size();
  return result;
}

}  // namespace treecache::sim
