#include "sim/simulator.hpp"

#include <algorithm>
#include <array>

namespace treecache::sim {

RunResult run_source(OnlineAlgorithm& alg, RequestSource& source,
                     const StepObserver& observer, bool validate_every_step) {
  RunResult result;
  std::array<Request, 4096> buffer;
  for (;;) {
    const std::size_t n = source.fill(buffer);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      const Request request = buffer[i];
      const StepOutcome out = alg.step(request);
      ++result.rounds;
      if (out.paid) {
        ++result.paid_requests;
        if (request.sign == Sign::kPositive) {
          ++result.paid_positive;
        } else {
          ++result.paid_negative;
        }
      }
      result.evicted_nodes += out.also_evicted.size();
      switch (out.change) {
        case ChangeKind::kNone:
          break;
        case ChangeKind::kFetch:
          result.fetched_nodes += out.changed.size();
          break;
        case ChangeKind::kEvict:
          result.evicted_nodes += out.changed.size();
          break;
        case ChangeKind::kPhaseRestart:
          ++result.phase_restarts;
          result.restart_evictions += out.changed.size();
          break;
      }
      result.max_cache_size =
          std::max(result.max_cache_size, alg.cache().size());
      if (validate_every_step) {
        TC_CHECK(alg.cache().is_valid(), "cache stopped being a subforest");
      }
      // Feedback before the observer: the source's view must be current by
      // the time anything else inspects the round.
      source.observe(out);
      if (observer) observer(result.rounds, request, out);
    }
  }
  result.cost = alg.cost();
  result.final_cache_size = alg.cache().size();
  return result;
}

RunResult run_trace(OnlineAlgorithm& alg, std::span<const Request> trace,
                    const StepObserver& observer, bool validate_every_step) {
  TraceSource source(trace);
  return run_source(alg, source, observer, validate_every_step);
}

}  // namespace treecache::sim
