#include "sim/registry.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace treecache::sim {

namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    TC_CHECK(used == text.size(), "trailing junk");
    return value;
  } catch (const std::exception&) {
    throw CheckFailure("parameter " + key + "=" + text +
                       " is not an unsigned integer");
  }
}

double parse_double(const std::string& key, const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    TC_CHECK(used == text.size(), "trailing junk");
    return value;
  } catch (const std::exception&) {
    throw CheckFailure("parameter " + key + "=" + text + " is not a number");
  }
}

}  // namespace

std::uint64_t Params::get_u64(const std::string& key,
                              std::uint64_t fallback) const {
  return has(key) ? parse_u64(key, get(key, "")) : fallback;
}

double Params::get_double(const std::string& key, double fallback) const {
  return has(key) ? parse_double(key, get(key, "")) : fallback;
}

template <typename Factory>
Registry<Factory>& Registry<Factory>::instance() {
  // Function-local static: safely initialized on first use, including from
  // the static registrars that run during program load.
  static Registry registry;
  return registry;
}

template <typename Factory>
void Registry<Factory>::add(const std::string& name, std::string summary,
                            Factory factory) {
  TC_CHECK(!name.empty(), "registry names must be non-empty");
  const bool inserted =
      entries_
          .emplace(name, Entry{std::move(summary), std::move(factory)})
          .second;
  TC_CHECK(inserted, "duplicate registration of '" + name + "'");
}

template <typename Factory>
const Factory& Registry<Factory>::at(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [key, entry] : entries_) {
      known += known.empty() ? key : ", " + key;
    }
    throw CheckFailure("unknown name '" + name + "' (registered: " + known +
                       ")");
  }
  return it->second.factory;
}

template <typename Factory>
const std::string& Registry<Factory>::summary(const std::string& name) const {
  const auto it = entries_.find(name);
  TC_CHECK(it != entries_.end(), "unknown name '" + name + "'");
  return it->second.summary;
}

template <typename Factory>
std::vector<std::string> Registry<Factory>::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) result.push_back(key);
  return result;
}

template <typename Factory>
std::string Registry<Factory>::describe() const {
  std::string text;
  for (const auto& [key, entry] : entries_) {
    text += "  " + key + " — " + entry.summary + "\n";
  }
  return text;
}

template class Registry<AlgorithmFactory>;
template class Registry<WorkloadFactory>;
template class Registry<OfflineEvaluatorFactory>;
template class Registry<PagingFactory>;

std::unique_ptr<OnlineAlgorithm> make_algorithm(const std::string& name,
                                                const Tree& tree,
                                                const Params& params) {
  return AlgorithmRegistry::instance().at(name)(tree, params);
}

std::unique_ptr<RequestSource> make_source(const std::string& name,
                                           const Tree& tree,
                                           const Params& params,
                                           std::uint64_t seed) {
  return WorkloadRegistry::instance().at(name)(tree, params, seed);
}

Trace make_workload(const std::string& name, const Tree& tree,
                    const Params& params, std::uint64_t seed) {
  const auto source = make_source(name, tree, params, seed);
  return materialize(*source);
}

std::uint64_t evaluate_offline(const std::string& name, const Tree& tree,
                               const Trace& trace, const Params& params) {
  return OfflineEvaluatorRegistry::instance().at(name)(tree, trace, params);
}

std::unique_ptr<PagingAlgorithm> make_paging(const std::string& name,
                                             std::size_t k) {
  return PagingRegistry::instance().at(name)(k);
}

}  // namespace treecache::sim
