// Scenario layer: one struct naming an (algorithm, workload, parameters)
// triple, resolved entirely through sim/registry.hpp. The CLI, tests and
// benches describe *what* to run as data; the engine owns construction,
// trace generation, seeding and (for grids) parallel execution.
#pragma once

#include <string>
#include <vector>

#include "sim/registry.hpp"
#include "sim/simulator.hpp"

namespace treecache::sim {

struct Scenario {
  std::string algorithm;  // AlgorithmRegistry key
  std::string workload;   // WorkloadRegistry key
  Params params;          // alpha, capacity, length, skew, ...
  std::uint64_t seed = 1;
};

struct ScenarioResult {
  Scenario scenario;
  RunResult run;
};

/// Generates the workload, builds the algorithm, and runs the trace.
/// Both names resolve through the registries; unknown names throw
/// CheckFailure listing what is registered.
[[nodiscard]] ScenarioResult run_scenario(const Tree& tree,
                                          const Scenario& scenario,
                                          bool validate_every_step = false);

/// Cross product: every algorithm × every workload over shared `base`
/// parameters, run in parallel (results are independent of thread count).
/// All algorithms in a workload column share one trace seed, so the grid
/// compares algorithms on identical inputs. Cells are ordered
/// algorithm-major, matching the input order.
[[nodiscard]] std::vector<ScenarioResult> run_grid(
    const Tree& tree, const std::vector<std::string>& algorithms,
    const std::vector<std::string>& workloads, const Params& base,
    std::uint64_t seed);

}  // namespace treecache::sim
