#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace treecache::sim {

double quantile(const std::vector<double>& sorted, double q) {
  TC_CHECK(!sorted.empty(), "quantile of an empty sample");
  TC_DCHECK(std::is_sorted(sorted.begin(), sorted.end()),
            "quantile input must be sorted ascending");
  const auto n = static_cast<double>(sorted.size());
  // Nearest rank ⌈q·n⌉; the epsilon keeps exact rank boundaries (e.g.
  // q = 0.95, n = 20) from being pushed up a rank by floating-point error.
  const double rank = std::ceil(q * n - 1e-9);
  const auto index = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, n - 1.0));
  return sorted[index];
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.median = quantile(samples, 0.5);
  s.p95 = quantile(samples, 0.95);
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (const double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  }
  return s;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  TC_CHECK(x.size() == y.size() && x.size() >= 2,
           "need matching samples, at least two");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  TC_CHECK(denom != 0.0, "degenerate x values");
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace treecache::sim
