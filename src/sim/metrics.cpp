#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace treecache::sim {

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  s.p95 = samples[static_cast<std::size_t>(
      static_cast<double>(samples.size() - 1) * 0.95)];
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (const double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  }
  return s;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  TC_CHECK(x.size() == y.size() && x.size() >= 2,
           "need matching samples, at least two");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  TC_CHECK(denom != 0.0, "degenerate x values");
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace treecache::sim
