// Environment-driven scaling for the benchmark executables, so CI can
// smoke-run every experiment with tiny iteration counts:
//
//   TREECACHE_BENCH_REPS=N    — caps every repetition count at N
//   TREECACHE_BENCH_SCALE=F   — multiplies sizes/lengths by F (0 < F <= 1)
//
// Unset variables leave the paper-scale defaults untouched.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace treecache::sim {

/// The repetition count a bench should use: `full_reps` normally, capped at
/// $TREECACHE_BENCH_REPS (min 1) when set. Malformed values throw rather
/// than silently running the wrong tier.
[[nodiscard]] inline std::size_t bench_reps(std::size_t full_reps) {
  const char* env = std::getenv("TREECACHE_BENCH_REPS");
  if (env == nullptr) return full_reps;
  std::size_t used = 0;
  std::uint64_t cap = 0;
  try {
    cap = std::stoull(std::string(env), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  TC_CHECK(used == std::string(env).size() && cap >= 1,
           "TREECACHE_BENCH_REPS=" + std::string(env) +
               " is not a positive integer");
  return std::min<std::size_t>(full_reps, cap);
}

/// Scales a size/length by $TREECACHE_BENCH_SCALE in (0, 1] (min result 1).
[[nodiscard]] inline std::size_t bench_scaled(std::size_t full_size) {
  const char* env = std::getenv("TREECACHE_BENCH_SCALE");
  if (env == nullptr) return full_size;
  std::size_t used = 0;
  double scale = 0.0;
  try {
    scale = std::stod(std::string(env), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  TC_CHECK(used == std::string(env).size() && scale > 0.0 && scale <= 1.0,
           "TREECACHE_BENCH_SCALE=" + std::string(env) +
               " is not in (0, 1]");
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(full_size) * scale));
}

}  // namespace treecache::sim
