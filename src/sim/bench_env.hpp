// Environment-driven scaling for the benchmark executables, so CI can
// smoke-run every experiment with tiny iteration counts:
//
//   TREECACHE_BENCH_REPS=N    — caps every repetition count at N
//   TREECACHE_BENCH_SCALE=F   — multiplies sizes/lengths by F (0 < F <= 1)
//
// Unset variables leave the paper-scale defaults untouched.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace treecache::sim {

/// The repetition count a bench should use: `full_reps` normally, capped at
/// $TREECACHE_BENCH_REPS (min 1) when set. Malformed values throw rather
/// than silently running the wrong tier.
[[nodiscard]] inline std::size_t bench_reps(std::size_t full_reps) {
  const char* env = std::getenv("TREECACHE_BENCH_REPS");
  if (env == nullptr) return full_reps;
  std::size_t used = 0;
  std::uint64_t cap = 0;
  try {
    cap = std::stoull(std::string(env), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  TC_CHECK(used == std::string(env).size() && cap >= 1,
           "TREECACHE_BENCH_REPS=" + std::string(env) +
               " is not a positive integer");
  return std::min<std::size_t>(full_reps, cap);
}

/// Scales a size/length by $TREECACHE_BENCH_SCALE in (0, 1] (min result 1).
[[nodiscard]] inline std::size_t bench_scaled(std::size_t full_size) {
  const char* env = std::getenv("TREECACHE_BENCH_SCALE");
  if (env == nullptr) return full_size;
  std::size_t used = 0;
  double scale = 0.0;
  try {
    scale = std::stod(std::string(env), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  TC_CHECK(used == std::string(env).size() && scale > 0.0 && scale <= 1.0,
           "TREECACHE_BENCH_SCALE=" + std::string(env) +
               " is not in (0, 1]");
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(full_size) * scale));
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), 0 where the kernel does not expose it. The
/// memory-audit bench rows report this next to the structure-level byte
/// counts, so a heap regression shows up even when the structures claim
/// to be small.
[[nodiscard]] inline std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  for (std::string line; std::getline(status, line);) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::uint64_t kb = 0;
    fields >> kb;
    return kb * 1024;
  }
#endif
  return 0;
}

}  // namespace treecache::sim
