// Closed-loop FIB scenario engine — the registry-resolvable face of the
// paper's Figure-1 switch + controller event loop, driven through the
// unified sim::run_source driver over a fib::RouterSource (the closed-loop
// RequestSource; fib/router_sim.hpp keeps the self-contained reference
// loop the source is tested against).
//
// A FibScenario names an algorithm (AlgorithmRegistry key) and carries one
// Params bag using the same keys as the registered fib* workloads: the RIB
// block (rules, deagg, max-len, rib-seed) defines the rule tree and the
// traffic block (packets, skew, update-prob, alpha) defines the packet and
// update stream. run_fib_sweep fans algorithm × skew × capacity × alpha
// grids out through parallel_sweep with pre-derived per-point seeds, so
// results are deterministic and independent of thread count, and every
// algorithm at one traffic point sees the identical packet stream.
#pragma once

#include <string>
#include <vector>

#include "engine/sharded_engine.hpp"
#include "fib/router_sim.hpp"
#include "fib/rule_tree.hpp"
#include "sim/registry.hpp"

namespace treecache::sim {

struct FibScenario {
  std::string algorithm;   // AlgorithmRegistry key
  Params params;           // RIB + traffic + algorithm knobs, one bag
  std::uint64_t seed = 1;  // traffic seed ("rib-seed" seeds the table)
  /// Engine geometry, the full knob set — shards/threads/batch/feedback —
  /// shared verbatim with the open-loop `treecache throughput` path (not
  /// part of the scenario semantics; the line-card model: each shard runs
  /// its own instance with the full capacity over its top-level-prefix
  /// slice, fed by a per-shard router mirror off one shared event
  /// producer). With shards > 1 the closed loop runs through
  /// ShardedEngine::run_split; results are bit-identical for every
  /// `threads`/`batch`/`feedback` value.
  engine::EngineConfig engine;
};

struct FibScenarioResult {
  FibScenario scenario;
  /// With shards > 1: the sum of the per-shard mirror statistics. Every
  /// packet and update event is owned by exactly one shard, so packets and
  /// updates always add up to the unsharded event stream; hits/misses are
  /// per the line-card model.
  fib::RouterSimResult router;
  std::size_t shards = 1;   // planned (may be fewer than requested)
  std::size_t threads = 1;  // workers actually used
};

/// Router configuration from the shared parameter keys: packets (default
/// 100000), skew (1.0), update-prob (0.01), alpha; `seed` drives traffic.
[[nodiscard]] fib::RouterSimConfig fib_router_config(const Params& params,
                                                     std::uint64_t seed);

/// Runs one closed-loop scenario over a prebuilt rule tree. The algorithm
/// resolves through the registry and is configured from the same params
/// that configure the router, so its α always matches the update cost.
[[nodiscard]] FibScenarioResult run_fib_scenario(const fib::RuleTree& rules,
                                                 const FibScenario& scenario);

/// Convenience overload: builds the rule tree from scenario.params first
/// (fib::rule_tree_from_params).
[[nodiscard]] FibScenarioResult run_fib_scenario(const FibScenario& scenario);

/// Sweep axes; every axis needs at least one value. Cells are ordered
/// algorithm-major, then skew, capacity, alpha (innermost).
struct FibSweepAxes {
  std::vector<std::string> algorithms;
  std::vector<double> skews{1.0};
  std::vector<std::size_t> capacities{64};
  std::vector<std::uint64_t> alphas{16};
};

/// Cross product over `base` params, in parallel. All algorithms at one
/// (skew, capacity, alpha) point share a traffic seed, so the sweep
/// compares algorithms on identical packet streams. `engine` sets the
/// geometry of every cell (CLI: `treecache fib --shards S --threads T
/// --batch B --feedback F`).
[[nodiscard]] std::vector<FibScenarioResult> run_fib_sweep(
    const fib::RuleTree& rules, const FibSweepAxes& axes, const Params& base,
    std::uint64_t seed, engine::EngineConfig engine = {});

}  // namespace treecache::sim
