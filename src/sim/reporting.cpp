#include "sim/reporting.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/kernels.hpp"
#include "engine/sharded_engine.hpp"
#include "util/check.hpp"

namespace treecache::sim {

void print_experiment_banner(std::string_view id, std::string_view title,
                             std::string_view paper_claim) {
  std::string line = "== ";
  line.append(id);
  line.append(": ");
  line.append(title);
  line.append(" ==");
  std::printf("\n%s\n", line.c_str());
  if (!paper_claim.empty()) {
    std::printf("claim: %.*s\n", static_cast<int>(paper_claim.size()),
                paper_claim.data());
  }
  std::fflush(stdout);
}

void print_note(std::string_view label, std::string_view value) {
  std::printf("  %.*s: %.*s\n", static_cast<int>(label.size()), label.data(),
              static_cast<int>(value.size()), value.data());
  std::fflush(stdout);
}

namespace {

util::Json params_json(const Params& params) {
  util::Json out = util::Json::object();
  for (const auto& [key, value] : params.all()) out.set(key, value);
  return out;
}

}  // namespace

util::Json to_json(const RunResult& result) {
  return util::Json::object()
      .set("rounds", result.rounds)
      .set("service_cost", result.cost.service)
      .set("reorg_cost", result.cost.reorg)
      .set("total_cost", result.cost.total())
      .set("paid_requests", result.paid_requests)
      .set("paid_positive", result.paid_positive)
      .set("paid_negative", result.paid_negative)
      .set("fetched_nodes", result.fetched_nodes)
      .set("evicted_nodes", result.evicted_nodes)
      .set("phase_restarts", result.phase_restarts)
      .set("restart_evictions", result.restart_evictions)
      .set("max_cache_size", std::uint64_t{result.max_cache_size})
      .set("final_cache_size", std::uint64_t{result.final_cache_size})
      .set("wall_seconds", result.wall_seconds)
      .set("requests_per_second", result.requests_per_second());
}

util::Json to_json(const Scenario& scenario) {
  util::Json out = util::Json::object();
  out.set("algorithm", scenario.algorithm);
  // Empty means "not driven by a registered workload" (e.g. a CLI run
  // replaying a trace file, which records a "trace" member instead).
  if (!scenario.workload.empty()) out.set("workload", scenario.workload);
  out.set("seed", scenario.seed);
  out.set("params", params_json(scenario.params));
  return out;
}

util::Json scenario_json(const ScenarioResult& result) {
  return util::Json::object()
      .set("schema", "treecache.run/2")
      .set("scenario", to_json(result.scenario))
      .set("result", to_json(result.run));
}

util::Json grid_json(const std::vector<ScenarioResult>& cells) {
  util::Json rows = util::Json::array();
  for (const ScenarioResult& cell : cells) {
    rows.push(util::Json::object()
                  .set("scenario", to_json(cell.scenario))
                  .set("result", to_json(cell.run)));
  }
  return util::Json::object()
      .set("schema", "treecache.grid/1")
      .set("cells", std::move(rows));
}

util::Json to_json(const FibScenarioResult& result) {
  const fib::RouterSimResult& r = result.router;
  return util::Json::object()
      .set("algorithm", result.scenario.algorithm)
      .set("seed", result.scenario.seed)
      .set("params", params_json(result.scenario.params))
      // Geometry of the closed-loop run (fib/2): planned shard count, the
      // workers actually used, and the batching knobs. Results are
      // invariant to threads/batch/feedback; shards > 1 reports the
      // line-card model's aggregate.
      .set("engine",
           util::Json::object()
               .set("shards_requested",
                    std::uint64_t{result.scenario.engine.shards})
               .set("shards", std::uint64_t{result.shards})
               .set("threads", std::uint64_t{result.threads})
               .set("batch", std::uint64_t{result.scenario.engine.batch})
               .set("feedback",
                    std::uint64_t{result.scenario.engine.feedback}))
      .set("result", util::Json::object()
                         .set("packets", r.packets)
                         .set("hits", r.hits)
                         .set("misses", r.misses)
                         .set("hit_rate", r.hit_rate())
                         .set("updates", r.updates)
                         .set("cached_updates", r.cached_updates)
                         .set("forwarding_errors", r.forwarding_errors)
                         .set("service_cost", r.algorithm_cost.service)
                         .set("reorg_cost", r.algorithm_cost.reorg)
                         .set("total_cost", r.algorithm_cost.total()));
}

util::Json fib_sweep_json(const std::vector<FibScenarioResult>& cells) {
  util::Json rows = util::Json::array();
  for (const FibScenarioResult& cell : cells) rows.push(to_json(cell));
  return util::Json::object()
      .set("schema", "treecache.fib/2")
      .set("cells", std::move(rows));
}

util::Json throughput_json(const Scenario& scenario,
                           const engine::EngineConfig& config,
                           const engine::ShardPlan& plan,
                           const engine::EngineResult& result,
                           std::string_view trace_path) {
  util::Json scenario_doc = to_json(scenario);
  if (!trace_path.empty()) scenario_doc.set("trace", std::string(trace_path));
  util::Json per_shard = util::Json::array();
  for (std::size_t s = 0; s < result.per_shard.size(); ++s) {
    util::Json entry = util::Json::object()
                           .set("shard", std::uint64_t{s})
                           .set("nodes", std::uint64_t{plan.shard(s).nodes()})
                           .set("subtree_roots",
                                std::uint64_t{plan.shard(s).roots.size()});
    entry.set("result", to_json(result.per_shard[s]));
    per_shard.push(std::move(entry));
  }
  util::Json affinity = util::Json::array();
  for (const int cpu : result.worker_cpus) affinity.push(cpu);
  return util::Json::object()
      .set("schema", "treecache.throughput/1")
      .set("scenario", std::move(scenario_doc))
      .set("engine",
           util::Json::object()
               .set("shards_requested", std::uint64_t{config.shards})
               .set("shards", std::uint64_t{result.shards})
               .set("threads", std::uint64_t{result.threads})
               .set("batch", std::uint64_t{config.batch})
               .set("pin", result.pinned)
               .set("affinity", std::move(affinity))
               .set("kernels", std::string(kernels::active().name)))
      .set("result", to_json(result.total))
      .set("per_shard", std::move(per_shard));
}

std::string write_bench_json(std::string_view id, std::string_view title,
                             util::Json rows) {
  const char* dir = std::getenv("TREECACHE_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return "";
  TC_CHECK(rows.is_array(), "bench rows must be a JSON array");
  const util::Json doc = util::Json::object()
                             .set("schema", "treecache.bench/1")
                             .set("experiment", std::string(id))
                             .set("title", std::string(title))
                             .set("rows", std::move(rows));
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / ("BENCH_" + std::string(id) + ".json"))
          .string();
  util::save_json(path, doc);
  return path;
}

}  // namespace treecache::sim
