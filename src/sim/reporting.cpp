#include "sim/reporting.hpp"

#include <cstdio>
#include <string>

namespace treecache::sim {

void print_experiment_banner(std::string_view id, std::string_view title,
                             std::string_view paper_claim) {
  std::string line = "== ";
  line.append(id);
  line.append(": ");
  line.append(title);
  line.append(" ==");
  std::printf("\n%s\n", line.c_str());
  if (!paper_claim.empty()) {
    std::printf("claim: %.*s\n", static_cast<int>(paper_claim.size()),
                paper_claim.data());
  }
  std::fflush(stdout);
}

void print_note(std::string_view label, std::string_view value) {
  std::printf("  %.*s: %.*s\n", static_cast<int>(label.size()), label.data(),
              static_cast<int>(value.size()), value.data());
  std::fflush(stdout);
}

}  // namespace treecache::sim
