// Summary statistics for repeated measurements.
#pragma once

#include <cstdint>
#include <vector>

namespace treecache::sim {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

/// Nearest-rank quantile of an ascending-sorted, non-empty sample: the
/// element at rank ⌈q·n⌉, clamped to [1, n], so q <= 0 yields the minimum
/// and q >= 1 the maximum. For an even-sized sample the median (q = 0.5)
/// is therefore the lower middle element. Summary's median and p95 both
/// use this one convention.
[[nodiscard]] double quantile(const std::vector<double>& sorted, double q);

/// Computes the summary of a sample (empty input gives an all-zero summary).
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Ordinary least squares y ≈ slope·x + intercept; also reports R².
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace treecache::sim
