// Summary statistics for repeated measurements.
#pragma once

#include <cstdint>
#include <vector>

namespace treecache::sim {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

/// Computes the summary of a sample (empty input gives an all-zero summary).
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Ordinary least squares y ≈ slope·x + intercept; also reports R².
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace treecache::sim
