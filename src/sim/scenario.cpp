#include "sim/scenario.hpp"

#include "sim/sweep.hpp"
#include "util/rng.hpp"

namespace treecache::sim {

ScenarioResult run_scenario(const Tree& tree, const Scenario& scenario,
                            bool validate_every_step) {
  // Workloads stream: the scenario never materializes its trace, so the
  // run's memory is O(tree) regardless of params["length"].
  const auto source =
      make_source(scenario.workload, tree, scenario.params, scenario.seed);
  const auto alg = make_algorithm(scenario.algorithm, tree, scenario.params);
  ScenarioResult out{.scenario = scenario, .run = {}};
  out.run = run_source(*alg, *source, {}, validate_every_step);
  return out;
}

std::vector<ScenarioResult> run_grid(
    const Tree& tree, const std::vector<std::string>& algorithms,
    const std::vector<std::string>& workloads, const Params& base,
    std::uint64_t seed) {
  // Resolve every name up front so a typo fails before any cell runs.
  for (const auto& name : algorithms) {
    (void)AlgorithmRegistry::instance().at(name);
  }
  for (const auto& name : workloads) {
    (void)WorkloadRegistry::instance().at(name);
  }
  // One seed per workload *column*, so every algorithm in a column sees the
  // identical trace and the table compares algorithms, not trace draws.
  std::vector<std::uint64_t> column_seeds(workloads.size());
  Rng seeder(seed);
  for (auto& s : column_seeds) s = seeder();

  const std::size_t cells = algorithms.size() * workloads.size();
  return parallel_sweep<ScenarioResult>(
      cells, seed, [&](std::size_t i, Rng&) {
        Scenario cell{.algorithm = algorithms[i / workloads.size()],
                      .workload = workloads[i % workloads.size()],
                      .params = base,
                      .seed = column_seeds[i % workloads.size()]};
        return run_scenario(tree, cell);
      });
}

}  // namespace treecache::sim
