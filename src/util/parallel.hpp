// OpenMP-backed data-parallel helpers with a transparent serial fallback.
//
// Parameter sweeps in the bench harness run thousands of independent
// simulations; parallel_for distributes them across cores. Tasks must be
// independent — each receives its own index and should derive per-task RNG
// streams (Rng::split) rather than sharing one generator.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>

#ifdef TREECACHE_HAVE_OPENMP
#include <omp.h>
#endif

namespace treecache {

/// Number of hardware worker threads the parallel helpers will use.
inline int parallel_workers() {
#ifdef TREECACHE_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Runs body(i) for i in [0, n), in parallel when OpenMP is available.
/// The first exception thrown by any task is rethrown on the caller thread
/// after all tasks complete.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  std::exception_ptr error;
  std::mutex error_mutex;
#ifdef TREECACHE_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    try {
      body(i);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
#endif
  if (error) std::rethrow_exception(error);
}

}  // namespace treecache
