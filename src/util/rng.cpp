#include "util/rng.hpp"

namespace treecache {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // xoshiro requires a nonzero state; splitmix64 makes all-zero output
  // astronomically unlikely, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  TC_CHECK(bound > 0, "below(0) is undefined");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TC_CHECK(lo <= hi, "uniform_int: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

Rng Rng::split() {
  const std::uint64_t child_seed = (*this)() ^ 0xd1b54a32d192ed03ULL;
  return Rng(child_seed);
}

}  // namespace treecache
