#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace treecache {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TC_CHECK(!header_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  TC_CHECK(cells.size() == header_.size(),
           "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string ConsoleTable::fmt(std::uint64_t value) {
  return std::to_string(value);
}

std::string ConsoleTable::fmt(std::int64_t value) {
  return std::to_string(value);
}

std::string ConsoleTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void ConsoleTable::print() const {
  const std::string rendered = to_string();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace treecache
