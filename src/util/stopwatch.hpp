// Monotonic wall-clock stopwatch for coarse timing in benches and reports.
#pragma once

#include <chrono>

namespace treecache {

/// Measures elapsed wall time from construction or the last restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start as a double.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed nanoseconds since start.
  [[nodiscard]] std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treecache
