// Deterministic, fast random number generation for workloads and tests.
//
// All randomness in the library flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is SplitMix64-seeded
// xoshiro256**, which is far faster than std::mt19937_64 and has no warm-up
// pathologies for nearby seeds.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace treecache {

/// xoshiro256** PRNG with SplitMix64 seeding. Satisfies
/// std::uniform_random_bit_generator, so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single seed value.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child generator; used to give each parallel task
  /// its own stream without correlation.
  Rng split();

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    TC_CHECK(!items.empty(), "pick() from empty vector");
    return items[below(items.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace treecache
