// Lightweight contract checking used across the library.
//
// TC_CHECK(cond, msg)  — always-on precondition/invariant check; throws
//                        treecache::CheckFailure on violation so tests can
//                        assert on misuse without aborting the process.
// TC_DCHECK(cond, msg) — debug-only (NDEBUG disables) internal invariant
//                        check for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace treecache {

/// Exception thrown when a TC_CHECK contract is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace treecache

#define TC_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::treecache::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define TC_DCHECK(cond, msg) \
  do {                       \
  } while (false)
#else
#define TC_DCHECK(cond, msg) TC_CHECK(cond, msg)
#endif
