// Console table rendering for bench output.
//
// Benches print the rows a paper table/figure would contain; ConsoleTable
// right-aligns numeric columns and keeps the output grep-friendly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace treecache {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  /// Appends one row; the number of cells must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(std::int64_t value);

  /// Renders the table (header, separator, rows) as a single string.
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace treecache
