// Minimal CSV writer so bench output can be post-processed (plotting etc.).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace treecache {

/// Writes rows to a CSV file; cells containing separators/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row immediately.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace treecache
