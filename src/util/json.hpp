// Minimal JSON document builder for machine-readable results.
//
// The harness emits structured output (`treecache ... --json`, the
// BENCH_*.json artifacts) without an external dependency: Json covers
// exactly what those emitters need — objects with insertion order
// preserved, arrays, strings, 64-bit integers, doubles, bools and null —
// plus correct string escaping and round-trip double formatting. It is a
// writer only; the repository never parses JSON.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace treecache::util {

/// One JSON value. Build scalars through the implicit constructors and
/// containers through object()/array() + set()/push(); serialize with
/// dump(). Copying is deep (values are plain trees).
class Json {
 public:
  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}

  template <typename T>
    requires(std::signed_integral<T> && !std::same_as<T, bool>)
  Json(T value) : kind_(Kind::kInt), int_(value) {}

  template <typename T>
    requires(std::unsigned_integral<T> && !std::same_as<T, bool>)
  Json(T value) : kind_(Kind::kUInt), uint_(value) {}

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  /// Sets (or overwrites) a member of an object, preserving the insertion
  /// order of first appearance. Throws CheckFailure on non-objects.
  Json& set(std::string key, Json value);

  /// Appends an element to an array. Throws CheckFailure on non-arrays.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Number of members (object) or elements (array); 0 for scalars.
  [[nodiscard]] std::size_t size() const;

  /// Serializes the value. indent = 0 renders one compact line; indent > 0
  /// pretty-prints with that many spaces per nesting level. Non-finite
  /// doubles (which JSON cannot represent) render as null.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kUInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;                         // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters), returning the quoted token.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Shortest round-trip decimal representation of a finite double (the
/// format JSON numbers use). Throws CheckFailure on inf/nan.
[[nodiscard]] std::string format_double(double value);

/// Writes `value.dump(indent)` plus a trailing newline to `path` ("-" means
/// stdout). Throws CheckFailure if the file cannot be written.
void save_json(const std::string& path, const Json& value, int indent = 2);

}  // namespace treecache::util
