#include "util/csv.hpp"

#include "util/check.hpp"

namespace treecache {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  TC_CHECK(width_ > 0, "CSV needs at least one column");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  TC_CHECK(cells.size() == width_, "CSV row width mismatch");
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace treecache
