#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/check.hpp"

namespace treecache::util {

std::string format_double(double value) {
  TC_CHECK(std::isfinite(value), "cannot format inf/nan");
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  TC_CHECK(ec == std::errc{}, "double does not fit the buffer");
  return std::string(buffer, end);
}

namespace {

void append_double(std::string& out, double value) {
  // JSON has no inf/nan; non-finite values degrade to null.
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  out += format_double(value);
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
  return out;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(std::string key, Json value) {
  TC_CHECK(kind_ == Kind::kObject, "set() requires a Json::object()");
  for (auto& [existing, held] : members_) {
    if (existing == key) {
      held = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  TC_CHECK(kind_ == Kind::kArray, "push() requires a Json::array()");
  elements_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return elements_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUInt: out += std::to_string(uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: out += json_escape(string_); break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        elements_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        out += json_escape(members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

void save_json(const std::string& path, const Json& value, int indent) {
  const std::string text = value.dump(indent) + "\n";
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  TC_CHECK(static_cast<bool>(out), "cannot open " + path);
  out << text;
  TC_CHECK(static_cast<bool>(out), "write to " + path + " failed");
}

}  // namespace treecache::util
