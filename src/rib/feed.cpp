#include "rib/feed.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <filesystem>
#include <system_error>
#include <thread>

#include "fib/rib_gen.hpp"
#include "rib/mrt.hpp"

namespace treecache::rib {

namespace {

/// A fresh more-specific prefix: extends a random live prefix by 1..8
/// bits (falling back to a random max-length prefix when nothing
/// extensible comes up).
template <typename PrefixT>
PrefixT extend(const std::vector<PrefixT>& live, std::uint8_t max_length,
               Rng& rng) {
  using Bits = typename PrefixT::Bits;
  using Family = fib::AddressFamily<Bits>;
  if (!live.empty()) {
    for (int tries = 0; tries < 16; ++tries) {
      const PrefixT base = live[rng.below(live.size())];
      const auto extra = static_cast<std::uint8_t>(1 + rng.below(8));
      const std::uint8_t length = std::min<std::uint8_t>(
          max_length, static_cast<std::uint8_t>(base.length + extra));
      if (length <= base.length) continue;
      const Bits span = fib::prefix_mask<Bits>(length) &
                        ~fib::prefix_mask<Bits>(base.length);
      return PrefixT::make(base.bits | (Family::random(rng) & span), length);
    }
  }
  return PrefixT::make(Family::random(rng), max_length);
}

[[noreturn]] void fail_line(std::size_t line_number, const std::string& what,
                            const std::string& line) {
  throw CheckFailure("feed line " + std::to_string(line_number) + ": " + what +
                     " (got \"" + line + "\")");
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t bar = line.find('|', start);
    if (bar == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, bar - start));
    start = bar + 1;
  }
}

std::uint64_t parse_decimal(const std::string& field, const char* what,
                            std::size_t line_number, const std::string& line) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || end != field.data() + field.size() ||
      field.empty()) {
    fail_line(line_number, std::string("malformed ") + what, line);
  }
  return value;
}

/// Next hops are 32-bit; a wider decimal is a malformed feed, not a
/// silent truncation.
NextHop parse_next_hop(const std::string& field, std::size_t line_number,
                       const std::string& line) {
  const std::uint64_t value =
      parse_decimal(field, "next-hop id", line_number, line);
  if (value > 0xFFFFFFFFull) {
    fail_line(line_number, "next-hop id " + field + " exceeds 32 bits", line);
  }
  return static_cast<NextHop>(value);
}

/// Parses the prefix field, auto-detecting the family, into `record`.
void parse_prefix_field(const std::string& field, FeedRecord& record,
                        std::size_t line_number, const std::string& line) {
  try {
    if (field.find(':') != std::string::npos) {
      record.v6 = true;
      record.prefix6 = fib::Prefix6::parse(field);
    } else {
      record.v6 = false;
      record.prefix4 = fib::Prefix::parse(field);
    }
  } catch (const CheckFailure& e) {
    fail_line(line_number, e.what(), line);
  }
}

}  // namespace

FeedRecord parse_feed_line(const std::string& line, std::size_t line_number) {
  const std::vector<std::string> fields = split_fields(line);
  FeedRecord record;
  if (fields[0] == "TABLE_DUMP") {
    if (fields.size() != 3) {
      fail_line(line_number, "TABLE_DUMP takes exactly 2 fields", line);
    }
    record.op = FeedOp::kDump;
    parse_prefix_field(fields[1], record, line_number, line);
    record.next_hop = parse_next_hop(fields[2], line_number, line);
    return record;
  }
  if (fields.size() < 2) {
    fail_line(line_number, "expected TABLE_DUMP or a timestamped update",
              line);
  }
  record.timestamp = parse_decimal(fields[0], "timestamp", line_number, line);
  if (fields[1] == "announce") {
    if (fields.size() != 4) {
      fail_line(line_number, "announce takes exactly 3 fields", line);
    }
    record.op = FeedOp::kAnnounce;
    parse_prefix_field(fields[2], record, line_number, line);
    record.next_hop = parse_next_hop(fields[3], line_number, line);
    return record;
  }
  if (fields[1] == "withdraw") {
    if (fields.size() != 3) {
      fail_line(line_number, "withdraw takes exactly 2 fields", line);
    }
    record.op = FeedOp::kWithdraw;
    parse_prefix_field(fields[2], record, line_number, line);
    return record;
  }
  fail_line(line_number, "unknown update op \"" + fields[1] + "\"", line);
}

std::string format_feed_record(const FeedRecord& record) {
  const std::string prefix =
      record.v6 ? record.prefix6.to_string() : record.prefix4.to_string();
  switch (record.op) {
    case FeedOp::kDump:
      return "TABLE_DUMP|" + prefix + "|" + std::to_string(record.next_hop);
    case FeedOp::kAnnounce:
      return std::to_string(record.timestamp) + "|announce|" + prefix + "|" +
             std::to_string(record.next_hop);
    case FeedOp::kWithdraw:
      return std::to_string(record.timestamp) + "|withdraw|" + prefix;
  }
  TC_CHECK(false, "unreachable feed op");
}

FeedReader::FeedReader(std::vector<std::string> paths)
    : paths_(std::move(paths)) {
  TC_CHECK(!paths_.empty(), "FeedReader needs at least one path");
}

FeedReader::~FeedReader() = default;

bool FeedReader::open_next_file() {
  while (file_ < paths_.size()) {
    in_.close();
    in_.clear();
    in_.open(paths_[file_], std::ios::binary);
    TC_CHECK(in_.is_open(), "cannot open feed file " + paths_[file_]);
    in_open_ = true;
    line_number_ = 0;
    carry_.clear();
    file_bytes_seen_ = 0;
    last_growth_ = std::chrono::steady_clock::now();
    ++file_;
    detect_format();
    return true;
  }
  in_open_ = false;
  return false;
}

void FeedReader::detect_format() {
  std::array<char, kMrtHeaderBytes> head{};
  in_.read(head.data(), static_cast<std::streamsize>(head.size()));
  const auto got = static_cast<std::size_t>(in_.gcount());
  in_.clear();
  in_.seekg(0);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(head.data()), got);
  format_ = looks_like_mrt(bytes) ? Format::kMrt : Format::kText;
  mrt_ = format_ == Format::kMrt ? std::make_unique<MrtDecoder>() : nullptr;
}

bool FeedReader::following_here() const {
  return follow_.has_value() && !follow_done_ && file_ == paths_.size();
}

bool FeedReader::wait_for_growth() {
  const auto idle = follow_->idle;
  while (true) {
    if (idle.count() > 0 &&
        std::chrono::steady_clock::now() - last_growth_ >= idle) {
      follow_done_ = true;
      return false;
    }
    std::this_thread::sleep_for(follow_->poll);
    std::error_code ec;
    const std::uintmax_t size =
        std::filesystem::file_size(paths_[file_ - 1], ec);
    if (!ec && size > file_bytes_seen_) return true;
  }
}

void FeedReader::note_progress(std::uint64_t n) {
  if (n == 0) return;
  bytes_ += n;
  file_bytes_seen_ += n;
  last_growth_ = std::chrono::steady_clock::now();
}

std::optional<FeedRecord> FeedReader::next() {
  while (true) {
    if (!in_open_ && !open_next_file()) return std::nullopt;
    std::optional<FeedRecord> record =
        format_ == Format::kMrt ? next_mrt() : next_text();
    if (record.has_value()) {
      ++records_;
      return record;
    }
    // Current file exhausted; next_* already handled follow waiting and
    // truncation, so just advance.
  }
}

std::optional<FeedRecord> FeedReader::next_text() {
  while (true) {
    std::string line;
    if (!std::getline(in_, line)) {
      // No characters at all: clean end of this file (or of the growth
      // the follower was waiting on).
      if (following_here() && wait_for_growth()) {
        in_.clear();
        continue;
      }
      if (carry_.empty()) {
        in_open_ = false;
        return std::nullopt;
      }
      // The writer stopped mid-line; parse the stash as the final line.
      line = std::move(carry_);
      carry_.clear();
    } else {
      note_progress(line.size() + (in_.eof() ? 0 : 1));
      if (!carry_.empty()) {
        line.insert(0, carry_);
        carry_.clear();
      }
      if (in_.eof() && following_here()) {
        // Partial tail line (no newline yet): stash it and wait for the
        // rest; parse it as-is once the writer goes idle.
        carry_ = std::move(line);
        if (wait_for_growth()) {
          in_.clear();
          continue;
        }
        line = std::move(carry_);
        carry_.clear();
      }
      // Not following: a truncated final line still parses below.
    }
    ++line_number_;
    if (line_number_ == 1 && line.size() >= 3 &&
        line.compare(0, 3, "\xEF\xBB\xBF") == 0) {
      line.erase(0, 3);  // UTF-8 BOM
    }
    // Tolerate CRLF feeds.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = 0;
    while (first < line.size() &&
           (line[first] == ' ' || line[first] == '\t')) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;
    try {
      return parse_feed_line(line, line_number_);
    } catch (const CheckFailure& e) {
      throw CheckFailure(paths_[file_ - 1] + ": " + e.what());
    }
  }
}

std::optional<FeedRecord> FeedReader::next_mrt() {
  while (true) {
    const std::uint64_t before = mrt_->bytes_seen();
    std::optional<FeedRecord> record;
    try {
      record = mrt_->next(in_);
    } catch (const CheckFailure& e) {
      note_progress(mrt_->bytes_seen() - before);
      throw CheckFailure(paths_[file_ - 1] + ": " + e.what());
    }
    note_progress(mrt_->bytes_seen() - before);
    if (record.has_value()) return record;
    if (following_here() && wait_for_growth()) {
      in_.clear();
      continue;
    }
    if (mrt_->mid_record()) {
      throw CheckFailure(paths_[file_ - 1] +
                         ": truncated MRT record at offset " +
                         std::to_string(mrt_->record_offset()));
    }
    in_open_ = false;
    return std::nullopt;
  }
}

std::vector<FeedRecord> generate_feed(const SyntheticFeedConfig& config,
                                      Rng& rng) {
  TC_CHECK(config.family == 4 || config.family == 6 || config.family == 46,
           "family must be 4, 6, or 46");
  std::vector<FeedRecord> out;

  // Live tables per family, for update targeting. Parallel next-hop
  // bookkeeping keeps re-announces honest (a fresh hop every time).
  std::vector<fib::Prefix> live4;
  std::vector<fib::Prefix6> live6;
  const auto next_hop = [&rng] {
    return static_cast<NextHop>(1 + rng.below(65535));
  };

  fib::RibConfig rib_config;
  rib_config.rules = config.routes;
  rib_config.deaggregation = config.deaggregation;
  if (config.family != 6) {
    rib_config.max_length = config.max_length4;
    live4 = fib::generate_rib(rib_config, rng);
    for (const fib::Prefix& p : live4) {
      out.push_back(FeedRecord{
          .op = FeedOp::kDump, .v6 = false, .prefix4 = p,
          .next_hop = next_hop()});
    }
  }
  if (config.family != 4) {
    rib_config.max_length = config.max_length6;
    live6 = fib::generate_rib6(rib_config, rng);
    for (const fib::Prefix6& p : live6) {
      out.push_back(FeedRecord{
          .op = FeedOp::kDump, .v6 = true, .prefix6 = p,
          .next_hop = next_hop()});
    }
  }

  // Update stream: each event picks a family (when both are present),
  // then withdraws a live route or announces (re-route or a fresh
  // more-specific extension of a live route, 1..8 extra bits).
  for (std::size_t i = 0; i < config.updates; ++i) {
    const std::uint64_t timestamp = config.base_timestamp + i;
    const bool use6 =
        config.family == 6 || (config.family == 46 && rng.chance(0.5));
    FeedRecord record;
    record.timestamp = timestamp;
    record.v6 = use6;
    const std::size_t live_count = use6 ? live6.size() : live4.size();
    if (live_count > 1 && rng.chance(config.withdraw_probability)) {
      record.op = FeedOp::kWithdraw;
      const std::size_t victim = rng.below(live_count);
      if (use6) {
        record.prefix6 = live6[victim];
        live6.erase(live6.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        record.prefix4 = live4[victim];
        live4.erase(live4.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    } else {
      record.op = FeedOp::kAnnounce;
      record.next_hop = next_hop();
      const bool fresh =
          live_count == 0 || rng.chance(config.fresh_announce_probability);
      if (use6) {
        record.prefix6 = fresh ? extend(live6, config.max_length6, rng)
                               : live6[rng.below(live6.size())];
        if (fresh) live6.push_back(record.prefix6);
      } else {
        record.prefix4 = fresh ? extend(live4, config.max_length4, rng)
                               : live4[rng.below(live4.size())];
        if (fresh) live4.push_back(record.prefix4);
      }
    }
    out.push_back(record);
  }
  return out;
}

}  // namespace treecache::rib
