#include "rib/feed.hpp"

#include <algorithm>
#include <charconv>
#include <system_error>

#include "fib/rib_gen.hpp"

namespace treecache::rib {

namespace {

/// A fresh more-specific prefix: extends a random live prefix by 1..8
/// bits (falling back to a random max-length prefix when nothing
/// extensible comes up).
template <typename PrefixT>
PrefixT extend(const std::vector<PrefixT>& live, std::uint8_t max_length,
               Rng& rng) {
  using Bits = typename PrefixT::Bits;
  using Family = fib::AddressFamily<Bits>;
  if (!live.empty()) {
    for (int tries = 0; tries < 16; ++tries) {
      const PrefixT base = live[rng.below(live.size())];
      const auto extra = static_cast<std::uint8_t>(1 + rng.below(8));
      const std::uint8_t length = std::min<std::uint8_t>(
          max_length, static_cast<std::uint8_t>(base.length + extra));
      if (length <= base.length) continue;
      const Bits span = fib::prefix_mask<Bits>(length) &
                        ~fib::prefix_mask<Bits>(base.length);
      return PrefixT::make(base.bits | (Family::random(rng) & span), length);
    }
  }
  return PrefixT::make(Family::random(rng), max_length);
}

[[noreturn]] void fail_line(std::size_t line_number, const std::string& what,
                            const std::string& line) {
  throw CheckFailure("feed line " + std::to_string(line_number) + ": " + what +
                     " (got \"" + line + "\")");
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t bar = line.find('|', start);
    if (bar == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, bar - start));
    start = bar + 1;
  }
}

std::uint64_t parse_decimal(const std::string& field, const char* what,
                            std::size_t line_number, const std::string& line) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || end != field.data() + field.size() ||
      field.empty()) {
    fail_line(line_number, std::string("malformed ") + what, line);
  }
  return value;
}

/// Parses the prefix field, auto-detecting the family, into `record`.
void parse_prefix_field(const std::string& field, FeedRecord& record,
                        std::size_t line_number, const std::string& line) {
  try {
    if (field.find(':') != std::string::npos) {
      record.v6 = true;
      record.prefix6 = fib::Prefix6::parse(field);
    } else {
      record.v6 = false;
      record.prefix4 = fib::Prefix::parse(field);
    }
  } catch (const CheckFailure& e) {
    fail_line(line_number, e.what(), line);
  }
}

}  // namespace

FeedRecord parse_feed_line(const std::string& line, std::size_t line_number) {
  const std::vector<std::string> fields = split_fields(line);
  FeedRecord record;
  if (fields[0] == "TABLE_DUMP") {
    if (fields.size() != 3) {
      fail_line(line_number, "TABLE_DUMP takes exactly 2 fields", line);
    }
    record.op = FeedOp::kDump;
    parse_prefix_field(fields[1], record, line_number, line);
    record.next_hop = static_cast<NextHop>(
        parse_decimal(fields[2], "next-hop id", line_number, line));
    return record;
  }
  if (fields.size() < 2) {
    fail_line(line_number, "expected TABLE_DUMP or a timestamped update",
              line);
  }
  record.timestamp = parse_decimal(fields[0], "timestamp", line_number, line);
  if (fields[1] == "announce") {
    if (fields.size() != 4) {
      fail_line(line_number, "announce takes exactly 3 fields", line);
    }
    record.op = FeedOp::kAnnounce;
    parse_prefix_field(fields[2], record, line_number, line);
    record.next_hop = static_cast<NextHop>(
        parse_decimal(fields[3], "next-hop id", line_number, line));
    return record;
  }
  if (fields[1] == "withdraw") {
    if (fields.size() != 3) {
      fail_line(line_number, "withdraw takes exactly 2 fields", line);
    }
    record.op = FeedOp::kWithdraw;
    parse_prefix_field(fields[2], record, line_number, line);
    return record;
  }
  fail_line(line_number, "unknown update op \"" + fields[1] + "\"", line);
}

std::string format_feed_record(const FeedRecord& record) {
  const std::string prefix =
      record.v6 ? record.prefix6.to_string() : record.prefix4.to_string();
  switch (record.op) {
    case FeedOp::kDump:
      return "TABLE_DUMP|" + prefix + "|" + std::to_string(record.next_hop);
    case FeedOp::kAnnounce:
      return std::to_string(record.timestamp) + "|announce|" + prefix + "|" +
             std::to_string(record.next_hop);
    case FeedOp::kWithdraw:
      return std::to_string(record.timestamp) + "|withdraw|" + prefix;
  }
  TC_CHECK(false, "unreachable feed op");
}

FeedReader::FeedReader(std::vector<std::string> paths)
    : paths_(std::move(paths)) {
  TC_CHECK(!paths_.empty(), "FeedReader needs at least one path");
}

bool FeedReader::open_next_file() {
  while (file_ < paths_.size()) {
    in_.close();
    in_.clear();
    in_.open(paths_[file_]);
    TC_CHECK(in_.is_open(), "cannot open feed file " + paths_[file_]);
    in_open_ = true;
    line_number_ = 0;
    ++file_;
    return true;
  }
  in_open_ = false;
  return false;
}

std::optional<FeedRecord> FeedReader::next() {
  while (true) {
    if (!in_open_ && !open_next_file()) return std::nullopt;
    std::string line;
    if (!std::getline(in_, line)) {
      in_open_ = false;
      continue;  // next file, if any
    }
    ++line_number_;
    // Tolerate CRLF feeds.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = 0;
    while (first < line.size() &&
           (line[first] == ' ' || line[first] == '\t')) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;
    try {
      ++records_;
      return parse_feed_line(line, line_number_);
    } catch (const CheckFailure& e) {
      throw CheckFailure(paths_[file_ - 1] + ": " + e.what());
    }
  }
}

std::vector<FeedRecord> generate_feed(const SyntheticFeedConfig& config,
                                      Rng& rng) {
  TC_CHECK(config.family == 4 || config.family == 6 || config.family == 46,
           "family must be 4, 6, or 46");
  std::vector<FeedRecord> out;

  // Live tables per family, for update targeting. Parallel next-hop
  // bookkeeping keeps re-announces honest (a fresh hop every time).
  std::vector<fib::Prefix> live4;
  std::vector<fib::Prefix6> live6;
  const auto next_hop = [&rng] {
    return static_cast<NextHop>(1 + rng.below(65535));
  };

  fib::RibConfig rib_config;
  rib_config.rules = config.routes;
  rib_config.deaggregation = config.deaggregation;
  if (config.family != 6) {
    rib_config.max_length = config.max_length4;
    live4 = fib::generate_rib(rib_config, rng);
    for (const fib::Prefix& p : live4) {
      out.push_back(FeedRecord{
          .op = FeedOp::kDump, .v6 = false, .prefix4 = p,
          .next_hop = next_hop()});
    }
  }
  if (config.family != 4) {
    rib_config.max_length = config.max_length6;
    live6 = fib::generate_rib6(rib_config, rng);
    for (const fib::Prefix6& p : live6) {
      out.push_back(FeedRecord{
          .op = FeedOp::kDump, .v6 = true, .prefix6 = p,
          .next_hop = next_hop()});
    }
  }

  // Update stream: each event picks a family (when both are present),
  // then withdraws a live route or announces (re-route or a fresh
  // more-specific extension of a live route, 1..8 extra bits).
  for (std::size_t i = 0; i < config.updates; ++i) {
    const std::uint64_t timestamp = config.base_timestamp + i;
    const bool use6 =
        config.family == 6 || (config.family == 46 && rng.chance(0.5));
    FeedRecord record;
    record.timestamp = timestamp;
    record.v6 = use6;
    const std::size_t live_count = use6 ? live6.size() : live4.size();
    if (live_count > 1 && rng.chance(config.withdraw_probability)) {
      record.op = FeedOp::kWithdraw;
      const std::size_t victim = rng.below(live_count);
      if (use6) {
        record.prefix6 = live6[victim];
        live6.erase(live6.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        record.prefix4 = live4[victim];
        live4.erase(live4.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    } else {
      record.op = FeedOp::kAnnounce;
      record.next_hop = next_hop();
      const bool fresh =
          live_count == 0 || rng.chance(config.fresh_announce_probability);
      if (use6) {
        record.prefix6 = fresh ? extend(live6, config.max_length6, rng)
                               : live6[rng.below(live6.size())];
        if (fresh) live6.push_back(record.prefix6);
      } else {
        record.prefix4 = fresh ? extend(live4, config.max_length4, rng)
                               : live4[rng.below(live4.size())];
        if (fresh) live4.push_back(record.prefix4);
      }
    }
    out.push_back(record);
  }
  return out;
}

}  // namespace treecache::rib
