// Radix-trie RIB: the full routing table the control plane maintains,
// from which the FIB (rule tree) is rebuilt. Modeled on classic
// rib_route_add / rib_route_delete / rebuild_fib_from_rib designs: a
// binary radix trie keyed by the prefix bits, one optional route per
// node. Generic over the key width — RibTable (IPv4) and RibTable6
// (IPv6) are the two instantiations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fib/ipv6.hpp"
#include "fib/rule_tree.hpp"

namespace treecache::rib {

/// Abstract next-hop identifier carried by a route. A deployed RIB stores
/// a peer address plus path attributes; the cache model only needs route
/// identity, so a small integer stands in.
using NextHop = std::uint32_t;

template <typename PrefixT>
class BasicRibTable {
 public:
  using Bits = typename PrefixT::Bits;

  BasicRibTable() { nodes_.push_back(Node{}); }

  /// Inserts or replaces the route for `prefix`. Returns true when the
  /// route is new, false when an existing route was replaced.
  bool route_add(const PrefixT& prefix, NextHop next_hop);

  /// Removes the route stored at exactly `prefix`. Returns false when no
  /// such route exists. Trie nodes are not reclaimed (tombstone-style,
  /// like production radix RIBs); rebuild_fib_from_rib compacts.
  bool route_delete(const PrefixT& prefix);

  /// Longest-prefix match over live routes.
  [[nodiscard]] std::optional<NextHop> lookup(const Bits& addr) const;

  /// The route stored at exactly `prefix`, if any.
  [[nodiscard]] std::optional<NextHop> exact(const PrefixT& prefix) const;

  /// Number of live routes.
  [[nodiscard]] std::size_t size() const { return routes_; }

  /// Trie nodes allocated, root and tombstones included — the
  /// denominator of the memory audit.
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Heap bytes held by the trie (capacity, not just size — what the
  /// process actually pays). Reported by the 1M-route stress rows.
  [[nodiscard]] std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(Node);
  }

  /// All live routes, sorted shortest-first then numerically — the
  /// deterministic input order for FIB rebuilds.
  [[nodiscard]] std::vector<PrefixT> prefixes() const;

 private:
  struct Node {
    std::uint32_t child[2] = {0, 0};  // 0 = absent (node 0 is the root)
    NextHop next_hop = 0;
    bool occupied = false;
  };

  /// Index of the node for `prefix`, or 0 with found=false when the path
  /// does not exist. (Root IS index 0; `found` disambiguates.)
  [[nodiscard]] std::pair<std::uint32_t, bool> find(
      const PrefixT& prefix) const;

  std::vector<Node> nodes_;
  std::size_t routes_ = 0;
};

using RibTable = BasicRibTable<fib::Prefix>;
using RibTable6 = BasicRibTable<fib::Prefix6>;

/// FIB rebuild: materializes the RIB's live routes into the rule
/// dependency tree the cache runs on (fib::build_rule_tree over
/// prefixes(), artificial default rule at node 0) — the same shape
/// rule_tree_from_params produces for synthetic tables.
template <typename PrefixT>
[[nodiscard]] fib::BasicRuleTree<PrefixT> rebuild_fib_from_rib(
    const BasicRibTable<PrefixT>& table);

}  // namespace treecache::rib
