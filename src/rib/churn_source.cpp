#include "rib/churn_source.hpp"

#include <numeric>

#include "fib/rule_tree.hpp"

namespace treecache::rib {

template <typename PrefixT>
BasicChurnReplay<PrefixT> make_churn_replay(
    const BasicIngest<PrefixT>& ingest) {
  fib::BasicRuleTree<PrefixT> fib_tree = fib::build_rule_tree(
      std::vector<PrefixT>(ingest.touched.begin(), ingest.touched.end()));
  std::vector<NodeId> churn_nodes;
  churn_nodes.reserve(ingest.churn.size());
  for (const PrefixT& p : ingest.churn) {
    const auto node = fib_tree.trie.exact(p);
    TC_CHECK(node.has_value() || p.length == 0,
             "churned prefix missing from the replay tree");
    churn_nodes.push_back(node.value_or(0));
  }
  return BasicChurnReplay<PrefixT>{std::move(fib_tree),
                                   std::move(churn_nodes)};
}

template ChurnReplay make_churn_replay<fib::Prefix>(
    const BasicIngest<fib::Prefix>&);
template ChurnReplay6 make_churn_replay<fib::Prefix6>(
    const BasicIngest<fib::Prefix6>&);

template <typename PrefixT>
BasicRibChurnSource<PrefixT>::BasicRibChurnSource(
    std::shared_ptr<const BasicChurnReplay<PrefixT>> replay,
    const ChurnReplayConfig& config, Rng rng)
    : replay_(std::move(replay)),
      config_(config),
      ranked_([&] {
        TC_CHECK(replay_ != nullptr, "replay must not be null");
        TC_CHECK(replay_->fib.tree.size() >= 2,
                 "feed produced a table with no routes");
        std::vector<NodeId> ids(replay_->fib.tree.size() - 1);
        std::iota(ids.begin(), ids.end(), NodeId{1});
        rng.shuffle(ids);
        return ids;
      }()),
      zipf_(ranked_.size(), config.zipf_skew),
      start_rng_(rng),
      rng_(rng) {
  TC_CHECK(config_.alpha >= 1, "alpha must be positive");
  const auto events = static_cast<std::uint64_t>(replay_->churn_nodes.size());
  total_ = events * (config_.lookups_per_event + config_.alpha) +
           config_.tail_lookups;
  reset();
}

template <typename PrefixT>
NodeId BasicRibChurnSource<PrefixT>::sample_lookup() {
  using Bits = typename PrefixT::Bits;
  using Family = fib::AddressFamily<Bits>;
  const NodeId rule = ranked_[zipf_.sample(rng_)];
  const PrefixT& p = replay_->fib.prefix[rule];
  const Bits span_mask = ~fib::prefix_mask<Bits>(p.length);
  // A handful of rejection rounds keeps most packets on the sampled rule;
  // residual hits land on a more specific child, which is fine.
  Bits addr = p.bits | (Family::random(rng_) & span_mask);
  for (int tries = 0; tries < 8 && replay_->fib.lpm(addr) != rule; ++tries) {
    addr = p.bits | (Family::random(rng_) & span_mask);
  }
  return replay_->fib.lpm(addr);
}

template <typename PrefixT>
std::size_t BasicRibChurnSource<PrefixT>::fill(std::span<Request> buffer) {
  std::size_t n = 0;
  while (n < buffer.size()) {
    if (lookups_pending_ > 0) {
      --lookups_pending_;
      buffer[n++] = positive(sample_lookup());
      continue;
    }
    if (negatives_pending_ > 0) {
      --negatives_pending_;
      buffer[n++] = negative(chunk_node_);
      continue;
    }
    if (event_ < replay_->churn_nodes.size()) {
      chunk_node_ = replay_->churn_nodes[event_++];
      lookups_pending_ = config_.lookups_per_event;
      negatives_pending_ = config_.alpha;
      continue;
    }
    if (tail_pending_ > 0) {
      --tail_pending_;
      buffer[n++] = positive(sample_lookup());
      continue;
    }
    break;
  }
  emitted_ += n;
  return n;
}

template <typename PrefixT>
void BasicRibChurnSource<PrefixT>::reset() {
  rng_ = start_rng_;
  emitted_ = 0;
  event_ = 0;
  lookups_pending_ = 0;
  negatives_pending_ = 0;
  tail_pending_ = config_.tail_lookups;
  chunk_node_ = 0;
}

template <typename PrefixT>
std::optional<std::uint64_t> BasicRibChurnSource<PrefixT>::size_hint() const {
  return total_ - emitted_;
}

template <typename PrefixT>
std::unique_ptr<RequestSource> BasicRibChurnSource<PrefixT>::fork() const {
  // Copy (rank permutation and shared replay included), then rewind to the
  // captured post-setup RNG state: the fork replays the identical stream.
  auto copy = std::make_unique<BasicRibChurnSource<PrefixT>>(*this);
  copy->reset();
  return copy;
}

template class BasicRibChurnSource<fib::Prefix>;
template class BasicRibChurnSource<fib::Prefix6>;

}  // namespace treecache::rib
