#include "rib/workloads.hpp"

#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

namespace treecache::rib {

bool is_real_fib_workload_name(std::string_view name) {
  return name == "fib-real";
}

std::vector<std::string> feed_paths_from_params(const sim::Params& params) {
  const std::string joined = params.get("rib-feed", "");
  TC_CHECK(!joined.empty(),
           "fib-real needs --rib-feed <dump.feed>[,<updates.feed>...]");
  std::vector<std::string> paths;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = joined.find(',', start);
    const std::string part = comma == std::string::npos
                                 ? joined.substr(start)
                                 : joined.substr(start, comma - start);
    if (!part.empty()) paths.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  TC_CHECK(!paths.empty(), "empty --rib-feed path list");
  return paths;
}

RealFibReplay build_real_fib(const sim::Params& params) {
  const auto family = params.get_u64("family", 4);
  TC_CHECK(family == 4 || family == 6, "family must be 4 or 6");
  const IngestResult ingest = ingest_feed(feed_paths_from_params(params));
  RealFibReplay replay;
  replay.family = static_cast<int>(family);
  if (family == 6) {
    TC_CHECK(!ingest.v6.empty(),
             "the feed carries no IPv6 records (family 6 requested)");
    replay.stats = ingest.v6.stats;
    replay.v6 = std::make_shared<const ChurnReplay6>(
        make_churn_replay(ingest.v6));
  } else {
    TC_CHECK(!ingest.v4.empty(),
             "the feed carries no IPv4 records (family 4 requested)");
    replay.stats = ingest.v4.stats;
    replay.v4 = std::make_shared<const ChurnReplay>(
        make_churn_replay(ingest.v4));
  }
  return replay;
}

namespace {

/// Per-path (size, mtime) stamp folded into the substrate cache key, so
/// a feed file rewritten between runs re-ingests instead of silently
/// replaying the stale cached tree. Unreadable paths stamp as 0/0 and
/// fail later in build_real_fib with the real open error.
std::string feed_stamp(const std::vector<std::string>& paths) {
  std::string stamp;
  for (const std::string& path : paths) {
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    std::uint64_t mtime = 0;
    const auto written = std::filesystem::last_write_time(path, ec);
    if (!ec) {
      mtime = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              written.time_since_epoch())
              .count());
    }
    stamp += path + "|" + std::to_string(size) + "|" +
             std::to_string(mtime) + ";";
  }
  return stamp;
}

}  // namespace

const RealFibReplay& shared_real_fib(const sim::Params& params) {
  // Key = everything build_real_fib reads — the path list and the
  // family — plus each file's size+mtime stamp (a rewritten feed is a
  // different substrate).
  using Key = std::tuple<std::string, std::string, std::uint64_t>;
  const Key key{params.get("rib-feed", ""),
                feed_stamp(feed_paths_from_params(params)),
                params.get_u64("family", 4)};

  static std::mutex mutex;
  static std::map<Key, std::unique_ptr<RealFibReplay>> cache;
  const std::scoped_lock lock(mutex);
  std::unique_ptr<RealFibReplay>& slot = cache[key];
  if (slot == nullptr) {
    slot = std::make_unique<RealFibReplay>(build_real_fib(params));
  }
  return *slot;
}

ChurnReplayConfig churn_config_from_params(const sim::Params& params,
                                           bool has_churn) {
  return ChurnReplayConfig{
      .lookups_per_event = params.get_u64("lookups-per-event", 16),
      .tail_lookups = params.get_u64("tail-lookups",
                                     has_churn ? 0 : std::uint64_t{65536}),
      .zipf_skew = params.get_double("skew", 1.0),
      .alpha = params.alpha()};
}

namespace {

const sim::WorkloadRegistrar kRegisterFibReal{
    "fib-real",
    "real RIB feed replay: dump+update churn as alpha-chunk rule updates "
    "interleaved with Zipf LPM lookups (--rib-feed d.feed[,u.feed] "
    "[--family 4|6])",
    [](const Tree& tree, const sim::Params& p, std::uint64_t seed)
        -> std::unique_ptr<RequestSource> {
      const RealFibReplay& replay = shared_real_fib(p);
      TC_CHECK(tree.parent_array() == replay.tree().parent_array(),
               "fib-real runs on the rule tree rebuilt from its feed; build "
               "it with rib::shared_real_fib(params).tree() (CLI: `--tree "
               "fib-real` with the same --rib-feed/--family)");
      const ChurnReplayConfig config =
          churn_config_from_params(p, replay.churn_events() > 0);
      // shared_real_fib entries live for the process, so the source's
      // shared replay stays valid however long it streams.
      if (replay.family == 6) {
        return std::make_unique<RibChurnSource6>(replay.v6, config,
                                                 Rng(seed));
      }
      return std::make_unique<RibChurnSource>(replay.v4, config, Rng(seed));
    }};

}  // namespace

}  // namespace treecache::rib
