// Binary MRT (RFC 6396) codec for the subset the RIB pipeline consumes:
// TABLE_DUMP_V2 snapshots (PEER_INDEX_TABLE, RIB_IPV4_UNICAST,
// RIB_IPV6_UNICAST) and BGP4MP/BGP4MP_ET UPDATE messages (announce,
// withdraw, MP_REACH/MP_UNREACH for IPv6). Every record decodes to the
// same FeedRecord the text grammar produces, so text and binary feeds
// are interchangeable through FeedReader.
//
// Decoding is hostile-input safe: all field reads go through a
// bounds-checked cursor, errors throw CheckFailure carrying the absolute
// byte offset, and a record length cap bounds buffering. Next-hop
// identity is the low 32 bits of the next-hop address (NEXT_HOP for
// IPv4, the MP_REACH next hop for IPv6); RIB entries without one fall
// back to peer index + 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "rib/feed.hpp"

namespace treecache::rib {

/// RFC 6396 record types / subtypes (the decoded subset).
inline constexpr std::uint16_t kMrtTypeTableDump = 12;  // legacy; skipped
inline constexpr std::uint16_t kMrtTypeTableDumpV2 = 13;
inline constexpr std::uint16_t kMrtTypeBgp4mp = 16;
inline constexpr std::uint16_t kMrtTypeBgp4mpEt = 17;
inline constexpr std::uint16_t kMrtPeerIndexTable = 1;
inline constexpr std::uint16_t kMrtRibIpv4Unicast = 2;
inline constexpr std::uint16_t kMrtRibIpv6Unicast = 4;
inline constexpr std::uint16_t kMrtBgp4mpMessage = 1;
inline constexpr std::uint16_t kMrtBgp4mpMessageAs4 = 4;

/// Common-header size: timestamp + type + subtype + body length.
inline constexpr std::size_t kMrtHeaderBytes = 12;

/// Largest record body the decoder will buffer. Real RIB records top out
/// around tens of KB; anything past this is a corrupt or hostile length
/// field, rejected before allocation.
inline constexpr std::uint32_t kMaxMrtRecordBytes = 16u << 20;

/// True when `head` (the first bytes of a file) plausibly starts an MRT
/// common header: a known record type and a sane length. Text feeds can
/// never collide — their bytes at the type position are printable ASCII,
/// far above any MRT type code.
[[nodiscard]] bool looks_like_mrt(std::span<const std::uint8_t> head);

/// Incremental decoder: pulls bytes from a stream, buffers exactly one
/// record at a time, and yields FeedRecords. next() returning nullopt
/// means the stream is drained; mid_record() then tells a truncated tail
/// apart from a clean record boundary, so a tail-follower can wait for
/// more bytes while a batch reader reports truncation.
class MrtDecoder {
 public:
  /// The next decoded record, or nullopt once `in` has no more bytes.
  /// Clearing the stream's eof state and calling again resumes exactly
  /// where the byte stream left off (mid-record included).
  std::optional<FeedRecord> next(std::istream& in);

  /// True when input ended inside a record (header or body).
  [[nodiscard]] bool mid_record() const { return !buffer_.empty(); }

  /// Absolute byte offset of the first record not yet fully decoded.
  [[nodiscard]] std::uint64_t record_offset() const { return record_offset_; }

  /// Bytes consumed from the stream, including a buffered partial record.
  [[nodiscard]] std::uint64_t bytes_seen() const {
    return record_offset_ + buffer_.size();
  }

  /// MRT records fully decoded (including skipped subtypes).
  [[nodiscard]] std::uint64_t mrt_records() const { return mrt_records_; }

 private:
  /// Validates the buffered common header; returns the body length.
  std::uint32_t validate_header() const;
  /// Decodes the complete record in buffer_ into pending_.
  void decode_record();

  std::deque<FeedRecord> pending_;
  std::vector<std::uint8_t> buffer_;
  std::size_t want_ = kMrtHeaderBytes;
  std::uint64_t record_offset_ = 0;
  std::uint64_t mrt_records_ = 0;
};

/// Batch decode of a whole in-memory MRT file. A partial record at the
/// tail throws CheckFailure naming the truncation offset.
[[nodiscard]] std::vector<FeedRecord> decode_mrt(
    std::span<const std::uint8_t> bytes);

/// Streaming encoder — the `gen-feed --format mrt` backend and the
/// round-trip test oracle. Dumps become TABLE_DUMP_V2 RIB records (a
/// one-peer PEER_INDEX_TABLE is emitted before the first one); announces
/// and withdraws become BGP4MP MESSAGE_AS4 UPDATEs (MP_REACH/MP_UNREACH
/// for IPv6). Timestamps must fit the 32-bit MRT header.
class MrtWriter {
 public:
  explicit MrtWriter(std::ostream& out) : out_(out) {}

  void write(const FeedRecord& record);

  /// Bytes written so far.
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  void emit_record(std::uint16_t type, std::uint16_t subtype,
                   std::uint64_t timestamp,
                   const std::vector<std::uint8_t>& body);
  void write_peer_index_table();

  std::ostream& out_;
  std::uint32_t sequence_ = 0;
  bool peer_table_written_ = false;
  std::uint64_t bytes_ = 0;
};

/// Encodes `records` into one in-memory MRT file.
[[nodiscard]] std::vector<std::uint8_t> encode_mrt_feed(
    const std::vector<FeedRecord>& records);

}  // namespace treecache::rib
