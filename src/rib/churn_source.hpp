// Streaming replay of real RIB churn against the cache: the fib-real
// workload's engine-facing source.
//
// The replay FIB is built over every prefix the feed ever named (so a
// withdrawn route keeps its tree node — in the paper's model an update
// to a rule is an update to its node either way). Each feed update then
// becomes the paper's α-chunk of negative requests to that rule's node,
// interleaved with Zipf-distributed LPM lookup traffic:
//
//   [L lookups] [α negatives @ event 0] [L lookups] [α negatives @ 1] ...
//   ... [tail lookups]
//
// Open loop with an exact size_hint; fork() replays the identical stream
// (the replay itself is shared immutably), so the default fork-based
// split makes the source shardable (SplitKind::kReplicated) and runs
// bit-identically across every shard/thread geometry.
#pragma once

#include <cstdint>
#include <memory>

#include "core/request_source.hpp"
#include "rib/ingest.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace treecache::rib {

/// The immutable product of a feed ingest that replay runs on: the FIB
/// over snapshot ∪ churned prefixes, plus the churn events resolved to
/// tree nodes, in feed order. Shared (shared_ptr<const>) between a
/// source and all its forks.
template <typename PrefixT>
struct BasicChurnReplay {
  fib::BasicRuleTree<PrefixT> fib;
  std::vector<NodeId> churn_nodes;
};

using ChurnReplay = BasicChurnReplay<fib::Prefix>;
using ChurnReplay6 = BasicChurnReplay<fib::Prefix6>;

/// Builds a family's replay from its ingest: rule tree over `touched`,
/// churn prefixes resolved to node ids (every churned prefix is in
/// `touched`, so resolution cannot miss).
template <typename PrefixT>
[[nodiscard]] BasicChurnReplay<PrefixT> make_churn_replay(
    const BasicIngest<PrefixT>& ingest);

/// Replay knobs (the fib-real workload params).
struct ChurnReplayConfig {
  std::uint64_t lookups_per_event = 16;  // Zipf lookups before each update
  std::uint64_t tail_lookups = 0;        // lookups after the last update
  double zipf_skew = 1.0;
  std::uint64_t alpha = 16;  // negatives per update (the paper's α)
};

template <typename PrefixT>
class BasicRibChurnSource final : public RequestSource {
 public:
  BasicRibChurnSource(std::shared_ptr<const BasicChurnReplay<PrefixT>> replay,
                      const ChurnReplayConfig& config, Rng rng);

  [[nodiscard]] std::size_t fill(std::span<Request> buffer) override;
  void reset() override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override;
  [[nodiscard]] std::unique_ptr<RequestSource> fork() const override;

 private:
  [[nodiscard]] NodeId sample_lookup();

  std::shared_ptr<const BasicChurnReplay<PrefixT>> replay_;
  ChurnReplayConfig config_;
  std::vector<NodeId> ranked_;  // Zipf ranks: shuffled non-root rules
  ZipfSampler zipf_;
  Rng start_rng_;  // state AFTER the rank permutation draw
  Rng rng_;
  std::uint64_t total_ = 0;  // exact stream length in requests
  std::uint64_t emitted_ = 0;
  std::size_t event_ = 0;
  std::uint64_t lookups_pending_ = 0;
  std::uint64_t negatives_pending_ = 0;
  std::uint64_t tail_pending_ = 0;
  NodeId chunk_node_ = 0;
};

using RibChurnSource = BasicRibChurnSource<fib::Prefix>;
using RibChurnSource6 = BasicRibChurnSource<fib::Prefix6>;

}  // namespace treecache::rib
