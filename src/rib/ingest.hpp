// Feed → RIB ingestion: applies a dump + update feed to per-family
// BasicRibTables, tracking the stats the `treecache ingest` report and
// the fib-real workload need. The churn list (announce/withdraw events
// in feed order) is kept as prefixes here; churn_source.hpp resolves it
// to rule-tree nodes once the replay FIB is built.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "rib/feed.hpp"
#include "rib/rib_table.hpp"

namespace treecache::rib {

/// Per-family feed counters.
struct IngestStats {
  std::uint64_t dump_routes = 0;
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  /// Withdraws of routes that were not live (feed noise; counted, not
  /// fatal — real update streams carry these).
  std::uint64_t withdraw_misses = 0;
  /// Announces that replaced an existing route (re-routes).
  std::uint64_t replaced_routes = 0;

  [[nodiscard]] std::uint64_t updates() const { return announces + withdraws; }
};

/// One family's ingest product: the RIB after all updates, the counters,
/// every distinct prefix the feed ever named (the replay FIB is built
/// over this superset, so withdrawn routes keep their tree node — in the
/// paper's model an update to a rule is an update to its node, whether
/// the route survives or not), and the churn events in feed order.
template <typename PrefixT>
struct BasicIngest {
  BasicRibTable<PrefixT> rib;
  IngestStats stats;
  std::set<PrefixT> touched;
  std::vector<PrefixT> churn;

  [[nodiscard]] bool empty() const {
    return stats.dump_routes == 0 && stats.updates() == 0;
  }
};

/// Both families plus whole-feed counters (one feed can mix families;
/// each record lands in its family's table).
struct IngestResult {
  BasicIngest<fib::Prefix> v4;
  BasicIngest<fib::Prefix6> v6;
  std::uint64_t records = 0;
  /// Feed bytes consumed (set by ingest_feed; zero for direct apply()).
  std::uint64_t bytes = 0;

  /// Applies one record to the matching family.
  void apply(const FeedRecord& record);
};

/// Streams `paths` through a FeedReader into a fresh IngestResult.
[[nodiscard]] IngestResult ingest_feed(const std::vector<std::string>& paths);

/// Tail-follow variant: keeps polling the last path for growth, so a
/// live feed ingests until the writer goes idle (see FeedReader::follow).
[[nodiscard]] IngestResult ingest_feed(const std::vector<std::string>& paths,
                                       const FollowOptions& follow);

/// Per-depth node counts (index = depth, root at 0): the tree-shape
/// histogram the ingest document reports.
[[nodiscard]] std::vector<std::uint64_t> depth_histogram(const Tree& tree);

}  // namespace treecache::rib
