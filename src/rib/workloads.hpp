// The fib-real workload: replaying an ingested RIB feed against the
// cache, behind the WorkloadRegistry.
//
// A fib-real scenario is defined entirely by its Params bag: the feed
// block ("rib-feed" = comma-separated feed paths, "family" = 4|6) names
// the substrate (the replay FIB rebuilt from the feed), and the traffic
// block (lookups-per-event, tail-lookups, skew, alpha) names the request
// stream. Like the synthetic fib* family, the substrate is reproducible
// from the params alone — shared_real_fib() ingests each distinct feed
// once per process — and the registered factory verifies the tree it is
// handed matches the replay tree, so a grid cannot silently run feed
// churn on an unrelated tree.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rib/churn_source.hpp"
#include "rib/ingest.hpp"
#include "sim/registry.hpp"

namespace treecache::rib {

/// True for workload names of the real-feed family ("fib-real"), which
/// require their tree to come from shared_real_fib(params).tree().
[[nodiscard]] bool is_real_fib_workload_name(std::string_view name);

/// The "rib-feed" param split on commas; throws when absent or empty.
[[nodiscard]] std::vector<std::string> feed_paths_from_params(
    const sim::Params& params);

/// One ingested feed, ready to replay: the selected family's churn replay
/// (shared immutably with every source built over it) plus the ingest
/// stats for reporting.
struct RealFibReplay {
  int family = 4;  // 4 or 6, from the "family" param
  std::shared_ptr<const ChurnReplay> v4;    // set when family == 4
  std::shared_ptr<const ChurnReplay6> v6;   // set when family == 6
  IngestStats stats;

  [[nodiscard]] const Tree& tree() const {
    return family == 6 ? v6->fib.tree : v4->fib.tree;
  }
  [[nodiscard]] std::size_t churn_events() const {
    return family == 6 ? v6->churn_nodes.size() : v4->churn_nodes.size();
  }
};

/// Ingests the feed named by params ("rib-feed", "family") and builds the
/// replay. Throws when the selected family has no routes in the feed.
[[nodiscard]] RealFibReplay build_real_fib(const sim::Params& params);

/// build_real_fib behind a process-wide, thread-safe cache keyed by
/// (paths, per-file size+mtime, family), so a sweep instantiating many
/// fib-real cells ingests each feed once — while a feed file regenerated
/// mid-process is re-ingested rather than served stale. Entries live for
/// the process (like fib::shared_rule_tree).
[[nodiscard]] const RealFibReplay& shared_real_fib(const sim::Params& params);

/// The replay-traffic block: lookups-per-event (default 16),
/// tail-lookups (default 0 when the feed has churn, 65536 when it is a
/// pure snapshot — so a churn-free feed still produces a stream), skew,
/// alpha.
[[nodiscard]] ChurnReplayConfig churn_config_from_params(
    const sim::Params& params, bool has_churn);

}  // namespace treecache::rib
