#include "rib/ingest.hpp"

namespace treecache::rib {

namespace {

template <typename PrefixT>
void apply_family(BasicIngest<PrefixT>& family, const FeedRecord& record,
                  const PrefixT& prefix) {
  family.touched.insert(prefix);
  switch (record.op) {
    case FeedOp::kDump:
      ++family.stats.dump_routes;
      if (!family.rib.route_add(prefix, record.next_hop)) {
        ++family.stats.replaced_routes;
      }
      break;
    case FeedOp::kAnnounce:
      ++family.stats.announces;
      if (!family.rib.route_add(prefix, record.next_hop)) {
        ++family.stats.replaced_routes;
      }
      family.churn.push_back(prefix);
      break;
    case FeedOp::kWithdraw:
      ++family.stats.withdraws;
      if (!family.rib.route_delete(prefix)) {
        ++family.stats.withdraw_misses;
      }
      family.churn.push_back(prefix);
      break;
  }
}

}  // namespace

void IngestResult::apply(const FeedRecord& record) {
  ++records;
  if (record.v6) {
    apply_family(v6, record, record.prefix6);
  } else {
    apply_family(v4, record, record.prefix4);
  }
}

namespace {

IngestResult drain_reader(FeedReader& reader) {
  IngestResult result;
  while (const auto record = reader.next()) {
    result.apply(*record);
  }
  result.bytes = reader.bytes();
  return result;
}

}  // namespace

IngestResult ingest_feed(const std::vector<std::string>& paths) {
  FeedReader reader(paths);
  return drain_reader(reader);
}

IngestResult ingest_feed(const std::vector<std::string>& paths,
                         const FollowOptions& follow) {
  FeedReader reader(paths);
  reader.follow(follow);
  return drain_reader(reader);
}

std::vector<std::uint64_t> depth_histogram(const Tree& tree) {
  std::vector<std::uint64_t> histogram(tree.height(), 0);
  const auto n = static_cast<NodeId>(tree.size());
  for (NodeId v = 0; v < n; ++v) {
    ++histogram[tree.depth(v)];
  }
  return histogram;
}

}  // namespace treecache::rib
